"""Fig. 13 — FCT and normalized throughput under packet loss.

Paper claim (scales 64 & 512, loss 1e-8..1e-4 at the middle switches):
Cepheus keeps a better FCT than Chain at scale 64, degrades more
steeply in normalized throughput (its go-back-N retransmissions serve
*all* receivers), and at scale 512 with 1e-4 loss falls behind Chain —
hence the paper's recommendation to deploy in PFC-lossless fabrics.

Scale substitution: quick mode runs 16/64-member groups with 4/8 MB
flows (see EXPERIMENTS.md).
"""

from conftest import run_once

from repro.harness.experiments import fig13_loss


def test_fig13_loss(benchmark, record_result):
    res = run_once(benchmark, fig13_loss, quick=True)
    record_result(res)
    ceph = [r for r in res.rows if r["scheme"] == "cepheus"]
    chain = [r for r in res.rows if r["scheme"] == "chain"]
    # Clean network: normalized throughput is exactly 1.
    assert all(r["norm_tput"] == 1.0 for r in ceph if r["loss_rate"] == 0)
    # Loss visibly hits Cepheus harder than Chain (norm_tput drop).
    worst_c = min(r["norm_tput"] for r in ceph)
    worst_ch = min(r["norm_tput"] for r in chain)
    assert worst_c < 1.0
    assert worst_c <= worst_ch + 1e-9
    # But at these scales Cepheus still wins on absolute FCT everywhere.
    by = {(r["scale"], r["loss_rate"], r["scheme"]): r["fct_ms"]
          for r in res.rows}
    for (scale, rate, scheme), fct in by.items():
        if scheme == "cepheus":
            assert fct < by[(scale, rate, "chain")]
