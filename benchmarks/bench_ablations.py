"""Ablations of the §III-D design choices.

Each benchmark knocks out one Cepheus mechanism and demonstrates the
failure mode the paper predicts for its absence.
"""

from conftest import run_once

from repro.harness.ablations import (ablation_ack_trigger,
                                     ablation_cnp_filter,
                                     ablation_deployment,
                                     ablation_nack_rule,
                                     ablation_retransmit_filter,
                                     ablation_state_memory)


def test_ablation_ack_trigger(benchmark, record_result):
    """Trigger Condition off -> ACK explosion at the sender."""
    res = run_once(benchmark, ablation_ack_trigger, quick=True)
    record_result(res)
    by = {r["variant"]: r for r in res.rows}
    assert by["no-trigger"]["sender_acks"] > 3 * by["with-trigger"]["sender_acks"]


def test_ablation_nack_rule(benchmark, record_result):
    """MePSN rule off -> inter-covering permanently stalls receivers."""
    res = run_once(benchmark, ablation_nack_rule, quick=True)
    record_result(res)
    by = {r["variant"]: r for r in res.rows}
    assert by["with-mepsn"]["receivers_done"] == \
        by["with-mepsn"]["receivers_total"]
    assert by["no-mepsn"]["receivers_done"] < \
        by["no-mepsn"]["receivers_total"]


def test_ablation_cnp_filter(benchmark, record_result):
    """CNP filter off -> magnified congestion signal over-throttles."""
    res = run_once(benchmark, ablation_cnp_filter, quick=True)
    record_result(res)
    by = {r["variant"]: r for r in res.rows}
    assert by["with-filter"]["goodput_gbps"] > \
        1.2 * by["no-filter"]["goodput_gbps"]
    assert by["with-filter"]["sender_cnps"] <= by["no-filter"]["sender_cnps"]


def test_ablation_retransmit_filter(benchmark, record_result):
    """Filter off -> duplicate retransmissions reach receivers."""
    res = run_once(benchmark, ablation_retransmit_filter, quick=True)
    record_result(res)
    by = {r["variant"]: r for r in res.rows}
    assert by["with-filter"]["filtered"] > 0
    assert by["no-filter"]["filtered"] == 0
    assert by["no-filter"]["dup_deliveries"] > \
        by["with-filter"]["dup_deliveries"]


def test_ablation_deployment(benchmark, record_result):
    """FPGA look-aside detour vs proposed ASIC inline integration."""
    res = run_once(benchmark, ablation_deployment, quick=True)
    record_result(res)
    by = {r["deployment"]: r for r in res.rows}
    assert by["lookaside"]["small_jct_us"] > by["inline"]["small_jct_us"]
    # At the prototype's 4x100G capacity, throughput is not the limiter.
    assert by["lookaside"]["large_jct_ms"] < 1.1 * by["inline"]["large_jct_ms"]
    assert by["lookaside"]["detours"] > 0 == by["inline"]["detours"]


def test_ablation_state_memory(benchmark, record_result):
    """Hierarchical per-path state vs naive per-receiver tracking."""
    res = run_once(benchmark, ablation_state_memory, quick=True)
    record_result(res)
    biggest = res.rows[-1]
    assert biggest["hierarchical_B"] < 800          # bounded by radix
    assert biggest["per_receiver_B"] > 40_000       # linear in group size
