"""Fig. 8 — MPI-Bcast JCT for small messages on the 4-host testbed.

Paper claim: Cepheus is 2.5-3.5x faster than Binomial Tree and 3-5.2x
faster than Chain for 64 B - 64 KB broadcasts.
"""

from conftest import run_once

from repro.harness.experiments import fig8_bcast_small


def test_fig8_bcast_small(benchmark, record_result):
    res = run_once(benchmark, fig8_bcast_small, quick=True)
    record_result(res)
    for row in res.rows:
        assert 1.8 <= row["speedup_vs_bt"] <= 4.0, row
        assert 2.3 <= row["speedup_vs_chain"] <= 5.5, row
