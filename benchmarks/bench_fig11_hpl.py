"""Fig. 11 — HPL end-to-end JCT and communication-time breakdown.

Paper claim: accelerating Panel Broadcast cuts HPL JCT by 12 % (PB
communication itself by 67 %); accelerating Row Swap cuts JCT by 4 %
(RS communication by 18 %).  Runs the paper-scale N=8192 problem.
"""

from conftest import run_once

from repro.harness.experiments import fig11_hpl


def test_fig11_hpl(benchmark, record_result):
    res = run_once(benchmark, fig11_hpl, quick=True)
    record_result(res)
    by = {(r["experiment"].split(" ")[0], r["scheme"]): r for r in res.rows}
    pb = by[("PB", "cepheus")]
    rs = by[("RS", "cepheus")]
    assert 0.50 <= pb["comm_reduction"] <= 0.85   # paper 67%
    assert 0.06 <= pb["jct_reduction"] <= 0.20    # paper 12%
    assert 0.08 <= rs["comm_reduction"] <= 0.35   # paper 18%
    assert 0.00 <= rs["jct_reduction"] <= 0.10    # paper 4%
