"""Fig. 12 — FCT of a large multicast group on a 3-layer fat-tree.

Paper claim (512 members, 1024-server fabric): for short flows Cepheus
is up to 164x faster than Chain and 4.5x faster than BT; for large
flows 2.1x (Chain) and 8.9x (BT).  Quick mode runs a 64-member group
on a k=8 fabric packet-level, stitching the validated analytic models
for the largest sizes (see EXPERIMENTS.md).
"""

from conftest import run_once

from repro.harness.experiments import fig12_large_scale


def test_fig12_large_scale(benchmark, record_result):
    res = run_once(benchmark, fig12_large_scale, quick=True)
    record_result(res)
    small, large = res.rows[0], res.rows[-1]
    # Short flows: Chain's linear latency explodes, BT stays logarithmic.
    assert small["speedup_vs_chain"] > 20
    assert small["speedup_vs_bt"] > 3
    assert small["speedup_vs_chain"] > small["speedup_vs_bt"]
    # Large flows: BT's log(n) full-copy rounds are the bigger penalty.
    assert large["speedup_vs_bt"] > large["speedup_vs_chain"] > 1.5
    assert {"packet", "analytic"} == set(res.column("mode"))
