"""Extension benchmark — §VIII future work: collective compositions.

Not a paper figure: quantifies the Parameter-Server allreduce built
from the reduction primitives + Cepheus distribution, against the
unicast-distribution PS baselines and ring allreduce.
"""

from conftest import run_once

from repro.apps import Cluster
from repro.collectives import AllReduce
from repro.harness.report import ExperimentResult, fmt_size

MB = 1 << 20


def _experiment(quick: bool = True) -> ExperimentResult:
    sizes = [4 * MB, 64 * MB] if quick else [4 * MB, 64 * MB, 256 * MB]
    res = ExperimentResult(
        exp_id="ext-allreduce",
        title="PS allreduce with Cepheus distribution (8 nodes)",
        headers=["size", "ps_cepheus_ms", "ps_binomial_ms",
                 "ps_unicast_ms", "ring_ms"],
        paper_claim="§I: multicast accelerates PS parameter distribution "
                    "(extension, not a paper figure)",
    )
    for size in sizes:
        row = {"size": fmt_size(size)}
        for strat, key in (("ps-cepheus", "ps_cepheus_ms"),
                           ("ps-binomial", "ps_binomial_ms"),
                           ("ps-multi-unicast", "ps_unicast_ms"),
                           ("ring", "ring_ms")):
            cl = Cluster.testbed(8)
            row[key] = AllReduce(cl, cl.host_ips, strat).run(size).total * 1e3
        res.rows.append(row)
    return res


def test_ext_allreduce(benchmark, record_result):
    res = run_once(benchmark, _experiment, quick=True)
    record_result(res)
    for row in res.rows:
        assert row["ps_cepheus_ms"] < row["ps_binomial_ms"]
        assert row["ps_cepheus_ms"] < row["ps_unicast_ms"]
    # At the large end, PS+Cepheus plays in ring allreduce's league.
    assert res.rows[-1]["ps_cepheus_ms"] < 1.3 * res.rows[-1]["ring_ms"]
