"""Extension study — FCT distribution over the §II-A size mix.

The paper's figures evaluate fixed message sizes; production multicast
serves a *distribution* ("both large objects and small query
messages").  This study replays a seeded mixed workload (Poisson
arrivals, heavy-tailed sizes) through Cepheus, Chain and BT and reports
percentile FCTs split at 64 KB — showing Cepheus needs no per-size
algorithm choice while every overlay is mis-sized half the time.
"""

import statistics

from conftest import run_once

from repro.apps import Cluster
from repro.collectives import BinomialTreeBcast, CepheusBcast, ChainBcast
from repro.harness.report import ExperimentResult
from repro.harness.workloads import MIXED, MulticastWorkload, PoissonArrivals


def _experiment(quick: bool = True) -> ExperimentResult:
    n = 60 if quick else 300
    res = ExperimentResult(
        exp_id="ext-workload",
        title="Mixed-size multicast workload (Poisson, heavy-tailed sizes)",
        headers=["engine", "small_p50_us", "small_p99_us",
                 "large_p50_ms", "large_p99_ms"],
        paper_claim="§II-A: one general mechanism for queries and bulk; "
                    "overlays must pick per size (extension study)",
        notes="split at 64KB; same seeded schedule for every engine",
    )
    workload = MulticastWorkload(MIXED, PoissonArrivals(2e4), n, seed=11)
    engines = [
        (CepheusBcast, {}),
        (ChainBcast, {"slices": 4}),
        (BinomialTreeBcast, {}),
    ]
    for cls, kw in engines:
        cl = Cluster.testbed(4)
        result = workload.run(cl, cl.host_ips, cls, **kw)
        small, large = result.small_large_split(64 << 10)

        def pct(values, p):
            if not values:
                return 0.0
            ordered = sorted(values)
            return ordered[min(len(ordered) - 1,
                               int(p / 100 * len(ordered)))]

        res.rows.append({
            "engine": result.engine,
            "small_p50_us": pct(small, 50) * 1e6,
            "small_p99_us": pct(small, 99) * 1e6,
            "large_p50_ms": pct(large, 50) * 1e3,
            "large_p99_ms": pct(large, 99) * 1e3,
        })
    return res


def test_ext_workload_mix(benchmark, record_result):
    res = run_once(benchmark, _experiment, quick=True)
    record_result(res)
    by = {r["engine"]: r for r in res.rows}
    ceph = by["cepheus"]
    for name, row in by.items():
        if name == "cepheus":
            continue
        # Cepheus dominates both halves of the mix simultaneously.
        assert ceph["small_p99_us"] <= row["small_p99_us"] * 1.01, name
        assert ceph["large_p99_ms"] <= row["large_p99_ms"] * 1.01, name
