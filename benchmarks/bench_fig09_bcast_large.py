"""Fig. 9 — MPI-Bcast JCT for large messages on the 4-host testbed.

Paper claim: Cepheus throughput is 1.3-2.8x Chain's and 2-2.8x BT's
(Chain at 4 slices, the common practical configuration).
"""

from conftest import run_once

from repro.harness.experiments import fig9_bcast_large


def test_fig9_bcast_large(benchmark, record_result):
    res = run_once(benchmark, fig9_bcast_large, quick=True)
    record_result(res)
    for row in res.rows:
        assert 1.3 <= row["speedup_vs_chain"] <= 3.0, row
        assert 1.8 <= row["speedup_vs_bt"] <= 3.2, row
    # Cepheus itself runs at near line rate for the largest point.
    biggest = res.rows[-1]
    assert biggest["cepheus_ms"] > 0
