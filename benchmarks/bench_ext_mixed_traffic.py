"""Extension study — §II-A's requirement, characterized.

"The datacenter supports mixed traffic from different applications,
including both large objects and small query messages, using multicast
primitives.  We aim to develop a *general* multicast mechanism..."

This study runs a bulk multicast stream and a small-query multicast
stream to the *same receiver set* concurrently (separate groups, one
RC connection each — no head-of-line blocking between applications at
the QP level) and reports the query latency distribution with and
without the bulk stream.  The remaining inflation comes from fabric
queueing at the shared receiver downlinks, bounded by DCQCN's marking
band — i.e. the latency cost of generality is the congestion-control
operating point, not the multicast mechanism.
"""

from conftest import run_once

from repro.apps import Cluster
from repro.collectives import CepheusBcast
from repro.harness.report import ExperimentResult
from repro.net.telemetry import LatencyStats

MB = 1 << 20


def _query_latencies(with_bulk: bool, *, n_queries: int = 200,
                     interval: float = 50e-6) -> LatencyStats:
    cl = Cluster.testbed(8)
    sim = cl.sim
    members = [1, 2, 3, 4, 5]
    queries = CepheusBcast(cl, [6] + members[1:])  # same receivers, own group
    queries.prepare()
    bulk = CepheusBcast(cl, members)
    bulk.prepare()

    stats = LatencyStats()
    outstanding = {}

    def on_query(mid: int, sz: int, now: float, meta) -> None:
        # meta carries the post time; latency = slowest receiver's copy
        stats.record(now - meta)

    for ip in members[1:]:
        queries.qps[ip].on_message = on_query

    def post_query(i: int) -> None:
        if i >= n_queries:
            return
        queries.qps[6].post_send(64, meta=sim.now)
        sim.schedule(interval, post_query, i + 1)

    if with_bulk:
        # back-to-back 8 MB objects for the whole experiment window
        def stream(_mid=None, _now=None) -> None:
            bulk.qps[1].post_send(8 * MB, on_complete=stream)
        stream()
    sim.schedule(10e-6, post_query, 0)
    sim.run(until=n_queries * interval + 5e-3)
    if with_bulk:
        bulk.qps[1].abort_sends()
        sim.run()
    return stats


def _experiment(quick: bool = True) -> ExperimentResult:
    res = ExperimentResult(
        exp_id="ext-mixed",
        title="Small multicast queries under a bulk multicast stream",
        headers=["scenario", "queries", "p50_us", "p99_us", "max_us"],
        paper_claim="§II-A: a general mechanism must serve large objects "
                    "and small queries together (extension study)",
        notes="separate groups isolate the QPs; residual inflation is "
              "DCQCN's queue operating point at the shared downlinks",
    )
    n = 150 if quick else 500
    for scenario, bulk in (("queries-alone", False), ("with-bulk", True)):
        stats = _query_latencies(bulk, n_queries=n)
        s = stats.summary()
        res.rows.append({
            "scenario": scenario, "queries": s["count"],
            "p50_us": s["p50"] * 1e6, "p99_us": s["p99"] * 1e6,
            "max_us": s["max"] * 1e6,
        })
    return res


def test_ext_mixed_traffic(benchmark, record_result):
    res = run_once(benchmark, _experiment, quick=True)
    record_result(res)
    by = {r["scenario"]: r for r in res.rows}
    alone = by["queries-alone"]
    mixed = by["with-bulk"]
    assert alone["queries"] > 0 and mixed["queries"] > 0
    # Isolation: queries keep flowing under bulk load, with bounded
    # inflation (queueing at the DCQCN operating point, not seconds of
    # head-of-line blocking).
    assert mixed["p50_us"] < alone["p50_us"] + 100
    assert mixed["p99_us"] < 500
    assert mixed["p99_us"] >= alone["p99_us"]  # congestion is visible
