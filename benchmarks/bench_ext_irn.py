"""Extension benchmark — §V-C's remedy: IRN under the Fig. 13 loss sweep.

The paper: "the recently-proposed IRN can substantially enhance
Cepheus' tolerance to higher loss rates."  This benchmark re-runs the
loss-tolerance experiment with the transport's selective-repeat mode
and quantifies exactly that.
"""

from conftest import run_once

from repro.apps import Cluster
from repro.collectives import CepheusBcast
from repro.harness.report import ExperimentResult
from repro.transport import RoceConfig

MB = 1 << 20


def _experiment(quick: bool = True) -> ExperimentResult:
    size = (8 if quick else 32) * MB
    rates = [0.0, 1e-3, 5e-3] if quick else [0.0, 1e-4, 1e-3, 5e-3, 1e-2]
    res = ExperimentResult(
        exp_id="ext-irn",
        title="Cepheus loss tolerance: go-back-N vs IRN (16 members, k=4)",
        headers=["mode", "loss_rate", "fct_ms", "goodput_gbps",
                 "retransmits", "timeouts"],
        paper_claim="§V-C: IRN can substantially enhance Cepheus' "
                    "tolerance to higher loss rates",
    )
    for mode in ("gbn", "irn"):
        for rate in rates:
            cl = Cluster.fat_tree_cluster(
                4, roce_config=RoceConfig(retransmit_mode=mode, rto=400e-6))
            cl.topo.set_loss_rate(rate, layers=("agg", "core"))
            algo = CepheusBcast(cl, cl.host_ips)
            r = algo.run(size)
            qp = algo.qps[algo.root]
            res.rows.append({
                "mode": mode, "loss_rate": rate,
                "fct_ms": r.jct * 1e3,
                "goodput_gbps": r.goodput_gbps(),
                "retransmits": qp.retransmitted_packets,
                "timeouts": qp.timeouts,
            })
    return res


def test_ext_irn(benchmark, record_result):
    res = run_once(benchmark, _experiment, quick=True)
    record_result(res)
    by = {(r["mode"], r["loss_rate"]): r for r in res.rows}
    worst_rate = max(r["loss_rate"] for r in res.rows)
    gbn = by[("gbn", worst_rate)]
    irn = by[("irn", worst_rate)]
    # "substantially enhance": order-of-magnitude at the worst rate.
    assert irn["goodput_gbps"] > 5 * gbn["goodput_gbps"]
    assert irn["timeouts"] == 0
    assert irn["retransmits"] < 0.1 * gbn["retransmits"]
