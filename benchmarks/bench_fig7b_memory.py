"""Fig. 7b analogue — accelerator state-memory accounting.

The FPGA LUT/BRAM table has no software counterpart; what *is*
reproducible is the scalability claim behind it (§III-D): per-group MFT
state is bounded by the switch radix, so 1 K groups cost at most
~0.69 MB on a 64-port switch, independent of multicast group size.
"""

from conftest import run_once

from repro.harness.experiments import fig7b_memory


def test_fig7b_memory(benchmark, record_result):
    res = run_once(benchmark, fig7b_memory, quick=True)
    record_result(res)
    row = res.rows[0]
    assert row["bytes_per_group"] <= 750
    assert row["total_MB"] <= 0.78  # paper: 0.69 MB (tighter encoding)
