"""Benchmark-suite plumbing.

Every benchmark runs its experiment exactly once (``pedantic`` with one
round — these are minutes-long discrete-event simulations, not
microbenchmarks), prints the paper-style table, and archives it under
``benchmarks/results/`` so the output survives pytest's capture.
"""

import pathlib

import pytest

from repro.harness.report import ExperimentResult, format_table

RESULTS_DIR = pathlib.Path(__file__).parent / "results"


@pytest.fixture
def record_result():
    """Print + persist an ExperimentResult; returns the text."""

    def _record(result: ExperimentResult) -> str:
        text = format_table(result)
        print("\n" + text)
        RESULTS_DIR.mkdir(exist_ok=True)
        path = RESULTS_DIR / f"{result.exp_id}.txt"
        path.write_text(text + "\n")
        return text

    return _record


def run_once(benchmark, fn, **kwargs):
    """Run ``fn`` exactly once under the benchmark timer."""
    return benchmark.pedantic(fn, kwargs=kwargs, rounds=1, iterations=1)
