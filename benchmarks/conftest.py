"""Benchmark-suite plumbing.

Every benchmark runs its experiment exactly once (``pedantic`` with one
round — these are minutes-long discrete-event simulations, not
microbenchmarks), prints the paper-style table, and archives it under
``benchmarks/results/`` — both as the human-readable table
(``<exp_id>.txt``) and as the canonical machine-readable payload
(``<exp_id>.json``, the same ``ExperimentResult.to_json()`` document
the BENCH trajectory files embed).
"""

import pathlib

import pytest

from repro.harness.report import ExperimentResult, format_table

RESULTS_DIR = pathlib.Path(__file__).parent / "results"


@pytest.fixture
def record_result():
    """Print + persist an ExperimentResult; returns the text."""

    def _record(result: ExperimentResult) -> str:
        text = format_table(result)
        print("\n" + text)
        RESULTS_DIR.mkdir(exist_ok=True)
        (RESULTS_DIR / f"{result.exp_id}.txt").write_text(text + "\n")
        (RESULTS_DIR / f"{result.exp_id}.json").write_text(
            result.to_json() + "\n")
        return text

    return _record


def run_once(benchmark, fn, **kwargs):
    """Run ``fn`` exactly once under the benchmark timer."""
    return benchmark.pedantic(fn, kwargs=kwargs, rounds=1, iterations=1)
