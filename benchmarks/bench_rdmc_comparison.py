"""§V-A 'Comparison to RDMC' — large-object broadcast vs RDMC.

Paper claim: for a 256 MB broadcast over 4 hosts, Cepheus finishes in
24.4 ms vs ~35 ms for RDMC (ratio ~1.43x).
"""

from conftest import run_once

from repro.harness.experiments import rdmc_comparison


def test_rdmc_comparison(benchmark, record_result):
    res = run_once(benchmark, rdmc_comparison, quick=True)
    record_result(res)
    rdmc = next(r for r in res.rows if r["scheme"] == "rdmc")
    assert 1.2 <= rdmc["ratio_vs_cepheus"] <= 2.0
