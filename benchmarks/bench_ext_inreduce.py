"""Extension benchmark — §VIII future work: in-network many-to-one.

Not a paper figure: the experimental reduce-mode MDT (contributions
combine in-network, root feedback replicates down) against the host-
level binomial reduce, over star and fat-tree fabrics.
"""

from conftest import run_once

from repro.apps import Cluster
from repro.collectives import BinomialReduce
from repro.ext import InNetworkReduce
from repro.harness.report import ExperimentResult, fmt_size

MB = 1 << 20


def _experiment(quick: bool = True) -> ExperimentResult:
    sizes = [64 * 1024, 8 * MB] if quick else [64 * 1024, 8 * MB, 64 * MB]
    res = ExperimentResult(
        exp_id="ext-inreduce",
        title="In-network reduction vs host-level binomial (8 members)",
        headers=["fabric", "size", "in_network_us", "binomial_us", "speedup"],
        paper_claim="§VIII: 'extend Cepheus for ... many-to-one "
                    "(e.g., MPI-Reduce)' (extension, not a paper figure)",
    )
    for fabric, mk in (("star", lambda: Cluster.testbed(8)),
                       ("fat-tree", lambda: Cluster.fat_tree_cluster(4))):
        for size in sizes:
            cl = mk()
            inr = InNetworkReduce(cl, cl.host_ips[:8]).run(size)
            cl2 = mk()
            host = BinomialReduce(cl2, cl2.host_ips[:8]).run(size)
            res.rows.append({
                "fabric": fabric, "size": fmt_size(size),
                "in_network_us": inr.duration * 1e6,
                "binomial_us": host.duration * 1e6,
                "speedup": host.duration / inr.duration,
            })
    return res


def test_ext_inreduce(benchmark, record_result):
    res = run_once(benchmark, _experiment, quick=True)
    record_result(res)
    for row in res.rows:
        assert row["speedup"] > 1.5, row
