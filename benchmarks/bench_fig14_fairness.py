"""Fig. 14 — throughput dynamics of one multicast + two unicast flows.

Paper claim: the Cepheus multicast flow f1 grabs the full bandwidth,
converges toward a fair share when unicast f2 starts, re-grabs the
bandwidth when f2 ends, and re-converges when f3 starts — i.e. stock
DCQCN drives the multicast flow like any unicast flow thanks to the
in-network CNP filtering.
"""

from conftest import run_once

from repro.harness.experiments import fig14_fairness


def test_fig14_fairness(benchmark, record_result):
    from repro.harness.report import ascii_chart

    res = run_once(benchmark, fig14_fairness, quick=True)
    record_result(res)
    print(ascii_chart({
        "f1": res.column("f1_gbps"),
        "f2": res.column("f2_gbps"),
        "f3": res.column("f3_gbps"),
    }, width=60, height=12, unit="G"))
    f1 = res.column("f1_gbps")
    f2 = res.column("f2_gbps")
    # Phase 1: alone, f1 runs near line rate.
    assert max(f1[:3]) > 90
    # Phase 2: with f2 active, the bottleneck stays fully utilized and
    # f2 holds a substantial share (convergence toward fairness).
    # >5 Gbps excludes the partial buckets at f2's start/finish.
    active = [i for i, v in enumerate(f2) if v > 5.0]
    mid = active[len(active) // 2:]
    for i in mid:
        assert f1[i] + f2[i] > 85          # full utilization
    assert max(f2[i] for i in mid) > 25    # f2 got a real share
    # Phase 3: after f2 ends, f1 climbs back up.
    after = [i for i in range(active[-1] + 1, len(f1))]
    assert after and max(f1[i] for i in after) > max(
        f1[i] for i in mid) + 10
