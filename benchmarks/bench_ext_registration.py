"""Extension study — MRP registration cost vs group size (§III-C).

The paper reports data-plane results; the control plane's cost matters
for adoption (groups must be set up before any multicast flows).  This
study measures, across group sizes on a fat-tree: registration latency
(controller send -> all confirmations), the number of switches holding
an MFT, and the total MFT memory — verifying the per-switch bound holds
while the MDT footprint grows.
"""

from conftest import run_once

from repro.apps import Cluster
from repro.harness.report import ExperimentResult


def _experiment(quick: bool = True) -> ExperimentResult:
    res = ExperimentResult(
        exp_id="ext-reg",
        title="MRP registration cost vs group size (k=8 fat-tree)",
        headers=["group_size", "reg_latency_us", "mdt_switches",
                 "total_mft_bytes", "max_entries_per_switch"],
        paper_claim="registration is control-plane (out-of-band) and the "
                    "per-switch Path Table stays within the radix (§III-C/D)",
    )
    sizes = [4, 16, 64] if quick else [4, 16, 64, 128]
    for n in sizes:
        cl = Cluster.fat_tree_cluster(8)
        members = cl.host_ips[:n]
        qps = {ip: cl.ctx(ip).create_qp() for ip in members}
        group = cl.fabric.create_group(qps, leader_ip=members[0])
        t0 = cl.sim.now
        cl.fabric.register_sync(group)
        latency = cl.sim.now - t0
        mdt = list(cl.fabric.mdt_switches(group.mcst_id))
        res.rows.append({
            "group_size": n,
            "reg_latency_us": latency * 1e6,
            "mdt_switches": len(mdt),
            "total_mft_bytes": sum(a.memory_bytes() for a in mdt),
            "max_entries_per_switch": max(
                len(a.mft_of(group.mcst_id).path_table) for a in mdt),
        })
    return res


def test_ext_registration(benchmark, record_result):
    res = run_once(benchmark, _experiment, quick=True)
    record_result(res)
    rows = res.rows
    # Footprint grows with the group, per-switch state stays bounded.
    assert rows[-1]["mdt_switches"] > rows[0]["mdt_switches"]
    assert all(r["max_entries_per_switch"] <= 8 for r in rows)
    # Control-plane latency stays in the tens-of-us range even at 64
    # members — negligible against any long-lived group's lifetime.
    assert rows[-1]["reg_latency_us"] < 200
