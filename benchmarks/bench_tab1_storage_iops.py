"""Table I — replication writing throughput (8 KB IOPS).

Paper claim: 1-unicast 1.188 M, 3-unicasts 0.413 M, Cepheus 1.167 M
IOPS; Cepheus goodput ~76.5 Gbps vs 26.24 Gbps for 3-unicasts.
"""

from conftest import run_once

from repro.harness.experiments import tab1_storage_iops


def test_tab1_storage_iops(benchmark, record_result):
    res = run_once(benchmark, tab1_storage_iops, quick=True)
    record_result(res)
    iops = {r["scheme"]: r["iops_M"] for r in res.rows}
    gput = {r["scheme"]: r["goodput_gbps"] for r in res.rows}
    assert 1.0 <= iops["1-unicast"] <= 1.4          # paper 1.188
    assert 0.33 <= iops["3-unicasts"] <= 0.47       # paper 0.413
    assert iops["cepheus"] >= 0.95 * iops["1-unicast"]  # paper 1.167
    assert gput["cepheus"] > 2.5 * gput["3-unicasts"]   # paper 76.5/26.2
