"""Fig. 10 — single IO latency of three-replica writes vs IO size.

Paper claim: Cepheus cuts IO latency vs 3-unicasts by 23 % at 8 KB and
60 % at 512 KB (the gap widens with IO size), while staying comparable
to the ideal 1-unicast.
"""

from conftest import run_once

from repro.harness.experiments import fig10_storage_latency


def test_fig10_storage_latency(benchmark, record_result):
    res = run_once(benchmark, fig10_storage_latency, quick=True)
    record_result(res)
    reds = res.column("reduction_vs_3uni")
    assert all(0.1 <= r <= 0.8 for r in reds)
    assert reds[-1] > reds[0]           # widening gap
    assert reds[-1] >= 0.5              # paper: -60% at 512KB
    for row in res.rows:                # comparable to 1-unicast
        assert row["cepheus_us"] <= 1.3 * row["unicast_us"]
