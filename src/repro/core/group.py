"""Multicast group management: McstIDs, membership, PSN-synced sources.

A multicast task sets up one :class:`MulticastGroup` with a unique
32-bit McstID drawn from the reserved range; every member establishes a
single RoCE RC connection whose remote is the *virtual* tuple
``<McstID, 0x1>`` (§III-A).  The group object also implements the
§III-E source-switching procedure: PSN synchronization between the old
and new source hosts (the in-network side is handled by the
accelerator's ingress-port detection).
"""

from __future__ import annotations

import heapq
from dataclasses import dataclass
from typing import Dict, List, Optional, Set

from repro import constants
from repro.errors import GroupError
from repro.transport.roce import RoceQP

__all__ = ["MemberRecord", "McstIdAllocator", "MulticastGroup", "LaneView"]


@dataclass(frozen=True)
class MemberRecord:
    """The per-member connection info carried in MRP packets (Fig. 5),
    extended with MR info for one-sided multicast WRITE (§III-B)."""

    ip: int
    qpn: int
    vaddr: int = 0
    rkey: int = 0


class McstIdAllocator:
    """Hands out McstIDs from the reserved multicast range.

    The range is finite (the top of the 32-bit IP space above
    ``MCSTID_BASE``): exhausting it raises :class:`GroupError` instead
    of silently handing out IDs that would collide with unicast
    addresses.  IDs of destroyed groups are recycled (lowest first, so
    allocation stays deterministic) — churn workloads create and tear
    down groups far faster than the range replenishes itself.
    """

    def __init__(self, base: int = constants.MCSTID_BASE,
                 capacity: Optional[int] = None) -> None:
        self.base = base
        self.capacity = ((1 << 32) - base) if capacity is None else capacity
        self._next = base
        self._free: List[int] = []      # heap of recycled IDs
        self._live: Set[int] = set()

    def allocate(self) -> int:
        if self._free:
            gid = heapq.heappop(self._free)
        elif self._next < self.base + self.capacity:
            gid = self._next
            self._next += 1
        else:
            raise GroupError(
                f"McstID range exhausted ({self.capacity} ids from "
                f"{self.base:#x}) and none released")
        self._live.add(gid)
        return gid

    def allocate_family(self, k: int) -> List[int]:
        """Allocate a k-id McstID family for a k-lane group.

        Lane 0's id is the group's McstID; lanes 1..k-1 address the
        per-lane MDTs.  The ids need not be contiguous (recycling keeps
        allocation deterministic regardless), only unique.  A partial
        failure rolls back so exhaustion never leaks ids.
        """
        if k < 1:
            raise GroupError(f"a group needs at least 1 lane, got {k}")
        ids: List[int] = []
        try:
            for _ in range(k):
                ids.append(self.allocate())
        except GroupError:
            for gid in ids:
                self.release(gid)
            raise
        return ids

    def release(self, gid: int) -> None:
        """Return a destroyed group's ID to the pool."""
        if gid not in self._live:
            raise GroupError(f"McstID {gid:#x} is not allocated "
                             f"(double release?)")
        self._live.remove(gid)
        heapq.heappush(self._free, gid)

    @property
    def live_count(self) -> int:
        return len(self._live)


class MulticastGroup:
    """Membership + per-member QPs for one multicast task.

    ``members`` maps host IP to that member's single RoCE QP.  Any
    member can be the source (§III-E); ``leader_ip`` hosts the MRP
    controller and defaults to the first member.
    """

    def __init__(
        self,
        mcst_id: int,
        members: Dict[int, RoceQP],
        leader_ip: Optional[int] = None,
        mr_info: Optional[Dict[int, "tuple[int, int]"]] = None,
        lane_ids: Optional[List[int]] = None,
        lane_members: Optional[List[Dict[int, RoceQP]]] = None,
    ) -> None:
        if len(members) < 2:
            raise GroupError("a multicast group needs at least 2 members")
        self.mcst_id = mcst_id
        self.members = dict(members)
        self.leader_ip = leader_ip if leader_ip is not None else next(iter(members))
        if self.leader_ip not in self.members:
            raise GroupError(f"leader {self.leader_ip} is not a member")
        self.mr_info = dict(mr_info or {})
        self.current_source: int = self.leader_ip
        self.registered = False
        # Membership epoch: bumped on every add/remove; MRP deltas carry
        # it so switches can order/detect stale membership updates.
        self.epoch = 0
        # -- path lanes (MRC-style k-path spraying) -----------------------
        # lane_ids[l] is the McstID addressing lane l's MDT; lane 0 IS
        # the group's own mcst_id, so a single-lane group is exactly the
        # pre-lane representation.  lane_members[l] maps ip -> the lane-l
        # QP of that member (lane 0 aliases self.members so legacy code
        # and lane code see one membership).
        self.lane_ids: List[int] = list(lane_ids) if lane_ids else [mcst_id]
        if self.lane_ids[0] != mcst_id:
            raise GroupError("lane 0 of a McstID family must be the "
                             "group's own mcst_id")
        if lane_members is not None:
            if len(lane_members) != len(self.lane_ids):
                raise GroupError("lane_members and lane_ids disagree on "
                                 "the lane count")
            self.lane_members: List[Dict[int, RoceQP]] = (
                [self.members] + [dict(m) for m in lane_members[1:]])
            for lane, qps in enumerate(self.lane_members[1:], start=1):
                if set(qps) != set(self.members):
                    raise GroupError(
                        f"lane {lane} membership differs from lane 0")
        else:
            if len(self.lane_ids) != 1:
                raise GroupError("a multi-lane group needs per-lane QPs")
            self.lane_members = [self.members]

    @property
    def paths(self) -> int:
        """Number of path lanes (k); 1 for a classic single-tree group."""
        return len(self.lane_ids)

    def lane_view(self, lane: int) -> "LaneView":
        """A per-lane projection usable wherever a group is expected."""
        return LaneView(self, lane)

    # -- connection establishment (§III-A 'Hosts Establishing Connections') ----

    def connect_virtual(self) -> None:
        """Point every member QP at the virtual remote <McstID, 0x1>.

        With k lanes, lane l's QPs connect to <lane_ids[l], 0x1>: each
        lane is its own virtual destination, so per-lane PSN spaces and
        per-lane feedback fall out of the existing single-tree datapath.
        """
        for lane_id, qps in zip(self.lane_ids, self.lane_members):
            for qp in qps.values():
                qp.connect(lane_id, constants.VIRTUAL_DST_QP)

    def member_records(self, lane: int = 0) -> List[MemberRecord]:
        """All members' connection info, leader included (the MDT must
        reach every potential receiver for source switching to work).
        ``lane`` selects which lane's QPNs the records carry."""
        records = []
        qps = self.lane_members[lane]
        for ip in sorted(qps):
            vaddr, rkey = self.mr_info.get(ip, (0, 0))
            records.append(MemberRecord(ip=ip, qpn=qps[ip].qpn,
                                        vaddr=vaddr, rkey=rkey))
        return records

    # -- dynamic membership (incremental MRP, §III-C) ---------------------------

    def add_member(self, ip: int, qp: RoceQP,
                   mr: Optional["tuple[int, int]"] = None,
                   lane_qps: Optional[List[RoceQP]] = None) -> None:
        """Admit a new member and bump the membership epoch.

        The caller (normally :class:`~repro.core.membership.
        MembershipManager`) is responsible for driving the JOIN delta
        that patches the MDT; this only updates the host-side view.
        With k>1 lanes, ``lane_qps`` supplies the joiner's k QPs
        (``lane_qps[0]`` must be ``qp``); every lane admits the member
        together so the family never diverges.
        """
        if ip in self.members:
            raise GroupError(f"{ip} is already a member of "
                             f"group {self.mcst_id:#x}")
        if self.paths > 1:
            if lane_qps is None or len(lane_qps) != self.paths:
                raise GroupError(
                    f"group {self.mcst_id:#x} has {self.paths} lanes; a "
                    f"join needs one QP per lane")
            if lane_qps[0] is not qp:
                raise GroupError("lane_qps[0] must be the member's "
                                 "primary (lane 0) QP")
        self.members[ip] = qp
        if mr is not None:
            self.mr_info[ip] = mr
        qp.connect(self.mcst_id, constants.VIRTUAL_DST_QP)
        for lane in range(1, self.paths):
            self.lane_members[lane][ip] = lane_qps[lane]
            lane_qps[lane].connect(self.lane_ids[lane],
                                   constants.VIRTUAL_DST_QP)
        self.epoch += 1

    def remove_member(self, ip: int) -> RoceQP:
        """Retire a member (voluntary leave or failure prune).

        The leader (it hosts the MRP controller) and the current source
        (the MDT's root for in-flight traffic) cannot be removed, and
        the group never shrinks below 2 members — multicast to one
        receiver is a plain connection.
        """
        if ip not in self.members:
            raise GroupError(f"{ip} is not a member of group {self.mcst_id:#x}")
        if ip == self.leader_ip:
            raise GroupError(f"leader {ip} cannot leave group "
                             f"{self.mcst_id:#x} (it hosts the controller)")
        if ip == self.current_source:
            raise GroupError(f"current source {ip} cannot leave group "
                             f"{self.mcst_id:#x} (switch the source first)")
        if len(self.members) <= 2:
            raise GroupError(
                f"group {self.mcst_id:#x} cannot shrink below 2 members")
        qp = self.members.pop(ip)
        for lane in range(1, self.paths):
            self.lane_members[lane].pop(ip, None)
        self.mr_info.pop(ip, None)
        self.epoch += 1
        return qp

    @property
    def size(self) -> int:
        return len(self.members)

    def receivers(self) -> List[int]:
        """Everyone but the current source."""
        return [ip for ip in self.members if ip != self.current_source]

    def qp_of(self, ip: int) -> RoceQP:
        try:
            return self.members[ip]
        except KeyError:
            raise GroupError(f"{ip} is not a member of group {self.mcst_id:#x}")

    def lane_qp_of(self, lane: int, ip: int) -> RoceQP:
        """The lane-``lane`` QP of member ``ip``."""
        try:
            return self.lane_members[lane][ip]
        except (IndexError, KeyError):
            raise GroupError(f"{ip} has no lane-{lane} QP in group "
                             f"{self.mcst_id:#x}")

    # -- source switching (§III-E) -----------------------------------------------

    def switch_source(self, new_source_ip: int) -> None:
        """PSN synchronization between the old and the new source.

        Old source: ``rqPSN <- sqPSN`` (it will now verify incoming
        packets that continue its own outgoing numbering).  New source:
        ``sqPSN <- rqPSN`` (it continues the stream where it left off as
        a receiver).  The switches need no signalling — they detect the
        new ingress port from the data itself.
        """
        if new_source_ip not in self.members:
            raise GroupError(f"{new_source_ip} is not a member")
        if new_source_ip == self.current_source:
            return
        old_qp = self.members[self.current_source]
        new_qp = self.members[new_source_ip]
        old_qp.sync_as_old_source()
        new_qp.sync_as_new_source()
        self.current_source = new_source_ip


class LaneView:
    """Read-only per-lane projection of a :class:`MulticastGroup`.

    Control-plane components that were written against a single-tree
    group (the source-routing encoder, MRP controllers) see one lane of
    a k-lane group through this shim: ``mcst_id`` is the lane's own id,
    ``members`` the lane's QPs, and everything else (leader, epoch,
    current source, MR info) is shared group state.  Lane 0's view is
    indistinguishable from the group itself.
    """

    __slots__ = ("group", "lane")

    def __init__(self, group: MulticastGroup, lane: int) -> None:
        if not 0 <= lane < group.paths:
            raise GroupError(f"group {group.mcst_id:#x} has no lane {lane}")
        self.group = group
        self.lane = lane

    @property
    def mcst_id(self) -> int:
        return self.group.lane_ids[self.lane]

    @property
    def nlanes(self) -> int:
        return self.group.paths

    @property
    def members(self) -> Dict[int, RoceQP]:
        return self.group.lane_members[self.lane]

    @property
    def leader_ip(self) -> int:
        return self.group.leader_ip

    @property
    def current_source(self) -> int:
        return self.group.current_source

    @property
    def epoch(self) -> int:
        return self.group.epoch

    @property
    def mr_info(self) -> Dict[int, "tuple[int, int]"]:
        return self.group.mr_info

    @property
    def registered(self) -> bool:
        return self.group.registered

    def member_records(self) -> List[MemberRecord]:
        return self.group.member_records(self.lane)

    def receivers(self) -> List[int]:
        return self.group.receivers()

    def qp_of(self, ip: int) -> RoceQP:
        return self.group.lane_qp_of(self.lane, ip)
