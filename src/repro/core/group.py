"""Multicast group management: McstIDs, membership, PSN-synced sources.

A multicast task sets up one :class:`MulticastGroup` with a unique
32-bit McstID drawn from the reserved range; every member establishes a
single RoCE RC connection whose remote is the *virtual* tuple
``<McstID, 0x1>`` (§III-A).  The group object also implements the
§III-E source-switching procedure: PSN synchronization between the old
and new source hosts (the in-network side is handled by the
accelerator's ingress-port detection).
"""

from __future__ import annotations

import heapq
from dataclasses import dataclass
from typing import Dict, List, Optional, Set

from repro import constants
from repro.errors import GroupError
from repro.transport.roce import RoceQP

__all__ = ["MemberRecord", "McstIdAllocator", "MulticastGroup"]


@dataclass(frozen=True)
class MemberRecord:
    """The per-member connection info carried in MRP packets (Fig. 5),
    extended with MR info for one-sided multicast WRITE (§III-B)."""

    ip: int
    qpn: int
    vaddr: int = 0
    rkey: int = 0


class McstIdAllocator:
    """Hands out McstIDs from the reserved multicast range.

    The range is finite (the top of the 32-bit IP space above
    ``MCSTID_BASE``): exhausting it raises :class:`GroupError` instead
    of silently handing out IDs that would collide with unicast
    addresses.  IDs of destroyed groups are recycled (lowest first, so
    allocation stays deterministic) — churn workloads create and tear
    down groups far faster than the range replenishes itself.
    """

    def __init__(self, base: int = constants.MCSTID_BASE,
                 capacity: Optional[int] = None) -> None:
        self.base = base
        self.capacity = ((1 << 32) - base) if capacity is None else capacity
        self._next = base
        self._free: List[int] = []      # heap of recycled IDs
        self._live: Set[int] = set()

    def allocate(self) -> int:
        if self._free:
            gid = heapq.heappop(self._free)
        elif self._next < self.base + self.capacity:
            gid = self._next
            self._next += 1
        else:
            raise GroupError(
                f"McstID range exhausted ({self.capacity} ids from "
                f"{self.base:#x}) and none released")
        self._live.add(gid)
        return gid

    def release(self, gid: int) -> None:
        """Return a destroyed group's ID to the pool."""
        if gid not in self._live:
            raise GroupError(f"McstID {gid:#x} is not allocated "
                             f"(double release?)")
        self._live.remove(gid)
        heapq.heappush(self._free, gid)

    @property
    def live_count(self) -> int:
        return len(self._live)


class MulticastGroup:
    """Membership + per-member QPs for one multicast task.

    ``members`` maps host IP to that member's single RoCE QP.  Any
    member can be the source (§III-E); ``leader_ip`` hosts the MRP
    controller and defaults to the first member.
    """

    def __init__(
        self,
        mcst_id: int,
        members: Dict[int, RoceQP],
        leader_ip: Optional[int] = None,
        mr_info: Optional[Dict[int, "tuple[int, int]"]] = None,
    ) -> None:
        if len(members) < 2:
            raise GroupError("a multicast group needs at least 2 members")
        self.mcst_id = mcst_id
        self.members = dict(members)
        self.leader_ip = leader_ip if leader_ip is not None else next(iter(members))
        if self.leader_ip not in self.members:
            raise GroupError(f"leader {self.leader_ip} is not a member")
        self.mr_info = dict(mr_info or {})
        self.current_source: int = self.leader_ip
        self.registered = False
        # Membership epoch: bumped on every add/remove; MRP deltas carry
        # it so switches can order/detect stale membership updates.
        self.epoch = 0

    # -- connection establishment (§III-A 'Hosts Establishing Connections') ----

    def connect_virtual(self) -> None:
        """Point every member QP at the virtual remote <McstID, 0x1>."""
        for qp in self.members.values():
            qp.connect(self.mcst_id, constants.VIRTUAL_DST_QP)

    def member_records(self) -> List[MemberRecord]:
        """All members' connection info, leader included (the MDT must
        reach every potential receiver for source switching to work)."""
        records = []
        for ip, qp in sorted(self.members.items()):
            vaddr, rkey = self.mr_info.get(ip, (0, 0))
            records.append(MemberRecord(ip=ip, qpn=qp.qpn, vaddr=vaddr, rkey=rkey))
        return records

    # -- dynamic membership (incremental MRP, §III-C) ---------------------------

    def add_member(self, ip: int, qp: RoceQP,
                   mr: Optional["tuple[int, int]"] = None) -> None:
        """Admit a new member and bump the membership epoch.

        The caller (normally :class:`~repro.core.membership.
        MembershipManager`) is responsible for driving the JOIN delta
        that patches the MDT; this only updates the host-side view.
        """
        if ip in self.members:
            raise GroupError(f"{ip} is already a member of "
                             f"group {self.mcst_id:#x}")
        self.members[ip] = qp
        if mr is not None:
            self.mr_info[ip] = mr
        qp.connect(self.mcst_id, constants.VIRTUAL_DST_QP)
        self.epoch += 1

    def remove_member(self, ip: int) -> RoceQP:
        """Retire a member (voluntary leave or failure prune).

        The leader (it hosts the MRP controller) and the current source
        (the MDT's root for in-flight traffic) cannot be removed, and
        the group never shrinks below 2 members — multicast to one
        receiver is a plain connection.
        """
        if ip not in self.members:
            raise GroupError(f"{ip} is not a member of group {self.mcst_id:#x}")
        if ip == self.leader_ip:
            raise GroupError(f"leader {ip} cannot leave group "
                             f"{self.mcst_id:#x} (it hosts the controller)")
        if ip == self.current_source:
            raise GroupError(f"current source {ip} cannot leave group "
                             f"{self.mcst_id:#x} (switch the source first)")
        if len(self.members) <= 2:
            raise GroupError(
                f"group {self.mcst_id:#x} cannot shrink below 2 members")
        qp = self.members.pop(ip)
        self.mr_info.pop(ip, None)
        self.epoch += 1
        return qp

    @property
    def size(self) -> int:
        return len(self.members)

    def receivers(self) -> List[int]:
        """Everyone but the current source."""
        return [ip for ip in self.members if ip != self.current_source]

    def qp_of(self, ip: int) -> RoceQP:
        try:
            return self.members[ip]
        except KeyError:
            raise GroupError(f"{ip} is not a member of group {self.mcst_id:#x}")

    # -- source switching (§III-E) -----------------------------------------------

    def switch_source(self, new_source_ip: int) -> None:
        """PSN synchronization between the old and the new source.

        Old source: ``rqPSN <- sqPSN`` (it will now verify incoming
        packets that continue its own outgoing numbering).  New source:
        ``sqPSN <- rqPSN`` (it continues the stream where it left off as
        a receiver).  The switches need no signalling — they detect the
        new ingress port from the data itself.
        """
        if new_source_ip not in self.members:
            raise GroupError(f"{new_source_ip} is not a member")
        if new_source_ip == self.current_source:
            return
        old_qp = self.members[self.current_source]
        new_qp = self.members[new_source_ip]
        old_qp.sync_as_old_source()
        new_qp.sync_as_new_source()
        self.current_source = new_source_ip
