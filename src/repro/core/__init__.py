"""Cepheus core: the paper's contribution.

MFT + MRP registration + in-network replication/bridging + RoCE-capable
feedback handling + source switching + safeguard fallback, all executed
by accelerators attached to the simulated switches of a
:class:`~repro.core.fabric.CepheusFabric`.
"""

from repro.core.accelerator import (AcceleratorConfig, CepheusAccelerator,
                                    DEPLOYMENTS)
from repro.core.fabric import CepheusFabric
from repro.core.fallback import SafeguardMonitor
from repro.core.feedback import FeedbackConfig, FeedbackEngine
from repro.core.group import McstIdAllocator, MemberRecord, MulticastGroup
from repro.core.membership import MembershipDelta, MembershipManager
from repro.core.mft import Mft, MftTable, PathEntry
from repro.core.mrp import (HostControlAgent, MrpController, MrpError,
                            MrpPayload, chunk_records)
from repro.core.source_routing import (BertAggregator, ScalingModel,
                                       SourceRoutingConfig,
                                       SourceRoutingManager, SrHeader,
                                       compute_tree, split_rules)
from repro.core.source_switch import SourceSwitchCoordinator, psn_consistent

__all__ = [
    "AcceleratorConfig", "CepheusAccelerator", "DEPLOYMENTS",
    "CepheusFabric",
    "SafeguardMonitor",
    "FeedbackConfig", "FeedbackEngine",
    "McstIdAllocator", "MemberRecord", "MulticastGroup",
    "MembershipDelta", "MembershipManager",
    "Mft", "MftTable", "PathEntry",
    "HostControlAgent", "MrpController", "MrpError", "MrpPayload",
    "chunk_records",
    "BertAggregator", "ScalingModel", "SourceRoutingConfig",
    "SourceRoutingManager", "SrHeader", "compute_tree", "split_rules",
    "SourceSwitchCoordinator", "psn_consistent",
]
