"""Multicast source switching helpers (§III-E).

The mechanism has two halves:

* **in-network** — nothing to configure: the accelerator notices that
  multicast data enters a switch from a different tree port, re-points
  AckOutPort and resets the trigger port
  (:meth:`repro.core.accelerator.CepheusAccelerator._track_source`);
* **end-host** — the PSN Synchronization procedure between the old and
  new source, implemented by
  :meth:`repro.core.group.MulticastGroup.switch_source`.

This module adds the coordination wrapper the applications use (HPL
rotates the panel-broadcast source every iteration) plus invariant
checks the property tests rely on.  The paper notes DCT could replace
the synchronization; we keep the explicit procedure because it needs no
RNIC feature beyond plain RC.
"""

from __future__ import annotations

from typing import Dict, List

from repro.core.group import MulticastGroup
from repro.errors import GroupError

__all__ = ["SourceSwitchCoordinator", "psn_consistent"]


def psn_consistent(group: MulticastGroup) -> bool:
    """True when the current source's sqPSN equals every receiver's rqPSN.

    This is the §III-E invariant: if it holds, the first packet of the
    next transmission is accepted by every receiver; if it does not,
    receivers drop the stream as out-of-order (the Fig. 6 failure).
    """
    src_qp = group.qp_of(group.current_source)
    return all(
        group.qp_of(ip).rq_psn == src_qp.sq_psn for ip in group.receivers()
    )


class SourceSwitchCoordinator:
    """Round-robin (or explicit) source rotation inside one MG.

    The whole point of §III-E is that rotation reuses the *single*
    registered MFT — the coordinator therefore refuses to operate on an
    unregistered group, and records the number of switches so tests can
    assert no re-registration happened.
    """

    def __init__(self, group: MulticastGroup) -> None:
        self.group = group
        self.switch_count = 0
        self.history: List[int] = [group.current_source]

    def rotate(self) -> int:
        """Advance to the next member in IP order; returns the new source."""
        members = sorted(self.group.members)
        idx = members.index(self.group.current_source)
        return self.switch_to(members[(idx + 1) % len(members)])

    def switch_to(self, new_source_ip: int) -> int:
        if not self.group.registered:
            raise GroupError("source switching requires a registered group")
        if new_source_ip != self.group.current_source:
            self.group.switch_source(new_source_ip)
            self.switch_count += 1
            self.history.append(new_source_ip)
        return new_source_ip
