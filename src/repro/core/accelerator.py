"""The Cepheus on-switch accelerator (§III, §IV).

In the paper this is an FPGA board hanging off a commodity switch; ACL
rules steer multicast traffic through it.  Here it is an object attached
to a simulated :class:`~repro.net.switch.Switch` whose
:meth:`classify` implements the ACL and whose :meth:`process` runs the
Fig. 7a sequence as an explicit
:class:`~repro.net.pipeline.Pipeline` of named stages
(admit → [lookaside detour →] MRP → MFT lookup → reduce → track source
→ replicate → bridge → feedback):

* **MRP packets** build the local MFT and fan sub-MRPs out downstream
  (reuse-a-tree-port first, then least-loaded port selection, §III-C);
* **multicast DATA** is replicated along the MDT with ingress pruning,
  filtered against per-path AckPSNs (retransmission filtering), and
  *connection-bridged* at host-facing entries — dstIP/dstQP (and RETH
  vaddr/rkey for WRITE) rewritten to the receiver's real values, srcIP
  rewritten to the McstID so the receiver's feedback indexes the MFT;
* **feedback** is aggregated/filtered by the
  :class:`~repro.core.feedback.FeedbackEngine` and the resulting single
  stream is emitted toward the current source (AckOutPort), with the
  final header rewrite at the source's leaf.

Source switching (§III-E) is detected here too: data arriving on a new
ingress port re-points AckOutPort and resets the trigger port.
"""

from __future__ import annotations

import os
from dataclasses import dataclass
from typing import Dict, List, Optional, Tuple

from repro import constants
from repro.core.feedback import FeedbackConfig, FeedbackEngine
from repro.core.mft import Mft, MftTable, PathEntry
from repro.core.mrp import MrpError, MrpPayload
from repro.core.source_routing import SourceRoutingConfig
from repro.errors import RegistrationError
from repro.net.packet import Packet, PacketType, is_multicast_ip
from repro.net.pipeline import DEFER, STOP, Pipeline, PipelineContext
from repro.net.switch import Switch

__all__ = ["AcceleratorConfig", "CepheusAccelerator", "DEPLOYMENTS"]

#: The valid deployment styles (§IV integration options + the
#: source-routed mode): chain configuration is the only difference.
DEPLOYMENTS = ("inline", "lookaside", "source_routed")


@dataclass
class AcceleratorConfig:
    """Feature switches (retransmission filtering is ablatable), the
    BRAM capacity model, and the deployment style.

    ``deployment`` models §IV's two integration options:

    * ``"inline"`` — the proposed ASIC integration: multicast processing
      sits in the switch pipeline; only the fixed per-packet
      ``ACCELERATOR_DELAY_S`` applies (the default used everywhere).
    * ``"lookaside"`` — the FPGA prototype: traffic detours
      switch -> FPGA -> switch over ``lookaside_ports`` dedicated 100G
      links, so multicast throughput is bounded by the board's
      transceiver capacity (the §VI scalability limit) and each packet
      pays two extra link traversals.
    * ``"source_routed"`` — the Elmo/Bert mode: the sender carries the
      tree in a bounded header extension, switches pop their sp-rule
      in an ``sp_forward`` stage and keep only *soft* per-group
      feedback state (plus a small residual table for rules that
      overflowed the header budget).  ``source_routing`` tunes the
      encoder; None means defaults.
    """

    retransmit_filter: bool = True
    max_groups: Optional[int] = None
    feedback: Optional[FeedbackConfig] = None
    deployment: str = "inline"
    lookaside_ports: int = 4
    lookaside_port_bw: float = constants.LINK_BANDWIDTH_BPS
    source_routing: Optional[SourceRoutingConfig] = None


class CepheusAccelerator:
    """One accelerator instance bolted onto one switch."""

    def __init__(self, switch: Switch, config: Optional[AcceleratorConfig] = None) -> None:
        self.switch = switch
        self.cfg = config or AcceleratorConfig()
        if self.cfg.deployment not in DEPLOYMENTS:
            raise RegistrationError(
                f"unknown deployment {self.cfg.deployment!r}; "
                f"valid: {', '.join(DEPLOYMENTS)}")
        self.table = MftTable(switch.n_ports, self.cfg.max_groups)
        # The switch's simulator bus is the single observation point for
        # this accelerator's stages and its feedback engine.  The
        # "replicate" channel fires after the replication/filter decision
        # for every multicast DATA packet (the InvariantMonitor's view of
        # ingress pruning and retransmission filtering); "bridge" after
        # each connection-bridging rewrite.
        self.bus = switch.sim.bus
        self.sim = switch.sim
        self._ctx_pool = switch.sim.pools.ctx
        self._pkt_pool = switch.sim.pools.pkt
        self.feedback = FeedbackEngine(self.cfg.feedback, bus=self.bus)
        # group-level load per port, for the least-loaded MDT port choice
        self.port_group_load: Dict[int, int] = {}
        # look-aside detour: the FPGA's aggregate transceiver capacity
        # gates when each packet can *enter* the board.
        self._lookaside_bps = (self.cfg.lookaside_ports
                               * self.cfg.lookaside_port_bw)
        self._lookaside_free_at = 0.0
        self.lookaside_detours = 0
        # source-routed residual rules: fallback key -> port bitmap,
        # installed by the SourceRoutingManager for groups whose tree
        # overflowed the per-packet rule budget.
        self.sr_rules: Dict[int, int] = {}
        self.sr_header_hits = 0
        self.sr_residual_hits = 0
        self.sr_prunes = 0
        # instrumentation
        self.data_in = 0
        self.replicas_out = 0
        self.retransmits_filtered = 0
        self.unregistered_drops = 0
        self.source_switches_seen = 0
        # MRP record economy: how many member records this switch
        # installed/removed across all registrations and deltas — the
        # measure that shows a JOIN patch touches strictly fewer records
        # than a full re-registration (§III-C incremental MRP).
        self.mrp_records_installed = 0
        self.mrp_records_removed = 0
        self.pipeline = self._build_pipeline()
        switch.accelerator = self

    def _build_pipeline(self) -> Pipeline:
        """The Fig. 7a stage chain.  The §IV deployment options differ
        only in chain configuration: the look-aside FPGA prototype adds
        a detour stage after admission; the proposed inline ASIC does
        not."""
        stages = [self.stage_admit]
        if self.cfg.deployment == "lookaside":
            stages.append(self.stage_lookaside_detour)
        stages += [self.stage_mrp]
        if self.cfg.deployment == "source_routed":
            stages.append(self.stage_sp_forward)
        stages += [
            self.stage_mft_lookup,
            self.stage_reduce,
            self.stage_track_source,
            self.stage_replicate,
            self.stage_bridge,
            self.stage_feedback,
        ]
        return Pipeline(stages,
                        name=f"{self.switch.name}.accel[{self.cfg.deployment}]",
                        bus=self.bus)

    # ------------------------------------------------------------------
    # ACL classification (what gets redirected to the FPGA)
    # ------------------------------------------------------------------

    def classify(self, pkt: Packet) -> bool:
        # Checked once per switch arrival; DATA first (the common case),
        # with is_multicast_ip/is_feedback inlined.
        t = pkt.ptype
        if t == PacketType.DATA:
            return pkt.dst_ip >= constants.MCSTID_BASE
        if t == PacketType.MRP:
            return True
        return pkt.dst_ip >= constants.MCSTID_BASE and (
            t == PacketType.ACK or t == PacketType.NACK
            or t == PacketType.CNP
        )

    # ------------------------------------------------------------------
    # main pipeline: stage dispatch
    # ------------------------------------------------------------------

    def process(self, pkt: Packet, in_port: int) -> None:
        """Run one classified packet through the stage chain."""
        pool = self._ctx_pool
        ctx = pool.acquire(pkt, in_port, self.switch, self)
        if self.pipeline.run(ctx) is not DEFER:
            pool.release(ctx)

    def _resume(self, ctx: PipelineContext) -> None:
        """Scheduled continuation of a deferred context; recycles the
        context once the chain reaches a terminal verdict."""
        if self.pipeline.resume(ctx) is not DEFER:
            self._ctx_pool.release(ctx)

    def stage_admit(self, ctx: PipelineContext):
        """Fixed per-packet processing latency of the board (§IV); both
        deployments pay it before any table state is read."""
        delay = self.switch.config.accelerator_delay
        if delay > 0:
            self.sim.post(delay, self._resume, ctx)
            return DEFER
        return None

    def stage_lookaside_detour(self, ctx: PipelineContext):
        """Switch -> FPGA -> switch detour of the look-aside prototype
        (§IV): admission gated by the board's aggregate transceiver
        capacity, plus one link serialization and two propagations."""
        self.lookaside_detours += 1
        self.sim.post(self._detour_delay(ctx.pkt), self._resume, ctx)
        return DEFER

    def _detour_delay(self, pkt: Packet) -> float:
        sim = self.switch.sim
        bits = pkt.wire_size * 8.0
        start = max(sim.now, self._lookaside_free_at)
        self._lookaside_free_at = start + bits / self._lookaside_bps
        ready = (self._lookaside_free_at
                 + bits / self.cfg.lookaside_port_bw
                 + 2 * constants.LINK_PROPAGATION_S)
        return ready - sim.now

    # ------------------------------------------------------------------
    # MRP: local MFT construction + downstream fan-out (§III-C)
    # ------------------------------------------------------------------

    def stage_mrp(self, ctx: PipelineContext):
        """Control-plane stage: MRP joins/leaves patch the local MFT and
        fan sub-MRPs downstream; data-plane packets pass through."""
        if ctx.pkt.ptype != PacketType.MRP:
            return None
        self._process_mrp(ctx.pkt, ctx.in_port)
        self._pkt_pool.release(ctx.pkt)  # consumed; sub-MRPs are fresh
        return STOP

    def _process_mrp(self, pkt: Packet, in_port: int) -> None:
        payload: MrpPayload = pkt.mrp
        if self.cfg.deployment == "source_routed":
            self._process_mrp_sr(payload, pkt, in_port)
            return
        if payload.op in ("leave", "prune"):
            self._process_mrp_remove(payload, pkt, in_port)
            return
        try:
            mft = self.table.get_or_create(payload.mcst_id)
        except RegistrationError as exc:
            self._notify_registration_error(payload, str(exc))
            return
        mft.epoch = max(mft.epoch, payload.epoch)
        if mft.ack_out_port is None:
            # Default upstream is where the registration came from (the
            # leader's side); data-plane traffic re-points it if the
            # source is elsewhere.
            mft.ack_out_port = in_port
        # The MDT is an undirected tree: the ingress side is a tree port
        # too (feedback leaves through it; data arrives on it).
        if not mft.has_port(in_port):
            mft.add_entry(PathEntry(port=in_port, is_host=False))

        downstream: Dict[int, List] = {}
        for node in payload.nodes:
            port = self._select_port(mft, node.ip,
                                     payload.lane, payload.nlanes)
            # Fresh entries start at the group's current aggregate: a
            # mid-flight joiner is not retroactively responsible for the
            # PSNs emitted before it existed (its stream position is
            # synced past them, §III-E style), so counting it in below
            # AggAckPSN would stall the aggregate forever.
            if self.switch.is_host_port(port):
                mft.add_entry(PathEntry(
                    port=port, is_host=True, dst_ip=node.ip, dst_qp=node.qpn,
                    vaddr=node.vaddr, rkey=node.rkey,
                    ack_psn=mft.agg_ack_psn,
                ))
            else:
                mft.add_entry(PathEntry(port=port, is_host=False,
                                        ack_psn=mft.agg_ack_psn))
            mft.port_members.setdefault(port, set()).add(node.ip)
            mft.member_port[node.ip] = port
            self.mrp_records_installed += 1
            downstream.setdefault(port, []).append(node)

        for port, nodes in downstream.items():
            if port == in_port:
                # The node sits behind the ingress (the leader itself at
                # its leaf); the upstream side already knows about it.
                continue
            sub = MrpPayload(
                mcst_id=payload.mcst_id, seq=payload.seq, total=payload.total,
                controller_ip=payload.controller_ip, nodes=nodes,
                op=payload.op, epoch=payload.epoch,
                lane=payload.lane, nlanes=payload.nlanes,
            )
            out = Packet(
                PacketType.MRP, pkt.src_ip, payload.mcst_id,
                payload=sub.wire_bytes(), mrp=sub,
                created_at=self.switch.sim.now,
            )
            self.switch.emit(out, port, in_port)

    def _select_port(self, mft: Mft, node_ip: int,
                     lane: int = 0, nlanes: int = 1) -> int:
        """Paper's two rules: reuse an existing MDT port to delay
        replication; otherwise pick the least group-loaded candidate.

        A lane of a multi-lane group (``nlanes > 1``) replaces the
        least-loaded rule with the deterministic per-lane ECMP choice
        (:meth:`Topology.lane_port`): distinct lanes of one group land
        on distinct uplinks wherever the FIB offers enough equal-cost
        next hops, which is what makes the k MDTs edge-disjoint.
        Single-lane groups keep the legacy rule bit-for-bit.
        """
        direct = self._direct_host_port(node_ip)
        if direct is not None:
            return direct
        candidates = self.switch.route_ports(node_ip)
        for p in candidates:
            if mft.has_port(p):
                return p
        if nlanes > 1:
            cands = sorted(candidates)
            best = cands[lane % len(cands)]
        else:
            best = min(candidates,
                       key=lambda p: (self.port_group_load.get(p, 0), p))
        self.port_group_load[best] = self.port_group_load.get(best, 0) + 1
        mft.loaded_ports.add(best)
        return best

    def _direct_host_port(self, ip: int) -> Optional[int]:
        ports = self.switch.fib.get(ip)
        if ports and len(ports) == 1 and self.switch.is_host_port(ports[0]):
            return ports[0]
        return None

    def _process_mrp_remove(self, payload: MrpPayload, pkt: Packet,
                            in_port: int) -> None:
        """Incremental LEAVE/PRUNE: patch out the affected entries only.

        For each named member, find the MDT port serving it; drain it
        from the port's member set and, once the set is empty, remove
        the Path Table entry and re-evaluate the pending aggregate (the
        departed path may have gated min-AckPSN/MePSN — in-flight
        transfers must unstick, §III-D).  A non-host serving port means
        the member sits deeper in the tree: forward a single-node
        sub-delta down that port.  At the member's leaf the switch
        confirms to the controller on the member's behalf, so the
        transaction completes even when the member host is dead.
        """
        mft = self.table.get(payload.mcst_id)
        if mft is None:
            return  # not on this group's MDT: nothing to patch
        mft.epoch = max(mft.epoch, payload.epoch)
        for node in payload.nodes:
            # O(1) reverse-index probe (kept in lockstep with
            # port_members); a full scan of every port's member set is
            # quadratic across a coalesced batch of departures.
            port = mft.member_port.get(node.ip)
            if port is None:
                continue  # already drained here (duplicate delta)
            at_leaf = self.switch.is_host_port(port)
            if not at_leaf:
                sub = MrpPayload(
                    mcst_id=payload.mcst_id, seq=payload.seq,
                    total=payload.total,
                    controller_ip=payload.controller_ip, nodes=[node],
                    op=payload.op, epoch=payload.epoch,
                    lane=payload.lane, nlanes=payload.nlanes,
                )
                out = Packet(
                    PacketType.MRP, pkt.src_ip, payload.mcst_id,
                    payload=sub.wire_bytes(), mrp=sub,
                    created_at=self.switch.sim.now,
                )
                self.switch.emit(out, port, in_port)
            members = mft.port_members.get(port)
            if members is not None:
                members.discard(node.ip)
                mft.member_port.pop(node.ip, None)
                if not members:
                    self._drop_path(mft, port)
            self.mrp_records_removed += 1
            if at_leaf:
                confirm = Packet(
                    PacketType.MRP_CONFIRM, node.ip, payload.controller_ip,
                    payload=16, meta=(payload.mcst_id, node.ip),
                    created_at=self.switch.sim.now,
                )
                self.switch.emit(confirm, self.switch.route_lookup(confirm),
                                 in_port)

    def _drop_path(self, mft: Mft, port: int) -> None:
        """Remove one MDT path and unstick any pending aggregate."""
        if port == mft.ack_out_port:
            # The feedback egress toward the current source is never a
            # removable downstream path (the source is always a member,
            # so a drained member set here means stale routing state —
            # keep the entry rather than sever the tree).
            return
        if mft.remove_entry(port) is None:
            return
        if port in mft.loaded_ports:
            n = self.port_group_load.get(port, 0)
            if n > 0:
                self.port_group_load[port] = n - 1
            mft.loaded_ports.discard(port)
        emits = self.feedback.reevaluate(mft)
        self._emit_feedback(mft, emits, -1)

    def _notify_registration_error(self, payload: MrpPayload, reason: str) -> None:
        err = MrpError(mcst_id=payload.mcst_id, reason=reason,
                       switch_name=self.switch.name)
        pkt = Packet(PacketType.CTRL, 0, payload.controller_ip,
                     payload=32, meta=err, created_at=self.switch.sim.now)
        self.switch.emit(pkt, self.switch.route_lookup(pkt), -1)

    # ------------------------------------------------------------------
    # source-routed mode: sp_forward + stateless MRP (Elmo/Bert)
    # ------------------------------------------------------------------

    def stage_sp_forward(self, ctx: PipelineContext):
        """Source-routed forwarding: pop this switch's sp-rule from the
        header (or the residual table, for rules that overflowed the
        budget) and sync the *soft* per-group feedback MFT to it.

        Replication itself stays in the replicate/bridge stages, driven
        by the synced MFT — so ingress pruning, retransmission
        filtering and min-AckPSN aggregation run off the same entries
        as the MFT deployments, with the switch holding no
        control-plane-installed forwarding state."""
        pkt = ctx.pkt
        hdr = pkt.sr
        if pkt.ptype != PacketType.DATA or hdr is None:
            return None
        bitmap = hdr.rules.get(self.switch.name)
        if bitmap is not None:
            self.sr_header_hits += 1
        else:
            bitmap = self.sr_rules.get(hdr.fallback_key)
            if bitmap is None:
                bus = self.bus
                if bus.drop:
                    bus.publish("drop", self.switch, pkt, ctx.in_port,
                                "sr-no-rule")
                self._pkt_pool.release(pkt)
                return STOP
            self.sr_residual_hits += 1
        try:
            mft = self.table.get_or_create(pkt.dst_ip)
        except RegistrationError:
            bus = self.bus
            if bus.drop:
                bus.publish("drop", self.switch, pkt, ctx.in_port,
                            "sr-table-full")
            self._pkt_pool.release(pkt)
            return STOP
        self._sr_sync(mft, bitmap, hdr.epoch, ctx.in_port)
        ctx.mft = mft
        return None

    def _sr_sync(self, mft: Mft, bitmap: int, epoch: int,
                 in_port: int) -> None:
        """Converge the soft MFT onto the header's rule.

        Epoch-gated: a header from a *newer* epoch prunes non-host
        entries that left the tree (host entries belong exclusively to
        the MRP delta flow — the leaf must keep them until the LEAVE
        confirm, or the controller transaction would never complete); a
        *stale* header adds nothing and prunes nothing, the packet just
        forwards along the current entries.  Missing bitmap ports
        materialize as soft entries at the group's current aggregate —
        the same rule a mid-flight JOIN uses, for the same reason: a
        fresh subtree must not be held responsible for PSNs it never
        saw."""
        if epoch > mft.epoch:
            stale = [
                e.port for e in mft.path_table
                if not e.is_host and e.port != in_port
                and e.port != mft.ack_out_port
                and not (bitmap >> e.port) & 1
            ]
            for port in stale:
                mft.remove_entry(port)
                self.sr_prunes += 1
            mft.epoch = epoch
            if stale:
                emits = self.feedback.reevaluate(mft)
                self._emit_feedback(mft, emits, -1)
        elif epoch < mft.epoch:
            return
        is_host_port = self.switch.is_host_port
        for port in range(mft.n_ports):
            if not (bitmap >> port) & 1 or mft.has_port(port):
                continue
            if is_host_port(port):
                # Host entries carry bridging info only MRP knows; the
                # data path cannot invent one (an unbridged replica
                # would be dropped by the NIC and the bare entry would
                # gate the aggregate forever).  The member's MRP JOIN
                # installs it; until then that subtree is dark and the
                # sender's retransmission covers the gap.
                continue
            mft.add_entry(PathEntry(port=port, is_host=False,
                                    ack_psn=mft.agg_ack_psn))

    def _process_mrp_sr(self, payload: MrpPayload, pkt: Packet,
                        in_port: int) -> None:
        """MRP in the source-routed mode: transit switches install
        *nothing* — the tree lives in the packet header.  Only a
        member's leaf holds state: the host-facing Path Table entry
        whose bridging info the sp_forward data path cannot invent.
        Everything else routes toward the member's address, so
        registration traverses zero per-group switch state."""
        if payload.op in ("leave", "prune"):
            self._process_mrp_sr_remove(payload, pkt, in_port)
            return
        downstream: Dict[int, List] = {}
        for node in payload.nodes:
            direct = self._direct_host_port(node.ip)
            if direct is not None:
                try:
                    mft = self.table.get_or_create(payload.mcst_id)
                except RegistrationError as exc:
                    self._notify_registration_error(payload, str(exc))
                    return
                mft.epoch = max(mft.epoch, payload.epoch)
                mft.add_entry(PathEntry(
                    port=direct, is_host=True, dst_ip=node.ip,
                    dst_qp=node.qpn, vaddr=node.vaddr, rkey=node.rkey,
                    ack_psn=mft.agg_ack_psn,
                ))
                mft.port_members.setdefault(direct, set()).add(node.ip)
                mft.member_port[node.ip] = direct
                self.mrp_records_installed += 1
                port = direct
            else:
                cands = [p for p in self.switch.route_ports(node.ip)
                         if p != in_port]
                if not cands:
                    continue  # behind the ingress; upstream handles it
                port = min(cands)
            downstream.setdefault(port, []).append(node)
        for port, nodes in downstream.items():
            if port == in_port:
                continue
            sub = MrpPayload(
                mcst_id=payload.mcst_id, seq=payload.seq, total=payload.total,
                controller_ip=payload.controller_ip, nodes=nodes,
                op=payload.op, epoch=payload.epoch,
                lane=payload.lane, nlanes=payload.nlanes,
            )
            out = Packet(
                PacketType.MRP, pkt.src_ip, payload.mcst_id,
                payload=sub.wire_bytes(), mrp=sub,
                created_at=self.switch.sim.now,
            )
            self.switch.emit(out, port, in_port)

    def _process_mrp_sr_remove(self, payload: MrpPayload, pkt: Packet,
                               in_port: int) -> None:
        """LEAVE/PRUNE with no transit state: route each delta record
        toward the member's leaf by address; the leaf patches its host
        entry out and confirms on the member's behalf (the member may
        be dead — that is what PRUNE is for).  Transit soft entries of
        the departed subtree retire when the next data packet carries
        the re-encoded header's higher epoch."""
        for node in payload.nodes:
            direct = self._direct_host_port(node.ip)
            if direct is None:
                cands = [p for p in self.switch.route_ports(node.ip)
                         if p != in_port]
                if not cands:
                    continue
                sub = MrpPayload(
                    mcst_id=payload.mcst_id, seq=payload.seq,
                    total=payload.total,
                    controller_ip=payload.controller_ip, nodes=[node],
                    op=payload.op, epoch=payload.epoch,
                    lane=payload.lane, nlanes=payload.nlanes,
                )
                out = Packet(
                    PacketType.MRP, pkt.src_ip, payload.mcst_id,
                    payload=sub.wire_bytes(), mrp=sub,
                    created_at=self.switch.sim.now,
                )
                self.switch.emit(out, min(cands), in_port)
                continue
            mft = self.table.get(payload.mcst_id)
            if mft is not None:
                mft.epoch = max(mft.epoch, payload.epoch)
                members = mft.port_members.get(direct)
                if members is not None:
                    members.discard(node.ip)
                    mft.member_port.pop(node.ip, None)
                    if not members:
                        self._drop_path(mft, direct)
                self.mrp_records_removed += 1
            if os.environ.get("CEPHEUS_SEEDED_BUG") == "sr-skip-leave-confirm":
                # Deliberate fault for the fuzzer's mutation self-test:
                # the leaf never confirms the LEAVE on the member's
                # behalf, so the controller's delta transaction exhausts
                # its retries.  Only the source-routed deployment is
                # affected, and only schedules with a leave on a healthy
                # fabric expose it.  Armed via the environment —
                # production runs never take this branch.
                continue
            confirm = Packet(
                PacketType.MRP_CONFIRM, node.ip, payload.controller_ip,
                payload=16, meta=(payload.mcst_id, node.ip),
                created_at=self.switch.sim.now,
            )
            self.switch.emit(confirm, self.switch.route_lookup(confirm),
                             in_port)

    # ------------------------------------------------------------------
    # DATA: MFT lookup, replication + connection bridging (§III-B)
    # ------------------------------------------------------------------

    def stage_mft_lookup(self, ctx: PipelineContext):
        """Fig. 7a MFT lookup: resolve the group table entry every
        later stage keys off; unregistered groups are dropped here.
        In the source-routed mode ``sp_forward`` may already have
        resolved (and header-synced) the soft MFT."""
        mft = ctx.mft
        if mft is None:
            mft = self.table.get(ctx.pkt.dst_ip)
        if mft is None:
            self.unregistered_drops += 1
            bus = self.bus
            if bus.drop:
                bus.publish("drop", self.switch, ctx.pkt, ctx.in_port,
                            "unregistered-group")
            self._pkt_pool.release(ctx.pkt)
            return STOP
        ctx.mft = mft
        if ctx.pkt.ptype == PacketType.DATA:
            self.data_in += 1
        return None

    def stage_reduce(self, ctx: PipelineContext):
        """Experimental many-to-one groups (§VIII) run the dual
        datapath: contributions combine upward, feedback fans out."""
        if ctx.mft.mode != "reduce":
            return None
        if ctx.pkt.ptype == PacketType.DATA:
            self._process_reduce_data(ctx.mft, ctx.pkt, ctx.in_port)
        else:
            self._replicate_feedback_down(ctx.mft, ctx.pkt, ctx.in_port)
        self._pkt_pool.release(ctx.pkt)  # reduce emits clones only
        return STOP

    def stage_track_source(self, ctx: PipelineContext):
        """Multicast source switching (§III-E): data entering from a new
        tree port re-points AckOutPort and resets the trigger port."""
        if ctx.pkt.ptype == PacketType.DATA:
            self._track_source(ctx.mft, ctx.pkt, ctx.in_port)
        return None

    def stage_replicate(self, ctx: PipelineContext):
        """Replication with ingress pruning and retransmission
        filtering (§III-B, §III-D): decide the target set, then
        materialize one replica per target — clones for every branch
        but the last, which reuses the ingress packet.  Cloning happens
        *before* the bridge stage rewrites any header, so a replica
        queued for a sibling subtree can never observe another leaf's
        rewrite."""
        pkt = ctx.pkt
        if pkt.ptype != PacketType.DATA:
            return None
        mft = ctx.mft
        in_port = ctx.in_port
        targets: List[PathEntry] = []
        for e in mft.iter_downstream(in_port):
            if self.cfg.retransmit_filter and pkt.psn <= e.ack_psn:
                # This subtree already acknowledged the PSN: suppress the
                # duplicate (saves bandwidth, §III-D).
                self.retransmits_filtered += 1
                continue
            targets.append(e)
        ctx.targets = targets
        bus = self.bus
        if bus.replicate:
            bus.publish("replicate", self, mft, pkt, in_port, targets)
        last = len(targets) - 1
        pool = self._pkt_pool
        ctx.replicas = [(e, pkt if i == last else pool.clone(pkt))
                        for i, e in enumerate(targets)]
        return None

    def stage_bridge(self, ctx: PipelineContext):
        """Connection bridging (Fig. 4) at host-facing entries, then
        egress: every replica leaves the switch here."""
        if ctx.pkt.ptype != PacketType.DATA:
            return None
        mft = ctx.mft
        in_port = ctx.in_port
        bus = self.bus
        for entry, replica in ctx.replicas:
            if entry.is_host:
                self._bridge(replica, entry, mft.mcst_id)
                if bus.bridge:
                    bus.publish("bridge", self, mft, replica, entry)
            self.switch.emit(replica, entry.port, in_port)
            self.replicas_out += 1
        if not ctx.replicas:
            # Every target was pruned/filtered: the ingress packet goes
            # nowhere and is dead here.
            self._pkt_pool.release(ctx.pkt)
        return STOP

    def _track_source(self, mft: Mft, pkt: Packet, in_port: int) -> None:
        if mft.ack_out_port != in_port:
            # Multicast source switching (§III-E): the data now enters
            # from a different tree port; feedback must flow there.
            mft.ack_out_port = in_port
            mft.tri_port = None
            self.source_switches_seen += 1
        if self.switch.is_host_port(in_port):
            # We are the source's leaf: remember its identity for the
            # final feedback header rewrite.
            mft.src_ip = pkt.src_ip
            mft.src_qp = pkt.src_qp

    @staticmethod
    def _bridge(pkt: Packet, entry: PathEntry, mcst_id: int) -> None:
        """Connection bridging (Fig. 4): make the replica look like a
        packet of the receiver's own one-to-one connection."""
        pkt.dst_ip = entry.dst_ip
        pkt.dst_qp = entry.dst_qp
        pkt.src_ip = mcst_id
        if entry.rkey:
            # Multicast WRITE: the sender posts region-relative offsets;
            # the leaf adds the receiver's MR base and swaps the rkey.
            pkt.vaddr = entry.vaddr + pkt.vaddr
            pkt.rkey = entry.rkey

    # ------------------------------------------------------------------
    # experimental many-to-one reduction (§VIII future work)
    # ------------------------------------------------------------------
    #
    # Reduce mode is the exact dual of the broadcast data plane: member
    # contributions *combine* on the way up the MDT (one slot per PSN,
    # released when every downstream tree port has contributed), and the
    # root's feedback (ACK/NACK/CNP) *replicates* down the tree with
    # connection bridging, so every member's unmodified RNIC sees its
    # own unicast-like feedback stream.  Collective semantics make this
    # sound: every member posts the same sizes in the same order, so the
    # same PSN refers to the same vector chunk everywhere; a root NACK
    # rewinds all members together, refilling the slots coherently.

    def _process_reduce_data(self, mft: Mft, pkt: Packet, in_port: int) -> None:
        expected = {
            e.port for e in mft.path_table if e.port != mft.ack_out_port
        }
        if in_port not in expected:
            return  # stray (e.g. the root itself sending in reduce mode)
        slot = mft.reduce_slots.setdefault(pkt.psn, set())
        slot.add(in_port)
        if slot < expected:
            return
        del mft.reduce_slots[pkt.psn]
        combined = pkt.clone()
        combined.src_ip = mft.mcst_id
        out_port = mft.ack_out_port
        if out_port is None:
            return
        entry = mft.entry(out_port)
        if entry is not None and entry.is_host:
            # The root's leaf: bridge the combined stream onto the
            # root's own connection (its info is in the MFT — every
            # member registers, the root included).
            combined.dst_ip = entry.dst_ip
            combined.dst_qp = entry.dst_qp
        else:
            combined.dst_ip = mft.mcst_id
        self.switch.emit(combined, out_port, in_port)
        self.replicas_out += 1

    def _replicate_feedback_down(self, mft: Mft, pkt: Packet,
                                 in_port: int) -> None:
        """Reduce mode: the root's ACK/NACK/CNP fans out to all members."""
        for e in mft.iter_downstream(in_port):
            rep = pkt.clone()
            if e.is_host:
                rep.dst_ip = e.dst_ip
                rep.dst_qp = e.dst_qp
                rep.src_ip = mft.mcst_id
            else:
                rep.dst_ip = mft.mcst_id
            self.switch.emit(rep, e.port, in_port)

    # ------------------------------------------------------------------
    # feedback: aggregate/filter, then forward toward the source (§III-D)
    # ------------------------------------------------------------------

    def stage_feedback(self, ctx: PipelineContext):
        """Terminal stage for ACK/NACK/CNP: the FeedbackEngine turns
        the many per-path streams into the single unicast-like stream
        the source RNIC expects, published on the same bus."""
        pkt = ctx.pkt
        mft = ctx.mft
        in_port = ctx.in_port
        t = pkt.ptype
        if t == PacketType.ACK:
            emits = self.feedback.on_ack(mft, in_port, pkt.psn)
        elif t == PacketType.NACK:
            emits = self.feedback.on_nack(mft, in_port, pkt.psn)
        else:
            emits = self.feedback.on_cnp(mft, in_port, self.switch.sim.now)
        self._emit_feedback(mft, emits, in_port)
        self._pkt_pool.release(pkt)  # aggregated feedback is fresh packets
        return STOP

    def _emit_feedback(self, mft: Mft, emits, in_port: int) -> None:
        """Send aggregated feedback toward the current source (also the
        egress path of membership-driven re-evaluations)."""
        out_port = mft.ack_out_port
        if out_port is None:
            return
        for ptype, psn in emits:
            fb = self._pkt_pool.acquire(
                ptype, mft.mcst_id, mft.mcst_id,
                psn=psn, created_at=self.switch.sim.now,
            )
            if self.switch.is_host_port(out_port):
                # Source leaf: the final rewrite so the sender RNIC's QP
                # demux accepts the stream as its own connection's.
                if mft.src_ip is None:
                    # No data observed yet; nothing to rewrite to.
                    self._pkt_pool.release(fb)
                    continue
                fb.dst_ip = mft.src_ip
                fb.dst_qp = mft.src_qp
            self.switch.emit(fb, out_port, in_port)

    # ------------------------------------------------------------------
    # introspection for tests/benches
    # ------------------------------------------------------------------

    def mft_of(self, mcst_id: int) -> Optional[Mft]:
        return self.table.get(mcst_id)

    def memory_bytes(self) -> int:
        return self.table.total_memory_bytes()
