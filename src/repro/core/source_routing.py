"""Source-routed multicast: the Elmo/Bert deployment mode.

Cepheus keeps one MFT per group on every MDT switch, which caps the
fabric at the switch BRAM budget (ROADMAP open item 2).  Elmo's answer
is to move the tree into the packet: the *sender* compiles the group's
multicast distribution tree into per-hop **sp-rules** — one port bitmap
per on-tree switch — carried in a bounded header extension, so transit
switches hold no per-group forwarding state at all.  When a large tree
overflows the per-packet rule budget, the overflowing rules spill into
a small **residual table** on the affected switches, and Bert's trick
bounds *that* state too: groups whose spilled rules are identical share
one residual entry under a common rule key.

This module is the whole sender/control side of that design:

* :func:`compute_tree` — walk the fabric's routing view and produce the
  per-switch port bitmaps of one group's MDT (undirected, so any member
  can source; the data plane excludes the ingress port);
* :func:`split_rules` — pack bitmaps into the budgeted header
  (host-facing rules first — spilling a leaf rule would put residual
  state exactly where the tree fans out) and spill the rest;
* :class:`BertAggregator` — exact-signature sharing of spilled rule
  sets.  Runtime aggregation is deliberately *exact*: union-merging
  near-identical trees would forward packets into subtrees with no
  receivers, and the soft feedback entries those packets create would
  never ACK — stalling the min-AckPSN aggregate forever.  Union merging
  is therefore confined to the analytic :class:`ScalingModel`, where no
  feedback runs;
* :class:`SourceRoutingManager` — per-fabric control plane: compiles
  headers at registration, re-encodes them on membership deltas (the
  epoch in the header is what lets switches discard stale soft state),
  installs/uninstalls residual rules, and hooks member NICs so every
  outgoing DATA packet — retransmissions included — carries the
  *current* epoch's header;
* :class:`ScalingModel` — the 10^3..10^6-group state/header/control
  accounting behind the ``srmc_scaling`` experiment.  No packets are
  simulated: each sampled group's tree is compiled exactly as the
  runtime encoder would, then charged to three bookkeeping backends
  (MFT-Cepheus, Elmo-style, Bert-aggregated).

The switch side (the ``sp_forward`` pipeline stage that pops a rule and
syncs the soft feedback MFT) lives in
:mod:`repro.core.accelerator`.
"""

from __future__ import annotations

import random
from dataclasses import dataclass
from typing import Dict, List, Optional, Set, Tuple

from repro import constants
from repro.errors import GroupError, RegistrationError, TopologyError

__all__ = [
    "SrHeader", "SourceRoutingConfig", "FabricView", "BertAggregator",
    "SourceRoutingManager", "ScalingModel", "compute_tree", "split_rules",
    "rule_bytes",
]


def _popcount(x: int) -> int:
    return bin(x).count("1")


def rule_bytes(n_ports: int) -> int:
    """Wire size of one sp-rule: 2-byte switch tag + the port bitmap."""
    return 2 + (n_ports + 7) // 8


class SrHeader:
    """One compiled header extension — immutable, shared by reference.

    Every DATA packet of a group epoch points at the same instance
    (clones and replicas copy the reference), so a re-encode swaps one
    object and in-flight packets keep the header they were sent with.

    ``rules`` maps switch name to port bitmap for the rules that fit
    the budget; ``fallback_key`` indexes the residual tables holding
    the spilled remainder (0 when nothing spilled).
    """

    __slots__ = ("mcst_id", "epoch", "rules", "fallback_key", "header_bytes")

    def __init__(self, mcst_id: int, epoch: int, rules: Dict[str, int],
                 fallback_key: int, header_bytes: int) -> None:
        self.mcst_id = mcst_id
        self.epoch = epoch
        self.rules = rules
        self.fallback_key = fallback_key
        self.header_bytes = header_bytes

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (f"<SrHeader group={self.mcst_id:#x} epoch={self.epoch} "
                f"rules={len(self.rules)} key={self.fallback_key} "
                f"bytes={self.header_bytes}>")


@dataclass
class SourceRoutingConfig:
    """Knobs of the source-routed deployment.

    ``aggregator`` selects the residual-state backend: ``"elmo"`` keys
    spilled rules per group (no sharing); ``"bert"`` shares one
    residual entry among groups whose spilled rule sets are identical.
    ``residual_rule_cap`` only constrains the analytic
    :class:`ScalingModel` (the runtime residual tables are dicts).
    """

    rule_budget_bytes: int = constants.SR_RULE_BUDGET_BYTES
    aggregator: str = "bert"
    residual_rule_cap: int = constants.SR_RESIDUAL_RULE_CAP

    def __post_init__(self) -> None:
        if self.aggregator not in ("elmo", "bert"):
            raise GroupError(
                f"unknown sp-rule aggregator {self.aggregator!r}; "
                f"valid: elmo, bert")
        if self.rule_budget_bytes < constants.SR_BASE_BYTES:
            raise GroupError(
                f"rule budget {self.rule_budget_bytes} B is below the "
                f"fixed header base ({constants.SR_BASE_BYTES} B)")


class FabricView:
    """Read-only routing view the encoder walks.

    Caches host attachments, switch-to-switch peer ports, host-port
    masks and per-switch rule costs so tree compilation stays cheap at
    scaling-model volumes (10^6 groups)."""

    def __init__(self, topo) -> None:
        self.topo = topo
        self.peers = topo.switch_link_map()
        self.switches = {sw.name: sw for sw in topo.switches}
        self.host_mask: Dict[str, int] = {}
        self.rule_cost: Dict[str, int] = {}
        for sw in topo.switches:
            mask = 0
            for p in sw.host_ports():
                mask |= 1 << p
            self.host_mask[sw.name] = mask
            self.rule_cost[sw.name] = rule_bytes(sw.n_ports)

    def leaf_of(self, ip: int):
        return self.topo.leaf_of(ip)

    def switch(self, name: str):
        return self.switches[name]


def compute_tree(view: FabricView, root_ip: int, member_ips,
                 stats: Optional[Dict[str, int]] = None,
                 lane: int = 0, nlanes: int = 1) -> Dict[str, int]:
    """Compile one group's MDT into per-switch port bitmaps.

    Members are attached in sorted order by walking the root's leaf
    toward each member along the FIB's equal-cost next hops, preferring
    a port already in the tree (so branches merge as early as possible)
    and the lowest port otherwise — deterministic, so the same
    membership always compiles to the same rules.  Both directions of
    every traversed link are set: the tree is undirected, any member
    can source, and the data plane prunes the ingress port itself.

    For lane ``lane`` of an ``nlanes``-lane group the lowest-port
    fallback becomes the shared per-lane ECMP rule
    (``Topology.lane_port``): the compiled header then describes the
    same edge-disjoint tree the MFT deployments build for that lane.
    ``nlanes=1`` keeps the legacy walk bit-for-bit.

    ``stats`` (optional) accumulates ``record_installs``: one per
    (member, on-path switch) — the control-plane cost an MRP-style
    registration of the same tree would pay.
    """
    root_leaf, _root_port = view.leaf_of(root_ip)
    bits: Dict[str, int] = {}
    limit = len(view.switches) + 1
    installs = 0
    for ip in sorted(member_ips):
        leaf, hport = view.leaf_of(ip)
        bits[leaf.name] = bits.get(leaf.name, 0) | (1 << hport)
        cur = root_leaf
        hops = 0
        while cur is not leaf:
            ports = cur.route_ports(ip)
            cur_bits = bits.get(cur.name, 0)
            port = next((p for p in ports if cur_bits & (1 << p)), None)
            if port is None:
                if nlanes > 1:
                    cands = sorted(ports)
                    port = cands[lane % len(cands)]
                else:
                    port = min(ports)
            bits[cur.name] = cur_bits | (1 << port)
            peer, rport = view.peers[cur.name][port]
            bits[peer.name] = bits.get(peer.name, 0) | (1 << rport)
            cur = peer
            hops += 1
            if hops > limit:
                raise TopologyError(
                    f"routing loop compiling tree toward host {ip}")
        installs += hops + 1
    if stats is not None:
        stats["record_installs"] = stats.get("record_installs", 0) + installs
    return bits


def split_rules(view: FabricView, bitmaps: Dict[str, int],
                budget: int) -> Tuple[Dict[str, int], Dict[str, int], int]:
    """Pack rules into the budgeted header; spill the rest.

    Host-facing rules go first: a spilled leaf rule would force
    residual state at the very switches the tree fans out of, and
    leaves outnumber transit switches in any real tree.  Ties break on
    switch name so packing is deterministic.  Returns
    ``(in_header, spilled, header_bytes)``.
    """
    def prio(item):
        name, bm = item
        return (0 if bm & view.host_mask[name] else 1, name)

    in_header: Dict[str, int] = {}
    spilled: Dict[str, int] = {}
    hbytes = constants.SR_BASE_BYTES
    for name, bm in sorted(bitmaps.items(), key=prio):
        cost = view.rule_cost[name]
        if hbytes + cost <= budget:
            in_header[name] = bm
            hbytes += cost
        else:
            spilled[name] = bm
    return in_header, spilled, hbytes


class BertAggregator:
    """Refcounted exact-signature sharing of spilled rule sets.

    Two groups whose spilled rules are byte-identical (same switches,
    same bitmaps) share one residual key; the key's rules are
    uninstalled only when the last sharer detaches.
    """

    def __init__(self) -> None:
        self._by_sig: Dict[tuple, int] = {}
        self._sig_of: Dict[int, tuple] = {}
        self._refs: Dict[int, int] = {}
        self._next_key = 1

    @staticmethod
    def signature(spilled: Dict[str, int]) -> tuple:
        return tuple(sorted(spilled.items()))

    def acquire(self, spilled: Dict[str, int]) -> int:
        sig = self.signature(spilled)
        key = self._by_sig.get(sig)
        if key is None:
            key = self._next_key
            self._next_key += 1
            self._by_sig[sig] = key
            self._sig_of[key] = sig
            self._refs[key] = 0
        self._refs[key] += 1
        return key

    def release(self, key: int) -> bool:
        """Drop one reference; True when the key died (uninstall time)."""
        n = self._refs.get(key)
        if n is None:
            return True
        if n > 1:
            self._refs[key] = n - 1
            return False
        del self._refs[key]
        sig = self._sig_of.pop(key)
        del self._by_sig[sig]
        return True

    @property
    def live_keys(self) -> int:
        return len(self._refs)


class _GroupState:
    __slots__ = ("header", "spilled", "key", "retired_keys", "hooked_ips")

    def __init__(self) -> None:
        self.header: Optional[SrHeader] = None
        self.spilled: Dict[str, int] = {}
        self.key = 0
        self.retired_keys: List[int] = []
        self.hooked_ips: Set[int] = set()


class SourceRoutingManager:
    """Sender-side compiler + residual-rule control plane.

    One per :class:`~repro.core.fabric.CepheusFabric` in the
    ``source_routed`` deployment.  :meth:`attach` compiles a group's
    header and hooks its member NICs; :meth:`refresh` re-encodes after
    a membership delta (the group's epoch is already bumped); and
    :meth:`detach` unhooks and releases residual state.
    """

    def __init__(self, fabric, cfg: Optional[SourceRoutingConfig] = None) -> None:
        self.fabric = fabric
        self.cfg = cfg or SourceRoutingConfig()
        self.view = FabricView(fabric.topo)
        self.bert = BertAggregator()
        self._states: Dict[int, _GroupState] = {}
        # control-plane economy counters (the srmc_scaling comparison
        # axis: how many per-switch rule writes each compile costs)
        self.residual_installs = 0
        self.header_recompiles = 0

    # -- group lifecycle ----------------------------------------------------

    def attach(self, group) -> SrHeader:
        """Compile and activate the group's header (idempotent)."""
        st = self._states.get(group.mcst_id)
        if st is not None:
            return st.header
        st = _GroupState()
        self._states[group.mcst_id] = st
        self._encode(group, st)
        for ip in group.members:
            self._hook(st, group.mcst_id, ip)
        return st.header

    def refresh(self, group) -> Optional[SrHeader]:
        """Re-encode after a membership delta (epoch already bumped).

        The previous epoch's residual key stays installed until
        :meth:`detach`: in-flight packets still carry the old header,
        and pulling their fallback rule from under them would drop them
        mid-tree.  The new header's higher epoch is what retires the
        old tree's soft state, switch by switch, as data flows.
        """
        st = self._states.get(group.mcst_id)
        if st is None:
            return None
        old_key = st.key
        self._encode(group, st)
        self.header_recompiles += 1
        if old_key and old_key != st.key:
            st.retired_keys.append(old_key)
        current = set(group.members)
        for ip in current - st.hooked_ips:
            self._hook(st, group.mcst_id, ip)
        for ip in st.hooked_ips - current:
            nic = self.fabric.topo.nics.get(ip)
            if nic is not None:
                nic.sr_encoders.pop(group.mcst_id, None)
            st.hooked_ips.discard(ip)
        return st.header

    def detach(self, group) -> None:
        """Unhook member NICs and release every residual key."""
        st = self._states.pop(group.mcst_id, None)
        if st is None:
            return
        for ip in st.hooked_ips:
            nic = self.fabric.topo.nics.get(ip)
            if nic is not None:
                nic.sr_encoders.pop(group.mcst_id, None)
        for key in [st.key] + st.retired_keys:
            if not key:
                continue
            if self.cfg.aggregator == "bert":
                if self.bert.release(key):
                    self._uninstall(key)
            else:
                self._uninstall(key)

    def header_of(self, mcst_id: int) -> Optional[SrHeader]:
        st = self._states.get(mcst_id)
        return st.header if st is not None else None

    # -- internals ----------------------------------------------------------

    def _encode(self, group, st: _GroupState) -> None:
        # A LaneView of a k-lane group compiles its own edge-disjoint
        # tree; a plain group is lane 0 of 1 and takes the legacy walk.
        bitmaps = compute_tree(self.view, group.leader_ip, group.members,
                               lane=getattr(group, "lane", 0),
                               nlanes=getattr(group, "nlanes", 1))
        in_header, spilled, hbytes = split_rules(
            self.view, bitmaps, self.cfg.rule_budget_bytes)
        key = 0
        if spilled:
            if self.cfg.aggregator == "bert":
                key = self.bert.acquire(spilled)
            else:
                key = group.mcst_id
            self._install(key, spilled)
        st.header = SrHeader(group.mcst_id, group.epoch, in_header, key, hbytes)
        st.spilled = spilled
        st.key = key

    def _hook(self, st: _GroupState, mcst_id: int, ip: int) -> None:
        nic = self.fabric.topo.nic(ip)
        # bound to the state object, not the header: a refresh swaps
        # st.header and every member stamps the new epoch from then on.
        nic.sr_encoders[mcst_id] = (lambda s=st: s.header)
        st.hooked_ips.add(ip)

    def _install(self, key: int, spilled: Dict[str, int]) -> None:
        for name, bm in spilled.items():
            accel = self.fabric.accelerators.get(name)
            if accel is None:
                raise RegistrationError(
                    f"source-routed group needs a residual rule on {name}, "
                    f"which has no accelerator")
            if accel.sr_rules.get(key) != bm:
                self.residual_installs += 1
            accel.sr_rules[key] = bm

    def _uninstall(self, key: int) -> None:
        for accel in self.fabric.accelerators.values():
            accel.sr_rules.pop(key, None)


# ---------------------------------------------------------------------------
# Analytic group-count scaling model (the srmc_scaling experiment)
# ---------------------------------------------------------------------------

class ScalingModel:
    """State/header/control accounting at 10^3..10^6 groups.

    Groups are sampled on a ``k``-ary fat-tree (default ``k=8``: 80
    switches, 128 hosts) with pod locality: each group picks a home pod
    and draws ``locality`` of its members from it.  90% of groups are
    small (2–8 members, the RPC/replication population), 10% large
    (12–40, the pub/sub population) — the mix that makes header
    overflow a minority-but-real event.

    Every sampled tree is compiled by the *runtime* encoder
    (:func:`compute_tree` / :func:`split_rules`), then charged to three
    backends:

    * **mft** — Cepheus baseline: one Path Table row per tree port on
      every on-tree switch (the :meth:`~repro.core.mft.Mft.memory_bytes`
      formula), one control record per (member, on-path switch);
    * **elmo** — in-header rules are free; spilled rules occupy the
      per-switch residual table (``residual_rule_cap`` entries).  A
      full table degrades the group to the switch's *default rule* — a
      single union bitmap whose extra ports are counted as redundancy;
    * **bert** — identical spill signatures share one entry
      (control-free reuse); when a table is full the new bitmap
      union-merges into the entry it expands least, keeping state
      capped at the cost of bounded redundancy.
    """

    SMALL = (2, 8)
    LARGE = (12, 40)
    LARGE_FRACTION = 0.1

    def __init__(self, cfg: Optional[SourceRoutingConfig] = None, *,
                 k: int = 8, locality: float = 0.7) -> None:
        # Local import: core must stay importable without pulling the
        # whole net layer in at module-import time.
        from repro.net.simulator import Simulator
        from repro.net.topology import fat_tree

        self.cfg = cfg or SourceRoutingConfig()
        self.locality = locality
        self.topo = fat_tree(Simulator(), k)
        self.view = FabricView(self.topo)
        hosts = self.topo.host_ips
        hosts_per_pod = max(1, len(hosts) // k)
        self.pods: List[List[int]] = [
            hosts[i:i + hosts_per_pod]
            for i in range(0, len(hosts), hosts_per_pod)
        ]
        self.all_hosts = hosts
        # residual entry: 4-byte rule key + the port bitmap
        self.entry_bytes = {
            name: 4 + (sw.n_ports + 7) // 8
            for name, sw in self.view.switches.items()
        }

    def sample_group(self, rng: random.Random) -> List[int]:
        if rng.random() < self.LARGE_FRACTION:
            size = rng.randint(*self.LARGE)
        else:
            size = rng.randint(*self.SMALL)
        size = min(size, len(self.all_hosts))
        pod = self.pods[rng.randrange(len(self.pods))]
        members: Set[int] = set()
        while len(members) < size:
            if rng.random() < self.locality and len(members) < len(pod):
                members.add(pod[rng.randrange(len(pod))])
            else:
                members.add(self.all_hosts[rng.randrange(len(self.all_hosts))])
        return sorted(members)

    def run(self, n_groups: int, seed: int = 0) -> Dict[str, float]:
        """Charge ``n_groups`` sampled groups to all three backends."""
        rng = random.Random(seed)
        cfg = self.cfg
        cap = cfg.residual_rule_cap
        view = self.view

        mft_state = 0
        mft_records = 0
        stats: Dict[str, int] = {}

        # elmo: per-switch entry count + default-rule union bitmap
        elmo_entries: Dict[str, int] = {}
        elmo_default: Dict[str, int] = {}
        elmo_records = 0
        elmo_defaulted_groups = 0
        elmo_redundant_ports = 0

        # bert: signature dedupe + per-switch merged tables
        bert_sigs: Set[tuple] = set()
        bert_tables: Dict[str, List[int]] = {}
        bert_records = 0
        bert_shared_groups = 0
        bert_merged_groups = 0
        bert_redundant_ports = 0

        header_bytes_total = 0
        overflow_groups = 0

        for _ in range(n_groups):
            members = self.sample_group(rng)
            bitmaps = compute_tree(view, members[0], members, stats)
            for name, bm in bitmaps.items():
                sw = view.switches[name]
                mft_state += sw.n_ports + 10 * _popcount(bm) + 20
            in_header, spilled, hbytes = split_rules(
                view, bitmaps, cfg.rule_budget_bytes)
            header_bytes_total += hbytes
            if not spilled:
                continue
            overflow_groups += 1

            # --- elmo: per-group residual entries, default on overflow
            defaulted = False
            for name, bm in spilled.items():
                elmo_records += 1
                used = elmo_entries.get(name, 0)
                if used < cap:
                    elmo_entries[name] = used + 1
                else:
                    old = elmo_default.get(name, 0)
                    elmo_redundant_ports += _popcount(old | bm) - _popcount(bm)
                    elmo_default[name] = old | bm
                    defaulted = True
            if defaulted:
                elmo_defaulted_groups += 1

            # --- bert: share identical signatures, union-merge at cap
            sig = tuple(sorted(spilled.items()))
            if sig in bert_sigs:
                bert_shared_groups += 1
                continue
            bert_sigs.add(sig)
            merged = False
            for name, bm in spilled.items():
                bert_records += 1
                table = bert_tables.setdefault(name, [])
                if len(table) < cap:
                    table.append(bm)
                else:
                    idx = min(
                        range(len(table)),
                        key=lambda i: _popcount(table[i] | bm),
                    )
                    union = table[idx] | bm
                    bert_redundant_ports += (
                        _popcount(union) - _popcount(bm))
                    table[idx] = union
                    merged = True
            if merged:
                bert_merged_groups += 1

        elmo_state = sum(
            n * self.entry_bytes[name] for name, n in elmo_entries.items()
        ) + sum(
            self.entry_bytes[name] - 4 for name in elmo_default
        )
        bert_state = sum(
            len(t) * self.entry_bytes[name] for name, t in bert_tables.items()
        )
        mft_records = stats.get("record_installs", 0)
        return {
            "groups": n_groups,
            "mft_state_bytes": mft_state,
            "elmo_state_bytes": elmo_state,
            "bert_state_bytes": bert_state,
            "mft_ctrl_records": mft_records,
            "elmo_ctrl_records": elmo_records,
            "bert_ctrl_records": bert_records,
            "hdr_bytes_pkt": header_bytes_total / max(1, n_groups),
            "overflow_pct": 100.0 * overflow_groups / max(1, n_groups),
            "elmo_default_pct": 100.0 * elmo_defaulted_groups / max(1, n_groups),
            "bert_shared_pct": 100.0 * bert_shared_groups / max(1, n_groups),
            "elmo_redundant_ports": elmo_redundant_ports,
            "bert_redundant_ports": bert_redundant_ports,
        }
