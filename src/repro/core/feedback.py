"""RoCE-capable feedback handling (§III-D), per path lane.

The engine turns the *many* feedback streams of a multicast group into
the *one* unicast-like stream a commodity RNIC sender expects, under
three guarantees:

1. an aggregated **ACK** with PSN *p* is only emitted when **all**
   downstream paths have acknowledged every packet with PSN <= *p*
   (hierarchical min over the MFT's per-path AckPSNs, gated by the
   trigger-port condition to avoid ACK explosion);
2. a **NACK** with ePSN *e* is only forwarded once all receivers have
   acknowledged everything below *e* (the MePSN rule), which prevents a
   later NACK from covering an earlier loss;
3. **CNPs** are filtered so only the most congested link's signal
   reaches the sender (single-rate multicast CC on unmodified DCQCN),
   with a periodic aging window to track shifting bottlenecks.

Every mechanism has an ablation switch so the benchmarks can show what
breaks without it (ACK explosion, NACK inter-covering, CNP
magnification).

**Lanes.** With MRC-style k-path spraying each lane of a group is its
own McstID addressing its own MFT, so min-AckPSN, MePSN and the CNP
filter must aggregate *per lane* — an ACK on lane 0 says nothing about
lane 1's tree.  :class:`FeedbackEngine` therefore delegates every rule
to a per-lane :class:`LaneFeedback` unit (keyed by the MFT's McstID,
i.e. by lane) behind the unchanged single-lane API: callers still say
``engine.on_ack(mft, port, psn)`` and a single-lane group exercises
exactly one unit with the pre-split arithmetic, bit for bit.

The engine is purely functional over the :class:`~repro.core.mft.Mft`
state: it returns "emit" instructions and never touches the wire, which
keeps it unit-testable without a simulator.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Tuple

from repro import constants
from repro.core.mft import Mft
from repro.net.packet import PacketType
from repro.net.pipeline import ObserverBus

__all__ = ["FeedbackConfig", "FeedbackEngine", "LaneFeedback", "Emit"]

#: An emission instruction: (packet type, PSN field value).
Emit = Tuple[PacketType, int]


@dataclass
class FeedbackConfig:
    """Feature switches + CNP filter tuning."""

    trigger_condition: bool = True   # §III-D Trigger Condition (anti ACK-explosion)
    nack_aggregation: bool = True    # MePSN rule (anti inter-covering)
    cnp_filter: bool = True          # most-congested-path CNP selection
    cnp_window: float = constants.CNP_AGING_WINDOW_S


class LaneFeedback:
    """The §III-D aggregation rules for one path lane's MFT.

    Holds the per-lane feedback counters and implements min-AckPSN
    aggregation, the MePSN NACK rule and the CNP most-congested filter
    against that lane's :class:`Mft` (whose per-path AckPSNs, MePSN and
    CNP window are already per-lane state, since a lane is a McstID).
    Shared config and the engine-wide counters live on the owning
    :class:`FeedbackEngine`.
    """

    __slots__ = ("engine", "mcst_id", "acks_in", "acks_out",
                 "nacks_in", "nacks_out", "cnps_in", "cnps_out")

    def __init__(self, engine: "FeedbackEngine", mcst_id: int) -> None:
        self.engine = engine
        self.mcst_id = mcst_id
        self.acks_in = 0
        self.acks_out = 0
        self.nacks_in = 0
        self.nacks_out = 0
        self.cnps_in = 0
        self.cnps_out = 0

    # -- ACK / NACK aggregation -----------------------------------------

    def record_and_trigger(self, mft: Mft, in_port: int,
                           cum_ack: int) -> List[Emit]:
        entry = mft.entry(in_port)
        if entry is None:
            return []  # feedback on a non-MDT port: stale/no-op
        if cum_ack > entry.ack_psn:
            entry.ack_psn = cum_ack
        if self.engine.cfg.trigger_condition:
            # Only progress on the port that owned the previous minimum
            # (or before the first aggregation) can change the aggregate.
            if mft.tri_port is not None and in_port != mft.tri_port:
                return []
        return self.evaluate(mft)

    def evaluate(self, mft: Mft) -> List[Emit]:
        m = mft.min_ack_psn()
        if m is None:
            return []
        # Re-point the trigger port at the *current* minimum owner on
        # every evaluation, not only when an aggregate is emitted.  The
        # paper updates triPort at generation time only, but with ACK
        # coalescing a tie can move the minimum to a port whose last ACK
        # already arrived — generation-time-only updates then deadlock.
        # Updating here preserves the invariant the trigger relies on
        # (only triPort's progress can raise the minimum) and still
        # suppresses non-minimum ACKs.
        mft.tri_port = mft.min_port
        out: List[Emit] = []
        if (
            mft.me_psn is not None
            and m == mft.me_psn - 1
            and m >= mft.agg_ack_psn
        ):
            # Every receiver has everything below MePSN: the NACK can no
            # longer cover an earlier loss — release it.
            out.append((PacketType.NACK, mft.me_psn))
            self.nacks_out += 1
            self.engine.nacks_out += 1
            mft.me_psn = None
            if m > mft.agg_ack_psn:
                mft.agg_ack_psn = m
        elif m > mft.agg_ack_psn:
            out.append((PacketType.ACK, m))
            self.acks_out += 1
            self.engine.acks_out += 1
            mft.agg_ack_psn = m
        elif not self.engine.cfg.trigger_condition and m >= 0:
            # Ablation baseline: without the Trigger Condition the switch
            # re-emits the (unchanged) cumulative aggregate for every
            # incoming ACK — harmless to RoCE semantics but it floods the
            # sender, which is exactly the 'ACK exploding issue' §III-D
            # cites.
            out.append((PacketType.ACK, m))
            self.acks_out += 1
            self.engine.acks_out += 1
        return out

    # -- CNP filtering ---------------------------------------------------

    def cnp_emits(self, mft: Mft, in_port: int, now: float) -> List[Emit]:
        if not self.engine.cfg.cnp_filter:
            self.cnps_out += 1
            self.engine.cnps_out += 1
            return [(PacketType.CNP, 0)]
        if now - mft.cnp_window_start > self.engine.cfg.cnp_window:
            # Periodic aging so the designated bottleneck can move with
            # the network dynamics (§III-D).
            mft.cnp_counters.clear()
            mft.cnp_max_port = None
            mft.cnp_window_start = now
        count = mft.cnp_counters.get(in_port, 0) + 1
        mft.cnp_counters[in_port] = count
        if (mft.cnp_max_port is None
                or count > mft.cnp_counters.get(mft.cnp_max_port, 0)):
            mft.cnp_max_port = in_port
        # Exactly one designated most-congested link passes; equally
        # congested links keep the incumbent (single-rate CC needs one
        # stream, not one per tied receiver).
        if in_port == mft.cnp_max_port:
            self.cnps_out += 1
            self.engine.cnps_out += 1
            return [(PacketType.CNP, 0)]
        return []


class FeedbackEngine:
    """Per-lane executor of the feedback rules against per-group MFTs."""

    def __init__(self, config: Optional[FeedbackConfig] = None,
                 bus: Optional[ObserverBus] = None) -> None:
        self.cfg = config or FeedbackConfig()
        # engine-wide counters for the ablation/scalability benches
        # (sums of the per-lane units' counters)
        self.acks_in = 0
        self.acks_out = 0
        self.nacks_in = 0
        self.nacks_out = 0
        self.cnps_in = 0
        self.cnps_out = 0
        # per-lane aggregation units, keyed by the lane's McstID
        self._lanes: Dict[int, LaneFeedback] = {}
        # The "feedback" channel fires as (engine, mft, kind, in_port,
        # value, emits) after every feedback event is processed; the
        # InvariantMonitor subscribes to verify the min-AckPSN, MePSN and
        # CNP-filter rules on every emission.  An accelerator passes its
        # simulator's bus; a standalone engine gets a private one.
        self.bus = bus if bus is not None else ObserverBus()

    def lane_of(self, mft: Mft) -> LaneFeedback:
        """The per-lane aggregation unit owning ``mft``'s feedback."""
        lane = self._lanes.get(mft.mcst_id)
        if lane is None:
            lane = LaneFeedback(self, mft.mcst_id)
            self._lanes[mft.mcst_id] = lane
        return lane

    # ------------------------------------------------------------------
    # ACK / NACK
    # ------------------------------------------------------------------

    def on_ack(self, mft: Mft, in_port: int, psn: int) -> List[Emit]:
        """An ACK (original or already-aggregated) arrived on ``in_port``."""
        self.acks_in += 1
        lane = self.lane_of(mft)
        lane.acks_in += 1
        emits = lane.record_and_trigger(mft, in_port, psn)
        if self.bus.feedback:
            self.bus.publish("feedback", self, mft, PacketType.ACK,
                             in_port, psn, emits)
        return emits

    def on_nack(self, mft: Mft, in_port: int, epsn: int) -> List[Emit]:
        """A NACK arrived.  Per RoCE semantics it also acknowledges every
        PSN below its ePSN, so it feeds the same per-path AckPSN state."""
        self.nacks_in += 1
        lane = self.lane_of(mft)
        lane.nacks_in += 1
        if not self.cfg.nack_aggregation:
            # Ablation: forward immediately — exhibits the inter-covering
            # issue the paper warns about.
            self.nacks_out += 1
            lane.nacks_out += 1
            emits = [(PacketType.NACK, epsn)]
        else:
            if mft.me_psn is None or epsn < mft.me_psn:
                mft.me_psn = epsn
            emits = lane.record_and_trigger(mft, in_port, epsn - 1)
        if self.bus.feedback:
            self.bus.publish("feedback", self, mft, PacketType.NACK,
                             in_port, epsn, emits)
        return emits

    def reevaluate(self, mft: Mft) -> List[Emit]:
        """Re-run the aggregation rules after the MFT itself changed.

        A LEAVE/PRUNE delta that removes a path can raise the min-AckPSN
        (or satisfy the MePSN release rule) without any feedback packet
        arriving — the departed path may have *been* the minimum.  This
        is the unstick hook the membership subsystem calls after every
        entry removal; it bypasses the trigger-port gate because no
        in-port is involved.
        """
        emits = self.lane_of(mft).evaluate(mft)
        if self.bus.feedback:
            # in_port -1 / value -1: a membership-driven re-evaluation,
            # not an arriving feedback packet.
            self.bus.publish("feedback", self, mft, PacketType.ACK,
                             -1, -1, emits)
        return emits

    # ------------------------------------------------------------------
    # CNP
    # ------------------------------------------------------------------

    def on_cnp(self, mft: Mft, in_port: int, now: float) -> List[Emit]:
        """Pass the CNP only when ``in_port`` is (one of) the most
        congested downstream links inside the current aging window."""
        self.cnps_in += 1
        lane = self.lane_of(mft)
        lane.cnps_in += 1
        emits = lane.cnp_emits(mft, in_port, now)
        if self.bus.feedback:
            self.bus.publish("feedback", self, mft, PacketType.CNP,
                             in_port, 0, emits)
        return emits
