"""Multicast Forwarding Table (MFT), §III-B.

One :class:`Mft` exists per multicast group per switch and has the two
components of Fig. 3:

* **Path Index** — an array of ``n_ports`` slots; slot *i* is zero when
  port *i* is not in the multicast distribution tree (MDT), otherwise
  it holds (index+1) into the Path Table.
* **Path Table** — one :class:`PathEntry` per outgoing MDT path.  A
  host-facing entry carries the receiver's real <dstIP, dstQP> (and MR
  info for one-sided WRITE) used for connection bridging; a
  switch-facing entry leaves them invalid.  *Every* entry carries an
  ``AckPSN`` — the largest cumulative PSN acknowledged by that whole
  subtree — which is what makes the ACK state *hierarchical* and the
  per-switch memory bound independent of group size.

Group-level feedback state (AggAckPSN, triPort, AckOutPort, MePSN, the
CNP congestion counters) also lives here, because the paper stores it
alongside the MFT in the accelerator's BRAM.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Iterator, List, Optional, Set

from repro import constants
from repro.errors import GroupError, RegistrationError

__all__ = ["PathEntry", "Mft", "MftTable"]

#: Sentinel for "no ACK seen yet" (PSNs start at 0).
NO_ACK = -1


@dataclass(slots=True)
class PathEntry:
    """One outgoing path of the MDT (Fig. 3, Path Table row).

    Slotted: switches materialize one per tree port per group, and the
    scaling experiments create them by the hundred thousand."""

    port: int
    is_host: bool
    dst_ip: int = 0          # receiver IP   (valid only when is_host)
    dst_qp: int = 0          # receiver QPN  (valid only when is_host)
    vaddr: int = 0           # receiver MR base VA (WRITE support)
    rkey: int = 0            # receiver MR rkey    (WRITE support)
    ack_psn: int = NO_ACK    # largest cumulative PSN acked by this path


class Mft:
    """Per-group forwarding + feedback state on one switch.

    Slotted: the group-scaling experiments materialize one per group
    per switch (10^6 of them in srmc_scaling) and the feedback engine
    reads its fields on every ACK."""

    __slots__ = (
        "mcst_id", "n_ports", "path_index", "path_table",
        "agg_ack_psn", "tri_port", "ack_out_port", "me_psn",
        "src_ip", "src_qp", "cnp_counters", "cnp_window_start",
        "cnp_max_port", "mode", "reduce_slots", "epoch",
        "port_members", "member_port", "loaded_ports", "_min_port",
    )

    def __init__(self, mcst_id: int, n_ports: int) -> None:
        self.mcst_id = mcst_id
        self.n_ports = n_ports
        self.path_index: List[int] = [0] * n_ports
        self.path_table: List[PathEntry] = []
        # --- group-level feedback state (§III-D) ---
        self.agg_ack_psn: int = NO_ACK   # largest aggregated ACK emitted
        self.tri_port: Optional[int] = None
        self.ack_out_port: Optional[int] = None  # toward the current source
        self.me_psn: Optional[int] = None        # min ePSN since last NACK out
        self.src_ip: Optional[int] = None        # observed sender (for final rewrite)
        self.src_qp: Optional[int] = None
        # --- CNP filter state (§III-D Congestion Control) ---
        self.cnp_counters: Dict[int, int] = {}
        self.cnp_window_start: float = 0.0
        self.cnp_max_port: Optional[int] = None  # designated hottest link
        # --- experimental many-to-one mode (§VIII future work) ---
        # "bcast": replicate down / aggregate feedback up (the paper).
        # "reduce": combine data up / replicate feedback down (the dual).
        self.mode: str = "bcast"
        # per-PSN contribution tracking for reduce mode:
        # psn -> set of tree ports that have contributed
        self.reduce_slots: Dict[int, set] = {}
        # --- dynamic membership state (incremental MRP, §III-C) ---
        # Monotonic membership epoch: every JOIN/LEAVE/PRUNE delta the
        # controller issues carries the group's epoch; the switch keeps
        # the maximum it has seen so out-of-order deltas are detectable.
        self.epoch: int = 0
        # Which member IPs each MDT port serves — the routing state a
        # LEAVE/PRUNE delta needs to find the affected entry without a
        # full tree recomputation.  An entry is only removed once its
        # member set drains.
        self.port_members: Dict[int, Set[int]] = {}
        # Reverse index of port_members: member IP -> serving MDT port.
        # LEAVE/PRUNE resolves the affected entry with one dict probe
        # instead of scanning every port's member set — the broker-fabric
        # scenario retires thousands of members per group per run, which
        # made the linear scan a measurable hot path.  Kept in lockstep
        # with port_members by the accelerator's MRP handlers.
        self.member_port: Dict[int, int] = {}
        # Ports whose group-load counter this MFT incremented at
        # registration time (so teardown/prune can decrement exactly).
        self.loaded_ports: Set[int] = set()
        # Port that owned the minimum in the last min_ack_psn() call.
        self._min_port: Optional[int] = None

    # -- path management -------------------------------------------------------

    def has_port(self, port: int) -> bool:
        return self.path_index[port] != 0

    def entry(self, port: int) -> Optional[PathEntry]:
        idx = self.path_index[port]
        return self.path_table[idx - 1] if idx else None

    def add_entry(self, entry: PathEntry) -> PathEntry:
        """Install an entry; idempotent per port (first write wins for the
        switch kind, host info may upgrade a bare entry)."""
        existing = self.entry(entry.port)
        if existing is not None:
            if entry.is_host and not existing.is_host:
                existing.is_host = True
                existing.dst_ip = entry.dst_ip
                existing.dst_qp = entry.dst_qp
                existing.vaddr = entry.vaddr
                existing.rkey = entry.rkey
            return existing
        if len(self.path_table) >= self.n_ports:
            raise GroupError(
                f"MFT for group {self.mcst_id:#x} exceeded {self.n_ports} paths")
        self.path_table.append(entry)
        self.path_index[entry.port] = len(self.path_table)
        return entry

    def remove_entry(self, port: int) -> Optional[PathEntry]:
        """Remove the MDT path on ``port`` (incremental LEAVE/PRUNE).

        Deletes the Path Table row, renumbers the Path Index slots that
        pointed past it, and scrubs every piece of feedback state that
        referenced the port so a stale trigger/CNP designation cannot
        gate future aggregation.  Returns the removed entry, or None if
        the port was not in the tree.
        """
        idx = self.path_index[port]
        if not idx:
            return None
        removed = self.path_table.pop(idx - 1)
        self.path_index[port] = 0
        for p, i in enumerate(self.path_index):
            if i > idx:
                self.path_index[p] = i - 1
        if self.tri_port == port:
            self.tri_port = None
        if self._min_port == port:
            self._min_port = None
        if self.cnp_max_port == port:
            self.cnp_max_port = None
        self.cnp_counters.pop(port, None)
        for slot in self.reduce_slots.values():
            slot.discard(port)
        for ip in self.port_members.pop(port, ()):
            self.member_port.pop(ip, None)
        return removed

    def entries(self) -> List[PathEntry]:
        return self.path_table

    def iter_downstream(self, exclude_port: int) -> Iterator[PathEntry]:
        """All MDT paths except ``exclude_port`` (ingress pruning)."""
        for e in self.path_table:
            if e.port != exclude_port:
                yield e

    # -- ACK aggregation support --------------------------------------------------

    def min_ack_psn(self) -> Optional[int]:
        """Minimum AckPSN over every *downstream* path (the aggregate).

        The path toward the current source (``ack_out_port``) is the
        feedback egress, not a receiver subtree, so it is excluded.
        Returns None when the MDT has no downstream path yet.
        """
        best: Optional[int] = None
        best_port: Optional[int] = None
        for e in self.path_table:
            if e.port == self.ack_out_port:
                continue
            if best is None or e.ack_psn < best:
                best = e.ack_psn
                best_port = e.port
        self._min_port = best_port
        return best

    @property
    def min_port(self) -> Optional[int]:
        """Port that owned the minimum in the last :meth:`min_ack_psn` call."""
        return self._min_port

    # -- memory model (Fig. 7b / §III-D 'Bounded Memory Overhead') -----------------

    def memory_bytes(self) -> int:
        """Model of the BRAM footprint of this MFT.

        Path Index: 1 B per port.  Path Table row: dstIP(4) + dstQP(3) +
        AckPSN(3) = 10 B.  Group state: ~20 B.  A full 64-port table is
        724 B, matching the paper's '1K MGs cost at most 0.69 MB'.
        """
        return self.n_ports + 10 * len(self.path_table) + 20


class MftTable:
    """All MFTs on one accelerator, keyed by McstID, with a capacity cap.

    The capacity cap models the finite BRAM of the FPGA board; hitting
    it is one of the two anomalies that trip the safeguard fallback
    (§V-D: 'the MFT registration process may encounter insufficient
    switch memory').
    """

    __slots__ = ("n_ports", "max_groups", "_tables")

    def __init__(self, n_ports: int, max_groups: Optional[int] = None) -> None:
        self.n_ports = n_ports
        self.max_groups = max_groups
        self._tables: Dict[int, Mft] = {}

    def get(self, mcst_id: int) -> Optional[Mft]:
        return self._tables.get(mcst_id)

    def get_or_create(self, mcst_id: int) -> Mft:
        mft = self._tables.get(mcst_id)
        if mft is None:
            if self.max_groups is not None and len(self._tables) >= self.max_groups:
                raise RegistrationError(
                    f"switch MFT memory exhausted ({self.max_groups} groups)")
            mft = Mft(mcst_id, self.n_ports)
            self._tables[mcst_id] = mft
        return mft

    def remove(self, mcst_id: int) -> None:
        self._tables.pop(mcst_id, None)

    def items(self) -> "List[tuple[int, Mft]]":
        """(McstID, Mft) pairs in deterministic McstID order — the
        iteration surface the InvariantMonitor's consistency sweeps use."""
        return sorted(self._tables.items())

    def __len__(self) -> int:
        return len(self._tables)

    def __contains__(self, mcst_id: int) -> bool:
        return mcst_id in self._tables

    def total_memory_bytes(self) -> int:
        return sum(m.memory_bytes() for m in self._tables.values())
