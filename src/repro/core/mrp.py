"""MFT Registration Protocol (MRP), §III-C.

MRP is the paper's UDP-based control protocol that installs the MFT on
every switch of the multicast distribution tree, hop by hop:

1. the **controller** on the leader host gathers every member's
   <IP, QPN> (plus MR info for WRITE) out-of-band;
2. it encapsulates them into MRP packets — at most
   :data:`~repro.constants.MRP_NODES_PER_PACKET` member records each,
   because MRP is constrained to the 1500-byte Ethernet MTU (Fig. 5) —
   addressed to the McstID, and sends them to its leaf switch;
3. each switch builds its local MFT (reuse-then-least-loaded port
   selection) and forwards per-port sub-MRPs downstream
   (that logic lives in :mod:`repro.core.accelerator`);
4. each receiver that finds its own IP in an MRP packet confirms its
   membership to the controller; registration completes when all
   confirmations arrive, or fails on timeout / an explicit switch error
   (MFT memory exhausted), which is a safeguard-fallback trigger.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, Dict, List, Optional, Set

from repro import constants
from repro.core.group import MemberRecord, MulticastGroup
from repro.errors import RegistrationError
from repro.net.nic import Nic
from repro.net.packet import Packet, PacketType
from repro.net.simulator import Event, Simulator

__all__ = ["MrpPayload", "MrpError", "MrpController", "HostControlAgent",
           "chunk_records", "MRP_OPS"]

#: Fixed MRP header bytes (metadata: McstID, seq, total, controller IP).
_MRP_METADATA_BYTES = 16
#: Bytes per member record on the wire (IP 4 + QPN 3 + padding 1).
_MRP_NODE_BYTES = 8


#: MRP operations.  ``register`` installs the full tree (§III-C);
#: ``join`` is an incremental single-member install that patches only
#: the affected switches; ``leave``/``prune`` remove a member's entries
#: hop by hop (``prune`` marks a controller-initiated eviction of a
#: dead receiver — identical on-switch, distinct for provenance).
MRP_OPS = ("register", "join", "leave", "prune")


@dataclass
class MrpPayload:
    """In-simulation representation of the Fig. 5 packet layout.

    ``op`` and ``epoch`` ride in the 16-byte metadata header (2 spare
    bytes in the Fig. 5 layout), so delta packets cost no extra wire
    bytes over a plain registration chunk.  ``lane``/``nlanes``
    likewise ride in reserved header bits: a k-lane group registers k
    MDTs, one per lane McstID, and the accelerator resolves ECMP
    next hops per lane (``Topology.lane_port``) so the lanes land on
    edge-disjoint uplinks.  ``lane=0, nlanes=1`` is a classic
    single-tree registration.
    """

    mcst_id: int
    seq: int
    total: int
    controller_ip: int
    nodes: List[MemberRecord]
    op: str = "register"
    epoch: int = 0
    lane: int = 0
    nlanes: int = 1

    def wire_bytes(self) -> int:
        return _MRP_METADATA_BYTES + _MRP_NODE_BYTES * len(self.nodes)


@dataclass
class MrpError:
    """Carried by a CTRL packet when a switch rejects a registration."""

    mcst_id: int
    reason: str
    switch_name: str


def chunk_records(records: List[MemberRecord],
                  per_packet: int = constants.MRP_NODES_PER_PACKET
                  ) -> List[List[MemberRecord]]:
    """Split the member list across MRP packets (MTU limit, §III-C)."""
    if per_packet <= 0:
        raise RegistrationError(f"invalid MRP chunk size {per_packet}")
    return [records[i:i + per_packet] for i in range(0, len(records), per_packet)]


class HostControlAgent:
    """Per-host control-plane agent.

    Owns the NIC's control handler and multiplexes it: it answers MRP
    membership affirmations automatically and lets local controllers
    subscribe to confirmations/errors.
    """

    def __init__(self, nic: Nic) -> None:
        self.nic = nic
        self.nic.control_handler = self._dispatch
        self._controllers: Dict[int, "MrpController"] = {}
        self.mrp_seen: Set[int] = set()  # group ids this host affirmed

    def attach_controller(self, ctl, mcst_id: Optional[int] = None) -> None:
        """Route confirmations/errors for a McstID to ``ctl``.

        ``mcst_id`` overrides the key — a k-lane group attaches one
        endpoint per lane id so per-lane MRP_CONFIRMs find their way
        back.  Defaults to the controller's own id (its lane McstID
        when it is a lane controller, the group id otherwise)."""
        if mcst_id is None:
            mcst_id = getattr(ctl, "mcst_id", None)
        if mcst_id is None:
            mcst_id = ctl.group.mcst_id
        self._controllers[mcst_id] = ctl

    def detach_controller(self, mcst_id: int) -> None:
        self._controllers.pop(mcst_id, None)

    def _dispatch(self, pkt: Packet) -> None:
        if pkt.ptype == PacketType.MRP:
            self._handle_mrp(pkt)
        elif pkt.ptype == PacketType.MRP_CONFIRM:
            ctl = self._controllers.get(pkt.meta[0]) if pkt.meta else None
            if ctl is not None:
                ctl.on_confirm(pkt.meta[1])
        elif pkt.ptype == PacketType.CTRL and isinstance(pkt.meta, MrpError):
            ctl = self._controllers.get(pkt.meta.mcst_id)
            if ctl is not None:
                ctl.on_switch_error(pkt.meta)

    def _handle_mrp(self, pkt: Packet) -> None:
        payload: MrpPayload = pkt.mrp
        my_ip = self.nic.ip
        if my_ip == payload.controller_ip:
            return  # the controller needs no affirmation from itself
        if any(rec.ip == my_ip for rec in payload.nodes):
            self.mrp_seen.add(payload.mcst_id)
            confirm = Packet(
                PacketType.MRP_CONFIRM, my_ip, payload.controller_ip,
                payload=16, meta=(payload.mcst_id, my_ip),
                created_at=self.nic.sim.now,
            )
            self.nic.send(confirm)


class MrpController:
    """The registration controller running on the leader host (§III-A)."""

    def __init__(
        self,
        sim: Simulator,
        group: MulticastGroup,
        leader_nic: Nic,
        *,
        on_success: Optional[Callable[[], None]] = None,
        on_failure: Optional[Callable[[str], None]] = None,
        timeout: float = 10e-3,
        gather_delay: float = 5e-6,
        allow_partial: bool = False,
        retries: int = 0,
        lane: int = 0,
    ) -> None:
        """``allow_partial`` implements the probing half of the paper's
        envisioned fine-grained fallback (§V-D future work): a timeout
        with at least one confirmation *succeeds*, recording the silent
        members in :attr:`unconfirmed` so the caller can re-form the
        group around the survivors.

        ``retries`` re-sends the MRP packets up to that many times on a
        confirmation timeout before declaring failure (MRP is UDP-based,
        §III-C — a lost control packet should not doom the group).

        ``lane`` selects which path lane of a k-lane group this
        controller registers: the MRP chunks address the lane's own
        McstID and carry lane-``lane`` QPNs, so the switches compile
        that lane's MDT.  The fabric runs one controller per lane."""
        self.sim = sim
        self.group = group
        self.lane = lane
        self.mcst_id = group.lane_ids[lane]
        self.nic = leader_nic
        self.on_success = on_success
        self.on_failure = on_failure
        self.timeout = timeout
        self.gather_delay = gather_delay
        self.allow_partial = allow_partial
        self.retries_left = retries
        self.resends = 0
        self._pending: Set[int] = set()
        self._timeout_ev: Optional[Event] = None
        self.finished = False
        self.failed_reason: Optional[str] = None
        self.unconfirmed: Set[int] = set()

    # -- protocol steps ----------------------------------------------------

    def start(self) -> None:
        """Step 1: gather member states out-of-band, then emit MRP."""
        self.sim.schedule(self.gather_delay, self._send_mrp_packets)

    def _emit_packets(self) -> None:
        """(Re-)send the registration chunks; pending state untouched."""
        records = self.group.member_records(self.lane)
        chunks = chunk_records(records)
        total = len(chunks)
        for seq, nodes in enumerate(chunks):
            payload = MrpPayload(
                mcst_id=self.mcst_id, seq=seq, total=total,
                controller_ip=self.nic.ip, nodes=nodes,
                lane=self.lane, nlanes=self.group.paths,
            )
            pkt = Packet(
                PacketType.MRP, self.nic.ip, self.mcst_id,
                payload=payload.wire_bytes(), mrp=payload,
                created_at=self.sim.now,
            )
            self.nic.send(pkt)

    def _send_mrp_packets(self) -> None:
        self._emit_packets()
        self._pending = {
            ip for ip in self.group.members if ip != self.group.leader_ip
        }
        self._timeout_ev = self.sim.schedule(self.timeout, self._on_timeout)
        if not self._pending:  # degenerate 1-member group
            self._finish_ok()

    # -- callbacks from the host agent ------------------------------------------

    def on_confirm(self, member_ip: int) -> None:
        if self.finished:
            return
        self._pending.discard(member_ip)
        if not self._pending:
            self._finish_ok()

    def on_switch_error(self, err: MrpError) -> None:
        if self.finished:
            return
        self._finish_fail(f"{err.switch_name}: {err.reason}")

    def _on_timeout(self) -> None:
        if self.finished:
            return
        if self.retries_left > 0 and self._pending:
            # Re-send the (idempotent) MRP chunks: switches that already
            # installed their MFT slices simply re-affirm, members that
            # missed the first round get another chance to confirm.
            self.retries_left -= 1
            self.resends += 1
            self._emit_packets()
            self._timeout_ev = self.sim.schedule(self.timeout, self._on_timeout)
            return
        missing = sorted(self._pending)
        expected = len(self.group.members) - 1
        if self.allow_partial and len(missing) < expected:
            self.unconfirmed = set(missing)
            self._finish_ok()
            return
        self._finish_fail(f"timeout waiting for confirmations from {missing}")

    # -- completion ------------------------------------------------------------------

    def _finish_ok(self) -> None:
        self.finished = True
        if self.lane == 0:
            # Lanes 1..k-1 only confirm their own MDT; the group counts
            # as registered when the fabric's per-lane aggregation says
            # every lane finished (lane 0 last in the k=1 case trivially).
            self.group.registered = True
        if self._timeout_ev is not None:
            self._timeout_ev.cancel()
        if self.on_success is not None:
            self.on_success()

    def _finish_fail(self, reason: str) -> None:
        self.finished = True
        self.failed_reason = reason
        if self._timeout_ev is not None:
            self._timeout_ev.cancel()
        if self.on_failure is not None:
            self.on_failure(reason)
