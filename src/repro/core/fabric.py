"""CepheusFabric: wiring the accelerator + control plane onto a topology.

One :class:`CepheusFabric` per experiment: it bolts a
:class:`~repro.core.accelerator.CepheusAccelerator` onto every switch,
installs a :class:`~repro.core.mrp.HostControlAgent` on every host NIC,
allocates McstIDs, and drives MFT registration for groups.

This is the deployment story of §IV condensed: in the paper each rack's
switch gets an FPGA sidecar; here every simulated switch gets its
accelerator object (an ``accelerated`` predicate allows partial
deployments for tests).
"""

from __future__ import annotations

from typing import Callable, Dict, Iterable, Optional

from repro.core.accelerator import AcceleratorConfig, CepheusAccelerator
from repro.core.group import McstIdAllocator, MemberRecord, MulticastGroup
from repro.core.membership import MembershipManager
from repro.core.mrp import HostControlAgent, MrpController
from repro.core.source_routing import SourceRoutingManager
from repro.errors import GroupError, RegistrationError
from repro.net.switch import Switch
from repro.net.topology import Topology
from repro.transport.roce import RoceQP

__all__ = ["CepheusFabric"]


class CepheusFabric:
    """Accelerated fabric + control plane for one topology."""

    def __init__(
        self,
        topo: Topology,
        accel_config: Optional[AcceleratorConfig] = None,
        accelerated: Optional[Callable[[Switch], bool]] = None,
    ) -> None:
        self.topo = topo
        self.sim = topo.sim
        self.accel_config = accel_config or AcceleratorConfig()
        self.accelerators: Dict[str, CepheusAccelerator] = {}
        for sw in topo.switches:
            if accelerated is None or accelerated(sw):
                self.accelerators[sw.name] = CepheusAccelerator(sw, self.accel_config)
        self.agents: Dict[int, HostControlAgent] = {
            ip: HostControlAgent(topo.nic(ip)) for ip in topo.host_ips
        }
        self.alloc = McstIdAllocator()
        self.groups: Dict[int, MulticastGroup] = {}
        self._memberships: Dict[int, MembershipManager] = {}
        # Source-routed deployment: the sender-side tree compiler +
        # residual-rule control plane (None in the MFT deployments).
        self.source_routing: Optional[SourceRoutingManager] = None
        if self.accel_config.deployment == "source_routed":
            self.source_routing = SourceRoutingManager(
                self, self.accel_config.source_routing)

    # -- group lifecycle ------------------------------------------------------

    def create_group(
        self,
        members: Dict[int, RoceQP],
        leader_ip: Optional[int] = None,
        mr_info: Optional[Dict[int, "tuple[int, int]"]] = None,
        lane_members: Optional[list] = None,
    ) -> MulticastGroup:
        """Allocate a McstID and virtual-connect every member QP.

        ``lane_members`` (a list of k per-lane ``{ip: qp}`` dicts whose
        first entry is ``members``) turns the group into a k-lane MRC
        group: a k-id McstID family is allocated atomically and lane
        l's QPs virtual-connect to lane l's id.  Omitted, the group is
        a classic single-lane group.
        """
        if lane_members is None:
            group = MulticastGroup(self.alloc.allocate(), members,
                                   leader_ip, mr_info)
        else:
            lane_ids = self.alloc.allocate_family(len(lane_members))
            try:
                group = MulticastGroup(
                    lane_ids[0], members, leader_ip, mr_info,
                    lane_ids=lane_ids, lane_members=lane_members)
            except GroupError:
                for gid in lane_ids:
                    self.alloc.release(gid)
                raise
        group.connect_virtual()
        for lane_id in group.lane_ids:
            self.groups[lane_id] = group
        return group

    def register(
        self,
        group: MulticastGroup,
        *,
        on_success: Optional[Callable[[], None]] = None,
        on_failure: Optional[Callable[[str], None]] = None,
        timeout: float = 10e-3,
        allow_partial: bool = False,
    ) -> MrpController:
        """Start asynchronous MRP registration for ``group``.

        A k-lane group compiles all k MDTs as one transaction: one MRP
        controller per lane starts together, success fires only when
        every lane confirmed, and the first lane failure fails the
        whole family (callers tear the group down, so no half-compiled
        lane set survives).  Returns the lane-0 controller either way.
        """
        if self.source_routing is not None:
            # Compile + activate the header before any MRP travels: the
            # first DATA packet must already carry its tree.
            if group.paths == 1:
                self.source_routing.attach(group)
            else:
                for lane in range(group.paths):
                    self.source_routing.attach(group.lane_view(lane))
        leader_nic = self.topo.nic(group.leader_ip)
        if group.paths == 1:
            ctl = MrpController(
                self.sim, group, leader_nic,
                on_success=on_success, on_failure=on_failure, timeout=timeout,
                allow_partial=allow_partial,
            )
            self.agents[group.leader_ip].attach_controller(ctl)
            ctl.start()
            return ctl
        state = {"pending": group.paths, "failed": False}

        def lane_ok() -> None:
            state["pending"] -= 1
            if state["pending"] == 0 and not state["failed"]:
                group.registered = True
                if on_success is not None:
                    on_success()

        def lane_fail(reason: str) -> None:
            if state["failed"]:
                return
            state["failed"] = True
            if on_failure is not None:
                on_failure(reason)

        controllers = []
        for lane in range(group.paths):
            ctl = MrpController(
                self.sim, group, leader_nic,
                on_success=lane_ok, on_failure=lane_fail, timeout=timeout,
                allow_partial=allow_partial, lane=lane,
            )
            self.agents[group.leader_ip].attach_controller(ctl)
            controllers.append(ctl)
        for ctl in controllers:
            ctl.start()
        return controllers[0]

    def register_sync(self, group: MulticastGroup, timeout: float = 10e-3) -> None:
        """Run the simulator until registration completes; raises on failure.

        Convenience for tests/examples that set up a group before the
        measured phase starts.
        """
        result: Dict[str, Optional[str]] = {"failed": None, "done": "no"}

        def ok() -> None:
            result["done"] = "yes"

        def fail(reason: str) -> None:
            result["done"] = "yes"
            result["failed"] = reason

        self.register(group, on_success=ok, on_failure=fail, timeout=timeout)
        # Registration involves a bounded number of control-plane events;
        # run until it resolves (the timeout event guarantees progress).
        while result["done"] == "no":
            if self.sim.peek_next_time() is None:
                raise RegistrationError("registration stalled: no pending events")
            self.sim.run(until=self.sim.peek_next_time())
        if result["failed"] is not None:
            raise RegistrationError(result["failed"])

    def register_partial_sync(self, group: MulticastGroup,
                              timeout: float = 2e-3) -> "set[int]":
        """Probe registration: returns the set of members that never
        confirmed (the survivors define the re-formed group)."""
        state: Dict[str, Optional[str]] = {"done": "no", "failed": None}

        def ok() -> None:
            state["done"] = "yes"

        def fail(reason: str) -> None:
            state["done"] = "yes"
            state["failed"] = reason

        ctl = self.register(group, on_success=ok, on_failure=fail,
                            timeout=timeout, allow_partial=True)
        while state["done"] == "no":
            if self.sim.peek_next_time() is None:
                raise RegistrationError("registration stalled: no events")
            self.sim.run(until=self.sim.peek_next_time())
        if state["failed"] is not None:
            raise RegistrationError(state["failed"])
        return set(ctl.unconfirmed)

    def membership(self, group: MulticastGroup,
                   coalesce_window: Optional[float] = None
                   ) -> MembershipManager:
        """The (cached) runtime membership controller for ``group``.

        ``coalesce_window`` only applies when the manager is first
        created (it is a per-group policy, not per-call)."""
        mgr = self._memberships.get(group.mcst_id)
        if mgr is None or mgr.group is not group:
            mgr = MembershipManager(self, group,
                                    coalesce_window=coalesce_window)
            self._memberships[group.mcst_id] = mgr
        return mgr

    def unregister(self, group: MulticastGroup) -> None:
        """Remove the group's MFT from every accelerator (control-plane
        teardown; frees switch memory for abandoned probe groups) and
        recycle its McstID.

        Every lane of the family retires atomically: per-lane MFTs,
        per-lane residual source-routing rules (each lane compiled its
        own header, so each lane's spilled rules must be released — not
        just lane 0's), the membership manager's per-lane endpoints,
        and finally the whole McstID family.
        """
        for lane_id in group.lane_ids:
            for accel in self.accelerators.values():
                mft = accel.table.get(lane_id)
                if mft is None:
                    continue
                for port in mft.loaded_ports:
                    n = accel.port_group_load.get(port, 0)
                    if n > 0:
                        accel.port_group_load[port] = n - 1
                accel.table.remove(lane_id)
        if self.source_routing is not None:
            if group.paths == 1:
                self.source_routing.detach(group)
            else:
                for lane in range(group.paths):
                    self.source_routing.detach(group.lane_view(lane))
        mgr = self._memberships.pop(group.mcst_id, None)
        if mgr is not None:
            mgr.stop_failure_detector()
            if mgr._flush_ev is not None:       # unflushed coalescing batch
                mgr._flush_ev.cancel()
                mgr._flush_ev = None
            for lane_id in group.lane_ids:
                self.agents[group.leader_ip].detach_controller(lane_id)
        if self.groups.pop(group.mcst_id, None) is not None:
            for lane_id in group.lane_ids[1:]:
                self.groups.pop(lane_id, None)
            for lane_id in group.lane_ids:
                self.alloc.release(lane_id)

    def set_group_mode(self, mcst_id: int, mode: str) -> None:
        """Flip a registered group between broadcast and the experimental
        many-to-one reduce mode (§VIII) on every MDT switch.

        Control-plane operation, performed out-of-band like MFT
        registration itself.
        """
        if mode not in ("bcast", "reduce"):
            raise GroupError(f"unknown group mode {mode!r}")
        touched = 0
        for accel in self.accelerators.values():
            mft = accel.mft_of(mcst_id)
            if mft is not None:
                mft.mode = mode
                mft.reduce_slots.clear()
                touched += 1
        if touched == 0:
            raise GroupError(f"group {mcst_id:#x} is not registered anywhere")

    # -- introspection -----------------------------------------------------------

    def accelerator_of(self, switch_name: str) -> CepheusAccelerator:
        return self.accelerators[switch_name]

    def mdt_switches(self, mcst_id: int) -> Iterable[CepheusAccelerator]:
        """Accelerators holding an MFT for the group (the MDT footprint)."""
        return [a for a in self.accelerators.values() if a.mft_of(mcst_id)]

    def total_mft_memory(self) -> int:
        return sum(a.memory_bytes() for a in self.accelerators.values())
