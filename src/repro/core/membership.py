"""Dynamic group membership: incremental MRP join/leave/prune (§III-C).

The paper's MRP is a hop-by-hop *registration protocol* over an
evolving multicast distribution tree — a long-lived group (pub/sub
topics, storage replica sets) gains and loses receivers at runtime.
This module adds that lifecycle on top of the static registration path:

* a :class:`MembershipManager` per group computes the minimal MDT delta
  for a JOIN/LEAVE/PRUNE request and drives one incremental MRP
  transaction (:class:`MembershipDelta`) per affected member.  A delta
  packet carries a single member record plus the group's membership
  *epoch*; switches patch only the affected MFT entries instead of
  reinstalling the tree (`mrp_records_installed` on the accelerators
  shows the economy);
* on LEAVE/PRUNE each switch on the member's branch drains the member
  from its port-member set, removes the Path Table entry once the port
  serves nobody, and **re-evaluates the pending aggregate** — removing
  the minimum AckPSN path must release any min-AckPSN/MePSN state that
  was gating in-flight transfers (§III-D).  The member's *leaf* switch
  confirms the transaction to the controller on the member's behalf, so
  pruning completes even when the member host is dead;
* a leaf-driven **failure detector** (missed-feedback timeout) watches
  each receiver's per-path AckPSN at its leaf while the source has
  outstanding data; a receiver whose feedback stagnates for
  ``misses`` consecutive probe intervals is auto-pruned.  A delta that
  cannot be installed (switch error / confirmation timeout after
  retries) trips the group's :class:`~repro.core.fallback.
  SafeguardMonitor`, the §V-D escape hatch.

JOIN stream position: a joiner is not owed the PSNs emitted before it
existed.  Its ``rqPSN`` is synchronized to the source's ``sqPSN`` (the
same primitive as §III-E source switching) and its fresh MFT entries
start at the group's current AggAckPSN, so an in-flight transfer
neither stalls on the newcomer nor delivers it a partial message.
"""

from __future__ import annotations

from typing import Callable, Dict, List, Optional, Set, Tuple

from repro.core.group import MemberRecord, MulticastGroup
from repro.core.mrp import MrpError, MrpPayload
from repro.errors import GroupError, RegistrationError
from repro.net.packet import Packet, PacketType
from repro.net.simulator import Event

__all__ = ["MembershipDelta", "MembershipManager"]


class MembershipDelta:
    """One incremental MRP transaction for one or more members.

    Started by the :class:`MembershipManager`, which also routes each
    confirmation (from the joining host, or from the departing member's
    leaf switch) back to :meth:`on_confirm`.  In the default path every
    delta carries exactly one member record; with coalescing enabled the
    manager batches the ops of one window into a single multi-record
    delta (the MRP payload's ``nodes`` list — the same wire format full
    registration uses) that completes once *every* member has confirmed.
    """

    def __init__(
        self,
        manager: "MembershipManager",
        op: str,
        record: MemberRecord,
        epoch: int,
        *,
        timeout: float = 2e-3,
        retries: int = 1,
        on_done: Optional[Callable[["MembershipDelta"], None]] = None,
    ) -> None:
        if op not in ("join", "leave", "prune"):
            raise GroupError(f"unknown membership op {op!r}")
        self.manager = manager
        self.op = op
        self.records: List[MemberRecord] = [record]
        self.epoch = epoch
        self.timeout = timeout
        self.retries_left = retries
        self.resends = 0
        self.on_done = on_done
        self.finished = False
        self.failed_reason: Optional[str] = None
        # One coalesced transaction patches EVERY lane of the family:
        # the delta emits one MRP packet per lane and completes only
        # when every (lane, member) pair confirmed — a join/leave is
        # never visible on some lanes but not others.
        self.nlanes = manager.group.paths
        self._confirmed: Set[Tuple[int, int]] = set()   # (lane, ip)
        self._done_cbs: List[Callable[["MembershipDelta"], None]] = []
        self._timeout_ev: Optional[Event] = None

    @property
    def record(self) -> MemberRecord:
        """First (for the single-record default path: only) member."""
        return self.records[0]

    @property
    def ip(self) -> int:
        return self.records[0].ip

    def ips(self) -> List[int]:
        return [r.ip for r in self.records]

    def add_record(self, record: MemberRecord, epoch: int) -> None:
        """Coalescing: fold another member's op into this pending delta
        (only legal before :meth:`start`)."""
        self.records.append(record)
        self.epoch = epoch   # batch carries the latest applied epoch

    def start(self) -> None:
        self._emit()
        self._timeout_ev = self.manager.sim.schedule(
            self.timeout, self._on_timeout)

    def _emit(self) -> None:
        nic = self.manager.nic
        group = self.manager.group
        for lane in range(self.nlanes):
            payload = MrpPayload(
                mcst_id=group.lane_ids[lane], seq=0, total=1,
                controller_ip=nic.ip, nodes=self._lane_records(lane),
                op=self.op, epoch=self.epoch,
                lane=lane, nlanes=self.nlanes,
            )
            pkt = Packet(
                PacketType.MRP, nic.ip, group.lane_ids[lane],
                payload=payload.wire_bytes(), mrp=payload,
                created_at=self.manager.sim.now,
            )
            self.manager.mrp_deltas_sent += 1
            nic.send(pkt)

    def _lane_records(self, lane: int) -> List[MemberRecord]:
        """The batch's records carrying lane-``lane`` QPNs.

        Joins resolve the member's lane QP from the group (the member
        was admitted host-side before the delta started); removals keep
        the lane-0 QPN — switches drain departures by IP and never read
        it.
        """
        if lane == 0:
            return list(self.records)
        lane_qps = self.manager.group.lane_members[lane]
        out: List[MemberRecord] = []
        for rec in self.records:
            qp = lane_qps.get(rec.ip)
            out.append(MemberRecord(
                ip=rec.ip, qpn=qp.qpn if qp is not None else rec.qpn,
                vaddr=rec.vaddr, rkey=rec.rkey))
        return out

    # -- transaction outcome ----------------------------------------------------

    def on_confirm(self, member_ip: int) -> None:
        self.on_lane_confirm(0, member_ip)

    def on_lane_confirm(self, lane: int, member_ip: int) -> None:
        if self.finished or (lane, member_ip) in self._confirmed:
            return
        if not any(r.ip == member_ip for r in self.records):
            return
        self._confirmed.add((lane, member_ip))
        if len(self._confirmed) == len(self.records) * self.nlanes:
            self._finish(None)

    def unconfirmed(self) -> List[int]:
        return [r.ip for r in self.records
                if any((lane, r.ip) not in self._confirmed
                       for lane in range(self.nlanes))]

    def on_switch_error(self, err: MrpError) -> None:
        if self.finished:
            return
        self._finish(f"{err.switch_name}: {err.reason}")

    def _on_timeout(self) -> None:
        if self.finished:
            return
        if self.retries_left > 0:
            # MRP is UDP-based (§III-C): re-send the idempotent delta.
            self.retries_left -= 1
            self.resends += 1
            self._emit()
            self._timeout_ev = self.manager.sim.schedule(
                self.timeout, self._on_timeout)
            return
        missing = self.unconfirmed()
        who = missing[0] if len(missing) == 1 else sorted(missing)
        self._finish(f"timeout waiting for {self.op} confirmation "
                     f"from {who}")

    def _finish(self, reason: Optional[str]) -> None:
        self.finished = True
        self.failed_reason = reason
        if self._timeout_ev is not None:
            self._timeout_ev.cancel()
            self._timeout_ev = None
        self.manager._delta_finished(self)
        if self.on_done is not None:
            self.on_done(self)
        for cb in self._done_cbs:
            cb(self)


class _LaneEndpoint:
    """Control endpoint for one extra lane of a k-lane group.

    The :class:`~repro.core.mrp.HostControlAgent` routes MRP_CONFIRM /
    switch errors by McstID; lanes 1..k-1 each attach one of these under
    their lane id so per-lane confirmations reach the manager tagged
    with the lane they came from.
    """

    __slots__ = ("manager", "lane", "group")

    def __init__(self, manager: "MembershipManager", lane: int) -> None:
        self.manager = manager
        self.lane = lane
        self.group = manager.group   # HostControlAgent keys off this

    @property
    def mcst_id(self) -> int:
        return self.manager.group.lane_ids[self.lane]

    def on_confirm(self, member_ip: int) -> None:
        self.manager.on_lane_confirm(self.lane, member_ip)

    def on_switch_error(self, err: MrpError) -> None:
        self.manager.on_switch_error(err)


class MembershipManager:
    """Runtime membership controller for one registered group.

    Lives on the leader host next to the MRP controller and reuses its
    :class:`~repro.core.mrp.HostControlAgent` dispatch: the manager
    registers itself as the group's control endpoint and routes each
    confirmation to the in-flight delta for that member.
    """

    def __init__(self, fabric, group: MulticastGroup, *,
                 delta_timeout: float = 2e-3, delta_retries: int = 1,
                 coalesce_window: Optional[float] = None) -> None:
        self.fabric = fabric
        self.group = group
        self.sim = fabric.sim
        self.nic = fabric.topo.nic(group.leader_ip)
        self.agent = fabric.agents[group.leader_ip]
        self.delta_timeout = delta_timeout
        self.delta_retries = delta_retries
        #: Batch join/leave/prune records arriving within this many
        #: virtual seconds into one multi-record MRP delta.  ``None``
        #: (the default) keeps the original one-delta-per-op behavior —
        #: and the exact packet sequence — bit for bit.
        self.coalesce_window = coalesce_window
        self.safeguard = None                 # optional SafeguardMonitor
        self.on_delta_failure: Optional[Callable[[MembershipDelta], None]] = None
        self.pruned: Set[int] = set()
        self.delta_failures: List[Tuple[str, int, str]] = []  # (op, ip, why)
        #: (epoch, op, ip) log of applied membership changes.
        self.epoch_log: List[Tuple[int, str, int]] = []
        #: Control-plane cost counters: MRP delta packets this controller
        #: emitted (retries included) / confirmations received / ops
        #: requested — the broker-fabric scenario's overhead metrics and
        #: the coalescing-reduction report read these.
        self.mrp_deltas_sent = 0
        self.mrp_confirms_rx = 0
        self.membership_ops = 0
        self._inflight: Dict[int, MembershipDelta] = {}
        self._pending: Dict[str, MembershipDelta] = {}   # op -> unstarted delta
        self._pending_ips: Set[int] = set()
        self._flush_ev: Optional[Event] = None
        # failure detector state: ip -> (last AckPSN seen at leaf, strikes)
        self._fd_marks: Dict[int, "Tuple[Optional[int], int]"] = {}
        self._fd_ev: Optional[Event] = None
        self.agent.attach_controller(self)
        # A k-lane group confirms per lane McstID: attach one endpoint
        # per extra lane so lane confirmations route back to the same
        # delta transaction (lane 0 is the manager itself, above).
        for lane in range(1, group.paths):
            self.agent.attach_controller(
                _LaneEndpoint(self, lane), mcst_id=group.lane_ids[lane])

    # -- control-plane dispatch (HostControlAgent protocol) --------------------

    def on_confirm(self, member_ip: int) -> None:
        self.on_lane_confirm(0, member_ip)

    def on_lane_confirm(self, lane: int, member_ip: int) -> None:
        self.mrp_confirms_rx += 1
        delta = self._inflight.get(member_ip)
        if delta is not None:
            delta.on_lane_confirm(lane, member_ip)

    def on_switch_error(self, err: MrpError) -> None:
        # A switch error names the group, not the member: fail every
        # in-flight delta (they share the MDT that just rejected state).
        seen = set()
        for delta in list(self._inflight.values()):
            if id(delta) not in seen:
                seen.add(id(delta))
                delta.on_switch_error(err)

    def _delta_finished(self, delta: MembershipDelta) -> None:
        for ip in delta.ips():
            if self._inflight.get(ip) is delta:
                self._inflight.pop(ip, None)
        if delta.failed_reason is not None:
            failed = delta.unconfirmed() or delta.ips()
            for ip in failed:
                self.delta_failures.append(
                    (delta.op, ip, delta.failed_reason))
            if self.safeguard is not None:
                who = failed[0] if len(failed) == 1 else sorted(failed)
                self.safeguard.trip(
                    f"membership {delta.op}({who}) failed: "
                    f"{delta.failed_reason}")
            if self.on_delta_failure is not None:
                self.on_delta_failure(delta)

    def _launch(self, op: str, record: MemberRecord,
                on_done: Optional[Callable[[MembershipDelta], None]]
                ) -> MembershipDelta:
        if record.ip in self._inflight:
            raise GroupError(
                f"a membership delta for {record.ip} is already in flight")
        self.membership_ops += 1
        self.epoch_log.append((self.group.epoch, op, record.ip))
        delta = MembershipDelta(
            self, op, record, self.group.epoch,
            timeout=self.delta_timeout, retries=self.delta_retries,
            on_done=on_done,
        )
        self._inflight[record.ip] = delta
        delta.start()
        return delta

    # -- delta coalescing -------------------------------------------------------

    def has_inflight(self, ip: int) -> bool:
        """True while ``ip`` has a delta in flight *or* pending in an
        unflushed coalescing batch (callers gate churn on this)."""
        return ip in self._inflight or ip in self._pending_ips

    def _dispatch(self, op: str, record: MemberRecord,
                  on_done: Optional[Callable[[MembershipDelta], None]]
                  ) -> MembershipDelta:
        if self.coalesce_window is None:
            return self._launch(op, record, on_done)
        return self._enqueue(op, record, on_done)

    def _enqueue(self, op: str, record: MemberRecord,
                 on_done: Optional[Callable[[MembershipDelta], None]]
                 ) -> MembershipDelta:
        """Coalescing path: fold the op into this window's batch.

        The host-side group state (membership dict, epoch, PSN sync) is
        already applied by the caller — only the MDT patch is deferred.
        Conflicts (any second op on a member whose delta is still
        pending or in flight) were already rejected by the op entry
        points *before* the host-side mutation, so every record arriving
        here is for a distinct member.
        """
        if record.ip in self._pending_ips or record.ip in self._inflight:
            raise GroupError(
                f"a membership delta for {record.ip} is already in flight")
        self.membership_ops += 1
        self.epoch_log.append((self.group.epoch, op, record.ip))
        delta = self._pending.get(op)
        if delta is None:
            delta = MembershipDelta(
                self, op, record, self.group.epoch,
                timeout=self.delta_timeout, retries=self.delta_retries,
            )
            self._pending[op] = delta
        else:
            delta.add_record(record, self.group.epoch)
        if on_done is not None:
            delta._done_cbs.append(on_done)
        self._pending_ips.add(record.ip)
        if self._flush_ev is None:
            self._flush_ev = self.sim.schedule(
                self.coalesce_window, self.flush_pending)
        return delta

    def flush_pending(self) -> None:
        """Close the coalescing window: start every batched delta."""
        if self._flush_ev is not None:
            self._flush_ev.cancel()
            self._flush_ev = None
        if not self._pending:
            return
        batches = [self._pending[op] for op in ("join", "leave", "prune")
                   if op in self._pending]
        self._pending.clear()
        self._pending_ips.clear()
        for delta in batches:
            if delta.op == "join":
                # Re-base each joiner's stream position to NOW, not to
                # enqueue time: the JOIN delta travels the same FIFO
                # queues as data, so every packet posted after this emit
                # reaches the leaf behind the MFT install — but packets
                # posted *inside* the window outran it, and a stale
                # rq_psn would make the joiner NACK the gap and drag the
                # whole group through a retransmission rewind.  Every
                # lane re-bases against its own source QP: the lanes
                # carry independent PSN spaces.
                for lane in range(self.group.paths):
                    lane_qps = self.group.lane_members[lane]
                    src_qp = lane_qps[self.group.current_source]
                    for rec in delta.records:
                        qp = lane_qps.get(rec.ip)
                        if qp is not None:
                            qp.rq_psn = src_qp.sq_psn
            for ip in delta.ips():
                self._inflight[ip] = delta
            delta.start()

    # -- join / leave / prune ---------------------------------------------------

    def join(self, ip: int, qp, mr: Optional["tuple[int, int]"] = None, *,
             lane_qps: Optional[List] = None,
             on_done: Optional[Callable[[MembershipDelta], None]] = None
             ) -> MembershipDelta:
        """Admit ``ip`` and patch the MDT with a JOIN delta.

        For a k-lane group ``lane_qps`` supplies the joiner's k QPs
        (``lane_qps[0]`` is ``qp``); one coalesced transaction patches
        all k MDTs."""
        # Reject before mutating host-side state: a raise after
        # add_member would leave the group and the MDT diverged.
        if self.has_inflight(ip):
            raise GroupError(
                f"a membership delta for {ip} is already in flight")
        self.group.add_member(ip, qp, mr, lane_qps=lane_qps)
        self._refresh_sr_header()
        # Stream-position sync (§III-E): the joiner expects the *next*
        # PSN the source will emit, skipping anything already posted.
        # Each lane syncs against its own source QP (independent PSN
        # spaces per lane).
        src_qp = self.group.members[self.group.current_source]
        qp.rq_psn = src_qp.sq_psn
        for lane in range(1, self.group.paths):
            lane_src = self.group.lane_members[lane][self.group.current_source]
            lane_qps[lane].rq_psn = lane_src.sq_psn
        self._notify_epoch(qp)
        vaddr, rkey = self.group.mr_info.get(ip, (0, 0))
        record = MemberRecord(ip=ip, qpn=qp.qpn, vaddr=vaddr, rkey=rkey)
        return self._dispatch("join", record, on_done)

    def leave(self, ip: int, *,
              on_done: Optional[Callable[[MembershipDelta], None]] = None
              ) -> MembershipDelta:
        """Voluntary departure: retire the member, patch the MDT."""
        return self._remove(ip, "leave", on_done)

    def prune(self, ip: int, reason: str = "", *,
              on_done: Optional[Callable[[MembershipDelta], None]] = None
              ) -> MembershipDelta:
        """Controller-initiated eviction of a (presumed dead) member."""
        delta = self._remove(ip, "prune", on_done)
        self.pruned.add(ip)
        return delta

    def _remove(self, ip: int, op: str,
                on_done: Optional[Callable[[MembershipDelta], None]]
                ) -> MembershipDelta:
        if self.has_inflight(ip):
            raise GroupError(
                f"a membership delta for {ip} is already in flight")
        qp = self.group.qp_of(ip)
        qpn = qp.qpn
        self.group.remove_member(ip)   # raises for leader/source/size-2
        self._refresh_sr_header()
        self._notify_epoch(qp)
        self._fd_marks.pop(ip, None)
        record = MemberRecord(ip=ip, qpn=qpn)
        return self._dispatch(op, record, on_done)

    def _refresh_sr_header(self) -> None:
        """Source-routed deployment: a membership change re-encodes the
        group's header at the new epoch.  Senders stamp the new header
        from the next packet on; switches retire the old tree's soft
        state when the higher epoch flows past them.  Every lane
        re-encodes (each lane compiled its own edge-disjoint tree)."""
        sr = getattr(self.fabric, "source_routing", None)
        if sr is not None:
            if self.group.paths == 1:
                sr.refresh(self.group)
            else:
                for lane in range(self.group.paths):
                    sr.refresh(self.group.lane_view(lane))

    def _notify_epoch(self, qp) -> None:
        """Publish that the QP changed membership epoch (its PSN stream
        position is re-based, not corrupted); the invariant monitor
        subscribes to re-baseline its per-QP PSN tracking."""
        bus = qp.bus
        if bus.membership_epoch:
            bus.publish("membership_epoch", qp, self.group.epoch)

    # -- synchronous wrappers (setup/test convenience) --------------------------

    def join_sync(self, ip: int, qp,
                  mr: Optional["tuple[int, int]"] = None, *,
                  lane_qps: Optional[List] = None) -> None:
        self._pump(self.join(ip, qp, mr, lane_qps=lane_qps))

    def leave_sync(self, ip: int) -> None:
        self._pump(self.leave(ip))

    def prune_sync(self, ip: int, reason: str = "") -> None:
        self._pump(self.prune(ip, reason))

    def _pump(self, delta: MembershipDelta) -> None:
        while not delta.finished:
            nxt = self.sim.peek_next_time()
            if nxt is None:
                raise RegistrationError(
                    f"membership {delta.op} stalled: no pending events")
            self.sim.run(until=nxt)
        if delta.failed_reason is not None:
            raise RegistrationError(delta.failed_reason)

    # -- leaf-driven failure detector ------------------------------------------

    def start_failure_detector(self, *, interval: float = 150e-6,
                               misses: int = 3) -> None:
        """Auto-prune receivers whose leaf-observed feedback stagnates.

        Every ``interval`` the detector reads each receiver's AckPSN at
        its leaf MFT entry *while the source has outstanding data* (an
        idle source legitimately produces silence).  ``misses``
        consecutive stagnant probes mark the receiver dead.  A prune
        that cannot proceed (the group would fall below 2 members)
        trips the safeguard instead — the group cannot heal itself.
        """
        self.stop_failure_detector()
        self._fd_interval = interval
        self._fd_misses = misses
        self._fd_ev = self.sim.schedule(interval, self._fd_tick)

    def stop_failure_detector(self) -> None:
        if self._fd_ev is not None:
            self._fd_ev.cancel()
            self._fd_ev = None

    def _fd_tick(self) -> None:
        self._fd_ev = self.sim.schedule(self._fd_interval, self._fd_tick)
        src_ip = self.group.current_source
        src_qp = self.group.members[src_ip]
        if src_qp.send_idle:
            # No outstanding data: feedback silence is expected.
            self._fd_marks.clear()
            return
        for ip in list(self.group.receivers()):
            if ip in self._inflight:
                continue
            ack = self._leaf_ack_psn(ip)
            if ack is None:
                continue   # leaf not accelerated / already patched out
            if ack >= src_qp.sq_psn - 1:
                # Fully caught up with everything posted: a plateau here
                # is completion, not missed feedback (the source may be
                # blocked on a *different* receiver's silence).
                self._fd_marks[ip] = (ack, 0)
                continue
            last, strikes = self._fd_marks.get(ip, (None, 0))
            if ack != last:
                self._fd_marks[ip] = (ack, 0)
                continue
            strikes += 1
            self._fd_marks[ip] = (ack, strikes)
            if strikes >= self._fd_misses:
                try:
                    self.prune(ip, reason=f"no feedback for {strikes} "
                                          f"probe intervals")
                except GroupError as exc:
                    self.delta_failures.append(("prune", ip, str(exc)))
                    if self.safeguard is not None:
                        self.safeguard.trip(
                            f"cannot prune dead receiver {ip}: {exc}")
                    self._fd_marks.pop(ip, None)

    def _leaf_ack_psn(self, ip: int) -> Optional[int]:
        """The receiver's per-path AckPSN at its leaf switch (the
        leaf-driven missed-feedback signal, modeled at the controller)."""
        leaf, port = self.fabric.topo.leaf_of(ip)
        accel = self.fabric.accelerators.get(leaf.name)
        if accel is None:
            return None
        mft = accel.mft_of(self.group.mcst_id)
        if mft is None:
            return None
        entry = mft.entry(port)
        return None if entry is None else entry.ack_psn
