"""Dynamic group membership: incremental MRP join/leave/prune (§III-C).

The paper's MRP is a hop-by-hop *registration protocol* over an
evolving multicast distribution tree — a long-lived group (pub/sub
topics, storage replica sets) gains and loses receivers at runtime.
This module adds that lifecycle on top of the static registration path:

* a :class:`MembershipManager` per group computes the minimal MDT delta
  for a JOIN/LEAVE/PRUNE request and drives one incremental MRP
  transaction (:class:`MembershipDelta`) per affected member.  A delta
  packet carries a single member record plus the group's membership
  *epoch*; switches patch only the affected MFT entries instead of
  reinstalling the tree (`mrp_records_installed` on the accelerators
  shows the economy);
* on LEAVE/PRUNE each switch on the member's branch drains the member
  from its port-member set, removes the Path Table entry once the port
  serves nobody, and **re-evaluates the pending aggregate** — removing
  the minimum AckPSN path must release any min-AckPSN/MePSN state that
  was gating in-flight transfers (§III-D).  The member's *leaf* switch
  confirms the transaction to the controller on the member's behalf, so
  pruning completes even when the member host is dead;
* a leaf-driven **failure detector** (missed-feedback timeout) watches
  each receiver's per-path AckPSN at its leaf while the source has
  outstanding data; a receiver whose feedback stagnates for
  ``misses`` consecutive probe intervals is auto-pruned.  A delta that
  cannot be installed (switch error / confirmation timeout after
  retries) trips the group's :class:`~repro.core.fallback.
  SafeguardMonitor`, the §V-D escape hatch.

JOIN stream position: a joiner is not owed the PSNs emitted before it
existed.  Its ``rqPSN`` is synchronized to the source's ``sqPSN`` (the
same primitive as §III-E source switching) and its fresh MFT entries
start at the group's current AggAckPSN, so an in-flight transfer
neither stalls on the newcomer nor delivers it a partial message.
"""

from __future__ import annotations

from typing import Callable, Dict, List, Optional, Set, Tuple

from repro.core.group import MemberRecord, MulticastGroup
from repro.core.mrp import MrpError, MrpPayload
from repro.errors import GroupError, RegistrationError
from repro.net.packet import Packet, PacketType
from repro.net.simulator import Event

__all__ = ["MembershipDelta", "MembershipManager"]


class MembershipDelta:
    """One incremental MRP transaction for a single member.

    Started by the :class:`MembershipManager`, which also routes the
    confirmation (from the joining host, or from the departing member's
    leaf switch) back to :meth:`on_confirm`.
    """

    def __init__(
        self,
        manager: "MembershipManager",
        op: str,
        record: MemberRecord,
        epoch: int,
        *,
        timeout: float = 2e-3,
        retries: int = 1,
        on_done: Optional[Callable[["MembershipDelta"], None]] = None,
    ) -> None:
        if op not in ("join", "leave", "prune"):
            raise GroupError(f"unknown membership op {op!r}")
        self.manager = manager
        self.op = op
        self.record = record
        self.epoch = epoch
        self.timeout = timeout
        self.retries_left = retries
        self.resends = 0
        self.on_done = on_done
        self.finished = False
        self.failed_reason: Optional[str] = None
        self._timeout_ev: Optional[Event] = None

    @property
    def ip(self) -> int:
        return self.record.ip

    def start(self) -> None:
        self._emit()
        self._timeout_ev = self.manager.sim.schedule(
            self.timeout, self._on_timeout)

    def _emit(self) -> None:
        nic = self.manager.nic
        payload = MrpPayload(
            mcst_id=self.manager.group.mcst_id, seq=0, total=1,
            controller_ip=nic.ip, nodes=[self.record],
            op=self.op, epoch=self.epoch,
        )
        pkt = Packet(
            PacketType.MRP, nic.ip, self.manager.group.mcst_id,
            payload=payload.wire_bytes(), mrp=payload,
            created_at=self.manager.sim.now,
        )
        nic.send(pkt)

    # -- transaction outcome ----------------------------------------------------

    def on_confirm(self, member_ip: int) -> None:
        if self.finished or member_ip != self.record.ip:
            return
        self._finish(None)

    def on_switch_error(self, err: MrpError) -> None:
        if self.finished:
            return
        self._finish(f"{err.switch_name}: {err.reason}")

    def _on_timeout(self) -> None:
        if self.finished:
            return
        if self.retries_left > 0:
            # MRP is UDP-based (§III-C): re-send the idempotent delta.
            self.retries_left -= 1
            self.resends += 1
            self._emit()
            self._timeout_ev = self.manager.sim.schedule(
                self.timeout, self._on_timeout)
            return
        self._finish(f"timeout waiting for {self.op} confirmation "
                     f"from {self.record.ip}")

    def _finish(self, reason: Optional[str]) -> None:
        self.finished = True
        self.failed_reason = reason
        if self._timeout_ev is not None:
            self._timeout_ev.cancel()
            self._timeout_ev = None
        self.manager._delta_finished(self)
        if self.on_done is not None:
            self.on_done(self)


class MembershipManager:
    """Runtime membership controller for one registered group.

    Lives on the leader host next to the MRP controller and reuses its
    :class:`~repro.core.mrp.HostControlAgent` dispatch: the manager
    registers itself as the group's control endpoint and routes each
    confirmation to the in-flight delta for that member.
    """

    def __init__(self, fabric, group: MulticastGroup, *,
                 delta_timeout: float = 2e-3, delta_retries: int = 1) -> None:
        self.fabric = fabric
        self.group = group
        self.sim = fabric.sim
        self.nic = fabric.topo.nic(group.leader_ip)
        self.agent = fabric.agents[group.leader_ip]
        self.delta_timeout = delta_timeout
        self.delta_retries = delta_retries
        self.safeguard = None                 # optional SafeguardMonitor
        self.on_delta_failure: Optional[Callable[[MembershipDelta], None]] = None
        self.pruned: Set[int] = set()
        self.delta_failures: List[Tuple[str, int, str]] = []  # (op, ip, why)
        #: (epoch, op, ip) log of applied membership changes.
        self.epoch_log: List[Tuple[int, str, int]] = []
        self._inflight: Dict[int, MembershipDelta] = {}
        # failure detector state: ip -> (last AckPSN seen at leaf, strikes)
        self._fd_marks: Dict[int, "Tuple[Optional[int], int]"] = {}
        self._fd_ev: Optional[Event] = None
        self.agent.attach_controller(self)

    # -- control-plane dispatch (HostControlAgent protocol) --------------------

    def on_confirm(self, member_ip: int) -> None:
        delta = self._inflight.get(member_ip)
        if delta is not None:
            delta.on_confirm(member_ip)

    def on_switch_error(self, err: MrpError) -> None:
        # A switch error names the group, not the member: fail every
        # in-flight delta (they share the MDT that just rejected state).
        for delta in list(self._inflight.values()):
            delta.on_switch_error(err)

    def _delta_finished(self, delta: MembershipDelta) -> None:
        self._inflight.pop(delta.record.ip, None)
        if delta.failed_reason is not None:
            self.delta_failures.append(
                (delta.op, delta.record.ip, delta.failed_reason))
            if self.safeguard is not None:
                self.safeguard.trip(
                    f"membership {delta.op}({delta.record.ip}) failed: "
                    f"{delta.failed_reason}")
            if self.on_delta_failure is not None:
                self.on_delta_failure(delta)

    def _launch(self, op: str, record: MemberRecord,
                on_done: Optional[Callable[[MembershipDelta], None]]
                ) -> MembershipDelta:
        if record.ip in self._inflight:
            raise GroupError(
                f"a membership delta for {record.ip} is already in flight")
        self.epoch_log.append((self.group.epoch, op, record.ip))
        delta = MembershipDelta(
            self, op, record, self.group.epoch,
            timeout=self.delta_timeout, retries=self.delta_retries,
            on_done=on_done,
        )
        self._inflight[record.ip] = delta
        delta.start()
        return delta

    # -- join / leave / prune ---------------------------------------------------

    def join(self, ip: int, qp, mr: Optional["tuple[int, int]"] = None, *,
             on_done: Optional[Callable[[MembershipDelta], None]] = None
             ) -> MembershipDelta:
        """Admit ``ip`` and patch the MDT with a JOIN delta."""
        self.group.add_member(ip, qp, mr)
        self._refresh_sr_header()
        # Stream-position sync (§III-E): the joiner expects the *next*
        # PSN the source will emit, skipping anything already posted.
        src_qp = self.group.members[self.group.current_source]
        qp.rq_psn = src_qp.sq_psn
        self._notify_epoch(qp)
        vaddr, rkey = self.group.mr_info.get(ip, (0, 0))
        record = MemberRecord(ip=ip, qpn=qp.qpn, vaddr=vaddr, rkey=rkey)
        return self._launch("join", record, on_done)

    def leave(self, ip: int, *,
              on_done: Optional[Callable[[MembershipDelta], None]] = None
              ) -> MembershipDelta:
        """Voluntary departure: retire the member, patch the MDT."""
        return self._remove(ip, "leave", on_done)

    def prune(self, ip: int, reason: str = "", *,
              on_done: Optional[Callable[[MembershipDelta], None]] = None
              ) -> MembershipDelta:
        """Controller-initiated eviction of a (presumed dead) member."""
        delta = self._remove(ip, "prune", on_done)
        self.pruned.add(ip)
        return delta

    def _remove(self, ip: int, op: str,
                on_done: Optional[Callable[[MembershipDelta], None]]
                ) -> MembershipDelta:
        qp = self.group.qp_of(ip)
        qpn = qp.qpn
        self.group.remove_member(ip)   # raises for leader/source/size-2
        self._refresh_sr_header()
        self._notify_epoch(qp)
        self._fd_marks.pop(ip, None)
        record = MemberRecord(ip=ip, qpn=qpn)
        return self._launch(op, record, on_done)

    def _refresh_sr_header(self) -> None:
        """Source-routed deployment: a membership change re-encodes the
        group's header at the new epoch.  Senders stamp the new header
        from the next packet on; switches retire the old tree's soft
        state when the higher epoch flows past them."""
        sr = getattr(self.fabric, "source_routing", None)
        if sr is not None:
            sr.refresh(self.group)

    def _notify_epoch(self, qp) -> None:
        """Publish that the QP changed membership epoch (its PSN stream
        position is re-based, not corrupted); the invariant monitor
        subscribes to re-baseline its per-QP PSN tracking."""
        bus = qp.bus
        if bus.membership_epoch:
            bus.publish("membership_epoch", qp, self.group.epoch)

    # -- synchronous wrappers (setup/test convenience) --------------------------

    def join_sync(self, ip: int, qp,
                  mr: Optional["tuple[int, int]"] = None) -> None:
        self._pump(self.join(ip, qp, mr))

    def leave_sync(self, ip: int) -> None:
        self._pump(self.leave(ip))

    def prune_sync(self, ip: int, reason: str = "") -> None:
        self._pump(self.prune(ip, reason))

    def _pump(self, delta: MembershipDelta) -> None:
        while not delta.finished:
            nxt = self.sim.peek_next_time()
            if nxt is None:
                raise RegistrationError(
                    f"membership {delta.op} stalled: no pending events")
            self.sim.run(until=nxt)
        if delta.failed_reason is not None:
            raise RegistrationError(delta.failed_reason)

    # -- leaf-driven failure detector ------------------------------------------

    def start_failure_detector(self, *, interval: float = 150e-6,
                               misses: int = 3) -> None:
        """Auto-prune receivers whose leaf-observed feedback stagnates.

        Every ``interval`` the detector reads each receiver's AckPSN at
        its leaf MFT entry *while the source has outstanding data* (an
        idle source legitimately produces silence).  ``misses``
        consecutive stagnant probes mark the receiver dead.  A prune
        that cannot proceed (the group would fall below 2 members)
        trips the safeguard instead — the group cannot heal itself.
        """
        self.stop_failure_detector()
        self._fd_interval = interval
        self._fd_misses = misses
        self._fd_ev = self.sim.schedule(interval, self._fd_tick)

    def stop_failure_detector(self) -> None:
        if self._fd_ev is not None:
            self._fd_ev.cancel()
            self._fd_ev = None

    def _fd_tick(self) -> None:
        self._fd_ev = self.sim.schedule(self._fd_interval, self._fd_tick)
        src_ip = self.group.current_source
        src_qp = self.group.members[src_ip]
        if src_qp.send_idle:
            # No outstanding data: feedback silence is expected.
            self._fd_marks.clear()
            return
        for ip in list(self.group.receivers()):
            if ip in self._inflight:
                continue
            ack = self._leaf_ack_psn(ip)
            if ack is None:
                continue   # leaf not accelerated / already patched out
            if ack >= src_qp.sq_psn - 1:
                # Fully caught up with everything posted: a plateau here
                # is completion, not missed feedback (the source may be
                # blocked on a *different* receiver's silence).
                self._fd_marks[ip] = (ack, 0)
                continue
            last, strikes = self._fd_marks.get(ip, (None, 0))
            if ack != last:
                self._fd_marks[ip] = (ack, 0)
                continue
            strikes += 1
            self._fd_marks[ip] = (ack, strikes)
            if strikes >= self._fd_misses:
                try:
                    self.prune(ip, reason=f"no feedback for {strikes} "
                                          f"probe intervals")
                except GroupError as exc:
                    self.delta_failures.append(("prune", ip, str(exc)))
                    if self.safeguard is not None:
                        self.safeguard.trip(
                            f"cannot prune dead receiver {ip}: {exc}")
                    self._fd_marks.pop(ip, None)

    def _leaf_ack_psn(self, ip: int) -> Optional[int]:
        """The receiver's per-path AckPSN at its leaf switch (the
        leaf-driven missed-feedback signal, modeled at the controller)."""
        leaf, port = self.fabric.topo.leaf_of(ip)
        accel = self.fabric.accelerators.get(leaf.name)
        if accel is None:
            return None
        mft = accel.mft_of(self.group.mcst_id)
        if mft is None:
            return None
        entry = mft.entry(port)
        return None if entry is None else entry.ack_psn
