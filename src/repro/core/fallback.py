"""Safeguard fallback (§V-D).

Cepheus must keep delivering traffic through extreme accidents.  Two
anomaly classes trip the fallback to plain application-layer multicast:

1. **registration failure** — e.g. a switch ran out of MFT memory or
   members never confirmed (the MRP controller reports this directly);
2. **abnormal throughput collapse** — goodput below a configurable
   fraction (default 50 %) of the expected no-loss goodput, measured
   over a sliding window at the sender.

The monitor watches the sender QP's cumulative acknowledged byte count
(the only signal the end host has without RNIC changes).  When it trips
it invokes the fallback callback exactly once;
:class:`repro.collectives.cepheus_bcast.CepheusBcast` wires that to a
Chain/BT re-transmission, as §V-D prescribes.
"""

from __future__ import annotations

from typing import Callable, Optional

from repro import constants
from repro.net.simulator import Event, Simulator
from repro.transport.roce import RoceQP

__all__ = ["SafeguardMonitor"]


class SafeguardMonitor:
    """Sliding-window goodput watchdog on a sender QP."""

    def __init__(
        self,
        sim: Simulator,
        qp: RoceQP,
        expected_bps: float,
        *,
        threshold: float = constants.FALLBACK_GOODPUT_THRESHOLD,
        window: float = 500e-6,
        grace_windows: int = 2,
        idle_grace_windows: int = 8,
        on_fallback: Optional[Callable[[str], None]] = None,
    ) -> None:
        self.sim = sim
        self.qp = qp
        self.expected_bps = expected_bps
        self.threshold = threshold
        self.window = window
        self.grace_windows = grace_windows
        self.idle_grace_windows = idle_grace_windows
        self.on_fallback = on_fallback
        self.triggered = False
        self.trigger_reason: Optional[str] = None
        self._last_una = 0
        self._windows_elapsed = 0
        self._idle_windows = 0
        self._tick_ev: Optional[Event] = None

    # -- lifecycle ------------------------------------------------------------

    def start(self) -> None:
        self._last_una = self.qp.snd_una
        self._windows_elapsed = 0
        self._idle_windows = 0
        self._arm()

    def stop(self) -> None:
        if self._tick_ev is not None:
            self._tick_ev.cancel()
            self._tick_ev = None

    def _arm(self) -> None:
        self._tick_ev = self.sim.schedule(self.window, self._tick)

    # -- watchdog -----------------------------------------------------------------

    def _tick(self) -> None:
        self._tick_ev = None
        if self.triggered:
            return
        if self.qp.send_idle:
            # An idle window is usually the transfer completing — but it
            # can also be a gap between back-to-back sends (churn, pubsub
            # fan-out).  Standing down permanently on the first idle
            # window would leave the next send unguarded, so re-arm for a
            # bounded number of idle windows before concluding the
            # transfer really is over.
            self._idle_windows += 1
            self._windows_elapsed = 0
            self._last_una = self.qp.snd_una
            if self._idle_windows < self.idle_grace_windows:
                self._arm()
            return
        self._idle_windows = 0
        self._windows_elapsed += 1
        advanced_psns = self.qp.snd_una - self._last_una
        self._last_una = self.qp.snd_una
        achieved_bps = advanced_psns * self.qp.cfg.mtu * 8.0 / self.window
        # Give the transfer a couple of windows to ramp before judging.
        if (
            self._windows_elapsed > self.grace_windows
            and achieved_bps < self.threshold * self.expected_bps
        ):
            self.trip(
                f"goodput {achieved_bps / 1e9:.2f} Gbps < "
                f"{self.threshold:.0%} of expected {self.expected_bps / 1e9:.2f} Gbps"
            )
            return
        self._arm()

    def trip(self, reason: str) -> None:
        """Trigger the fallback (also called directly on registration
        failure); idempotent."""
        if self.triggered:
            return
        self.triggered = True
        self.trigger_reason = reason
        self.stop()
        if self.on_fallback is not None:
            self.on_fallback(reason)
