"""Shared modelling constants for the Cepheus reproduction.

All times are in seconds, all bandwidths in bits per second, and all
sizes in bytes unless a name says otherwise.  The values below are the
defaults used by the test-bed- and simulation-scale experiments; every
experiment can override them through the corresponding config objects
(:class:`repro.net.switch.SwitchConfig`, :class:`repro.transport.roce.RoceConfig`,
...).  Calibration notes refer to section V of the paper.
"""

from __future__ import annotations

# --------------------------------------------------------------------------
# Link-level defaults (paper: 100 Gbps NICs and switch ports everywhere).
# --------------------------------------------------------------------------

LINK_BANDWIDTH_BPS: float = 100e9
"""Default link rate: 100 Gbps (ConnectX-5 NIC, 64x100G switch)."""

LINK_PROPAGATION_S: float = 600e-9
"""Per-hop propagation + fixed switching delay.

Datacenter cables are O(100ns); commodity switch pipelines add a few
hundred ns of cut-through/store-and-forward latency.  600 ns per hop
reproduces the few-microsecond base RTTs of RoCE test-beds.
"""

MTU_BYTES: int = 4096
"""RoCE path MTU (ConnectX-5 supports 4096-byte RoCE MTU)."""

HEADER_BYTES: int = 58
"""Per-packet wire overhead: Eth(14)+IPv4(20)+UDP(8)+BTH(12)+ICRC(4)."""

ACK_BYTES: int = 62
"""ACK/NACK packet wire size: headers + AETH(4)."""

CNP_BYTES: int = 74
"""CNP packet wire size (BTH + 16-byte reserved payload per RoCEv2 annex)."""

MRP_MTU_BYTES: int = 1500
"""The MRP control protocol is constrained to the standard Ethernet MTU."""

SR_BASE_BYTES: int = 8
"""Fixed part of the source-routing header extension: epoch(2) +
fallback rule key(4) + rule count(2).  The McstID rides in dstIP."""

SR_RULE_BUDGET_BYTES: int = 64
"""Per-packet budget for sp-rules carried in the header extension
(Elmo bounds the header; trees that overflow spill to residual state)."""

SR_RESIDUAL_RULE_CAP: int = 32
"""Residual-table entries per switch in the scaling model: overflow
groups beyond this degrade to the per-switch default rule (Elmo) or
union-merge into an existing shared rule (Bert)."""

MRP_NODES_PER_PACKET: int = 183
"""Max receiver records per MRP packet (paper, Fig. 5: 1500-byte MTU)."""

# --------------------------------------------------------------------------
# Switch defaults.
# --------------------------------------------------------------------------

SWITCH_PORT_COUNT: int = 64
"""Radix assumed by the scalability analysis (64x100G)."""

SWITCH_QUEUE_BYTES: int = 16_000_000
"""Per-egress-port buffer cap.

This approximates a *shared* switch buffer (tens of MB on commodity
64x100G silicon): only congested ports consume it, and PFC's per-ingress
XOFF watermark (512 KB) pauses senders long before any port reaches the
cap, so RoCE's lossless assumption holds under fan-in — exactly the
deployment the paper prescribes ('we recommend deploying Cepheus in a
lossless network with PFC enabled').  Loss experiments inject drops
explicitly instead of relying on overflow."""

ECN_KMIN_BYTES: int = 100_000
"""RED/ECN min threshold (DCQCN deployment guidance ~100 KB at 100G)."""

ECN_KMAX_BYTES: int = 400_000
"""RED/ECN max threshold."""

ECN_PMAX: float = 0.2
"""Marking probability at KMAX."""

PFC_XOFF_BYTES: int = 512_000
"""Ingress occupancy that triggers a PAUSE toward the upstream device."""

PFC_XON_BYTES: int = 256_000
"""Ingress occupancy below which a RESUME is sent."""

ACCELERATOR_DELAY_S: float = 300e-9
"""Extra per-packet processing delay in the Cepheus FPGA accelerator.

The prototype adds one switch->FPGA->switch traversal; the FPGA pipeline
runs at line rate so the cost is a small fixed latency.
"""

# --------------------------------------------------------------------------
# RoCE RC transport defaults.
# --------------------------------------------------------------------------

ROCE_ACK_COALESCE: int = 4
"""Receiver generates one ACK per this many in-order data packets
(plus always on the last packet of a message)."""

ROCE_RTO_S: float = 1e-3
"""Retransmission (safeguard) timeout.  CX-5 default is on the order of
milliseconds; the paper relies on it as the reliability backstop."""

ROCE_MAX_OUTSTANDING_PKTS: int = 256
"""Cap on unacknowledged packets in flight (IB RC window, ~1 BDP+)."""

HOST_STACK_SEND_S: float = 1.2e-6
"""End-host software cost to post one message (verbs + MPI shim).

This is the per-traversal cost the paper blames for BT/Chain latency:
'messages ... go through the end-host stacks multiple times at every
node'.  Calibrated so a 64 B 1->3 BT broadcast lands in the few-10s-of-us
band of Fig. 8.
"""

HOST_STACK_RECV_S: float = 1.0e-6
"""End-host software cost to reap a completion and hand data to the app."""

HOST_STACK_RELAY_EXTRA_S: float = 3.0e-6
"""Extra cost when an *intermediate* node turns a receive into a send:
MPI progress-engine polling, matching, and the rendezvous round of the
relay path.  Cepheus never pays this (the message crosses end-host
stacks exactly once); AMcast relays pay it at every hop, which is what
widens the small-message gap in Fig. 8 to the paper's 2.5-5.2x band."""

# --------------------------------------------------------------------------
# DCQCN defaults (Zhu et al., SIGCOMM'15; CX-5-like).
# --------------------------------------------------------------------------

DCQCN_ALPHA_G: float = 1.0 / 16.0
"""g: weight of new congestion information in the alpha EWMA."""

DCQCN_ALPHA_TIMER_S: float = 55e-6
"""Alpha update timer when no CNP arrives."""

DCQCN_RATE_INCREASE_TIMER_S: float = 55e-6
"""Rate-increase timer period."""

DCQCN_BYTE_COUNTER: int = 10 * 1024 * 1024
"""Byte counter threshold for increase events (10 MB)."""

DCQCN_RAI_BPS: float = 5e9 / 10
"""Additive increase step R_AI (500 Mbps at 100G-scale networks)."""

DCQCN_RHAI_BPS: float = 5e9
"""Hyper increase step R_HAI."""

DCQCN_F: int = 5
"""Threshold of timer/byte-counter events before leaving fast recovery."""

DCQCN_MIN_RATE_BPS: float = 100e6
"""Rate floor."""

CNP_MIN_INTERVAL_S: float = 50e-6
"""NP-side minimum interval between CNPs per flow (CX-5: 50 us)."""

# --------------------------------------------------------------------------
# Cepheus control/feedback defaults.
# --------------------------------------------------------------------------

MCSTID_BASE: int = 0xE000_0000
"""McstIDs are allocated from this reserved 32-bit range; anything at or
above it is classified as multicast by switch ACLs."""

VIRTUAL_DST_QP: int = 0x1
"""The reserved dstQP installed in every member's virtual remote."""

CNP_AGING_WINDOW_S: float = 200e-6
"""Congestion-counter aging window of the CNP filter."""

MFT_BYTES_PER_GROUP_64P: int = 724
"""Model of MFT memory per group at 64 ports (paper: 1K groups ~ 0.69 MB).

Path Index: 64 x 1 B. Path Table: 64 entries x ~10 B (dstIP 4, dstQP 3,
AckPSN 3). Group state: ~20 B.  0.69 MB / 1024 groups ~= 707 B; we round
up to include the per-group WRITE MR records.
"""

FALLBACK_GOODPUT_THRESHOLD: float = 0.5
"""Safeguard fallback triggers when goodput drops below this fraction of
the expected no-loss goodput (paper: 'e.g., 50%')."""

# --------------------------------------------------------------------------
# Storage application defaults (calibrated to Table I / Fig. 10).
# --------------------------------------------------------------------------

STORAGE_STACK_PER_IO_S: float = 0.70e-6
"""Client-side storage-protocol-stack cost per submitted IO copy.

Calibrated so sustained 8 KB one-to-one writes saturate near the paper's
1.188 M IOPS (the paper states the bottleneck 'lies in the storage
protocol stack at end-host')."""

STORAGE_SERVER_PER_IO_S: float = 0.6e-6
"""Server-side cost to land one IO (NVMe submission path)."""

STORAGE_QUEUE_DEPTH: int = 32
"""Outstanding IOs the client keeps in flight for the IOPS experiment."""
