"""Experimental extensions beyond the paper's evaluated scope (§VIII)."""

from repro.ext.inreduce import InNetworkReduce, InNetworkReduceResult

__all__ = ["InNetworkReduce", "InNetworkReduceResult"]
