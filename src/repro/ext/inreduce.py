"""Experimental in-network reduction — the §VIII many-to-one primitive.

The paper's conclusion: "we plan to extend Cepheus for more collective
communication primitives, such as many-to-one (e.g., MPI-Reduce)".
This module prototypes that extension on the same design principles as
the broadcast primitive:

* members keep their single RC connection to the virtual remote;
* the registered MDT is reused with its *mode* flipped to ``reduce``:
  member contributions combine per-PSN on the way up, the root's
  feedback replicates (with connection bridging) on the way down;
* the RNICs stay unmodified: each member's QP sees a perfectly normal
  unicast-looking ACK/NACK/CNP stream, and the root's QP sees one
  in-order data stream carrying the fully-combined vector.

Contrast with SHARP (§VI): no switch buffering of payloads for
retransmission — a root NACK rewinds *all* members together (collective
order makes their PSNs line up), and the combining slots refill
coherently.  The cost is that one member's retransmission makes every
member retransmit, the same trade the broadcast side makes for loss
(§V-C), which is why this too wants a PFC-lossless fabric.

Limitations (why the paper defers this): requires collective posting
discipline (every member posts equal sizes in the same order) and a
fixed root per mode-switch; combining slots assume bounded reordering
(the RC window).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional

from repro.apps.cluster import Cluster
from repro.core.group import MulticastGroup
from repro.errors import ConfigurationError
from repro.transport.roce import RoceQP

__all__ = ["InNetworkReduceResult", "InNetworkReduce"]


@dataclass
class InNetworkReduceResult:
    """Outcome of one in-network reduction."""

    root: int
    size: int
    start: float
    root_received: Optional[float] = None
    members_completed: int = 0

    @property
    def duration(self) -> float:
        if self.root_received is None:
            raise ConfigurationError("reduction never reached the root")
        return self.root_received - self.start


class InNetworkReduce:
    """Many-to-one combining over the Cepheus MDT (experimental)."""

    def __init__(self, cluster: Cluster, members: List[int],
                 root: Optional[int] = None) -> None:
        if cluster.fabric is None:
            raise ConfigurationError("in-network reduce needs a Cepheus fabric")
        if len(members) < 2:
            raise ConfigurationError("reduce needs at least 2 members")
        self.cluster = cluster
        self.members = list(members)
        self.root = self.members[0] if root is None else root
        if self.root not in self.members:
            raise ConfigurationError(f"root {self.root} not in members")
        self.group: Optional[MulticastGroup] = None
        self.qps: Dict[int, RoceQP] = {}
        self._prepared = False

    def prepare(self) -> None:
        """Register the group (broadcast-style MDT), then flip it to
        reduce mode — a pure control-plane operation."""
        if self._prepared:
            return
        fabric = self.cluster.fabric
        self.qps = {ip: self.cluster.ctx(ip).create_qp()
                    for ip in self.members}
        # The root is the leader: the MDT's AckOutPort then points at it
        # from registration, which in reduce mode is the combining sink.
        self.group = fabric.create_group(self.qps, leader_ip=self.root)
        fabric.register_sync(self.group)
        fabric.set_group_mode(self.group.mcst_id, "reduce")
        self._prepared = True

    def run(self, size: int) -> InNetworkReduceResult:
        """Every non-root member contributes ``size`` bytes; returns when
        the root has the combined vector *and* every member's send is
        acknowledged."""
        self.prepare()
        sim = self.cluster.sim
        stack = self.cluster.stack
        result = InNetworkReduceResult(self.root, size, start=sim.now)

        def root_got(mid: int, sz: int, now: float, meta) -> None:
            if sz == size and result.root_received is None:
                result.root_received = now + stack.recv

        self.qps[self.root].on_message = root_got

        def member_done(mid: int, now: float) -> None:
            result.members_completed += 1

        def post_all() -> None:
            for ip in self.members:
                if ip == self.root:
                    continue
                self.qps[ip].post_send(size, on_complete=member_done)

        sim.schedule(stack.send, post_all)
        sim.run()
        if result.root_received is None:
            raise ConfigurationError("in-network reduce stalled")
        return result
