"""Command-line interface.

Installed as the ``cepheus-repro`` console script::

    cepheus-repro experiments --only fig8,tab1   # reproduce figures
    cepheus-repro experiments --full             # paper-scale params
    cepheus-repro demo                           # 60-second tour
    cepheus-repro sweep --sizes 64,1048576 --groups 4,8 \
                        --algorithms cepheus,chain
    cepheus-repro info                           # model constants
"""

from __future__ import annotations

import argparse
import sys
from typing import List, Optional

from repro import constants

__all__ = ["main"]


def _cmd_experiments(args) -> int:
    from repro.harness.runner import ALL_EXPERIMENTS, run_experiments

    names = ([n.strip() for n in args.only.split(",") if n.strip()]
             if args.only else list(ALL_EXPERIMENTS))
    unknown = [n for n in names if n not in ALL_EXPERIMENTS]
    if unknown:
        print(f"unknown experiments: {unknown}; "
              f"available: {sorted(ALL_EXPERIMENTS)}", file=sys.stderr)
        return 2
    run_experiments(names, quick=not args.full)
    return 0


def _cmd_demo(args) -> int:
    from repro.apps import Cluster
    from repro.collectives import (BinomialTreeBcast, CepheusBcast,
                                   ChainBcast)
    from repro.harness.report import fmt_size, fmt_time

    size = args.size
    print(f"1-to-3 broadcast of {fmt_size(size)} on a 100G testbed:\n")
    rows = []
    for cls, kw in ((CepheusBcast, {}), (ChainBcast, {"slices": 4}),
                    (BinomialTreeBcast, {})):
        cluster = Cluster.testbed(4)
        algo = cls(cluster, cluster.host_ips, **kw)
        rows.append((algo.name, algo.run(size).jct))
    base = rows[0][1]
    for name, jct in rows:
        print(f"  {name:<16} {fmt_time(jct):>10}   {jct / base:5.2f}x")
    print("\nThe in-network primitive sends each byte once; the overlays "
          "re-send per hop.\nRun 'cepheus-repro experiments' for the full "
          "paper reproduction.")
    return 0


def _cmd_sweep(args) -> int:
    from repro.harness.report import format_table
    from repro.harness.sweeps import BcastSweep

    sweep = BcastSweep(
        sizes=[int(s) for s in args.sizes.split(",")],
        group_sizes=[int(g) for g in args.groups.split(",")],
        algorithms=[a.strip() for a in args.algorithms.split(",")],
    )
    print(format_table(sweep.run()))
    return 0


def _cmd_info(args) -> int:
    print("Cepheus reproduction — model constants (repro/constants.py)\n")
    entries = [
        ("link bandwidth", f"{constants.LINK_BANDWIDTH_BPS / 1e9:.0f} Gbps"),
        ("per-hop latency", f"{constants.LINK_PROPAGATION_S * 1e9:.0f} ns"),
        ("RoCE MTU", f"{constants.MTU_BYTES} B"),
        ("RC window", f"{constants.ROCE_MAX_OUTSTANDING_PKTS} packets"),
        ("RTO", f"{constants.ROCE_RTO_S * 1e3:.1f} ms"),
        ("ECN band", f"{constants.ECN_KMIN_BYTES // 1000}-"
                     f"{constants.ECN_KMAX_BYTES // 1000} KB"),
        ("PFC XOFF/XON", f"{constants.PFC_XOFF_BYTES // 1000}/"
                         f"{constants.PFC_XON_BYTES // 1000} KB"),
        ("accelerator delay", f"{constants.ACCELERATOR_DELAY_S * 1e9:.0f} ns"),
        ("MFT per group (64p)", f"{constants.MFT_BYTES_PER_GROUP_64P} B"),
        ("MRP records/packet", str(constants.MRP_NODES_PER_PACKET)),
        ("fallback threshold", f"{constants.FALLBACK_GOODPUT_THRESHOLD:.0%}"),
    ]
    width = max(len(k) for k, _ in entries)
    for key, value in entries:
        print(f"  {key:<{width}}  {value}")
    print("\nCalibration provenance: docs/CALIBRATION.md")
    return 0


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="cepheus-repro",
        description="Cepheus (HPCA 2024) reproduction toolkit",
    )
    sub = parser.add_subparsers(dest="command", required=True)

    p_exp = sub.add_parser("experiments",
                           help="reproduce the paper's tables/figures")
    p_exp.add_argument("--only", default="",
                       help="comma-separated experiment ids")
    p_exp.add_argument("--full", action="store_true",
                       help="paper-scale parameters (slow)")
    p_exp.set_defaults(fn=_cmd_experiments)

    p_demo = sub.add_parser("demo", help="60-second broadcast comparison")
    p_demo.add_argument("--size", type=int, default=16 << 20,
                        help="message bytes (default 16 MiB)")
    p_demo.set_defaults(fn=_cmd_demo)

    p_sweep = sub.add_parser("sweep", help="custom broadcast sweep")
    p_sweep.add_argument("--sizes", default="65536,1048576")
    p_sweep.add_argument("--groups", default="4")
    p_sweep.add_argument("--algorithms", default="cepheus,binomial,chain")
    p_sweep.set_defaults(fn=_cmd_sweep)

    p_info = sub.add_parser("info", help="print the model constants")
    p_info.set_defaults(fn=_cmd_info)
    return parser


def main(argv: Optional[List[str]] = None) -> int:
    args = build_parser().parse_args(argv)
    return args.fn(args)


if __name__ == "__main__":  # pragma: no cover
    raise SystemExit(main())
