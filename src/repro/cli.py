"""Command-line interface.

Installed as the ``cepheus-repro`` console script::

    cepheus-repro experiments --only fig8,tab1   # reproduce figures
    cepheus-repro experiments --full             # paper-scale params
    cepheus-repro demo                           # 60-second tour
    cepheus-repro sweep --sizes 64,1048576 --groups 4,8 \
                        --algorithms cepheus,chain
    cepheus-repro chaos run --seed 7 --trials 5  # invariant-checked chaos
    cepheus-repro chaos replay repro.json        # re-run a reproducer
    cepheus-repro churn run --seed 11 --trials 3 # membership-churn campaign
    cepheus-repro churn replay repro.json        # re-run a churn reproducer
    cepheus-repro broker run --seed 11 --trials 3 --coalesce-window 5e-4
    cepheus-repro broker replay repro.json       # re-run a broker reproducer
    cepheus-repro fuzz run --budget-trials 50 \
                  --corpus tests/harness/corpus  # coverage-guided fuzzing
    cepheus-repro fuzz replay tests/harness/corpus --jobs 4
    cepheus-repro fuzz corpus                    # list corpus inputs
    cepheus-repro bench emit --jobs 4            # parallel run -> BENCH_quick.json
    cepheus-repro bench compare BENCH_quick.json benchmarks/baselines/BENCH_quick.json
    cepheus-repro pipeline dump --deployment lookaside  # stage chains
    cepheus-repro info                           # model constants
"""

from __future__ import annotations

import argparse
import sys
from typing import List, Optional

from repro import constants

__all__ = ["main"]


def _cmd_experiments(args) -> int:
    from repro.harness.runner import ALL_EXPERIMENTS, run_experiments

    names = ([n.strip() for n in args.only.split(",") if n.strip()]
             if args.only else list(ALL_EXPERIMENTS))
    unknown = [n for n in names if n not in ALL_EXPERIMENTS]
    if unknown:
        print(f"unknown experiments: {unknown}; "
              f"available: {sorted(ALL_EXPERIMENTS)}", file=sys.stderr)
        return 2
    run_experiments(names, quick=not args.full, jobs=args.jobs)
    return 0


def _cmd_demo(args) -> int:
    from repro.apps import Cluster
    from repro.collectives import (BinomialTreeBcast, CepheusBcast,
                                   ChainBcast)
    from repro.harness.report import fmt_size, fmt_time

    size = args.size
    print(f"1-to-3 broadcast of {fmt_size(size)} on a 100G testbed:\n")
    rows = []
    for cls, kw in ((CepheusBcast, {}), (ChainBcast, {"slices": 4}),
                    (BinomialTreeBcast, {})):
        cluster = Cluster.testbed(4)
        algo = cls(cluster, cluster.host_ips, **kw)
        rows.append((algo.name, algo.run(size).jct))
    base = rows[0][1]
    for name, jct in rows:
        print(f"  {name:<16} {fmt_time(jct):>10}   {jct / base:5.2f}x")
    print("\nThe in-network primitive sends each byte once; the overlays "
          "re-send per hop.\nRun 'cepheus-repro experiments' for the full "
          "paper reproduction.")
    return 0


def _cmd_sweep(args) -> int:
    from repro.harness.report import format_table
    from repro.harness.sweeps import BcastSweep

    sweep = BcastSweep(
        sizes=[int(s) for s in args.sizes.split(",")],
        group_sizes=[int(g) for g in args.groups.split(",")],
        algorithms=[a.strip() for a in args.algorithms.split(",")],
    )
    print(format_table(sweep.run()))
    return 0


def _chaos_config(args) -> "object":
    from repro.harness.chaos import ChaosConfig

    if args.mutate and args.mutate != "psn-skip":
        raise SystemExit(f"unknown mutation {args.mutate!r} "
                         f"(available: psn-skip)")
    return ChaosConfig(
        topo=args.topo, hosts=args.hosts, k=args.k,
        messages=args.messages, msg_packets=args.msg_packets,
        incidents=args.incidents, horizon=args.horizon,
        loss_rate=args.loss_rate, deployment=args.deployment,
        mutate=args.mutate or None,
    )


def _cmd_chaos_run(args) -> int:
    import json

    from repro.harness.chaos import run_campaign

    cfg = _chaos_config(args)
    campaign = run_campaign(cfg, seed=args.seed, trials=args.trials,
                            shrink=not args.no_shrink)
    doc = json.dumps(campaign, indent=2, sort_keys=True)
    if args.out:
        with open(args.out, "w", encoding="utf-8") as fh:
            fh.write(doc + "\n")
    else:
        print(doc)
    n_fail = len(campaign["failing_trials"])
    print(f"chaos: {args.trials} trial(s), {n_fail} failing "
          f"(seed={args.seed})", file=sys.stderr)
    if n_fail and args.repro_dir:
        import os

        os.makedirs(args.repro_dir, exist_ok=True)
        for rep in campaign["reproducers"]:
            path = os.path.join(args.repro_dir,
                                f"chaos-seed{args.seed}-t{rep['trial']}.json")
            with open(path, "w", encoding="utf-8") as fh:
                fh.write(json.dumps(rep, indent=2, sort_keys=True) + "\n")
            print(f"chaos: reproducer written to {path}", file=sys.stderr)
    return 3 if n_fail else 0


def _cmd_chaos_replay(args) -> int:
    import json

    from repro.harness.chaos import replay_reproducer

    try:
        record = replay_reproducer(args.file)
    except (OSError, ValueError, KeyError) as exc:
        print(f"chaos: cannot replay {args.file}: {exc}", file=sys.stderr)
        return 2
    print(json.dumps(record, indent=2, sort_keys=True))
    if record["failing"]:
        print("chaos: reproducer still failing", file=sys.stderr)
        return 3
    print("chaos: reproducer no longer fails (fixed?)", file=sys.stderr)
    return 0


def _churn_config(args) -> "object":
    from repro.harness.churn import ChurnConfig

    if args.mutate and args.mutate != "no-detector":
        raise SystemExit(f"unknown mutation {args.mutate!r} "
                         f"(available: no-detector)")
    return ChurnConfig(
        topo=args.topo, hosts=args.hosts, k=args.k,
        initial_members=args.members, messages=args.messages,
        msg_packets=args.msg_packets, joins=args.joins,
        leaves=args.leaves, crashes=args.crashes, horizon=args.horizon,
        loss_rate=args.loss_rate, mutate=args.mutate or None,
    )


def _cmd_churn_run(args) -> int:
    import json

    from repro.harness.churn import run_churn_campaign

    cfg = _churn_config(args)
    campaign = run_churn_campaign(cfg, seed=args.seed, trials=args.trials,
                                  shrink=not args.no_shrink)
    doc = json.dumps(campaign, indent=2, sort_keys=True)
    if args.out:
        with open(args.out, "w", encoding="utf-8") as fh:
            fh.write(doc + "\n")
    else:
        print(doc)
    n_fail = len(campaign["failing_trials"])
    print(f"churn: {args.trials} trial(s), {n_fail} failing "
          f"(seed={args.seed})", file=sys.stderr)
    if n_fail and args.repro_dir:
        import os

        os.makedirs(args.repro_dir, exist_ok=True)
        for rep in campaign["reproducers"]:
            path = os.path.join(args.repro_dir,
                                f"churn-seed{args.seed}-t{rep['trial']}.json")
            with open(path, "w", encoding="utf-8") as fh:
                fh.write(json.dumps(rep, indent=2, sort_keys=True) + "\n")
            print(f"churn: reproducer written to {path}", file=sys.stderr)
    return 3 if n_fail else 0


def _cmd_churn_replay(args) -> int:
    import json

    from repro.harness.churn import replay_churn_reproducer

    try:
        record = replay_churn_reproducer(args.file)
    except (OSError, ValueError, KeyError) as exc:
        print(f"churn: cannot replay {args.file}: {exc}", file=sys.stderr)
        return 2
    print(json.dumps(record, indent=2, sort_keys=True))
    if record["failing"]:
        print("churn: reproducer still failing", file=sys.stderr)
        return 3
    print("churn: reproducer no longer fails (fixed?)", file=sys.stderr)
    return 0


def _broker_config(args) -> "object":
    from repro.apps.brokerfabric import BrokerFabricConfig

    return BrokerFabricConfig(
        topo=args.topo, hosts=args.hosts, k=args.k, topics=args.topics,
        min_subscribers=args.min_subs, max_subscribers=args.max_subs,
        msg_size=args.msg_size, publish_rate=args.publish_rate,
        zipf_alpha=args.zipf_alpha, churn_rate=args.churn_rate,
        cross_rate=args.cross_rate, cross_size=args.cross_size,
        horizon=args.horizon, loss_rate=args.loss_rate,
        coalesce_window=args.coalesce_window or None,
    )


def _cmd_broker_run(args) -> int:
    import json

    from repro.apps.brokerfabric import run_brokerfabric_campaign

    cfg = _broker_config(args)
    campaign = run_brokerfabric_campaign(cfg, seed=args.seed,
                                         trials=args.trials,
                                         shrink=not args.no_shrink)
    doc = json.dumps(campaign, indent=2, sort_keys=True)
    if args.out:
        with open(args.out, "w", encoding="utf-8") as fh:
            fh.write(doc + "\n")
    else:
        print(doc)
    n_fail = len(campaign["failing_trials"])
    print(f"broker: {args.trials} trial(s), {n_fail} failing "
          f"(seed={args.seed})", file=sys.stderr)
    if n_fail and args.repro_dir:
        import os

        os.makedirs(args.repro_dir, exist_ok=True)
        for rep in campaign["reproducers"]:
            path = os.path.join(args.repro_dir,
                                f"broker-seed{args.seed}-t{rep['trial']}.json")
            with open(path, "w", encoding="utf-8") as fh:
                fh.write(json.dumps(rep, indent=2, sort_keys=True) + "\n")
            print(f"broker: reproducer written to {path}", file=sys.stderr)
    return 3 if n_fail else 0


def _cmd_broker_replay(args) -> int:
    import json

    from repro.apps.brokerfabric import replay_brokerfabric_reproducer

    try:
        record = replay_brokerfabric_reproducer(args.file)
    except (OSError, ValueError, KeyError) as exc:
        print(f"broker: cannot replay {args.file}: {exc}", file=sys.stderr)
        return 2
    print(json.dumps(record, indent=2, sort_keys=True))
    if record["failing"]:
        print("broker: reproducer still failing", file=sys.stderr)
        return 3
    print("broker: reproducer no longer fails (fixed?)", file=sys.stderr)
    return 0


def _fuzz_config(args) -> "object":
    from repro.harness.fuzz import FuzzConfig

    return FuzzConfig(
        topo=args.topo, hosts=args.hosts, k=args.k,
        initial_members=args.members, messages=args.messages,
        msg_packets=args.msg_packets, incidents_max=args.incidents_max,
        joins_max=args.joins_max, leaves_max=args.leaves_max,
        horizon=args.horizon, loss_rate=args.loss_rate,
        jct_slack=args.jct_slack,
    )


def _cmd_fuzz_run(args) -> int:
    import json

    from repro.harness.fuzz import load_corpus, run_fuzz, save_corpus

    cfg = _fuzz_config(args)
    corpus_in = []
    if args.corpus:
        corpus_in = [s for _, s in load_corpus(args.corpus)]
    doc = run_fuzz(cfg, seed=args.seed, budget_trials=args.budget_trials,
                   corpus=corpus_in, shrink=not args.no_shrink)
    corpus = doc.pop("_corpus")
    if args.corpus and not args.frozen_corpus:
        written = save_corpus(args.corpus, cfg, corpus)
        for path in written:
            print(f"fuzz: corpus input written to {path}", file=sys.stderr)
    blob = json.dumps(doc, indent=2, sort_keys=True)
    if args.out:
        with open(args.out, "w", encoding="utf-8") as fh:
            fh.write(blob + "\n")
    else:
        print(blob)
    n_fail = len(doc["failing_trials"])
    print(f"fuzz: {args.budget_trials} trial(s), corpus {len(corpus)}, "
          f"{doc['coverage_keys']} coverage keys "
          f"[{doc['coverage_signature'][:12]}], {n_fail} failing "
          f"(seed={args.seed})", file=sys.stderr)
    if n_fail and args.repro_dir:
        import os

        os.makedirs(args.repro_dir, exist_ok=True)
        for rep in doc["reproducers"]:
            path = os.path.join(args.repro_dir,
                                f"fuzz-seed{args.seed}-t{rep['trial']}.json")
            with open(path, "w", encoding="utf-8") as fh:
                fh.write(json.dumps(rep, indent=2, sort_keys=True) + "\n")
            print(f"fuzz: reproducer written to {path}", file=sys.stderr)
    return 3 if n_fail else 0


def _cmd_fuzz_replay(args) -> int:
    import json
    import os

    from repro.harness.fuzz import replay_corpus, replay_fuzz_reproducer

    if os.path.isdir(args.target):
        doc = replay_corpus(args.target, jobs=args.jobs)
        blob = json.dumps(doc, indent=2, sort_keys=True)
        if args.out:
            with open(args.out, "w", encoding="utf-8") as fh:
                fh.write(blob + "\n")
        else:
            print(blob)
        print(f"fuzz: replayed {doc['inputs']} corpus input(s), "
              f"{doc['coverage_keys']} coverage keys "
              f"[{doc['coverage_signature'][:12]}], "
              f"{len(doc['failing'])} failing", file=sys.stderr)
        return 3 if doc["failing"] else 0
    try:
        record = replay_fuzz_reproducer(args.target)
    except (OSError, ValueError, KeyError) as exc:
        print(f"fuzz: cannot replay {args.target}: {exc}", file=sys.stderr)
        return 2
    print(json.dumps(record, indent=2, sort_keys=True))
    if record["failing"]:
        print("fuzz: reproducer still failing", file=sys.stderr)
        return 3
    print("fuzz: reproducer no longer fails (fixed?)", file=sys.stderr)
    return 0


def _cmd_fuzz_corpus(args) -> int:
    from repro.harness.fuzz import load_corpus

    entries = load_corpus(args.corpus)
    if not entries:
        print(f"fuzz: no corpus inputs under {args.corpus}", file=sys.stderr)
        return 2
    print(f"corpus {args.corpus}: {len(entries)} input(s)")
    for _, s in entries:
        print(f"  {s.content_hash()[:12]}  msgs={len(s.sources)} "
              f"incidents={len(s.incidents)} churn={len(s.churn)} "
              f"seed={s.trial_seed}")
    return 0


def _cmd_bench_emit(args) -> int:
    import json

    from repro.harness.cache import DEFAULT_CACHE_DIR, ResultCache
    from repro.harness.engine import run_engine
    from repro.harness.runner import ALL_EXPERIMENTS

    names = ([n.strip() for n in args.only.split(",") if n.strip()]
             if args.only else list(ALL_EXPERIMENTS))
    unknown = [n for n in names if n not in ALL_EXPERIMENTS]
    if unknown:
        print(f"unknown experiments: {unknown}; "
              f"available: {sorted(ALL_EXPERIMENTS)}", file=sys.stderr)
        return 2
    if args.jobs < 1:
        print("--jobs must be >= 1", file=sys.stderr)
        return 2
    cache = None
    if not args.no_cache:
        cache = ResultCache(args.cache_dir or DEFAULT_CACHE_DIR)
    quick = not args.full
    run = run_engine(names, quick=quick, jobs=args.jobs, cache=cache,
                     stream=sys.stdout if args.verbose else _NullStream())
    out = args.out or ("BENCH_quick.json" if quick else "BENCH_full.json")
    with open(out, "w", encoding="utf-8") as fh:
        json.dump(run.document(), fh, indent=2, sort_keys=True)
        fh.write("\n")
    print(f"bench: {len(names)} experiment(s) in {run.total_wall_s:.1f}s "
          f"({run.executed} executed, {run.cache_hits} cached, "
          f"jobs={args.jobs}) -> {out}", file=sys.stderr)
    return 0


class _NullStream:
    def write(self, _text: str) -> int:
        return 0

    def flush(self) -> None:
        pass


def _cmd_bench_compare(args) -> int:
    from repro.harness import bench

    try:
        current = bench.load_document(args.current)
        baseline = bench.load_document(args.baseline)
        tolerances = (bench.load_tolerances(args.tolerances)
                      if args.tolerances else None)
    except (OSError, ValueError) as exc:
        print(f"bench: {exc}", file=sys.stderr)
        return 2
    floors = {}
    for spec in args.min_events_per_sec:
        exp_id, sep, value = spec.partition("=")
        try:
            if not sep or not exp_id:
                raise ValueError(spec)
            floors[exp_id] = float(value)
        except ValueError:
            print(f"bench: bad --min-events-per-sec {spec!r} "
                  f"(expected <exp_id>=<floor>)", file=sys.stderr)
            return 2
    comp = bench.compare(
        current, baseline, tolerances,
        check_events=args.check_events,
        max_wall_drift=args.max_wall_drift if args.max_wall_drift >= 0
        else None,
        min_events_per_sec=floors or None)
    print(comp.format(verbose=args.verbose))
    if comp.ok:
        print("bench: no regressions", file=sys.stderr)
        return 0
    print(f"bench: {len(comp.regressions)} metric regression(s), "
          f"{len(comp.missing_experiments)} missing experiment(s)",
          file=sys.stderr)
    return 1


def _cmd_pipeline_dump(args) -> int:
    from repro.apps import Cluster
    from repro.core.accelerator import DEPLOYMENTS, AcceleratorConfig

    if args.deployment not in DEPLOYMENTS:
        print(f"pipeline: unknown deployment {args.deployment!r}; "
              f"valid modes: {', '.join(DEPLOYMENTS)}", file=sys.stderr)
        return 2
    accel_config = AcceleratorConfig(deployment=args.deployment)
    if args.topo == "star":
        cluster = Cluster.testbed(args.hosts, accel_config=accel_config)
    else:
        cluster = Cluster.fat_tree_cluster(args.k, accel_config=accel_config)
    switches = cluster.topo.switches
    if args.switch:
        switches = [s for s in switches if s.name == args.switch]
        if not switches:
            names = ", ".join(s.name for s in cluster.topo.switches)
            print(f"pipeline: no switch {args.switch!r} (have: {names})",
                  file=sys.stderr)
            return 2
    print(f"topology {args.topo}; deployment {args.deployment}")
    for sw in switches:
        print(f"\n{sw.name} ({sw.n_ports} ports)")
        print(f"  rx: {sw.pipeline.describe()}")
        if sw.accelerator is not None:
            accel = sw.accelerator
            print(f"  accel[{accel.cfg.deployment}]: "
                  f"{accel.pipeline.describe()}")
    return 0


def _cmd_info(args) -> int:
    print("Cepheus reproduction — model constants (repro/constants.py)\n")
    entries = [
        ("link bandwidth", f"{constants.LINK_BANDWIDTH_BPS / 1e9:.0f} Gbps"),
        ("per-hop latency", f"{constants.LINK_PROPAGATION_S * 1e9:.0f} ns"),
        ("RoCE MTU", f"{constants.MTU_BYTES} B"),
        ("RC window", f"{constants.ROCE_MAX_OUTSTANDING_PKTS} packets"),
        ("RTO", f"{constants.ROCE_RTO_S * 1e3:.1f} ms"),
        ("ECN band", f"{constants.ECN_KMIN_BYTES // 1000}-"
                     f"{constants.ECN_KMAX_BYTES // 1000} KB"),
        ("PFC XOFF/XON", f"{constants.PFC_XOFF_BYTES // 1000}/"
                         f"{constants.PFC_XON_BYTES // 1000} KB"),
        ("accelerator delay", f"{constants.ACCELERATOR_DELAY_S * 1e9:.0f} ns"),
        ("MFT per group (64p)", f"{constants.MFT_BYTES_PER_GROUP_64P} B"),
        ("MRP records/packet", str(constants.MRP_NODES_PER_PACKET)),
        ("fallback threshold", f"{constants.FALLBACK_GOODPUT_THRESHOLD:.0%}"),
    ]
    width = max(len(k) for k, _ in entries)
    for key, value in entries:
        print(f"  {key:<{width}}  {value}")
    print("\nCalibration provenance: docs/CALIBRATION.md")
    return 0


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="cepheus-repro",
        description="Cepheus (HPCA 2024) reproduction toolkit",
    )
    sub = parser.add_subparsers(dest="command", required=True)

    p_exp = sub.add_parser("experiments",
                           help="reproduce the paper's tables/figures")
    p_exp.add_argument("--only", default="",
                       help="comma-separated experiment ids")
    p_exp.add_argument("--full", action="store_true",
                       help="paper-scale parameters (slow)")
    p_exp.add_argument("--jobs", type=int, default=1,
                       help="experiment worker processes")
    p_exp.set_defaults(fn=_cmd_experiments)

    p_demo = sub.add_parser("demo", help="60-second broadcast comparison")
    p_demo.add_argument("--size", type=int, default=16 << 20,
                        help="message bytes (default 16 MiB)")
    p_demo.set_defaults(fn=_cmd_demo)

    p_sweep = sub.add_parser("sweep", help="custom broadcast sweep")
    p_sweep.add_argument("--sizes", default="65536,1048576")
    p_sweep.add_argument("--groups", default="4")
    p_sweep.add_argument("--algorithms", default="cepheus,binomial,chain")
    p_sweep.set_defaults(fn=_cmd_sweep)

    p_chaos = sub.add_parser(
        "chaos", help="deterministic invariant-checked chaos campaigns")
    chaos_sub = p_chaos.add_subparsers(dest="chaos_command", required=True)

    p_run = chaos_sub.add_parser(
        "run", help="run N seeded trials, shrink any failure")
    p_run.add_argument("--seed", type=int, default=1)
    p_run.add_argument("--trials", type=int, default=5)
    p_run.add_argument("--topo", default="star",
                       choices=("star", "fat_tree"))
    p_run.add_argument("--hosts", type=int, default=6)
    p_run.add_argument("--k", type=int, default=4,
                       help="fat-tree arity (fat_tree topo only)")
    p_run.add_argument("--messages", type=int, default=3)
    p_run.add_argument("--msg-packets", type=int, default=8)
    p_run.add_argument("--incidents", type=int, default=2)
    p_run.add_argument("--horizon", type=float, default=0.04,
                       help="virtual seconds of traffic per trial")
    p_run.add_argument("--loss-rate", type=float, default=0.0)
    p_run.add_argument("--deployment", default="inline",
                       choices=("inline", "lookaside", "source_routed"),
                       help="accelerator deployment style under test")
    p_run.add_argument("--mutate", default="",
                       help="arm a deliberate protocol mutation "
                            "(e.g. psn-skip) to self-test the monitor")
    p_run.add_argument("--no-shrink", action="store_true",
                       help="skip reproducer minimization")
    p_run.add_argument("--out", default="",
                       help="write campaign JSON here instead of stdout")
    p_run.add_argument("--repro-dir", default="",
                       help="directory for per-failure reproducer files")
    p_run.set_defaults(fn=_cmd_chaos_run)

    p_replay = chaos_sub.add_parser(
        "replay", help="re-execute a reproducer JSON file")
    p_replay.add_argument("file")
    p_replay.set_defaults(fn=_cmd_chaos_replay)

    p_churn = sub.add_parser(
        "churn", help="deterministic membership-churn campaigns "
                      "(incremental MRP joins/leaves, failure pruning)")
    churn_sub = p_churn.add_subparsers(dest="churn_command", required=True)

    p_crun = churn_sub.add_parser(
        "run", help="run N seeded churn trials, shrink any failure")
    p_crun.add_argument("--seed", type=int, default=1)
    p_crun.add_argument("--trials", type=int, default=5)
    p_crun.add_argument("--topo", default="star",
                        choices=("star", "fat_tree"))
    p_crun.add_argument("--hosts", type=int, default=8)
    p_crun.add_argument("--k", type=int, default=4,
                        help="fat-tree arity (fat_tree topo only)")
    p_crun.add_argument("--members", type=int, default=5,
                        help="initial group size")
    p_crun.add_argument("--messages", type=int, default=4)
    p_crun.add_argument("--msg-packets", type=int, default=8)
    p_crun.add_argument("--joins", type=int, default=2)
    p_crun.add_argument("--leaves", type=int, default=1)
    p_crun.add_argument("--crashes", type=int, default=1)
    p_crun.add_argument("--horizon", type=float, default=0.04,
                        help="virtual seconds of traffic per trial")
    p_crun.add_argument("--loss-rate", type=float, default=0.0)
    p_crun.add_argument("--mutate", default="",
                        help="arm a deliberate liveness mutation "
                             "(no-detector) to self-test the campaign")
    p_crun.add_argument("--no-shrink", action="store_true",
                        help="skip reproducer minimization")
    p_crun.add_argument("--out", default="",
                        help="write campaign JSON here instead of stdout")
    p_crun.add_argument("--repro-dir", default="",
                        help="directory for per-failure reproducer files")
    p_crun.set_defaults(fn=_cmd_churn_run)

    p_creplay = churn_sub.add_parser(
        "replay", help="re-execute a churn reproducer JSON file")
    p_creplay.add_argument("file")
    p_creplay.set_defaults(fn=_cmd_churn_replay)

    p_broker = sub.add_parser(
        "broker", help="open-loop broker-fabric pub/sub campaigns "
                       "(SLO tails, delivery amplification, MRP delta "
                       "coalescing)")
    broker_sub = p_broker.add_subparsers(dest="broker_command",
                                         required=True)

    p_brun = broker_sub.add_parser(
        "run", help="run N seeded open-loop trials, shrink any failure")
    p_brun.add_argument("--seed", type=int, default=1)
    p_brun.add_argument("--trials", type=int, default=3)
    p_brun.add_argument("--topo", default="fat_tree",
                        choices=("star", "fat_tree"))
    p_brun.add_argument("--hosts", type=int, default=16)
    p_brun.add_argument("--k", type=int, default=4,
                        help="fat-tree arity (fat_tree topo only)")
    p_brun.add_argument("--topics", type=int, default=6)
    p_brun.add_argument("--min-subs", type=int, default=3,
                        help="initial subscribers per topic, lower bound")
    p_brun.add_argument("--max-subs", type=int, default=8,
                        help="initial subscribers per topic, upper bound")
    p_brun.add_argument("--msg-size", type=int, default=65536)
    p_brun.add_argument("--publish-rate", type=float, default=60000.0,
                        help="Poisson publish arrivals per second")
    p_brun.add_argument("--zipf-alpha", type=float, default=0.9,
                        help="topic popularity skew (0 = uniform)")
    p_brun.add_argument("--churn-rate", type=float, default=2000.0,
                        help="subscription toggles per second")
    p_brun.add_argument("--cross-rate", type=float, default=4000.0,
                        help="background unicast transfers per second")
    p_brun.add_argument("--cross-size", type=int, default=131072)
    p_brun.add_argument("--horizon", type=float, default=0.02,
                        help="virtual seconds of open-loop load per trial")
    p_brun.add_argument("--coalesce-window", type=float, default=0.0,
                        help="MRP delta coalescing window in seconds "
                             "(0 = one delta per membership op)")
    p_brun.add_argument("--loss-rate", type=float, default=0.0)
    p_brun.add_argument("--no-shrink", action="store_true",
                        help="skip reproducer minimization")
    p_brun.add_argument("--out", default="",
                        help="write campaign JSON here instead of stdout")
    p_brun.add_argument("--repro-dir", default="",
                        help="directory for per-failure reproducer files")
    p_brun.set_defaults(fn=_cmd_broker_run)

    p_breplay = broker_sub.add_parser(
        "replay", help="re-execute a broker-fabric reproducer JSON file")
    p_breplay.add_argument("file")
    p_breplay.set_defaults(fn=_cmd_broker_replay)

    p_fuzz = sub.add_parser(
        "fuzz", help="coverage-guided protocol fuzzing with differential "
                     "deployment oracles")
    fuzz_sub = p_fuzz.add_subparsers(dest="fuzz_command", required=True)

    p_frun = fuzz_sub.add_parser(
        "run", help="coverage-guided fuzzing session over chaos/churn "
                    "schedules (every trial runs all three deployments)")
    p_frun.add_argument("--seed", type=int, default=1)
    p_frun.add_argument("--budget-trials", type=int, default=50)
    p_frun.add_argument("--topo", default="star",
                        choices=("star", "fat_tree"))
    p_frun.add_argument("--hosts", type=int, default=8)
    p_frun.add_argument("--k", type=int, default=4,
                        help="fat-tree arity (fat_tree topo only)")
    p_frun.add_argument("--members", type=int, default=6,
                        help="initial group size")
    p_frun.add_argument("--messages", type=int, default=3)
    p_frun.add_argument("--msg-packets", type=int, default=6)
    p_frun.add_argument("--incidents-max", type=int, default=2)
    p_frun.add_argument("--joins-max", type=int, default=1)
    p_frun.add_argument("--leaves-max", type=int, default=1)
    p_frun.add_argument("--horizon", type=float, default=0.03,
                        help="virtual seconds of traffic per trial")
    p_frun.add_argument("--loss-rate", type=float, default=0.0)
    p_frun.add_argument("--jct-slack", type=float, default=5.0,
                        help="throughput-oracle ceiling multiplier over "
                             "the analytic JCT model")
    p_frun.add_argument("--corpus", default="",
                        help="corpus directory: seeds the session and "
                             "receives new coverage-reaching inputs")
    p_frun.add_argument("--frozen-corpus", action="store_true",
                        help="read the corpus but do not write new "
                             "entries back")
    p_frun.add_argument("--no-shrink", action="store_true",
                        help="skip reproducer minimization")
    p_frun.add_argument("--out", default="",
                        help="write session JSON here instead of stdout")
    p_frun.add_argument("--repro-dir", default="",
                        help="directory for per-failure reproducer files")
    p_frun.set_defaults(fn=_cmd_fuzz_run)

    p_freplay = fuzz_sub.add_parser(
        "replay", help="re-execute a corpus directory (deterministic "
                       "coverage signature) or one reproducer JSON file")
    p_freplay.add_argument("target",
                           help="corpus directory or reproducer file")
    p_freplay.add_argument("--jobs", type=int, default=1,
                           help="parallel replay workers (directory only; "
                                "the signature is jobs-independent)")
    p_freplay.add_argument("--out", default="",
                           help="write replay JSON here instead of stdout")
    p_freplay.set_defaults(fn=_cmd_fuzz_replay)

    p_fcorpus = fuzz_sub.add_parser(
        "corpus", help="list the inputs of a corpus directory")
    p_fcorpus.add_argument("--corpus", default="tests/harness/corpus",
                           help="corpus directory")
    p_fcorpus.set_defaults(fn=_cmd_fuzz_corpus)

    p_bench = sub.add_parser(
        "bench", help="machine-readable benchmark runs and regression diffs")
    bench_sub = p_bench.add_subparsers(dest="bench_command", required=True)

    p_emit = bench_sub.add_parser(
        "emit", help="run the suite (parallel, cached) and write BENCH JSON")
    p_emit.add_argument("--full", action="store_true",
                        help="paper-scale parameters (slow)")
    p_emit.add_argument("--only", default="",
                        help="comma-separated experiment ids")
    p_emit.add_argument("--jobs", type=int, default=1,
                        help="experiment worker processes")
    p_emit.add_argument("--out", default="",
                        help="output path (default BENCH_<mode>.json)")
    p_emit.add_argument("--cache-dir", default="",
                        help="result-cache directory (default .bench_cache)")
    p_emit.add_argument("--no-cache", action="store_true",
                        help="disable the result cache")
    p_emit.add_argument("--verbose", action="store_true",
                        help="also print the paper-style tables")
    p_emit.set_defaults(fn=_cmd_bench_emit)

    p_cmp = bench_sub.add_parser(
        "compare", help="diff two BENCH documents against tolerances")
    p_cmp.add_argument("current", help="BENCH JSON from the run under test")
    p_cmp.add_argument("baseline", help="committed baseline BENCH JSON")
    p_cmp.add_argument("--tolerances", default="",
                       help="tolerance JSON (default: built-in 8% rel)")
    p_cmp.add_argument("--check-events", action="store_true",
                       help="require per-experiment simulator event "
                            "counts to match the baseline exactly")
    p_cmp.add_argument("--max-wall-drift", type=float, default=-1.0,
                       help="fail if total_wall_s exceeds the baseline "
                            "by more than this fraction (e.g. 0.10); "
                            "one-sided, off by default")
    p_cmp.add_argument("--min-events-per-sec", action="append",
                       default=[], metavar="EXP=FLOOR",
                       help="absolute simulator-throughput floor for one "
                            "experiment in the current document (e.g. "
                            "fig11=150000); repeatable; cached entries "
                            "fail the floor (their throughput is null)")
    p_cmp.add_argument("--verbose", action="store_true",
                       help="print passing metrics too")
    p_cmp.set_defaults(fn=_cmd_bench_compare)

    p_pipe = sub.add_parser(
        "pipeline", help="inspect the configured datapath stage chains")
    pipe_sub = p_pipe.add_subparsers(dest="pipeline_command", required=True)

    p_dump = pipe_sub.add_parser(
        "dump", help="print each switch's rx chain and accelerator "
                     "stage chain (inline/lookaside/source_routed)")
    p_dump.add_argument("--topo", default="star",
                        choices=("star", "fat_tree"))
    p_dump.add_argument("--hosts", type=int, default=4,
                        help="host count (star topo only)")
    p_dump.add_argument("--k", type=int, default=4,
                        help="fat-tree arity (fat_tree topo only)")
    p_dump.add_argument("--deployment", default="inline",
                        help="accelerator deployment mode "
                             "(inline, lookaside, source_routed)")
    p_dump.add_argument("--switch", default="",
                        help="only this switch (default: all)")
    p_dump.set_defaults(fn=_cmd_pipeline_dump)

    p_info = sub.add_parser("info", help="print the model constants")
    p_info.set_defaults(fn=_cmd_info)
    return parser


def main(argv: Optional[List[str]] = None) -> int:
    args = build_parser().parse_args(argv)
    return args.fn(args)


if __name__ == "__main__":  # pragma: no cover
    raise SystemExit(main())
