"""RoCE RC protocol engine.

This is the behavioural model of the commodity RNIC transport the paper
reuses: MTU packetization, PSN sequencing, receiver-side ACK coalescing
and NACK (ePSN) generation, sender-side go-back-N retransmission with a
safeguard timeout, CNP generation at the notification point and DCQCN
at the reaction point.  It deliberately implements *only* what Mellanox
RC offers — no selective retransmission, no multicast awareness —
because Cepheus' whole premise is to leave this layer untouched.

A multicast member in Cepheus uses exactly this class: its QP is
connected to the *virtual* remote ``<McstID, 0x1>`` and never learns it
is part of a group.
"""

from __future__ import annotations

import itertools
from collections import deque
from dataclasses import dataclass
from typing import Any, Callable, Deque, Dict, Optional

from repro import constants
from repro.errors import QPStateError, TransportError
from repro.net.nic import Nic
from repro.net.packet import Packet, PacketType, RdmaOp
from repro.net.simulator import Event, Simulator
from repro.net.trace import ThroughputSampler
from repro.transport.dcqcn import DcqcnConfig, DcqcnRateController
from repro.transport.gleam import GleamConfig, GleamRateController
from repro.transport.memory import MrTable
from repro.transport import qp as qp_state
from repro.transport.qp import QpStateName, RecvState, SendMessage

__all__ = ["RoceConfig", "RoceQP"]

_msg_ids = itertools.count(1)

# Hot-path constants: one global load instead of a class-attribute chain
# per packet (handle_packet runs once per wire arrival).
_DATA = PacketType.DATA
_ACK = PacketType.ACK
_NACK = PacketType.NACK
_CNP = PacketType.CNP
_RTS = QpStateName.RTS


@dataclass
class RoceConfig:
    """Transport tunables (defaults model a ConnectX-5).

    ``retransmit_mode`` selects the loss-recovery discipline:

    * ``"gbn"`` — go-back-N, the CX-5 behaviour the paper evaluates
      (and blames for Cepheus' limited loss tolerance, §V-C);
    * ``"irn"`` — IRN-style selective repeat (Mittal et al., SIGCOMM'18,
      the paper's suggested remedy): receivers buffer out-of-order
      packets and the sender retransmits only the missing PSN.  Distinct
      losses recover serially per round trip (a simplification of IRN's
      SACK bitmap; documented in docs/PROTOCOL.md).

    ``cc`` selects the reaction-point congestion controller:

    * ``"dcqcn"`` — the stock ConnectX-5 DCQCN machinery (default);
    * ``"gleam"`` — the Gleam-style AIMD baseline
      (:class:`~repro.transport.gleam.GleamRateController`), used by
      the MRC k-path experiments as the comparison CC.
    """

    mtu: int = constants.MTU_BYTES
    ack_coalesce: int = constants.ROCE_ACK_COALESCE
    rto: float = constants.ROCE_RTO_S
    max_outstanding: int = constants.ROCE_MAX_OUTSTANDING_PKTS
    line_rate: float = constants.LINK_BANDWIDTH_BPS
    cnp_min_interval: float = constants.CNP_MIN_INTERVAL_S
    dcqcn: Optional[DcqcnConfig] = None
    cc: str = "dcqcn"
    gleam: Optional[GleamConfig] = None
    retransmit_mode: str = "gbn"
    irn_retx_guard: float = 20e-6  # min gap between retransmits of one PSN


class RoceQP:
    """One RC queue pair: send engine + receive/responder engine."""

    def __init__(
        self,
        sim: Simulator,
        nic: Nic,
        config: Optional[RoceConfig] = None,
        mr_table: Optional[MrTable] = None,
        qpn: Optional[int] = None,
    ) -> None:
        self.sim = sim
        self.nic = nic
        self.cfg = config or RoceConfig()
        self.mr_table = mr_table
        self.qpn = nic.allocate_qpn() if qpn is None else qpn
        nic.register_qp(self.qpn, self)
        self.state = QpStateName.RESET
        self.dst_ip: int = 0
        self.dst_qp: int = 0

        # --- send side -------------------------------------------------
        self.sq_psn = 0            # next PSN to assign to a new WQE
        self.snd_una = 0           # oldest unacknowledged PSN
        self.snd_nxt = 0           # next PSN to put on the wire
        self._send_msgs: Deque[SendMessage] = deque()
        self._tx_event: Optional[Event] = None
        self._next_allowed_tx = 0.0
        self._max_sent = 0         # high-water mark: PSNs ever transmitted
        self._rto_event: Optional[Event] = None
        if self.cfg.cc == "dcqcn":
            self.cc = DcqcnRateController(sim, self.cfg.line_rate, self.cfg.dcqcn)
        elif self.cfg.cc == "gleam":
            self.cc = GleamRateController(sim, self.cfg.line_rate, self.cfg.gleam)
        else:
            raise TransportError(f"unknown congestion controller {self.cfg.cc!r}")

        # --- receive side ----------------------------------------------
        self.rq_psn = 0            # expected PSN
        self.recv = RecvState()
        self._inorder_since_ack = 0
        self._nack_pending = False
        self._last_cnp_time = -1e9
        # IRN state: receiver-side out-of-order buffer, sender-side
        # selective-retransmit queue + per-PSN pacing guard.
        self._ooo_buffer: Dict[int, Packet] = {}
        self._retx_queue: Deque[int] = deque()
        self._retx_last: Dict[int, float] = {}
        self.on_message: Optional[Callable[[int, int, float, Any], None]] = None
        self._pkt_pool = sim.pools.pkt
        # The simulation-wide observer bus: "qp_send" fires on every DATA
        # transmission, "deliver" on every in-order delivery.  QPs created
        # after a monitor subscribes are covered automatically because the
        # bus lives on the simulator, not on the QP.
        self.bus = sim.bus

        # --- instrumentation ---------------------------------------------
        self.tx_data_packets = 0
        self.retransmitted_packets = 0
        self.acks_sent = 0
        self.nacks_sent = 0
        self.cnps_sent = 0
        self.acks_received = 0
        self.nacks_received = 0
        self.timeouts = 0
        self.rx_sampler: Optional[ThroughputSampler] = None

    # ------------------------------------------------------------------
    # connection management (the verbs modify_qp path)
    # ------------------------------------------------------------------

    def connect(self, dst_ip: int, dst_qp: int) -> None:
        """Transition to RTS against a remote <dstIP, dstQP>.

        For Cepheus members the remote is the virtual
        ``<McstID, 0x1>`` tuple — the RNIC cannot tell the difference,
        which is the paper's point.
        """
        self.dst_ip = dst_ip
        self.dst_qp = dst_qp
        self.state = QpStateName.RTS

    # ------------------------------------------------------------------
    # verbs send path
    # ------------------------------------------------------------------

    def post_send(
        self,
        size: int,
        *,
        op: RdmaOp = RdmaOp.SEND,
        vaddr: int = 0,
        rkey: int = 0,
        on_complete: Optional[Callable[[int, float], None]] = None,
        on_sent: Optional[Callable[[int, float], None]] = None,
        meta: Any = None,
    ) -> int:
        """Queue one message; returns its msg_id.

        PSNs are assigned eagerly, exactly like a hardware send queue:
        retransmission can then regenerate any PSN from the WQE list.
        """
        if self.state != QpStateName.RTS:
            raise QPStateError(f"QP {self.qpn} not in RTS")
        if size <= 0:
            raise TransportError(f"invalid message size {size}")
        mtu = self.cfg.mtu
        npkts = (size + mtu - 1) // mtu
        msg = SendMessage(
            msg_id=next(_msg_ids), size=size, op=op,
            first_psn=self.sq_psn, last_psn=self.sq_psn + npkts - 1,
            vaddr=vaddr, rkey=rkey, posted_at=self.sim.now,
            on_complete=on_complete, on_sent=on_sent, meta=meta,
        )
        self.sq_psn += npkts
        self._send_msgs.append(msg)
        self.cc.start()
        self._pump()
        return msg.msg_id

    def post_write(self, size: int, vaddr: int, rkey: int, **kw) -> int:
        """One-sided RDMA WRITE (sugar over :meth:`post_send`)."""
        return self.post_send(size, op=RdmaOp.WRITE, vaddr=vaddr, rkey=rkey, **kw)

    @property
    def outstanding(self) -> int:
        return self.snd_nxt - self.snd_una

    @property
    def send_idle(self) -> bool:
        return self.snd_una == self.sq_psn and not self._send_msgs

    # -- transmit pump -----------------------------------------------------

    def _can_send(self) -> bool:
        if self._retx_queue:
            return self.state == QpStateName.RTS and bool(self._send_msgs)
        return (
            self.state == QpStateName.RTS
            and self.snd_nxt < self.sq_psn
            and self.outstanding < self.cfg.max_outstanding
            and bool(self._send_msgs)
        )

    def _pump(self) -> None:
        # _can_send() inlined: this runs after every transmission and
        # every ACK, so the call overhead shows up in every benchmark.
        if (self._tx_event is not None
                or not self._send_msgs or self.state is not _RTS):
            return
        if not self._retx_queue and (
                self.snd_nxt >= self.sq_psn
                or self.snd_nxt - self.snd_una >= self.cfg.max_outstanding):
            return
        sim = self.sim
        delay = self._next_allowed_tx - sim.now
        if delay < 0.0:
            delay = 0.0
        self._tx_event = sim.schedule(delay, self._tx_one)

    def _tx_one(self) -> None:
        self._tx_event = None
        if not self._send_msgs or self.state is not _RTS:
            return
        sim = self.sim
        if self._retx_queue:
            # IRN selective repeat: lost PSNs jump the line.
            psn = self._retx_queue.popleft()
            if psn < self.snd_una:  # acked meanwhile
                self._pump()
                return
            pkt = self._packet_for(psn)
            bus = self.bus
            if bus.qp_send:
                bus.publish("qp_send", self, pkt)
            self.nic.send(pkt)
            ws = pkt._ws  # read after send: the SR header adds bytes
            self.tx_data_packets += 1
            self.retransmitted_packets += 1
            self.cc.on_bytes_sent(ws)
            rate = self.cc.rate
            line = self.cfg.line_rate
            if rate > line:
                rate = line
            self._next_allowed_tx = sim.now + ws * 8.0 / rate
            self._arm_rto()
            self._pump()
            return
        psn = self.snd_nxt
        if (psn >= self.sq_psn
                or psn - self.snd_una >= self.cfg.max_outstanding):
            return  # _can_send()'s window checks, inlined
        pkt = self._packet_for(psn)
        bus = self.bus
        if bus.qp_send:
            bus.publish("qp_send", self, pkt)
        self.nic.send(pkt)
        ws = pkt._ws  # read after send: the SR header adds bytes
        self.tx_data_packets += 1
        if pkt.retransmit:
            self.retransmitted_packets += 1
        self.cc.on_bytes_sent(ws)
        rate = self.cc.rate
        line = self.cfg.line_rate
        if rate > line:
            rate = line
        self._next_allowed_tx = sim.now + ws * 8.0 / rate
        self.snd_nxt = nxt = psn + 1
        if nxt > self._max_sent:
            self._max_sent = nxt
        if pkt.last and not pkt.retransmit:
            # "Local send done": the WQE's last byte hit the wire.  MPI
            # implementations chain the next blocking send off this, not
            # off the remote ACK.  Looked up by the true sequence PSN —
            # pkt.psn is the wire value, which fault hooks may corrupt.
            msg = self._msg_containing(psn)
            if msg.on_sent is not None and not msg.sent_notified:
                msg.sent_notified = True
                msg.on_sent(msg.msg_id, sim.now)
        self._arm_rto()
        self._pump()

    def _packet_for(self, psn: int) -> Packet:
        msg = self._msg_containing(psn)
        mtu = self.cfg.mtu
        offset = (psn - msg.first_psn) * mtu
        payload = min(mtu, msg.size - offset)
        wire_psn = psn
        if qp_state.psn_tx_hook is not None:
            # Test-only fault injection: corrupt the wire PSN while the
            # send-queue state keeps the true sequence (see qp.psn_tx_hook).
            wire_psn = qp_state.psn_tx_hook(self, psn)
        return self._pkt_pool.acquire_data(
            self.nic.ip, self.dst_ip, self.qpn, self.dst_qp, wire_psn,
            payload, msg.op, msg.msg_id,
            psn == msg.first_psn, psn == msg.last_psn,
            msg.vaddr + offset, msg.rkey, self.sim.now,
            psn < self._max_sent, msg.meta,
        )

    def _msg_containing(self, psn: int) -> SendMessage:
        for msg in self._send_msgs:
            if msg.first_psn <= psn <= msg.last_psn:
                return msg
        raise TransportError(f"QP {self.qpn}: PSN {psn} matches no queued WQE")

    # -- retransmission timer -------------------------------------------------

    def _arm_rto(self) -> None:
        ev = self._rto_event
        if ev is not None:
            # Re-arm in place: tombstone the old heap entry, push a
            # fresh one — no handle churn on the hottest timer path.
            self.sim.reschedule(ev, self.cfg.rto)
        else:
            self._rto_event = self.sim.schedule(self.cfg.rto, self._on_rto)

    def _cancel_rto(self) -> None:
        if self._rto_event is not None:
            self._rto_event.cancel()
            self._rto_event = None

    def _on_rto(self) -> None:
        self._rto_event = None
        if self.snd_una >= self.sq_psn:
            return  # everything acked; stale timer
        self.timeouts += 1
        if self.cfg.retransmit_mode == "irn":
            # Selective backstop: re-probe the oldest unacknowledged PSN.
            if self.snd_una not in self._retx_queue:
                self._retx_queue.append(self.snd_una)
            self._retx_last[self.snd_una] = self.sim.now
        else:
            # Go-back-N from the oldest unacknowledged PSN.
            self.snd_nxt = self.snd_una
        self._next_allowed_tx = self.sim.now
        self._arm_rto()
        self._pump()

    # ------------------------------------------------------------------
    # wire ingress (called by the NIC demux)
    # ------------------------------------------------------------------

    def handle_packet(self, pkt: Packet) -> None:
        t = pkt.ptype
        if t == _DATA:
            self._handle_data(pkt)
        elif t == _ACK:
            self._handle_ack(pkt)
        elif t == _NACK:
            self._handle_nack(pkt)
        elif t == _CNP:
            self.cc.on_cnp()

    # -- responder side ----------------------------------------------------

    def _handle_data(self, pkt: Packet) -> None:
        if pkt.ecn:
            self._maybe_send_cnp()
        pool = self._pkt_pool
        if pkt.psn == self.rq_psn:
            self._nack_pending = False
            self.rq_psn += 1
            self._deliver(pkt)
            self._inorder_since_ack += 1
            force_ack = pkt.last
            pool.release(pkt)  # delivered: consumers keep meta, not pkt
            # IRN: the gap just filled — drain the buffered run.
            while self._ooo_buffer and self.rq_psn in self._ooo_buffer:
                buffered = self._ooo_buffer.pop(self.rq_psn)
                self.rq_psn += 1
                self._deliver(buffered)
                self._inorder_since_ack += 1
                force_ack = force_ack or buffered.last
                pool.release(buffered)
            if force_ack or self._inorder_since_ack >= self.cfg.ack_coalesce:
                self._send_ack()
        elif pkt.psn < self.rq_psn:
            # Duplicate (e.g. go-back-N overshoot, or an IRN retransmit
            # another group member needed): re-ack, never re-deliver.
            self._send_ack()
            pool.release(pkt)
        elif self.cfg.retransmit_mode == "irn":
            # Selective repeat: buffer out of order, NACK the gap head on
            # every arrival (the sender dedupes retransmits).
            if pkt.psn not in self._ooo_buffer:
                self._ooo_buffer[pkt.psn] = pkt  # retained: do NOT recycle
            else:
                pool.release(pkt)  # duplicate of an already-buffered PSN
            self._send_nack()
        else:
            # Sequence gap: one NACK per go-back-N round (CX-5 behaviour).
            if not self._nack_pending:
                self._nack_pending = True
                self._send_nack()
            pool.release(pkt)

    def _deliver(self, pkt: Packet) -> None:
        if self.bus.deliver:
            self.bus.publish("deliver", self, pkt)
        rs = self.recv
        if pkt.first:
            rs.cur_msg_id = pkt.msg_id
            rs.cur_bytes = 0
            rs.cur_write_valid = True
            if pkt.op == RdmaOp.WRITE and self.mr_table is not None:
                rs.cur_write_valid = self.mr_table.validate_write(
                    pkt.rkey, pkt.vaddr, pkt.payload)
        rs.cur_bytes += pkt.payload
        if self.rx_sampler is not None:
            self.rx_sampler.record(self.sim.now, pkt.payload)
        if pkt.last:
            rs.messages_delivered += 1
            rs.bytes_delivered += rs.cur_bytes
            if self.on_message is not None:
                self.on_message(pkt.msg_id, rs.cur_bytes, self.sim.now, pkt.meta)
            rs.cur_msg_id = None

    def _send_ack(self) -> None:
        self._inorder_since_ack = 0
        self.acks_sent += 1
        ack = self._pkt_pool.acquire_fb(
            _ACK, self.nic.ip, self.dst_ip,
            self.qpn, self.dst_qp, self.rq_psn - 1, self.sim.now)
        self.nic.send(ack)

    def _send_nack(self) -> None:
        self.nacks_sent += 1
        nack = self._pkt_pool.acquire_fb(
            _NACK, self.nic.ip, self.dst_ip,
            self.qpn, self.dst_qp, self.rq_psn, self.sim.now)
        self.nic.send(nack)

    def _maybe_send_cnp(self) -> None:
        now = self.sim.now
        if now - self._last_cnp_time < self.cfg.cnp_min_interval:
            return
        self._last_cnp_time = now
        self.cnps_sent += 1
        cnp = self._pkt_pool.acquire_fb(
            _CNP, self.nic.ip, self.dst_ip,
            self.qpn, self.dst_qp, 0, now)
        self.nic.send(cnp)

    # -- requester side (feedback processing) ----------------------------------

    def _handle_ack(self, pkt: Packet) -> None:
        self.acks_received += 1
        new_una = pkt.psn + 1
        if new_una > self.snd_una:
            self.snd_una = new_una
            if self.snd_nxt < self.snd_una:
                self.snd_nxt = self.snd_una
            self._complete_acked()
            if len(self._retx_last) > 64:
                self._retx_last = {p: t for p, t in self._retx_last.items()
                                   if p >= self.snd_una}
            if self.send_idle:
                self._cancel_rto()
                self.cc.stop()
            else:
                self._arm_rto()
            self._pump()

    def _handle_nack(self, pkt: Packet) -> None:
        """ePSN semantics: everything below pkt.psn is acknowledged; the
        stream must restart at pkt.psn (go-back-N)."""
        self.nacks_received += 1
        epsn = pkt.psn
        if epsn > self.snd_una:
            self.snd_una = epsn
            self._complete_acked()
        if self.cfg.retransmit_mode == "irn":
            # Selective repeat: resend just the missing PSN, rate-guarded
            # so repeated NACKs for one gap don't stampede.
            if epsn >= self.snd_una and epsn < self.snd_nxt:
                last = self._retx_last.get(epsn, -1e9)
                if self.sim.now - last >= self.cfg.irn_retx_guard:
                    self._retx_last[epsn] = self.sim.now
                    if epsn not in self._retx_queue:
                        self._retx_queue.append(epsn)
            self._arm_rto()
            self._pump()
            return
        # A NACK whose ePSN is below snd_una is stale (those PSNs are
        # already acknowledged and their WQEs reaped); never rewind
        # behind the acknowledged prefix.
        target = max(epsn, self.snd_una)
        if target < self.snd_nxt:
            self.snd_nxt = target
            self._next_allowed_tx = self.sim.now
        self._arm_rto()
        self._pump()

    def _complete_acked(self) -> None:
        while self._send_msgs and self._send_msgs[0].last_psn < self.snd_una:
            msg = self._send_msgs.popleft()
            if msg.on_complete is not None:
                msg.on_complete(msg.msg_id, self.sim.now)

    # ------------------------------------------------------------------
    # PSN synchronization hooks (Cepheus source switching, §III-E)
    # ------------------------------------------------------------------

    def sync_as_new_source(self) -> None:
        """New source: sqPSN <- rqPSN (and align the send pointers)."""
        if not self.send_idle:
            raise QPStateError("cannot switch source with unacked data")
        self.sq_psn = self.snd_una = self.snd_nxt = self.rq_psn

    def sync_as_old_source(self) -> None:
        """Old source: rqPSN <- sqPSN."""
        self.rq_psn = self.sq_psn
        self._nack_pending = False
        self._ooo_buffer.clear()

    def abort_sends(self) -> None:
        """Drop every queued and unacknowledged WQE without completing it.

        Used by the safeguard fallback (§V-D) to stop a transfer the
        fabric can no longer deliver.  The QP stays usable; the stream
        position jumps to the end of the aborted WQEs so no stale
        retransmission timer keeps the simulation alive.
        """
        self._send_msgs.clear()
        self.snd_una = self.snd_nxt = self.sq_psn
        self._retx_queue.clear()
        self._retx_last.clear()
        self._cancel_rto()
        if self._tx_event is not None:
            self._tx_event.cancel()
            self._tx_event = None
        self.cc.stop()

    def close(self) -> None:
        """Tear the QP down and cancel every timer."""
        self.state = QpStateName.RESET
        self._cancel_rto()
        if self._tx_event is not None:
            self._tx_event.cancel()
            self._tx_event = None
        self.cc.stop()
        self.nic.deregister_qp(self.qpn)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (f"<RoceQP {self.nic.name}:{self.qpn} -> {self.dst_ip}:{self.dst_qp} "
                f"una={self.snd_una} nxt={self.snd_nxt} sq={self.sq_psn} rq={self.rq_psn}>")
