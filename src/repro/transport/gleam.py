"""Gleam-style AIMD rate control (Zhu et al., APNet'22 lineage).

Gleam is the programmable-switch multicast CC scheme the paper compares
against (§II-A, §V): receivers' ECN marks are aggregated in-network and
the sender reacts with plain AIMD — multiplicative decrease on each
congestion notification, clocked additive increase otherwise.  It is
deliberately simpler than DCQCN (no alpha estimator, no byte counter,
no fast recovery / hyper increase ladder), which makes it the natural
*baseline* reaction point for the MRC-style k-path experiments: a lane
under Gleam converges slower after a loss burst, so the per-path
feedback machinery has something to show against.

The class mirrors :class:`~repro.transport.dcqcn.DcqcnRateController`'s
interface exactly (``start``/``stop``/``active``/``on_cnp``/
``on_bytes_sent``/``rate``/``cnp_count``) so :class:`RoceQP` can swap
it in via ``RoceConfig.cc = "gleam"`` without touching the send engine.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional

from repro import constants
from repro.net.simulator import Event, Simulator

__all__ = ["GleamConfig", "GleamRateController"]


@dataclass
class GleamConfig:
    """AIMD parameters.

    ``beta`` is the multiplicative-decrease factor applied per CNP
    (``rate *= 1 - beta``); ``rai`` bps are added every ``rate_timer``
    seconds while the flow is active.
    """

    beta: float = 0.5
    rate_timer: float = constants.DCQCN_RATE_INCREASE_TIMER_S
    rai: float = constants.DCQCN_RAI_BPS
    min_rate: float = constants.DCQCN_MIN_RATE_BPS
    enabled: bool = True


class GleamRateController:
    """Per-QP Gleam reaction point (drop-in for DCQCN)."""

    def __init__(self, sim: Simulator, line_rate: float,
                 config: Optional[GleamConfig] = None) -> None:
        self.sim = sim
        self.line_rate = line_rate
        self.cfg = config or GleamConfig()
        self.rate = line_rate
        self._active = False
        self._rate_ev: Optional[Event] = None
        self.cnp_count = 0

    # -- lifecycle -----------------------------------------------------------

    def start(self) -> None:
        """Arm the additive-increase timer; idempotent."""
        if self._active or not self.cfg.enabled:
            return
        self._active = True
        self._arm_rate_timer()

    def stop(self) -> None:
        """Cancel the timer so the event queue can drain."""
        self._active = False
        if self._rate_ev is not None:
            self._rate_ev.cancel()
            self._rate_ev = None

    @property
    def active(self) -> bool:
        return self._active

    # -- congestion feedback ---------------------------------------------------

    def on_cnp(self) -> None:
        """Multiplicative decrease on every congestion notification."""
        if not self.cfg.enabled:
            return
        self.cnp_count += 1
        self.rate = max(self.rate * (1.0 - self.cfg.beta), self.cfg.min_rate)

    def on_bytes_sent(self, nbytes: int) -> None:
        """Gleam's increase is purely timer-clocked; bytes are ignored."""

    # -- timer ------------------------------------------------------------------

    def _arm_rate_timer(self) -> None:
        if self._rate_ev is not None:
            self._rate_ev.cancel()
        self._rate_ev = self.sim.schedule(self.cfg.rate_timer, self._rate_tick)

    def _rate_tick(self) -> None:
        if not self._active:
            return
        self.rate = min(self.rate + self.cfg.rai, self.line_rate)
        self._arm_rate_timer()
