"""Verbs-like host API.

The paper's end-host integration is deliberately thin: UCX creates RoCE
QPs through the standard verbs API and merely points each QP at a
*virtual* remote (``ibv_modify_qp`` lets software choose dstIP/dstQP
freely, §III-A).  This module mirrors that surface so the examples and
applications read like RDMA code:

>>> ctx = VerbsContext(sim, nic)
>>> qp = ctx.create_qp()
>>> ctx.modify_qp(qp, dst_ip=peer_ip, dst_qp=peer_qpn)   # RTR/RTS
>>> qp.post_send(4096, on_complete=cq.push)
"""

from __future__ import annotations

from collections import deque
from dataclasses import dataclass
from typing import Deque, List, Optional, Tuple

from repro.net.nic import Nic
from repro.net.simulator import Simulator
from repro.transport.memory import MemoryRegion, MrTable
from repro.transport.roce import RoceConfig, RoceQP

__all__ = ["CompletionQueue", "VerbsContext"]


@dataclass(frozen=True)
class Completion:
    """One completion-queue entry."""

    msg_id: int
    timestamp: float


class CompletionQueue:
    """Minimal CQ: completions are pushed by QPs and polled by the app."""

    def __init__(self) -> None:
        self._entries: Deque[Completion] = deque()

    def push(self, msg_id: int, timestamp: float) -> None:
        self._entries.append(Completion(msg_id, timestamp))

    def poll(self, max_entries: int = 16) -> List[Completion]:
        out: List[Completion] = []
        while self._entries and len(out) < max_entries:
            out.append(self._entries.popleft())
        return out

    def __len__(self) -> int:
        return len(self._entries)


class VerbsContext:
    """Per-host verbs context: QP factory + MR registry."""

    def __init__(self, sim: Simulator, nic: Nic,
                 config: Optional[RoceConfig] = None) -> None:
        self.sim = sim
        self.nic = nic
        self.config = config or RoceConfig()
        self.mr_table = MrTable()
        self.qps: List[RoceQP] = []

    def create_qp(self, config: Optional[RoceConfig] = None) -> RoceQP:
        qp = RoceQP(self.sim, self.nic, config or self.config,
                    mr_table=self.mr_table)
        self.qps.append(qp)
        return qp

    def modify_qp(self, qp: RoceQP, dst_ip: int, dst_qp: int) -> None:
        """The RTR/RTS transition; accepts any <dstIP, dstQP>, physical
        or virtual — exactly the freedom Cepheus exploits."""
        qp.connect(dst_ip, dst_qp)

    def reg_mr(self, length: int) -> MemoryRegion:
        return self.mr_table.register(length)

    def destroy(self) -> None:
        for qp in self.qps:
            qp.close()
        self.qps.clear()
