"""Queue-pair state containers.

The mutable protocol engine lives in :mod:`repro.transport.roce`; this
module holds the passive state types: the QP lifecycle states from the
IB spec (collapsed to the ones the simulation distinguishes), the
send-queue message records, and receive-side reassembly state.

PSNs are modelled as unbounded integers rather than 24-bit wrapping
counters: no experiment in the paper sends anywhere near 2^24 packets
per QP, and unbounded PSNs keep every min/ordering comparison in the
Cepheus feedback aggregation trivially correct.  (A production switch
implements the same comparisons with serial-number arithmetic.)
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, field
from typing import Any, Callable, Optional

from repro.net.packet import RdmaOp

__all__ = ["QpStateName", "SendMessage", "RecvState", "psn_tx_hook"]

#: Test-only fault-injection hook.  When set to a callable
#: ``hook(qp, psn) -> int``, the RoCE engine stamps the returned value
#: as the wire PSN of every outgoing DATA packet (the QP's internal
#: sequencing state is untouched).  The mutation smoke tests use it to
#: deliberately skip a PSN and prove the InvariantMonitor flags the
#: violation — a guard against false negatives in the checker itself.
#: Production code must leave it as None.
psn_tx_hook: Optional[Callable[[Any, int], int]] = None


class QpStateName(enum.Enum):
    """QP lifecycle (RESET -> RTS covers everything the model needs)."""

    RESET = "reset"
    RTS = "rts"        # connected: ready to send and receive
    ERROR = "error"


@dataclass
class SendMessage:
    """One posted work request occupying PSNs [first_psn, last_psn]."""

    msg_id: int
    size: int
    op: RdmaOp
    first_psn: int
    last_psn: int
    vaddr: int = 0
    rkey: int = 0
    posted_at: float = 0.0
    on_complete: Optional[Callable[[int, float], None]] = None
    on_sent: Optional[Callable[[int, float], None]] = None
    meta: Any = None
    sent_notified: bool = False

    @property
    def packet_count(self) -> int:
        return self.last_psn - self.first_psn + 1


@dataclass
class RecvState:
    """Receive-side reassembly of the in-order byte stream."""

    cur_msg_id: Optional[int] = None
    cur_bytes: int = 0
    cur_write_valid: bool = True
    messages_delivered: int = 0
    bytes_delivered: int = 0
