"""DCQCN rate control (Zhu et al., SIGCOMM'15).

DCQCN is the congestion control built into the ConnectX-5 RNICs the
paper targets; the simulations in §V-C state "retransmission and CC are
go-back-N and DCQCN, same as Mellanox ConnectX-5".  Cepheus reuses the
end-host machinery *unchanged* and only filters CNPs in the network, so
this module implements the stock reaction-point algorithm:

* on CNP:     ``target = rate``; ``rate *= 1 - alpha/2``;
              ``alpha = (1-g)*alpha + g``; increase state resets.
* alpha timer (no CNP for a period): ``alpha *= (1-g)``.
* increase events, fired by a timer and by a byte counter:
  fast recovery (first F events): ``rate = (target+rate)/2``;
  additive increase:  ``target += R_AI``;
  hyper increase:     ``target += R_HAI`` (both also average rate up).

Timers only run while the owner marks the flow active, so an idle
simulation drains naturally.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional

from repro import constants
from repro.net.simulator import Event, Simulator

__all__ = ["DcqcnConfig", "DcqcnRateController"]


@dataclass
class DcqcnConfig:
    """Reaction-point parameters (defaults from the DCQCN paper / CX-5)."""

    g: float = constants.DCQCN_ALPHA_G
    alpha_timer: float = constants.DCQCN_ALPHA_TIMER_S
    rate_timer: float = constants.DCQCN_RATE_INCREASE_TIMER_S
    byte_counter: int = constants.DCQCN_BYTE_COUNTER
    rai: float = constants.DCQCN_RAI_BPS
    rhai: float = constants.DCQCN_RHAI_BPS
    f: int = constants.DCQCN_F
    min_rate: float = constants.DCQCN_MIN_RATE_BPS
    enabled: bool = True


class DcqcnRateController:
    """Per-QP DCQCN reaction point."""

    def __init__(self, sim: Simulator, line_rate: float,
                 config: Optional[DcqcnConfig] = None) -> None:
        self.sim = sim
        self.line_rate = line_rate
        self.cfg = config or DcqcnConfig()
        self.rate = line_rate          # R_C
        self.target = line_rate        # R_T
        self.alpha = 1.0
        self._timer_events = 0         # T since last CNP
        self._byte_events = 0          # BC since last CNP
        self._bytes_since_event = 0
        self._active = False
        self._alpha_ev: Optional[Event] = None
        self._rate_ev: Optional[Event] = None
        self.cnp_count = 0

    # -- lifecycle -----------------------------------------------------------

    def start(self) -> None:
        """Arm the periodic timers; idempotent."""
        if self._active or not self.cfg.enabled:
            return
        self._active = True
        self._arm_alpha_timer()
        self._arm_rate_timer()

    def stop(self) -> None:
        """Cancel timers so the event queue can drain."""
        self._active = False
        if self._alpha_ev is not None:
            self._alpha_ev.cancel()
            self._alpha_ev = None
        if self._rate_ev is not None:
            self._rate_ev.cancel()
            self._rate_ev = None

    @property
    def active(self) -> bool:
        return self._active

    # -- congestion feedback ----------------------------------------------------

    def on_cnp(self) -> None:
        """The RNIC received a CNP for this flow."""
        if not self.cfg.enabled:
            return
        self.cnp_count += 1
        self.target = self.rate
        self.alpha = (1.0 - self.cfg.g) * self.alpha + self.cfg.g
        self.rate = max(self.rate * (1.0 - self.alpha / 2.0), self.cfg.min_rate)
        self._timer_events = 0
        self._byte_events = 0
        self._bytes_since_event = 0
        if self._active:
            self._arm_alpha_timer()
            self._arm_rate_timer()

    def on_bytes_sent(self, nbytes: int) -> None:
        """Feed the byte counter; may fire an increase event."""
        if not (self.cfg.enabled and self._active):
            return
        self._bytes_since_event += nbytes
        while self._bytes_since_event >= self.cfg.byte_counter:
            self._bytes_since_event -= self.cfg.byte_counter
            self._byte_events += 1
            self._increase()

    # -- timers -----------------------------------------------------------------

    def _arm_alpha_timer(self) -> None:
        if self._alpha_ev is not None:
            self._alpha_ev.cancel()
        self._alpha_ev = self.sim.schedule(self.cfg.alpha_timer, self._alpha_tick)

    def _alpha_tick(self) -> None:
        if not self._active:
            return
        self.alpha = (1.0 - self.cfg.g) * self.alpha
        self._arm_alpha_timer()

    def _arm_rate_timer(self) -> None:
        if self._rate_ev is not None:
            self._rate_ev.cancel()
        self._rate_ev = self.sim.schedule(self.cfg.rate_timer, self._rate_tick)

    def _rate_tick(self) -> None:
        if not self._active:
            return
        self._timer_events += 1
        self._increase()
        self._arm_rate_timer()

    # -- increase machinery --------------------------------------------------------

    def _increase(self) -> None:
        f = self.cfg.f
        t, b = self._timer_events, self._byte_events
        if t > f and b > f:
            self.target = min(self.target + self.cfg.rhai, self.line_rate)
        elif t > f or b > f:
            self.target = min(self.target + self.cfg.rai, self.line_rate)
        # fast recovery and both increase styles share the averaging step
        self.rate = min((self.target + self.rate) / 2.0, self.line_rate)
