"""Memory regions for one-sided RDMA WRITE.

The simulation is timing-accurate rather than data-accurate, so a
memory region is just an (address, length, rkey) record.  What matters
for Cepheus is the *check*: a responder RNIC only executes a WRITE whose
RETH matches a local MR ("The WRITE responder's RNIC checks whether the
WRITE request matches its local MR and only executes the request when
they match", §III-B) — that check is why the Cepheus leaf switch must
rewrite the RETH per receiver, and the tests exercise it both ways.
"""

from __future__ import annotations

import itertools
from dataclasses import dataclass
from typing import Dict, Optional

from repro.errors import MemoryRegionError

__all__ = ["MemoryRegion", "MrTable"]

_rkeys = itertools.count(0x1000)


@dataclass(frozen=True)
class MemoryRegion:
    """One registered memory region."""

    addr: int
    length: int
    rkey: int

    def contains(self, addr: int, length: int) -> bool:
        return self.addr <= addr and addr + length <= self.addr + self.length


class MrTable:
    """Per-host registry of memory regions, keyed by rkey."""

    def __init__(self) -> None:
        self._regions: Dict[int, MemoryRegion] = {}
        self._next_addr = 0x1000_0000
        self.write_hits = 0
        self.write_misses = 0

    def register(self, length: int, addr: Optional[int] = None) -> MemoryRegion:
        """Register a region of ``length`` bytes; returns the MR with rkey."""
        if length <= 0:
            raise MemoryRegionError(f"invalid MR length {length}")
        if addr is None:
            addr = self._next_addr
            self._next_addr += length + 0x1000
        mr = MemoryRegion(addr, length, next(_rkeys))
        self._regions[mr.rkey] = mr
        return mr

    def deregister(self, rkey: int) -> None:
        self._regions.pop(rkey, None)

    def lookup(self, rkey: int) -> Optional[MemoryRegion]:
        return self._regions.get(rkey)

    def validate_write(self, rkey: int, addr: int, length: int) -> bool:
        """The responder-side RETH check; counts hits/misses for tests."""
        mr = self._regions.get(rkey)
        ok = mr is not None and mr.contains(addr, length)
        if ok:
            self.write_hits += 1
        else:
            self.write_misses += 1
        return ok
