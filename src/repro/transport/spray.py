"""MRC-style k-path spraying over per-lane RC connections.

A k-lane group (see :mod:`repro.core.group`) gives every member k
independent RC connections, one per path lane, each addressed to its
own lane McstID.  This module adds the transport layer on top:

* :class:`LaneSprayer` (sender side) splits one logical message of
  ``size`` bytes into k contiguous, MTU-aligned byte sub-ranges and
  posts each as an ordinary RC sub-message on its lane's QP.  Each lane
  therefore carries its sub-range in its *own* PSN space — the lane
  QP's send queue numbers exactly the packets of that lane's share —
  so per-lane feedback aggregation needs no cross-lane state.
* :class:`LaneReassembler` (receiver side) accumulates the per-lane
  sub-messages of one spray and completes the logical message exactly
  once, when the union of received byte ranges covers ``[0, size)``.
* :class:`LaneHealthMonitor` watches the sender-side lane QPs for
  acknowledgement stagnation; a lane whose snd_una stops advancing
  while data is outstanding is declared dead, and the sprayer
  *re-sprays* that lane's entire share across the surviving lanes.
  The survivors never rewind — their PSN streams are untouched, so
  recovery costs one extra sub-range per survivor instead of a
  group-wide go-back-N.  Duplicated bytes (the dead lane may have
  delivered a prefix before dying) are absorbed by the receiver's
  range union.

Sub-messages carry their placement in the WQE ``meta`` field as
``("lane-spray", spray_id, lane, offset, length, total, respray)``;
the RC engine delivers meta verbatim with the message, so the
reassembler needs no side channel.
"""

from __future__ import annotations

import itertools
from typing import Callable, Dict, List, Optional, Set, Tuple

from repro.errors import TransportError
from repro.net.pipeline import ObserverBus
from repro.net.simulator import Event, Simulator
from repro.transport.roce import RoceQP

__all__ = ["LaneSprayer", "LaneReassembler", "LaneHealthMonitor",
           "lane_shares", "merge_ranges", "covers"]

_spray_ids = itertools.count(1)

#: A received byte segment: (offset, length).
Range = Tuple[int, int]


def lane_shares(total: int, nlanes: int, mtu: int) -> List[Range]:
    """Split ``[0, total)`` into ``nlanes`` contiguous MTU-aligned shares.

    Packet counts (not raw bytes) are balanced: each lane gets
    ``npkts // nlanes`` full-MTU packets, the first ``npkts % nlanes``
    lanes one more, and only the final packet of the message may be a
    runt.  A message smaller than ``nlanes`` packets leaves the tail
    lanes with zero-length shares (the sprayer skips those).
    """
    if total <= 0:
        raise TransportError(f"invalid spray size {total}")
    if nlanes < 1:
        raise TransportError(f"invalid lane count {nlanes}")
    npkts = (total + mtu - 1) // mtu
    base, extra = divmod(npkts, nlanes)
    shares: List[Range] = []
    offset = 0
    for lane in range(nlanes):
        pkts = base + (1 if lane < extra else 0)
        length = min(pkts * mtu, total - offset)
        shares.append((offset, length))
        offset += length
    return shares


def merge_ranges(ranges: List[Range]) -> List[Range]:
    """Coalesce possibly-overlapping (offset, length) ranges."""
    if not ranges:
        return []
    merged: List[Range] = []
    for off, length in sorted(r for r in ranges if r[1] > 0):
        if merged and off <= merged[-1][0] + merged[-1][1]:
            last_off, last_len = merged[-1]
            merged[-1] = (last_off, max(last_len, off + length - last_off))
        else:
            merged.append((off, length))
    return merged


def covers(ranges: List[Range], total: int) -> bool:
    """True when the union of ``ranges`` covers ``[0, total)``."""
    merged = merge_ranges(ranges)
    return len(merged) == 1 and merged[0] == (0, total)


class LaneSprayer:
    """Sender-side striping of one message across k lane QPs.

    ``lane_qps[l]`` must be the sender's lane-l QP (all in RTS against
    their lane McstIDs).  :meth:`spray` posts the per-lane sub-messages;
    ``on_complete(spray_id, now)`` fires once the sender-side union of
    acknowledged byte ranges covers the whole message — including after
    a respray, where the dead lane's share completes on the survivors.
    """

    def __init__(self, sim: Simulator, lane_qps: List[RoceQP], *,
                 bus: Optional[ObserverBus] = None,
                 on_complete: Optional[Callable[[int, float], None]] = None,
                 ) -> None:
        if not lane_qps:
            raise TransportError("a sprayer needs at least one lane QP")
        self.sim = sim
        self.lane_qps = list(lane_qps)
        self.bus = bus if bus is not None else sim.bus
        self.on_complete = on_complete
        self.nlanes = len(lane_qps)
        self.dead: Set[int] = set()
        self.resprays = 0
        # current spray state
        self.spray_id: Optional[int] = None
        self.total = 0
        self.lane_ranges: List[Range] = []
        self._acked: List[Range] = []
        self._done = True

    @property
    def live_lanes(self) -> List[int]:
        return [l for l in range(self.nlanes) if l not in self.dead]

    def spray(self, size: int) -> int:
        """Stripe ``size`` bytes over the live lanes; returns the spray id."""
        if not self._done:
            raise TransportError("previous spray still in flight")
        live = self.live_lanes
        if not live:
            raise TransportError("all lanes dead; nothing to spray on")
        self.spray_id = sid = next(_spray_ids)
        self.total = size
        self._acked = []
        self._done = False
        mtu = self.lane_qps[live[0]].cfg.mtu
        shares = lane_shares(size, len(live), mtu)
        self.lane_ranges = [(0, 0)] * self.nlanes
        for lane, (offset, length) in zip(live, shares):
            self.lane_ranges[lane] = (offset, length)
            if length > 0:
                self._post(lane, offset, length, respray=False)
        return sid

    def respray(self, dead_lane: int) -> None:
        """Declare ``dead_lane`` dead and re-spray its share.

        The dead lane's *entire* sub-range (delivery state of its
        prefix is unknowable from the sender) is re-split across the
        surviving lanes and posted as fresh sub-messages on their PSN
        streams; the dead QP's outstanding WQEs are then aborted so its
        retransmission timer stops.  Survivors' streams only grow — no
        PSN rewinds, hence no group-wide go-back-N.
        """
        if dead_lane in self.dead:
            return
        self.dead.add(dead_lane)
        survivors = self.live_lanes
        if not survivors:
            raise TransportError(
                f"spray {self.spray_id}: every lane is dead")
        offset, length = self.lane_ranges[dead_lane]
        if not self._done and length > 0:
            self.resprays += 1
            mtu = self.lane_qps[survivors[0]].cfg.mtu
            for lane, (sub_off, sub_len) in zip(
                    survivors, lane_shares(length, len(survivors), mtu)):
                if sub_len > 0:
                    self._post(lane, offset + sub_off, sub_len, respray=True)
        self.lane_qps[dead_lane].abort_sends()

    # -- internals -------------------------------------------------------

    def _post(self, lane: int, offset: int, length: int,
              respray: bool) -> None:
        sid = self.spray_id
        meta = ("lane-spray", sid, lane, offset, length, self.total, respray)
        if self.bus.lane_spray:
            self.bus.publish("lane_spray", self, sid, lane, offset,
                             length, self.total, respray)

        def acked(mid: int, now: float, _off=offset, _len=length) -> None:
            self._sub_acked(_off, _len, now)

        self.lane_qps[lane].post_send(length, on_complete=acked, meta=meta)

    def _sub_acked(self, offset: int, length: int, now: float) -> None:
        if self._done:
            return
        self._acked.append((offset, length))
        if covers(self._acked, self.total):
            self._done = True
            if self.on_complete is not None:
                self.on_complete(self.spray_id, now)


class LaneReassembler:
    """Receiver-side reassembly of sprayed messages for one member.

    Install :meth:`on_message` as the ``on_message`` handler of every
    lane QP of the member; non-spray messages are ignored.  The
    completion callback ``on_complete(spray_id, total, now)`` fires
    exactly once per spray, when the union of received segments covers
    ``[0, total)`` — duplicates from a respray only re-cover bytes.
    """

    def __init__(self, ip: int,
                 on_complete: Callable[[int, int, float], None], *,
                 bus: Optional[ObserverBus] = None) -> None:
        self.ip = ip
        self.on_complete = on_complete
        self.bus = bus if bus is not None else ObserverBus()
        # spray_id -> accumulated (offset, length, lane) segments
        self._segments: Dict[int, List[Tuple[int, int, int]]] = {}
        self._completed: Set[int] = set()
        self.duplicate_segments = 0

    def attach(self, lane_qps: List[RoceQP]) -> None:
        """Hook every lane QP's delivery callback to this reassembler."""
        for qp in lane_qps:
            qp.on_message = self.on_message

    def on_message(self, msg_id: int, nbytes: int, now: float, meta) -> None:
        if not (isinstance(meta, tuple) and meta and meta[0] == "lane-spray"):
            return
        _, sid, lane, offset, length, total, respray = meta
        if sid in self._completed:
            self.duplicate_segments += 1
            return  # exactly-once: late respray duplicates are dropped
        segs = self._segments.setdefault(sid, [])
        segs.append((offset, length, lane))
        if covers([(o, l) for o, l, _ in segs], total):
            self._completed.add(sid)
            del self._segments[sid]
            if self.bus.lane_complete:
                self.bus.publish("lane_complete", self, sid, self.ip,
                                 total, list(segs))
            self.on_complete(sid, total, now)


class LaneHealthMonitor:
    """Sender-side lane failure detector driving failover re-spray.

    Polls every live lane QP of a :class:`LaneSprayer`: a lane with
    data outstanding whose ``snd_una`` has not advanced for
    ``stall_timeout`` seconds (several RTOs — transient loss recovers
    well inside one) is declared dead and handed to
    :meth:`LaneSprayer.respray`.  ``dead_events`` records
    ``(lane, declared_at)`` so experiments can report recovery time.
    """

    def __init__(self, sim: Simulator, sprayer: LaneSprayer, *,
                 interval: float = 250e-6, stall_timeout: float = 3e-3,
                 on_dead: Optional[Callable[[int, float], None]] = None,
                 ) -> None:
        self.sim = sim
        self.sprayer = sprayer
        self.interval = interval
        self.stall_timeout = stall_timeout
        self.on_dead = on_dead
        self.dead_events: List[Tuple[int, float]] = []
        self._ev: Optional[Event] = None
        self._last_una: Dict[int, int] = {}
        self._last_progress: Dict[int, float] = {}

    def start(self) -> None:
        if self._ev is None:
            now = self.sim.now
            for lane in self.sprayer.live_lanes:
                self._last_una[lane] = self.sprayer.lane_qps[lane].snd_una
                self._last_progress[lane] = now
            self._ev = self.sim.schedule(self.interval, self._tick)

    def stop(self) -> None:
        if self._ev is not None:
            self._ev.cancel()
            self._ev = None

    def _tick(self) -> None:
        self._ev = None
        now = self.sim.now
        for lane in self.sprayer.live_lanes:
            qp = self.sprayer.lane_qps[lane]
            if qp.snd_una >= qp.sq_psn:
                # idle lane: nothing outstanding cannot stall
                self._last_una[lane] = qp.snd_una
                self._last_progress[lane] = now
                continue
            if qp.snd_una != self._last_una.get(lane):
                self._last_una[lane] = qp.snd_una
                self._last_progress[lane] = now
            elif now - self._last_progress.get(lane, now) >= self.stall_timeout:
                if len(self.sprayer.live_lanes) <= 1:
                    # No survivor to respray onto: keep polling and let
                    # RoCE retransmission recover the lane after repair.
                    continue
                self.dead_events.append((lane, now))
                self.sprayer.respray(lane)
                if self.on_dead is not None:
                    self.on_dead(lane, now)
        self._ev = self.sim.schedule(self.interval, self._tick)
