"""RoCE RC transport model: QPs, go-back-N, DCQCN, verbs facade.

This package stands in for the non-programmable ConnectX-5 RNIC
transport the paper builds on (§II-B): Cepheus reuses it unchanged, so
nothing in :mod:`repro.core` is allowed to modify these classes — only
to feed them a unicast-looking packet stream.
"""

from repro.transport.dcqcn import DcqcnConfig, DcqcnRateController
from repro.transport.gleam import GleamConfig, GleamRateController
from repro.transport.memory import MemoryRegion, MrTable
from repro.transport.qp import QpStateName, RecvState, SendMessage
from repro.transport.roce import RoceConfig, RoceQP
from repro.transport.spray import (LaneHealthMonitor, LaneReassembler,
                                   LaneSprayer, lane_shares, merge_ranges)
from repro.transport.verbs import CompletionQueue, VerbsContext

__all__ = [
    "DcqcnConfig", "DcqcnRateController",
    "GleamConfig", "GleamRateController",
    "MemoryRegion", "MrTable",
    "QpStateName", "RecvState", "SendMessage",
    "RoceConfig", "RoceQP",
    "LaneSprayer", "LaneReassembler", "LaneHealthMonitor",
    "lane_shares", "merge_ranges",
    "CompletionQueue", "VerbsContext",
]
