"""Measurement helpers: throughput sampling and run summaries.

The fairness/convergence experiment (Fig. 14) plots per-flow throughput
in 1 ms buckets; :class:`ThroughputSampler` reproduces that by counting
delivered bytes per bucket.  :class:`RunStats` aggregates fabric-wide
counters (drops, ECN marks, PFC events) after a run for assertions and
reports.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List

from repro.net.topology import Topology

__all__ = ["ThroughputSampler", "RunStats", "collect_run_stats"]


class ThroughputSampler:
    """Accumulate delivered bytes into fixed-width time buckets."""

    def __init__(self, bucket_s: float = 1e-3) -> None:
        self.bucket_s = bucket_s
        self._buckets: Dict[int, int] = {}

    def record(self, now: float, nbytes: int) -> None:
        self._buckets[int(now / self.bucket_s)] = (
            self._buckets.get(int(now / self.bucket_s), 0) + nbytes
        )

    def series_gbps(self, until_bucket: int = -1) -> List[float]:
        """Throughput per bucket in Gbps, densely from bucket 0."""
        if not self._buckets:
            return []
        last = max(self._buckets) if until_bucket < 0 else until_bucket
        return [
            self._buckets.get(i, 0) * 8.0 / self.bucket_s / 1e9
            for i in range(last + 1)
        ]

    def average_gbps(self, t0: float, t1: float) -> float:
        """Mean throughput over the [t0, t1) window."""
        b0, b1 = int(t0 / self.bucket_s), int(t1 / self.bucket_s)
        total = sum(self._buckets.get(i, 0) for i in range(b0, max(b1, b0 + 1)))
        dur = max(t1 - t0, self.bucket_s)
        return total * 8.0 / dur / 1e9


@dataclass
class RunStats:
    """Fabric-wide counters collected after a simulation run."""

    random_drops: int = 0
    taildrops: int = 0
    ecn_marks: int = 0
    pause_frames: int = 0
    resume_frames: int = 0
    forwarded: int = 0
    per_switch: Dict[str, Dict[str, int]] = field(default_factory=dict)


def collect_run_stats(topo: Topology) -> RunStats:
    """Sweep every switch in ``topo`` and sum its counters."""
    stats = RunStats()
    for sw in topo.switches:
        marks = sum(p.stats.ecn_marks for p in sw.ports)
        stats.random_drops += sw.random_drops
        stats.taildrops += sw.taildrops
        stats.ecn_marks += marks
        stats.pause_frames += sw.pfc.pause_frames_sent
        stats.resume_frames += sw.pfc.resume_frames_sent
        stats.forwarded += sw.forwarded
        stats.per_switch[sw.name] = {
            "random_drops": sw.random_drops,
            "taildrops": sw.taildrops,
            "ecn_marks": marks,
            "pause_frames": sw.pfc.pause_frames_sent,
        }
    return stats
