"""Topology builders and routing.

Three shapes cover every experiment in the paper:

* :func:`star` — the 4-server testbed (§IV): all hosts on one switch.
* :func:`fat_tree` — the ns-3 simulation fabric (§V-C): a 3-layer
  fat-tree with 1:1 oversubscription.  ``k=16`` yields the paper's
  1024 servers; smaller ``k`` is used by the unit tests.
* :func:`dumbbell` — two switches and a shared bottleneck link, used by
  congestion-control unit tests.

Routing is computed generically: a per-host BFS over the switch graph
produces *all* equal-cost next hops, which become the FIB's ECMP groups.
This matches structured fat-tree routing exactly while staying correct
for arbitrary shapes.
"""

from __future__ import annotations

from collections import deque
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple

from repro import constants
from repro.errors import TopologyError
from repro.net.link import LinkInfo, connect
from repro.net.nic import Nic
from repro.net.simulator import Simulator
from repro.net.switch import Switch, SwitchConfig

__all__ = ["Topology", "star", "fat_tree", "dumbbell"]


@dataclass
class _Attachment:
    switch: Switch
    port: int


class Topology:
    """A wired network: switches, host NICs, links and routing state."""

    def __init__(self, sim: Simulator) -> None:
        self.sim = sim
        self.switches: List[Switch] = []
        self.nics: Dict[int, Nic] = {}
        self.links: List[LinkInfo] = []
        self._attachments: Dict[int, _Attachment] = {}
        # switch adjacency: switch -> list of (port, neighbor switch)
        self._adj: Dict[Switch, List[Tuple[int, Switch]]] = {}

    # -- construction -------------------------------------------------------

    def add_switch(self, name: str, n_ports: int,
                   config: Optional[SwitchConfig] = None,
                   layer: str = "edge") -> Switch:
        sw = Switch(self.sim, name, n_ports, config)
        sw.layer = layer
        self.switches.append(sw)
        self._adj[sw] = []
        return sw

    def add_host(self, ip: int, name: Optional[str] = None) -> Nic:
        if ip in self.nics:
            raise TopologyError(f"duplicate host ip {ip}")
        nic = Nic(self.sim, ip, name)
        self.nics[ip] = nic
        return nic

    def wire_switches(self, a: Switch, pa: int, b: Switch, pb: int,
                      *, bandwidth: float = constants.LINK_BANDWIDTH_BPS,
                      propagation: float = constants.LINK_PROPAGATION_S) -> None:
        info = connect(a, pa, b, pb, bandwidth=bandwidth, propagation=propagation)
        self.links.append(info)
        a.port_kind[pa] = "switch"
        b.port_kind[pb] = "switch"
        self._adj[a].append((pa, b))
        self._adj[b].append((pb, a))

    def attach_host(self, nic: Nic, sw: Switch, port: int,
                    *, bandwidth: float = constants.LINK_BANDWIDTH_BPS,
                    propagation: float = constants.LINK_PROPAGATION_S) -> None:
        info = connect(sw, port, nic, 0, bandwidth=bandwidth, propagation=propagation)
        self.links.append(info)
        sw.port_kind[port] = "host"
        self._attachments[nic.ip] = _Attachment(sw, port)

    # -- queries --------------------------------------------------------------

    @property
    def host_ips(self) -> List[int]:
        return sorted(self.nics)

    def nic(self, ip: int) -> Nic:
        return self.nics[ip]

    def leaf_of(self, ip: int) -> Tuple[Switch, int]:
        """The (edge switch, port) a host hangs off."""
        att = self._attachments.get(ip)
        if att is None:
            raise TopologyError(f"unknown host ip {ip}")
        return att.switch, att.port

    def switches_in_layer(self, layer: str) -> List[Switch]:
        return [s for s in self.switches if getattr(s, "layer", None) == layer]

    def switch_link_map(self) -> Dict[str, Dict[int, "Tuple[Switch, int]"]]:
        """``switch name -> {port -> (peer switch, peer port)}`` for every
        switch-to-switch link.

        This is the read-only adjacency view a source-routed tree encoder
        walks: following a route port at one switch lands on the peer's
        ingress port, which is itself a tree port of the (undirected) MDT.
        """
        peers: Dict[str, Dict[int, Tuple[Switch, int]]] = {
            sw.name: {} for sw in self.switches
        }
        for link in self.links:
            if not isinstance(link.dev_a, Switch) or not isinstance(link.dev_b, Switch):
                continue
            peers[link.dev_a.name][link.port_a] = (link.dev_b, link.port_b)
            peers[link.dev_b.name][link.port_b] = (link.dev_a, link.port_a)
        return peers

    def set_loss_rate(self, rate: float, layers: Tuple[str, ...] = ("agg", "core")) -> None:
        """Inject random loss at 'middle switches' (paper §V-C setup)."""
        targets = [s for s in self.switches if getattr(s, "layer", None) in layers]
        if not targets:  # single-switch topologies: inject at the only layer
            targets = self.switches
        for sw in targets:
            sw.config.loss_rate = rate

    # -- routing --------------------------------------------------------------

    def build_routes(self) -> None:
        """Fill every switch FIB with equal-cost next hops per host."""
        for ip in self.nics:
            att = self._attachments.get(ip)
            if att is None:
                raise TopologyError(f"host {ip} was never attached")
            dist = self._bfs_from(att.switch)
            att.switch.add_route(ip, [att.port])
            for sw, d in dist.items():
                if sw is att.switch:
                    continue
                ports = [p for p, nb in self._adj[sw] if dist.get(nb, 1 << 30) == d - 1]
                if not ports:
                    raise TopologyError(
                        f"{sw.name} cannot reach host {ip} (disconnected)")
                sw.add_route(ip, ports)

    def _bfs_from(self, root: Switch) -> Dict[Switch, int]:
        dist = {root: 0}
        q = deque([root])
        while q:
            cur = q.popleft()
            for _, nb in self._adj[cur]:
                if nb not in dist:
                    dist[nb] = dist[cur] + 1
                    q.append(nb)
        return dist

    # -- multipath lanes (MRC-style k edge-disjoint trees) --------------------

    @staticmethod
    def lane_port(ports: List[int], lane: int, nlanes: int,
                  seed: int = 0) -> int:
        """The deterministic per-lane choice among ECMP next hops.

        Lane ``lane`` of an ``nlanes``-lane group picks the
        ``(lane + seed) mod len``-th port of the *sorted* candidate
        list.  Every component that resolves ECMP for a lane — the
        accelerator's MRP walk, the source-routed tree encoder, and
        :meth:`edge_disjoint_trees` — uses this one rule, so they all
        agree on which physical links lane l owns.  With
        ``nlanes <= len(ports)`` (a fat-tree gives ``k/2`` uplinks at
        every ECMP stage) distinct lanes pick distinct ports, which is
        what makes the trees edge-disjoint on the uplinks.
        """
        cands = sorted(ports)
        return cands[(lane + seed) % len(cands)]

    def edge_disjoint_trees(self, root_ip: int, member_ips,
                            k: int, seed: int = 0) -> List[Dict[str, int]]:
        """Compile ``k`` per-lane MDTs as per-switch port bitmaps.

        Walks the FIB from the root's leaf toward each member exactly
        like the runtime does (prefer a port already in the lane's own
        tree so branches merge early, else :meth:`lane_port`), so the
        returned trees predict which links each lane's DATA traverses
        — used by the failover experiments and the fuzzer's lane-kill
        operator to aim a link failure at one specific lane.  Both
        directions of every traversed link are set (the trees are
        undirected, any member may source).  Deterministic given
        ``seed``; ``k=1, seed=0`` reproduces the single-tree walk.
        """
        if k < 1:
            raise TopologyError(f"need at least one lane, got {k}")
        peers = self.switch_link_map()
        root_leaf, _root_port = self.leaf_of(root_ip)
        limit = len(self.switches) + 1
        trees: List[Dict[str, int]] = []
        for lane in range(k):
            bits: Dict[str, int] = {}
            for ip in sorted(member_ips):
                leaf, hport = self.leaf_of(ip)
                bits[leaf.name] = bits.get(leaf.name, 0) | (1 << hport)
                cur = root_leaf
                hops = 0
                while cur is not leaf:
                    ports = cur.route_ports(ip)
                    cur_bits = bits.get(cur.name, 0)
                    port = next(
                        (p for p in ports if cur_bits & (1 << p)), None)
                    if port is None:
                        if k == 1:
                            port = min(ports)
                        else:
                            port = self.lane_port(ports, lane, k, seed)
                    bits[cur.name] = cur_bits | (1 << port)
                    peer, rport = peers[cur.name][port]
                    bits[peer.name] = bits.get(peer.name, 0) | (1 << rport)
                    cur = peer
                    hops += 1
                    if hops > limit:
                        raise TopologyError(
                            f"routing loop compiling lane {lane} toward "
                            f"host {ip}")
            trees.append(bits)
        return trees

    def lane_uplinks(self, root_ip: int, member_ips, k: int,
                     seed: int = 0) -> List[Tuple[Switch, int]]:
        """One (switch, port) uplink per lane that only that lane uses.

        Convenience for failure injection: for each lane, pick the
        lowest switch-to-switch port of the lane's tree that appears in
        no other lane's tree.  Raises :class:`TopologyError` when the
        fabric has no lane-exclusive link (e.g. a star topology, where
        all lanes share the single path).
        """
        trees = self.edge_disjoint_trees(root_ip, member_ips, k, seed)
        by_name = {sw.name: sw for sw in self.switches}
        picks: List[Tuple[Switch, int]] = []
        for lane, bits in enumerate(trees):
            choice = None
            for name in sorted(bits):
                sw = by_name[name]
                for port in range(sw.n_ports):
                    if not bits[name] & (1 << port):
                        continue
                    if sw.port_kind[port] != "switch":
                        continue
                    if any(other.get(name, 0) & (1 << port)
                           for o, other in enumerate(trees) if o != lane):
                        continue
                    choice = (sw, port)
                    break
                if choice:
                    break
            if choice is None:
                raise TopologyError(
                    f"lane {lane} has no exclusive link to fail "
                    f"(topology has insufficient path diversity for "
                    f"k={k})")
            picks.append(choice)
        return picks


# ---------------------------------------------------------------------------
# Builders
# ---------------------------------------------------------------------------

def star(
    sim: Simulator,
    n_hosts: int,
    *,
    bandwidth: float = constants.LINK_BANDWIDTH_BPS,
    propagation: float = constants.LINK_PROPAGATION_S,
    switch_config: Optional[SwitchConfig] = None,
) -> Topology:
    """All hosts on a single switch — the paper's 4-server testbed."""
    topo = Topology(sim)
    sw = topo.add_switch("sw0", n_hosts, switch_config, layer="edge")
    for i in range(n_hosts):
        nic = topo.add_host(i + 1)
        topo.attach_host(nic, sw, i, bandwidth=bandwidth, propagation=propagation)
    topo.build_routes()
    return topo


def fat_tree(
    sim: Simulator,
    k: int,
    *,
    bandwidth: float = constants.LINK_BANDWIDTH_BPS,
    propagation: float = constants.LINK_PROPAGATION_S,
    switch_config: Optional[SwitchConfig] = None,
    hosts_limit: Optional[int] = None,
) -> Topology:
    """Standard 3-layer k-ary fat-tree (1:1 oversubscription).

    ``k`` pods, each with ``k/2`` edge and ``k/2`` aggregation switches;
    ``(k/2)^2`` cores; ``k^3/4`` hosts.  ``k=16`` reproduces the paper's
    1024-server fabric.  ``hosts_limit`` optionally attaches only the
    first N hosts (cheaper small experiments on a big fabric shape).
    """
    if k % 2 != 0 or k < 2:
        raise TopologyError(f"fat-tree k must be even and >= 2, got {k}")
    half = k // 2
    topo = Topology(sim)

    def cfg() -> Optional[SwitchConfig]:
        if switch_config is None:
            return None
        # Each switch gets its own config copy so loss injection can be
        # targeted per layer without aliasing.
        return SwitchConfig(**vars(switch_config))

    cores = [
        topo.add_switch(f"core{i}", k, cfg(), layer="core")
        for i in range(half * half)
    ]
    edges: List[List[Switch]] = []
    aggs: List[List[Switch]] = []
    for pod in range(k):
        edges.append([
            topo.add_switch(f"edge{pod}_{e}", k, cfg(), layer="edge")
            for e in range(half)
        ])
        aggs.append([
            topo.add_switch(f"agg{pod}_{a}", k, cfg(), layer="agg")
            for a in range(half)
        ])
        # edge <-> agg full bipartite inside the pod
        for e, esw in enumerate(edges[pod]):
            for a, asw in enumerate(aggs[pod]):
                # edge uplinks occupy ports [half, k); agg down-ports [0, half)
                topo.wire_switches(esw, half + a, asw, e,
                                   bandwidth=bandwidth, propagation=propagation)
        # agg <-> core
        for a, asw in enumerate(aggs[pod]):
            for c in range(half):
                core = cores[a * half + c]
                topo.wire_switches(asw, half + c, core, pod,
                                   bandwidth=bandwidth, propagation=propagation)

    total_hosts = k * half * half
    n_hosts = total_hosts if hosts_limit is None else min(hosts_limit, total_hosts)
    ip = 1
    for pod in range(k):
        for e, esw in enumerate(edges[pod]):
            for h in range(half):
                if ip > n_hosts:
                    break
                nic = topo.add_host(ip)
                topo.attach_host(nic, esw, h,
                                 bandwidth=bandwidth, propagation=propagation)
                ip += 1
    topo.build_routes()
    return topo


def dumbbell(
    sim: Simulator,
    n_left: int,
    n_right: int,
    *,
    bandwidth: float = constants.LINK_BANDWIDTH_BPS,
    bottleneck: Optional[float] = None,
    propagation: float = constants.LINK_PROPAGATION_S,
    switch_config: Optional[SwitchConfig] = None,
) -> Topology:
    """Two switches joined by one (optionally slower) bottleneck link."""
    topo = Topology(sim)
    left = topo.add_switch("left", n_left + 1, switch_config, layer="edge")
    right = topo.add_switch("right", n_right + 1, switch_config, layer="edge")
    topo.wire_switches(left, n_left, right, n_right,
                       bandwidth=bottleneck or bandwidth,
                       propagation=propagation)
    ip = 1
    for i in range(n_left):
        nic = topo.add_host(ip)
        topo.attach_host(nic, left, i, bandwidth=bandwidth, propagation=propagation)
        ip += 1
    for i in range(n_right):
        nic = topo.add_host(ip)
        topo.attach_host(nic, right, i, bandwidth=bandwidth, propagation=propagation)
        ip += 1
    topo.build_routes()
    return topo
