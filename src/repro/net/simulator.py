"""Discrete-event simulation kernel.

The whole reproduction — switches, links, NICs, RoCE engines, the
Cepheus accelerator and the applications — is driven by one
:class:`Simulator`: a virtual clock plus a binary-heap event queue.
Heap entries are plain ``[time, seq, fn, args, done]`` lists; ``seq``
breaks ties so simultaneous events run in scheduling order, which keeps
runs deterministic, and ``done`` is the lazy-delete tombstone (set by
cancellation *and* by execution, so a consumed entry can never be
resurrected).

The kernel is deliberately minimal and allocation-light because the
packet-level experiments schedule millions of events.  Three API tiers
trade convenience for allocations:

- :meth:`Simulator.schedule` / :meth:`Simulator.schedule_at` return an
  :class:`Event` handle supporting cancellation — use when the caller
  may need to cancel.
- :meth:`Simulator.post` / :meth:`Simulator.post_at` are the
  fire-and-forget fast path: no handle is allocated.  The datapath's
  per-hop deliveries use these.
- :meth:`Simulator.reschedule` re-arms an existing handle (tombstone
  the old heap entry, push a fresh one) — the retransmission-timer
  pattern, without churning handle objects.
"""

from __future__ import annotations

import heapq
from typing import Any, Callable, List, Optional

from repro.net.pipeline import ObserverBus
from repro.net.pool import SimPools

__all__ = ["Simulator", "Event"]

# Heap-entry field indices (entries are lists, not objects, so the run
# loop touches no descriptors).  _DONE doubles as the lazy-delete
# tombstone and the "already executed" marker.
_TIME, _SEQ, _FN, _ARGS, _DONE = range(5)


class Event:
    """Handle returned by :meth:`Simulator.schedule`; supports cancellation.

    Cancellation is lazy: the entry stays in the heap but is skipped
    when popped.  This is the standard approach for timer-heavy
    protocols (retransmission timers are re-armed far more often than
    they fire).

    The handle is a thin pointer to the current heap entry.  After
    :meth:`Simulator.reschedule` the handle points at the *new* entry —
    the old one stays tombstoned in the heap and can never fire again,
    even though the handle it once belonged to is live.
    """

    __slots__ = ("_entry",)

    def __init__(self, entry: list):
        self._entry = entry

    @property
    def time(self) -> float:
        """Virtual time this event is (or was) due to fire."""
        return self._entry[_TIME]

    @property
    def cancelled(self) -> bool:
        """True once the entry is dead — cancelled *or* already fired."""
        return self._entry[_DONE]

    def cancel(self) -> None:
        """Prevent the event from running; safe to call repeatedly,
        including after the event has fired (no-op) and from inside the
        handler of another event popped at the same timestamp."""
        self._entry[_DONE] = True


class Simulator:
    """A deterministic discrete-event simulator.

    Example
    -------
    >>> sim = Simulator()
    >>> fired = []
    >>> _ = sim.schedule(1e-6, fired.append, "hello")
    >>> sim.run()
    1
    >>> fired
    ['hello']
    >>> sim.now
    1e-06
    """

    #: Process-wide count of events executed by *all* simulator
    #: instances.  The experiment engine snapshots it around each
    #: experiment to report per-experiment event counts without
    #: threading a handle into every cluster an experiment builds.
    lifetime_events: int = 0

    def __init__(self) -> None:
        self.now: float = 0.0
        self._heap: List[list] = []
        self._seq: int = 0
        self._events_run: int = 0
        # The single observer bus every datapath component of this
        # simulation publishes to (see repro.net.pipeline).  The run
        # loop's "event" channel fires before each event executes; the
        # InvariantMonitor subscribes to it for sampled online sweeps.
        # An empty channel keeps the hot loop branch-cheap.
        self.bus = ObserverBus()
        # Free-list pools for the per-event hot objects (see
        # repro.net.pool for the lifecycle contract; packet recycling
        # self-disables while the bus has subscribers).
        self.pools = SimPools(self.bus)

    # -- scheduling --------------------------------------------------------

    def schedule(self, delay: float, fn: Callable[..., None], *args: Any) -> Event:
        """Run ``fn(*args)`` after ``delay`` seconds of virtual time."""
        if delay < 0:
            raise ValueError(f"cannot schedule into the past (delay={delay})")
        self._seq += 1
        entry = [self.now + delay, self._seq, fn, args, False]
        heapq.heappush(self._heap, entry)
        return Event(entry)

    def schedule_at(self, when: float, fn: Callable[..., None], *args: Any) -> Event:
        """Run ``fn(*args)`` at absolute virtual time ``when``."""
        if when < self.now:
            raise ValueError(f"cannot schedule at {when} < now {self.now}")
        self._seq += 1
        entry = [when, self._seq, fn, args, False]
        heapq.heappush(self._heap, entry)
        return Event(entry)

    def post(self, delay: float, fn: Callable[..., None], *args: Any) -> None:
        """Fire-and-forget :meth:`schedule`: no :class:`Event` handle is
        allocated.  Identical ordering semantics (consumes one seq)."""
        when = self.now + delay
        if delay < 0:
            raise ValueError(f"cannot schedule into the past (delay={delay})")
        self._seq += 1
        heapq.heappush(self._heap, [when, self._seq, fn, args, False])

    def post_at(self, when: float, fn: Callable[..., None], *args: Any) -> None:
        """Fire-and-forget :meth:`schedule_at`; no handle allocated."""
        if when < self.now:
            raise ValueError(f"cannot schedule at {when} < now {self.now}")
        self._seq += 1
        heapq.heappush(self._heap, [when, self._seq, fn, args, False])

    def reschedule(self, ev: Event, delay: float) -> Event:
        """Re-arm ``ev`` to fire after ``delay`` from now.

        Equivalent to ``ev.cancel()`` followed by re-scheduling the same
        callback — one seq is consumed, exactly like the cancel+schedule
        idiom it replaces, so event ordering is unchanged.  The handle
        is repointed at the fresh heap entry; the old entry stays
        tombstoned (it is never "un-cancelled", which would resurrect a
        lazily-deleted entry still sitting in the heap).  Safe on
        handles whose event already fired or was cancelled.
        """
        if delay < 0:
            raise ValueError(f"cannot schedule into the past (delay={delay})")
        old = ev._entry
        old[_DONE] = True
        self._seq += 1
        entry = [self.now + delay, self._seq, old[_FN], old[_ARGS], False]
        heapq.heappush(self._heap, entry)
        ev._entry = entry
        return ev

    # -- execution ---------------------------------------------------------

    def run(self, until: Optional[float] = None, max_events: Optional[int] = None) -> int:
        """Drain the event queue.

        Parameters
        ----------
        until:
            Stop once virtual time would pass this instant.  Events at
            exactly ``until`` still run.  The clock is advanced to
            ``until`` when the queue drains early.
        max_events:
            Safety valve for runaway protocols; at most ``max_events``
            events execute, and a ``RuntimeError`` is raised as soon as
            one more is about to run.

        Returns
        -------
        int
            The number of events executed by this call.
        """
        heap = self._heap
        bus = self.bus
        pop = heapq.heappop
        executed = 0
        try:
            if until is None and max_events is None:
                # Unbounded drain: the datapath hot loop.  Pop first,
                # skip tombstones, run.  No peek, no bound checks; the
                # empty-heap IndexError from pop replaces a per-iteration
                # truthiness test (zero-cost until it fires once).
                while True:
                    try:
                        entry = pop(heap)
                    except IndexError:
                        return executed
                    if entry[4]:
                        continue
                    entry[4] = True
                    self.now = entry[0]
                    if bus.event:
                        bus.publish("event", entry[0])
                    entry[2](*entry[3])
                    executed += 1
            while heap:
                entry = heap[0]
                if entry[4]:
                    pop(heap)
                    continue
                when = entry[0]
                if until is not None and when > until:
                    break
                if max_events is not None and executed >= max_events:
                    raise RuntimeError(f"exceeded max_events={max_events}")
                pop(heap)
                entry[4] = True
                self.now = when
                if bus.event:
                    bus.publish("event", when)
                entry[2](*entry[3])
                executed += 1
            if until is not None and self.now < until:
                self.now = until
        finally:
            self._events_run += executed
            Simulator.lifetime_events += executed
        return executed

    def run_until_idle(self, max_events: Optional[int] = None) -> int:
        """Run until no events remain (alias of :meth:`run` with no bound)."""
        return self.run(until=None, max_events=max_events)

    def peek_next_time(self) -> Optional[float]:
        """Time of the earliest pending (non-cancelled) event, or None."""
        heap = self._heap
        while heap and heap[0][4]:
            heapq.heappop(heap)
        return heap[0][0] if heap else None

    @property
    def pending(self) -> int:
        """Number of queued entries (including lazily-cancelled ones)."""
        return len(self._heap)

    @property
    def events_run(self) -> int:
        """Total events executed over the simulator's lifetime."""
        return self._events_run
