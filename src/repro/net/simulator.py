"""Discrete-event simulation kernel.

The whole reproduction — switches, links, NICs, RoCE engines, the
Cepheus accelerator and the applications — is driven by one
:class:`Simulator`: a virtual clock plus a binary-heap event queue.
Events are plain ``(time, seq, callback, args)`` tuples; ``seq`` breaks
ties so simultaneous events run in scheduling order, which keeps runs
deterministic.

The kernel is deliberately minimal and allocation-light because the
packet-level experiments schedule millions of events.
"""

from __future__ import annotations

import heapq
from typing import Any, Callable, List, Optional, Tuple

from repro.net.pipeline import ObserverBus

__all__ = ["Simulator", "Event"]


class Event:
    """Handle returned by :meth:`Simulator.schedule`; supports cancellation.

    Cancellation is lazy: the entry stays in the heap but is skipped when
    popped.  This is the standard approach for timer-heavy protocols
    (retransmission timers are re-armed far more often than they fire).
    """

    __slots__ = ("time", "fn", "args", "cancelled")

    def __init__(self, time: float, fn: Callable[..., None], args: Tuple[Any, ...]):
        self.time = time
        self.fn = fn
        self.args = args
        self.cancelled = False

    def cancel(self) -> None:
        """Prevent the event from running; safe to call repeatedly."""
        self.cancelled = True


class Simulator:
    """A deterministic discrete-event simulator.

    Example
    -------
    >>> sim = Simulator()
    >>> fired = []
    >>> _ = sim.schedule(1e-6, fired.append, "hello")
    >>> sim.run()
    1
    >>> fired
    ['hello']
    >>> sim.now
    1e-06
    """

    #: Process-wide count of events executed by *all* simulator
    #: instances.  The experiment engine snapshots it around each
    #: experiment to report per-experiment event counts without
    #: threading a handle into every cluster an experiment builds.
    lifetime_events: int = 0

    def __init__(self) -> None:
        self.now: float = 0.0
        self._heap: List[Tuple[float, int, Event]] = []
        self._seq: int = 0
        self._events_run: int = 0
        # The single observer bus every datapath component of this
        # simulation publishes to (see repro.net.pipeline).  The run
        # loop's "event" channel fires before each event executes; the
        # InvariantMonitor subscribes to it for sampled online sweeps.
        # An empty channel keeps the hot loop branch-cheap.
        self.bus = ObserverBus()

    # -- scheduling --------------------------------------------------------

    def schedule(self, delay: float, fn: Callable[..., None], *args: Any) -> Event:
        """Run ``fn(*args)`` after ``delay`` seconds of virtual time."""
        if delay < 0:
            raise ValueError(f"cannot schedule into the past (delay={delay})")
        return self.schedule_at(self.now + delay, fn, *args)

    def schedule_at(self, when: float, fn: Callable[..., None], *args: Any) -> Event:
        """Run ``fn(*args)`` at absolute virtual time ``when``."""
        if when < self.now:
            raise ValueError(f"cannot schedule at {when} < now {self.now}")
        ev = Event(when, fn, args)
        self._seq += 1
        heapq.heappush(self._heap, (when, self._seq, ev))
        return ev

    # -- execution ---------------------------------------------------------

    def run(self, until: Optional[float] = None, max_events: Optional[int] = None) -> int:
        """Drain the event queue.

        Parameters
        ----------
        until:
            Stop once virtual time would pass this instant.  Events at
            exactly ``until`` still run.  The clock is advanced to
            ``until`` when the queue drains early.
        max_events:
            Safety valve for runaway protocols; at most ``max_events``
            events execute, and a ``RuntimeError`` is raised as soon as
            one more is about to run.

        Returns
        -------
        int
            The number of events executed by this call.
        """
        heap = self._heap
        bus = self.bus
        executed = 0
        try:
            while heap:
                when, _, ev = heap[0]
                if until is not None and when > until:
                    break
                if ev.cancelled:
                    heapq.heappop(heap)
                    continue
                if max_events is not None and executed >= max_events:
                    raise RuntimeError(f"exceeded max_events={max_events}")
                heapq.heappop(heap)
                self.now = when
                if bus.event:
                    bus.publish("event", when)
                ev.fn(*ev.args)
                executed += 1
            if until is not None and self.now < until:
                self.now = until
        finally:
            self._events_run += executed
            Simulator.lifetime_events += executed
        return executed

    def run_until_idle(self, max_events: Optional[int] = None) -> int:
        """Run until no events remain (alias of :meth:`run` with no bound)."""
        return self.run(until=None, max_events=max_events)

    def peek_next_time(self) -> Optional[float]:
        """Time of the earliest pending (non-cancelled) event, or None."""
        while self._heap and self._heap[0][2].cancelled:
            heapq.heappop(self._heap)
        return self._heap[0][0] if self._heap else None

    @property
    def pending(self) -> int:
        """Number of queued entries (including lazily-cancelled ones)."""
        return len(self._heap)

    @property
    def events_run(self) -> int:
        """Total events executed over the simulator's lifetime."""
        return self._events_run
