"""Bidirectional link wiring helper.

Links are not first-class simulation objects: each direction lives in
the egress :class:`~repro.net.port.Port` of the sending device.  This
module provides :func:`connect`, which wires two device ports together
symmetrically with shared bandwidth/propagation parameters, and a small
:class:`LinkInfo` record the topology layer keeps for introspection.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro import constants
from repro.errors import TopologyError

__all__ = ["connect", "LinkInfo"]


@dataclass(frozen=True, slots=True)
class LinkInfo:
    """Descriptive record of one bidirectional link."""

    dev_a: object
    port_a: int
    dev_b: object
    port_b: int
    bandwidth: float
    propagation: float

    def endpoint_names(self) -> str:
        a = getattr(self.dev_a, "name", str(self.dev_a))
        b = getattr(self.dev_b, "name", str(self.dev_b))
        return f"{a}[{self.port_a}]<->{b}[{self.port_b}]"


def connect(
    dev_a,
    port_a: int,
    dev_b,
    port_b: int,
    *,
    bandwidth: float = constants.LINK_BANDWIDTH_BPS,
    propagation: float = constants.LINK_PROPAGATION_S,
) -> LinkInfo:
    """Wire ``dev_a.ports[port_a]`` and ``dev_b.ports[port_b]`` together.

    Both devices must already expose the named ports (switches
    pre-allocate their radix; NICs have port 0).  Raises
    :class:`~repro.errors.TopologyError` when a port is already in use.
    """
    pa = dev_a.ports[port_a]
    pb = dev_b.ports[port_b]
    if pa.connected or pb.connected:
        raise TopologyError(
            f"port already connected: {pa if pa.connected else pb}"
        )
    pa.bandwidth = bandwidth
    pa.propagation = propagation
    pb.bandwidth = bandwidth
    pb.propagation = propagation
    pa.connect(dev_b, port_b)
    pb.connect(dev_a, port_a)
    return LinkInfo(dev_a, port_a, dev_b, port_b, bandwidth, propagation)
