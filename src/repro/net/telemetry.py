"""Telemetry: latency distributions, packet taps, queue-depth probes.

The harness mostly reports completion times; for debugging and for the
finer-grained studies (per-packet one-way delay under load, bottleneck
queue dynamics) this module provides:

* :class:`LatencyStats` — streaming percentile accumulator over a
  seeded reservoir sample;
* :class:`DeliveryTap` — subscribes to the bus ``deliver`` channel to
  record per-packet one-way delay at one QP (packets carry their
  creation timestamp);
* :class:`QueueDepthProbe` — periodic sampler of a port's backlog with
  a bounded lifetime (so a drained simulation still terminates);
* :class:`PacketLog` — per-device forwarding log with a ring bound,
  fed by the bus ``emit`` channel, for post-mortem debugging of
  multicast trees.

The taps subscribe to the simulation-wide
:class:`~repro.net.pipeline.ObserverBus` rather than wrapping component
methods, so several taps (and the invariant monitor) coexist without
ordering hazards.
"""

from __future__ import annotations

import math
import random
from collections import deque
from typing import Deque, List, Optional, Tuple

from repro.net.packet import Packet, PacketType
from repro.net.port import Port
from repro.net.simulator import Event, Simulator

__all__ = ["LatencyStats", "DeliveryTap", "QueueDepthProbe", "PacketLog"]


def _percentile_of(ordered: List[float], p: float) -> float:
    """Linear-interpolated percentile of an already-sorted sample list."""
    if not ordered:
        return 0.0
    if not 0 <= p <= 100:
        raise ValueError(f"percentile out of range: {p}")
    rank = (p / 100) * (len(ordered) - 1)
    lo = math.floor(rank)
    hi = math.ceil(rank)
    if lo == hi:
        return ordered[lo]
    frac = rank - lo
    return ordered[lo] * (1 - frac) + ordered[hi] * frac


class LatencyStats:
    """Accumulates samples; exact percentiles over a retained reservoir.

    Retention uses seeded reservoir sampling (Vitter's Algorithm R):
    once more than ``max_samples`` values arrive, every value has an
    equal ``max_samples / count`` chance of being in the window.  The
    previous head-retention scheme kept only the *first* values, which
    biases percentiles toward the warm-up phase of a run (queues are
    empty, delays are short).  The reservoir is driven by a private
    seeded RNG so results stay deterministic for a given sim seed and
    never perturb the simulation's own random streams.
    """

    def __init__(self, max_samples: int = 1_000_000, seed: int = 0) -> None:
        self._samples: List[float] = []
        self.max_samples = max_samples
        self.count = 0
        self.total = 0.0
        self.max_value = 0.0
        self._rng = random.Random(seed)

    def record(self, value: float) -> None:
        self.count += 1
        self.total += value
        if value > self.max_value:
            self.max_value = value
        if len(self._samples) < self.max_samples:
            self._samples.append(value)
        else:
            j = self._rng.randrange(self.count)
            if j < self.max_samples:
                self._samples[j] = value

    @property
    def mean(self) -> float:
        return self.total / self.count if self.count else 0.0

    def percentile(self, p: float) -> float:
        """Exact percentile of the retained samples (p in [0, 100])."""
        return _percentile_of(sorted(self._samples), p)

    def summary(self) -> dict:
        # Sort the window once and read every percentile off it, instead
        # of re-sorting per percentile() call.
        ordered = sorted(self._samples)
        return {
            "count": self.count,
            "mean": self.mean,
            "p50": _percentile_of(ordered, 50),
            "p99": _percentile_of(ordered, 99),
            "p999": _percentile_of(ordered, 99.9),
            "max": self.max_value,
        }


class DeliveryTap:
    """Records one-way delay of DATA packets delivered in-order at a QP.

    Subscribes to the bus ``deliver`` channel and filters for its QP;
    duplicates a go-back-N overshoot re-sends are not re-delivered and
    therefore not re-counted.
    """

    def __init__(self, qp) -> None:
        self.qp = qp
        self.stats = LatencyStats(seed=qp.qpn)
        qp.bus.subscribe("deliver", self._on_deliver)

    def _on_deliver(self, qp, pkt: Packet) -> None:
        if qp is self.qp and pkt.ptype == PacketType.DATA:
            self.stats.record(self.qp.sim.now - pkt.created_at)

    def detach(self) -> None:
        self.qp.bus.unsubscribe("deliver", self._on_deliver)


class QueueDepthProbe:
    """Samples a port's queued bytes every ``interval`` for ``duration``."""

    def __init__(self, sim: Simulator, port: Port, *,
                 interval: float = 10e-6, duration: float = 10e-3) -> None:
        self.sim = sim
        self.port = port
        self.interval = interval
        self.deadline = sim.now + duration
        self.series: List[Tuple[float, int]] = []
        self._ev: Optional[Event] = None
        self._tick()

    def _tick(self) -> None:
        self.series.append((self.sim.now, self.port.queued_bytes))
        if self.sim.now + self.interval <= self.deadline:
            self._ev = self.sim.schedule(self.interval, self._tick)
        else:
            self._ev = None

    def stop(self) -> None:
        if self._ev is not None:
            self._ev.cancel()
            self._ev = None

    @property
    def peak_bytes(self) -> int:
        return max((b for _, b in self.series), default=0)

    def mean_bytes(self) -> float:
        if not self.series:
            return 0.0
        return sum(b for _, b in self.series) / len(self.series)


class PacketLog:
    """Bounded log of packets a switch queued for egress.

    Subscribes to the bus ``emit`` channel (published before the
    enqueue, so tail-dropped packets are logged too) and filters for
    its switch.
    """

    def __init__(self, switch, max_entries: int = 10_000) -> None:
        self.switch = switch
        self.entries: Deque[Tuple[float, str, int, int, int]] = deque(
            maxlen=max_entries)
        switch.bus.subscribe("emit", self._on_emit)

    def _on_emit(self, switch, pkt: Packet, out_port: int, in_port: int) -> None:
        if switch is self.switch:
            self.entries.append(
                (switch.sim.now, pkt.ptype.name, pkt.psn, in_port, out_port))

    def detach(self) -> None:
        self.switch.bus.unsubscribe("emit", self._on_emit)

    def of_type(self, type_name: str) -> List[Tuple[float, str, int, int, int]]:
        return [e for e in self.entries if e[1] == type_name]

    def __len__(self) -> int:
        return len(self.entries)
