"""Telemetry: latency distributions, packet taps, queue-depth probes.

The harness mostly reports completion times; for debugging and for the
finer-grained studies (per-packet one-way delay under load, bottleneck
queue dynamics) this module provides:

* :class:`LatencyStats` — streaming percentile accumulator;
* :class:`DeliveryTap` — wraps a QP's ingress to record per-packet
  one-way delay (packets carry their creation timestamp);
* :class:`QueueDepthProbe` — periodic sampler of a port's backlog with
  a bounded lifetime (so a drained simulation still terminates);
* :class:`PacketLog` — optional per-device forwarding log with a ring
  bound, for post-mortem debugging of multicast trees.
"""

from __future__ import annotations

import math
from collections import deque
from typing import Deque, List, Optional, Tuple

from repro.net.packet import Packet, PacketType
from repro.net.port import Port
from repro.net.simulator import Event, Simulator

__all__ = ["LatencyStats", "DeliveryTap", "QueueDepthProbe", "PacketLog"]


def _percentile_of(ordered: List[float], p: float) -> float:
    """Linear-interpolated percentile of an already-sorted sample list."""
    if not ordered:
        return 0.0
    if not 0 <= p <= 100:
        raise ValueError(f"percentile out of range: {p}")
    rank = (p / 100) * (len(ordered) - 1)
    lo = math.floor(rank)
    hi = math.ceil(rank)
    if lo == hi:
        return ordered[lo]
    frac = rank - lo
    return ordered[lo] * (1 - frac) + ordered[hi] * frac


class LatencyStats:
    """Accumulates samples; exact percentiles over the retained window.

    Keeps at most ``max_samples`` (reservoir-free head retention is fine
    for the deterministic simulations this instruments).
    """

    def __init__(self, max_samples: int = 1_000_000) -> None:
        self._samples: List[float] = []
        self.max_samples = max_samples
        self.count = 0
        self.total = 0.0
        self.max_value = 0.0

    def record(self, value: float) -> None:
        self.count += 1
        self.total += value
        if value > self.max_value:
            self.max_value = value
        if len(self._samples) < self.max_samples:
            self._samples.append(value)

    @property
    def mean(self) -> float:
        return self.total / self.count if self.count else 0.0

    def percentile(self, p: float) -> float:
        """Exact percentile of the retained samples (p in [0, 100])."""
        return _percentile_of(sorted(self._samples), p)

    def summary(self) -> dict:
        # Sort the window once and read every percentile off it, instead
        # of re-sorting per percentile() call.
        ordered = sorted(self._samples)
        return {
            "count": self.count,
            "mean": self.mean,
            "p50": _percentile_of(ordered, 50),
            "p99": _percentile_of(ordered, 99),
            "max": self.max_value,
        }


class DeliveryTap:
    """Records one-way delay of every DATA packet a QP receives."""

    def __init__(self, qp) -> None:
        self.qp = qp
        self.stats = LatencyStats()
        self._orig = qp.handle_packet
        qp.handle_packet = self._tap

    def _tap(self, pkt: Packet) -> None:
        if pkt.ptype == PacketType.DATA:
            self.stats.record(self.qp.sim.now - pkt.created_at)
        self._orig(pkt)

    def detach(self) -> None:
        self.qp.handle_packet = self._orig


class QueueDepthProbe:
    """Samples a port's queued bytes every ``interval`` for ``duration``."""

    def __init__(self, sim: Simulator, port: Port, *,
                 interval: float = 10e-6, duration: float = 10e-3) -> None:
        self.sim = sim
        self.port = port
        self.interval = interval
        self.deadline = sim.now + duration
        self.series: List[Tuple[float, int]] = []
        self._ev: Optional[Event] = None
        self._tick()

    def _tick(self) -> None:
        self.series.append((self.sim.now, self.port.queued_bytes))
        if self.sim.now + self.interval <= self.deadline:
            self._ev = self.sim.schedule(self.interval, self._tick)
        else:
            self._ev = None

    def stop(self) -> None:
        if self._ev is not None:
            self._ev.cancel()
            self._ev = None

    @property
    def peak_bytes(self) -> int:
        return max((b for _, b in self.series), default=0)

    def mean_bytes(self) -> float:
        if not self.series:
            return 0.0
        return sum(b for _, b in self.series) / len(self.series)


class PacketLog:
    """Bounded log of packets a device forwarded (attach to a switch)."""

    def __init__(self, switch, max_entries: int = 10_000) -> None:
        self.switch = switch
        self.entries: Deque[Tuple[float, str, int, int, int]] = deque(
            maxlen=max_entries)
        self._orig = switch.emit
        switch.emit = self._tap

    def _tap(self, pkt: Packet, out_port: int, in_port: int = -1) -> bool:
        self.entries.append(
            (self.switch.sim.now, pkt.ptype.name, pkt.psn, in_port, out_port))
        return self._orig(pkt, out_port, in_port)

    def detach(self) -> None:
        self.switch.emit = self._orig

    def of_type(self, type_name: str) -> List[Tuple[float, str, int, int, int]]:
        return [e for e in self.entries if e[1] == type_name]

    def __len__(self) -> int:
        return len(self.entries)
