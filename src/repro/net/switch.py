"""Store-and-forward Ethernet switch.

The switch owns its radix of :class:`~repro.net.port.Port` objects, a
unicast FIB with ECMP groups, a :class:`~repro.net.pfc.PfcManager`, and
— when the fabric is Cepheus-enabled — an attached accelerator that the
receive path consults through an ACL-style classifier, mirroring the
paper's deployment ("legacy Ethernet switches ... configured with ACL
rules to direct multicast traffic towards the FPGA board").

The receive path is an explicit :class:`~repro.net.pipeline.Pipeline`
of stages (PFC → loss → ACL classify → unicast forward); the ACL stage
hands classified packets to the accelerator's own stage chain, which is
the paper's Fig. 7a sequence.  Cross-cutting consumers observe both
chains through the simulator's single
:class:`~repro.net.pipeline.ObserverBus`.

Random packet discard for the loss-tolerance experiments (§V-C) is a
per-switch knob, applied on ingress as in the paper ("emulated via
randomly discarding packets in the middle switches").
"""

from __future__ import annotations

import random
import zlib
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence

from repro import constants
from repro.errors import RoutingError
from repro.net.packet import Packet, PacketType
from repro.net.pfc import PfcManager
from repro.net.pipeline import DEFER, STOP, Pipeline, PipelineContext
from repro.net.port import Port
from repro.net.simulator import Simulator

__all__ = ["Switch", "SwitchConfig"]

_PAUSE_RESUME = (PacketType.PAUSE, PacketType.RESUME)


@dataclass
class SwitchConfig:
    """Per-switch tunables; defaults come from :mod:`repro.constants`."""

    queue_capacity: int = constants.SWITCH_QUEUE_BYTES
    ecn_kmin: int = constants.ECN_KMIN_BYTES
    ecn_kmax: int = constants.ECN_KMAX_BYTES
    ecn_pmax: float = constants.ECN_PMAX
    pfc_enabled: bool = True
    pfc_xoff: int = constants.PFC_XOFF_BYTES
    pfc_xon: int = constants.PFC_XON_BYTES
    loss_rate: float = 0.0
    loss_applies_to_feedback: bool = False
    accelerator_delay: float = constants.ACCELERATOR_DELAY_S
    seed: int = 0


class Switch:
    """An output-queued switch with an optional Cepheus accelerator."""

    def __init__(
        self,
        sim: Simulator,
        name: str,
        n_ports: int,
        config: Optional[SwitchConfig] = None,
    ) -> None:
        self.sim = sim
        self.name = name
        self.n_ports = n_ports
        self.config = config or SwitchConfig()
        cfg = self.config
        # Seeds derive from a stable digest (never the process-randomized
        # str hash) so runs reproduce across interpreter invocations.
        self.ports: List[Port] = [
            Port(
                self, i,
                queue_capacity=cfg.queue_capacity,
                ecn_kmin=cfg.ecn_kmin,
                ecn_kmax=cfg.ecn_kmax,
                ecn_pmax=cfg.ecn_pmax,
                seed=zlib.crc32(f"{cfg.seed}:{name}:{i}".encode()),
            )
            for i in range(n_ports)
        ]
        self.pfc = PfcManager(
            self, n_ports,
            xoff_bytes=cfg.pfc_xoff, xon_bytes=cfg.pfc_xon,
            enabled=cfg.pfc_enabled,
        )
        for p in self.ports:
            p.ingress_of = self.pfc.on_dequeue
        # FIB: dst_ip -> ECMP group (list of candidate egress ports).
        self.fib: Dict[int, List[int]] = {}
        # "host" or "switch" per port; topology fills this in.
        self.port_kind: List[Optional[str]] = [None] * n_ports
        self.accelerator = None  # set by CepheusFabric.attach()
        self._rng = random.Random(zlib.crc32(f"{cfg.seed}:{name}:loss".encode()))
        self.random_drops = 0
        self.taildrops = 0
        self.forwarded = 0
        self.bus = sim.bus
        self._ctx_pool = sim.pools.ctx
        self._pkt_pool = sim.pools.pkt
        self.pipeline = Pipeline(
            [self.stage_pfc, self.stage_loss, self.stage_acl_classify,
             self.stage_unicast_forward],
            name=f"{name}.rx", bus=self.bus,
        )

    # -- FIB management -------------------------------------------------------

    def add_route(self, dst_ip: int, ports: Sequence[int]) -> None:
        """Install (or extend) the ECMP group for ``dst_ip``."""
        group = self.fib.setdefault(dst_ip, [])
        for p in ports:
            if p not in group:
                group.append(p)

    def route_lookup(self, pkt: Packet) -> int:
        """Pick the egress port for a unicast packet (flow-hash ECMP)."""
        group = self.fib.get(pkt.dst_ip)
        if not group:
            raise RoutingError(f"{self.name}: no route for dst {pkt.dst_ip}")
        if len(group) == 1:
            return group[0]
        return group[pkt.flow_hash() % len(group)]

    def route_ports(self, dst_ip: int) -> List[int]:
        """All candidate egress ports toward ``dst_ip`` (for MDT building)."""
        group = self.fib.get(dst_ip)
        if not group:
            raise RoutingError(f"{self.name}: no route for dst {dst_ip}")
        return list(group)

    # -- receive path: the ingress stage chain --------------------------------

    def receive(self, pkt: Packet, in_port: int) -> None:
        if self.bus.stage:
            # Someone taps per-stage verdicts (the fuzzer's coverage
            # map): run the real Pipeline so every stage publishes.
            pool = self._ctx_pool
            ctx = pool.acquire(pkt, in_port, self)
            if self.pipeline.run(ctx) is not DEFER:
                pool.release(ctx)
            return
        # No stage tap: inline the four-stage rx chain — same decisions,
        # same RNG draws, same bus publications, no context object.
        if pkt.ptype in _PAUSE_RESUME:
            self.pfc.handle_frame(pkt, in_port)
            self._pkt_pool.release(pkt)
            return
        if self.config.loss_rate > 0.0 and self._should_randomly_drop(pkt):
            self.random_drops += 1
            bus = self.bus
            if bus.drop:
                bus.publish("drop", self, pkt, in_port, "random-loss")
            self._pkt_pool.release(pkt)
            return
        accel = self.accelerator
        if accel is not None and accel.classify(pkt):
            bus = self.bus
            if bus.classify:
                bus.publish("classify", self, pkt, in_port)
            accel.process(pkt, in_port)
            return
        self.emit(pkt, self.route_lookup(pkt), in_port)

    def stage_pfc(self, ctx: PipelineContext):
        """Link-local PAUSE/RESUME frames never travel further."""
        if ctx.pkt.ptype in (PacketType.PAUSE, PacketType.RESUME):
            self.pfc.handle_frame(ctx.pkt, ctx.in_port)
            return STOP
        return None

    def stage_loss(self, ctx: PipelineContext):
        """Random ingress discard for the §V-C loss experiments."""
        if self._should_randomly_drop(ctx.pkt):
            self.random_drops += 1
            bus = self.bus
            if bus.drop:
                bus.publish("drop", self, ctx.pkt, ctx.in_port, "random-loss")
            return STOP
        return None

    def stage_acl_classify(self, ctx: PipelineContext):
        """ACL redirect: the accelerator owns classified packets from
        here (its own stage chain models the admission delay and, for
        look-aside deployments, the FPGA detour)."""
        accel = self.accelerator
        if accel is not None and accel.classify(ctx.pkt):
            bus = self.bus
            if bus.classify:
                bus.publish("classify", self, ctx.pkt, ctx.in_port)
            accel.process(ctx.pkt, ctx.in_port)
            return STOP
        return None

    def stage_unicast_forward(self, ctx: PipelineContext):
        """Default path: flow-hash ECMP forwarding via the FIB."""
        self.emit(ctx.pkt, self.route_lookup(ctx.pkt), ctx.in_port)
        return STOP

    def _should_randomly_drop(self, pkt: Packet) -> bool:
        rate = self.config.loss_rate
        if rate <= 0.0:
            return False
        if pkt.ptype == PacketType.DATA:
            return self._rng.random() < rate
        if pkt.is_feedback and self.config.loss_applies_to_feedback:
            return self._rng.random() < rate
        return False

    # -- transmit path ----------------------------------------------------------

    def emit(self, pkt: Packet, out_port: int, in_port: int = -1) -> bool:
        """Queue ``pkt`` on ``out_port`` with PFC ingress accounting.

        ``in_port`` of -1 marks locally generated packets (aggregated
        ACKs, MRP fan-out) which do not contribute to PFC occupancy.
        """
        bus = self.bus
        if bus.emit:
            bus.publish("emit", self, pkt, out_port, in_port)
        ok = self.ports[out_port].enqueue(pkt, in_port)
        if ok:
            self.forwarded += 1
            self.pfc.on_enqueue(pkt, in_port)
        else:
            self._pkt_pool.release(pkt)  # tail-dropped: provably dead
        return ok

    def on_drop(self, pkt: Packet, port_index: int, reason: str) -> None:
        """Callback from ports for tail-drops."""
        self.taildrops += 1
        bus = self.bus
        if bus.drop:
            bus.publish("drop", self, pkt, port_index, reason)

    # -- helpers ------------------------------------------------------------------

    def host_ports(self) -> List[int]:
        return [i for i, k in enumerate(self.port_kind) if k == "host"]

    def is_host_port(self, index: int) -> bool:
        return self.port_kind[index] == "host"

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"<Switch {self.name} ports={self.n_ports}>"
