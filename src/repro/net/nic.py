"""Host NIC device.

A :class:`Nic` is the host-side endpoint of the simulated fabric: one
egress :class:`~repro.net.port.Port` toward the ToR switch, a QP demux
table for RoCE traffic, PFC compliance, and a control-plane handler for
out-of-band packets (MRP confirmations, connection setup).

The RNIC behaviour itself (packetization, retransmission, DCQCN...)
lives in :mod:`repro.transport`; the NIC only moves packets between the
wire and the registered QPs — which mirrors the paper's constraint that
the RNIC transport logic is fixed silicon that Cepheus must *reuse*,
not modify.
"""

from __future__ import annotations

from typing import Callable, Dict, List, Optional

from repro import constants
from repro.errors import TransportError
from repro.net.packet import Packet, PacketType
from repro.net.port import Port
from repro.net.simulator import Simulator

__all__ = ["Nic"]

_DATA = PacketType.DATA


class Nic:
    """One host NIC with a single 100G port."""

    def __init__(
        self,
        sim: Simulator,
        ip: int,
        name: Optional[str] = None,
        *,
        queue_capacity: int = 256 * constants.SWITCH_QUEUE_BYTES,
    ) -> None:
        # The generous default reflects that an RNIC never tail-drops its
        # own egress: WQEs wait in host memory and the per-QP outstanding
        # window bounds what can be in flight.  Concurrent QPs therefore
        # backpressure into this queue instead of losing packets.
        self.sim = sim
        self.ip = ip
        self.name = name or f"host{ip}"
        # ecn_kmin above capacity disables marking: an RNIC does not ECN-
        # mark its own send queue (marking is a switch-egress behaviour).
        self.ports: List[Port] = [
            Port(self, 0, queue_capacity=queue_capacity, seed=ip,
                 ecn_kmin=queue_capacity + 1, ecn_kmax=queue_capacity + 2)
        ]
        self._qps: Dict[int, object] = {}
        self._next_qpn = 0x100
        # Out-of-band traffic (MRP/CTRL) is handed to whoever registered.
        self.control_handler: Optional[Callable[[Packet], None]] = None
        # Source-routed multicast: dst McstID -> zero-arg callable
        # returning the group's *current* SrHeader.  Stamping happens at
        # send time so retransmissions carry the current epoch's header
        # (the RNIC replays WQEs; the header is an egress rewrite).
        self.sr_encoders: Dict[int, Callable[[], object]] = {}
        self.rx_packets = 0
        self.rx_unmatched = 0
        self._pkt_pool = sim.pools.pkt

    # -- QP registry -----------------------------------------------------------

    def allocate_qpn(self) -> int:
        qpn = self._next_qpn
        self._next_qpn += 1
        return qpn

    def register_qp(self, qpn: int, qp) -> None:
        if qpn in self._qps:
            raise TransportError(f"{self.name}: QPN {qpn} already registered")
        self._qps[qpn] = qp

    def deregister_qp(self, qpn: int) -> None:
        self._qps.pop(qpn, None)

    def get_qp(self, qpn: int):
        return self._qps.get(qpn)

    # -- wire I/O -----------------------------------------------------------------

    def send(self, pkt: Packet) -> bool:
        """Queue a packet on the NIC egress (honours PFC pause)."""
        if self.sr_encoders and pkt.ptype == _DATA:
            enc = self.sr_encoders.get(pkt.dst_ip)
            if enc is not None:
                pkt.sr = enc()
                # The header changes the wire size; refresh the memo in
                # place so the per-hop paths keep reading `_ws` directly.
                pkt._ws = pkt._wire_size()
        return self.ports[0].enqueue(pkt, -1)

    @property
    def egress_paused(self) -> bool:
        return self.ports[0].paused

    def receive(self, pkt: Packet, in_port: int) -> None:
        ptype = pkt.ptype
        if ptype == _DATA:
            # The overwhelmingly common arrival; checked first.  DATA
            # ownership transfers to the QP (IRN may buffer it) and is
            # released inside the transport's delivery paths.
            self.rx_packets += 1
            qp = self._qps.get(pkt.dst_qp)
            if qp is None:
                # Commodity RNIC behaviour: silently drop packets that
                # match no local QP (what breaks native multicast, §II-D).
                self.rx_unmatched += 1
                self._pkt_pool.release(pkt)
                return
            qp.handle_packet(pkt)
            return
        if ptype in (PacketType.PAUSE, PacketType.RESUME):
            self.ports[0].set_paused(ptype == PacketType.PAUSE)
            self._pkt_pool.release(pkt)
            return
        self.rx_packets += 1
        if ptype in (PacketType.MRP, PacketType.MRP_CONFIRM, PacketType.CTRL):
            # Not recycled: control handlers may retain the packet (or
            # its mrp/meta payload) past this call.
            if self.control_handler is not None:
                self.control_handler(pkt)
            return
        qp = self._qps.get(pkt.dst_qp)
        if qp is None:
            self.rx_unmatched += 1
            self._pkt_pool.release(pkt)
            return
        qp.handle_packet(pkt)
        # Feedback (ACK/NACK/CNP) is consumed synchronously by the QP.
        self._pkt_pool.release(pkt)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"<Nic {self.name} ip={self.ip}>"
