"""Output-queued port with ECN marking, PFC pause and a drain loop.

Every device in the simulation (switch or host NIC) owns a set of
:class:`Port` objects.  A port models the egress side of one link
direction: a FIFO byte queue, RED-style ECN marking at enqueue, a
tail-drop limit, and a transmitter that serializes one packet at a time
at the link rate and delivers it to the peer after the propagation
delay.

PFC PAUSE/RESUME frames are *link-local* and must never be blocked by a
paused data queue, so :meth:`Port.send_control` bypasses the queue and
only pays the propagation delay.
"""

from __future__ import annotations

import random
from collections import deque
from heapq import heappush
from typing import Deque, Optional, Tuple

from repro import constants
from repro.net.packet import Packet, PacketType

__all__ = ["Port", "PortStats"]

_DATA = PacketType.DATA


class PortStats:
    """Per-port counters, mainly consumed by the trace layer and tests."""

    __slots__ = ("tx_packets", "tx_bytes", "rx_packets", "rx_bytes",
                 "drops", "ecn_marks", "pause_events", "resume_events")

    def __init__(self) -> None:
        self.tx_packets = 0
        self.tx_bytes = 0
        self.rx_packets = 0
        self.rx_bytes = 0
        self.drops = 0
        self.ecn_marks = 0
        self.pause_events = 0
        self.resume_events = 0


class Port:
    """One egress queue + transmitter attached to a device.

    Parameters
    ----------
    device:
        Owner; must expose ``.sim`` (a :class:`~repro.net.simulator.Simulator`)
        and ``.receive(packet, in_port)``.
    index:
        The port number on the owner device.
    """

    __slots__ = (
        "device", "sim", "index", "peer_device", "peer_port",
        "bandwidth", "propagation", "queue_capacity",
        "ecn_kmin", "ecn_kmax", "ecn_pmax",
        "_queue", "_queued_bytes", "_busy", "_paused",
        "stats", "_rng", "ingress_of",
    )

    def __init__(
        self,
        device,
        index: int,
        *,
        bandwidth: float = constants.LINK_BANDWIDTH_BPS,
        propagation: float = constants.LINK_PROPAGATION_S,
        queue_capacity: int = constants.SWITCH_QUEUE_BYTES,
        ecn_kmin: int = constants.ECN_KMIN_BYTES,
        ecn_kmax: int = constants.ECN_KMAX_BYTES,
        ecn_pmax: float = constants.ECN_PMAX,
        seed: int = 0,
    ) -> None:
        self.device = device
        self.sim = device.sim
        self.index = index
        self.peer_device = None
        self.peer_port: Optional[int] = None
        self.bandwidth = bandwidth
        self.propagation = propagation
        self.queue_capacity = queue_capacity
        self.ecn_kmin = ecn_kmin
        self.ecn_kmax = ecn_kmax
        self.ecn_pmax = ecn_pmax
        # Each queue entry remembers the ingress port the packet arrived on
        # (for PFC per-ingress accounting on dequeue) and the wire size,
        # so the drain loop never recomputes it.
        self._queue: Deque[Tuple[Packet, int, int]] = deque()
        self._queued_bytes = 0
        self._busy = False
        self._paused = False
        self.stats = PortStats()
        self._rng = random.Random(seed)
        self.ingress_of = None  # optional PFC bookkeeping hook (switch sets it)

    # -- wiring -------------------------------------------------------------

    def connect(self, peer_device, peer_port: int) -> None:
        """Point this port's transmitter at the peer device/port."""
        self.peer_device = peer_device
        self.peer_port = peer_port

    @property
    def connected(self) -> bool:
        return self.peer_device is not None

    # -- state --------------------------------------------------------------

    @property
    def queued_bytes(self) -> int:
        return self._queued_bytes

    @property
    def queued_packets(self) -> int:
        return len(self._queue)

    @property
    def paused(self) -> bool:
        return self._paused

    def set_paused(self, paused: bool) -> None:
        """PFC hook: freeze/unfreeze the transmitter."""
        if paused == self._paused:
            return
        self._paused = paused
        if paused:
            self.stats.pause_events += 1
        else:
            self.stats.resume_events += 1
            self._try_drain()

    # -- enqueue ------------------------------------------------------------

    def enqueue(self, pkt: Packet, in_port: int = -1) -> bool:
        """Queue a packet for transmission.

        Returns False (and drops) when the tail-drop limit is exceeded.
        ``in_port`` is the ingress the packet arrived on (-1 for locally
        generated packets); it feeds PFC per-ingress accounting.
        """
        size = pkt._ws
        if size < 0:  # stale memo (never on the datapath): recompute
            size = pkt.wire_size
        if self._queued_bytes + size > self.queue_capacity:
            self.stats.drops += 1
            hook = getattr(self.device, "on_drop", None)
            if hook is not None:
                hook(pkt, self.index, "taildrop")
            return False
        if not self._busy and not self._paused and not self._queue:
            # Idle transmitter: start serializing without the deque
            # round-trip.  ECN marking is skipped because it reads the
            # queue depth *before* append — here that depth is 0, which
            # never exceeds kmin (and draws no RNG) on real configs.
            if self.ecn_kmin < 0 and pkt.ptype == _DATA:
                self._maybe_mark_ecn(pkt)  # pathological config: keep semantics
            self._busy = True
            sim = self.sim
            sim._seq += 1
            heappush(sim._heap,
                     [sim.now + size * 8.0 / self.bandwidth, sim._seq,
                      self._on_tx_done, (pkt, in_port, size), False])
            return True
        if pkt.ptype == _DATA:
            self._maybe_mark_ecn(pkt)
        self._queue.append((pkt, in_port, size))
        self._queued_bytes += size
        if not self._busy:
            self._try_drain()
        return True

    def _maybe_mark_ecn(self, pkt: Packet) -> None:
        """RED-style marking against the instantaneous queue depth."""
        q = self._queued_bytes
        if q <= self.ecn_kmin:
            return
        if q >= self.ecn_kmax:
            pkt.ecn = True
        else:
            p = self.ecn_pmax * (q - self.ecn_kmin) / (self.ecn_kmax - self.ecn_kmin)
            if self._rng.random() < p:
                pkt.ecn = True
        if pkt.ecn:
            self.stats.ecn_marks += 1

    # -- transmit -----------------------------------------------------------

    def _try_drain(self) -> None:
        if self._busy or self._paused or not self._queue:
            return
        # Queue entries are (pkt, in_port, size) — exactly _on_tx_done's
        # argument tuple, so they ride into the heap entry unrepacked.
        entry = self._queue.popleft()
        self._queued_bytes -= entry[2]
        self._busy = True
        sim = self.sim
        sim._seq += 1
        heappush(sim._heap,
                 [sim.now + entry[2] * 8.0 / self.bandwidth, sim._seq,
                  self._on_tx_done, entry, False])

    def _on_tx_done(self, pkt: Packet, in_port: int, size: int) -> None:
        stats = self.stats
        stats.tx_packets += 1
        stats.tx_bytes += size
        ingress_of = self.ingress_of
        if ingress_of is not None and in_port >= 0:
            # Tell the owning switch the packet left, so PFC per-ingress
            # occupancy can be decremented.
            ingress_of(pkt, in_port)
        sim = self.sim
        peer = self.peer_device
        if peer is not None:
            # peer.receive is looked up per delivery, NOT cached at
            # connect time: fault injectors and tests swap it on the
            # instance (black-holed switches, lossy wrappers).
            pkt.hops += 1
            sim._seq += 1
            heappush(sim._heap,
                     [sim.now + self.propagation, sim._seq,
                      peer.receive, (pkt, self.peer_port), False])
        # Inline drain: same delivery-then-next-transmission seq order as
        # the _try_drain call this replaces; _busy stays True across
        # back-to-back transmissions.
        queue = self._queue
        if queue and not self._paused:
            entry = queue.popleft()
            self._queued_bytes -= entry[2]
            sim._seq += 1
            heappush(sim._heap,
                     [sim.now + entry[2] * 8.0 / self.bandwidth, sim._seq,
                      self._on_tx_done, entry, False])
        else:
            self._busy = False

    # -- out-of-band control (PFC frames) ------------------------------------

    def send_control(self, pkt: Packet) -> None:
        """Deliver a link-local control frame, bypassing the data queue."""
        if self.peer_device is None:
            return
        stats = self.stats
        stats.tx_packets += 1
        stats.tx_bytes += pkt.wire_size
        sim = self.sim
        sim._seq += 1
        heappush(sim._heap,
                 [sim.now + self.propagation, sim._seq,
                  self.peer_device.receive, (pkt, self.peer_port), False])

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        dev = getattr(self.device, "name", self.device)
        return f"<Port {dev}[{self.index}] q={self._queued_bytes}B paused={self._paused}>"
