"""Free-list pools for the per-event hot objects.

The packet-level experiments allocate one :class:`~repro.net.packet.Packet`
per transmission/replica and one
:class:`~repro.net.pipeline.PipelineContext` per classified packet —
millions of short-lived objects whose allocation cost dominates once the
scheduler is cheap.  Each :class:`~repro.net.simulator.Simulator` owns a
:class:`SimPools` (``sim.pools``) holding one pool of each kind.

Lifecycle contract:

* **Contexts** never escape the datapath (the ObserverBus publishes
  packets, targets and replicas — never the context itself), so the
  context pool is always active.  A context is released by whoever ran
  the pipeline, only when the verdict was not ``DEFER`` (a deferred
  context is owned by the scheduled resume).  Release explicitly resets
  every field.
* **Packets** may be retained by bus observers (the invariant monitor,
  the fuzzer's coverage map, chaos taps...), so
  :meth:`PacketPool.release` is a **no-op whenever the bus has any
  subscriber** — exactly the runs where peak throughput is irrelevant.
  On the no-observer benches, packets are recycled at their provable
  end-of-life sites: consumed feedback, delivered/duplicate DATA at the
  receiver QP, and every drop.  Release scrubs the reference-carrying
  fields (``mrp``/``meta``/``sr``) so a free-listed packet pins nothing,
  and ``payload`` so stale state is detectable; acquisition re-runs
  ``Packet.__init__`` (fresh pid — the pid sequence is identical to
  unpooled runs) or ``clone_into``, overwriting every slot.

``CEPHEUS_POOL_DEBUG=1`` (or ``SimPools(bus, debug=True)``) swaps in
wrappers that track handed-out identities and fail fast on double
handout, double release, foreign release, or a stale field surviving
into reuse — the pool-hygiene regression suite runs fig8 under them.
"""

from __future__ import annotations

import os
from typing import List, Optional

from repro import constants
from repro.net.packet import Packet, PacketType, RdmaOp, _packet_ids
from repro.net.pipeline import ObserverBus, PipelineContext

__all__ = ["ContextPool", "PacketPool", "SimPools",
           "DebugContextPool", "DebugPacketPool", "PoolError"]


class PoolError(AssertionError):
    """A pool-hygiene invariant was violated (debug pools only)."""


class ContextPool:
    """Free list of :class:`PipelineContext` objects."""

    #: Free-list bound; beyond it released objects fall to the GC.  The
    #: live set at any instant is one context per in-flight classified
    #: packet plus one per deferred accelerator admission.
    MAX_FREE = 1024

    __slots__ = ("_free", "reused", "created")

    def __init__(self) -> None:
        self._free: List[PipelineContext] = []
        self.reused = 0
        self.created = 0

    def acquire(self, pkt, in_port: int, switch=None,
                accel=None) -> PipelineContext:
        free = self._free
        if free:
            ctx = free.pop()
            ctx.pkt = pkt
            ctx.in_port = in_port
            ctx.switch = switch
            ctx.accel = accel
            self.reused += 1
            return ctx
        self.created += 1
        return PipelineContext(pkt, in_port, switch, accel)

    def release(self, ctx: PipelineContext) -> None:
        # Explicit reset: a recycled context must be indistinguishable
        # from a fresh one (and must pin no packet/MFT/replica list).
        ctx.pkt = None
        ctx.in_port = -1
        ctx.switch = None
        ctx.accel = None
        ctx.mft = None
        ctx.targets = None
        ctx.replicas = None
        ctx.stage_index = 0
        free = self._free
        if len(free) < self.MAX_FREE:
            free.append(ctx)


class PacketPool:
    """Free list of :class:`Packet` objects, gated on an idle bus."""

    MAX_FREE = 4096

    __slots__ = ("bus", "_free", "reused", "created", "suppressed")

    def __init__(self, bus: ObserverBus) -> None:
        self.bus = bus
        self._free: List[Packet] = []
        self.reused = 0
        self.created = 0
        self.suppressed = 0

    def acquire(self, ptype, src_ip: int, dst_ip: int, **kw) -> Packet:
        free = self._free
        if free:
            pkt = free.pop()
            # Re-running __init__ resets every slot and draws the next
            # pid, exactly like a fresh allocation would.
            Packet.__init__(pkt, ptype, src_ip, dst_ip, **kw)
            self.reused += 1
            return pkt
        self.created += 1
        return Packet(ptype, src_ip, dst_ip, **kw)

    def acquire_data(self, src_ip, dst_ip, src_qp, dst_qp, psn, payload,
                     op, msg_id, first, last, vaddr, rkey, created_at,
                     retransmit, meta) -> Packet:
        """Positional DATA fast path for the sender's packetizer.

        Field-for-field identical to :meth:`acquire` with
        ``ptype=PacketType.DATA`` — fresh pid, eager wire-size memo —
        but with direct slot stores instead of a kwargs dict plus a
        ``Packet.__init__`` frame per transmitted segment.
        """
        free = self._free
        if free:
            pkt = free.pop()
            self.reused += 1
        else:
            pkt = Packet.__new__(Packet)
            self.created += 1
        pkt.pid = next(_packet_ids)
        pkt.ptype = PacketType.DATA
        pkt.src_ip = src_ip
        pkt.dst_ip = dst_ip
        pkt.src_qp = src_qp
        pkt.dst_qp = dst_qp
        pkt.psn = psn
        pkt.payload = payload
        pkt.op = op
        pkt.msg_id = msg_id
        pkt.first = first
        pkt.last = last
        pkt.vaddr = vaddr
        pkt.rkey = rkey
        pkt.ecn = False
        pkt.created_at = created_at
        pkt.retransmit = retransmit
        pkt.mrp = None
        pkt.meta = meta
        pkt.sr = None
        pkt.hops = 0
        pkt._ws = payload + constants.HEADER_BYTES + (
            16 if (first and op == RdmaOp.WRITE) else 0)
        return pkt

    def acquire_fb(self, ptype, src_ip, dst_ip, src_qp, dst_qp, psn,
                   created_at) -> Packet:
        """Positional ACK/NACK/CNP fast path (payload-less feedback)."""
        free = self._free
        if free:
            pkt = free.pop()
            self.reused += 1
        else:
            pkt = Packet.__new__(Packet)
            self.created += 1
        pkt.pid = next(_packet_ids)
        pkt.ptype = ptype
        pkt.src_ip = src_ip
        pkt.dst_ip = dst_ip
        pkt.src_qp = src_qp
        pkt.dst_qp = dst_qp
        pkt.psn = psn
        pkt.payload = 0
        pkt.op = RdmaOp.SEND
        pkt.msg_id = 0
        pkt.first = False
        pkt.last = False
        pkt.vaddr = 0
        pkt.rkey = 0
        pkt.ecn = False
        pkt.created_at = created_at
        pkt.retransmit = False
        pkt.mrp = None
        pkt.meta = None
        pkt.sr = None
        pkt.hops = 0
        pkt._ws = (constants.CNP_BYTES if ptype == PacketType.CNP
                   else constants.ACK_BYTES)
        return pkt

    def clone(self, src: Packet) -> Packet:
        """Pooled :meth:`Packet.clone` (the replication hot path)."""
        free = self._free
        if free:
            self.reused += 1
            return src.clone_into(free.pop())
        self.created += 1
        return src.clone()

    def release(self, pkt: Packet) -> None:
        if self.bus.active_subscribers:
            # An observer may hold a reference (coverage maps, chaos
            # taps, telemetry); recycling would alias its view.
            self.suppressed += 1
            return
        free = self._free
        if len(free) < self.MAX_FREE:
            pkt.mrp = None    # drop payload/header references so the
            pkt.meta = None   # free list pins no application state
            pkt.sr = None
            pkt.payload = 0
            free.append(pkt)


class DebugContextPool(ContextPool):
    """Hygiene-checking wrapper: identity tracking + reset verification."""

    __slots__ = ("_out", "_free_ids")

    def __init__(self) -> None:
        super().__init__()
        self._out: set = set()       # ids currently handed out
        self._free_ids: set = set()  # ids currently on the free list

    def acquire(self, pkt, in_port, switch=None, accel=None):
        recycled = bool(self._free)
        if recycled:
            ctx = self._free[-1]
            if (ctx.pkt is not None or ctx.mft is not None
                    or ctx.targets is not None or ctx.replicas is not None
                    or ctx.switch is not None or ctx.accel is not None
                    or ctx.stage_index != 0):
                raise PoolError(
                    f"stale context on free list (not fully reset): {ctx!r}")
        ctx = super().acquire(pkt, in_port, switch, accel)
        if id(ctx) in self._out:
            raise PoolError(f"context {id(ctx):#x} handed out twice")
        self._free_ids.discard(id(ctx))
        self._out.add(id(ctx))
        return ctx

    def release(self, ctx):
        if id(ctx) in self._free_ids:
            raise PoolError(f"context {id(ctx):#x} released twice")
        self._out.discard(id(ctx))
        n = len(self._free)
        super().release(ctx)
        if len(self._free) > n:
            self._free_ids.add(id(ctx))


class DebugPacketPool(PacketPool):
    """Hygiene-checking wrapper: identity tracking + scrub verification."""

    __slots__ = ("_out", "_free_ids")

    def __init__(self, bus) -> None:
        super().__init__(bus)
        self._out: set = set()
        self._free_ids: set = set()

    def _check_scrubbed(self) -> None:
        pkt = self._free[-1]
        if (pkt.mrp is not None or pkt.meta is not None
                or pkt.sr is not None or pkt.payload != 0):
            raise PoolError(
                f"stale packet on free list (sr/payload/meta/mrp survived "
                f"release): {pkt!r} sr={pkt.sr!r} payload={pkt.payload}")

    def _track_out(self, pkt: Packet) -> Packet:
        if id(pkt) in self._out:
            raise PoolError(f"packet {id(pkt):#x} handed out twice")
        self._free_ids.discard(id(pkt))
        self._out.add(id(pkt))
        return pkt

    def acquire(self, ptype, src_ip, dst_ip, **kw):
        if self._free:
            self._check_scrubbed()
        return self._track_out(super().acquire(ptype, src_ip, dst_ip, **kw))

    def acquire_data(self, *args):
        if self._free:
            self._check_scrubbed()
        return self._track_out(super().acquire_data(*args))

    def acquire_fb(self, *args):
        if self._free:
            self._check_scrubbed()
        return self._track_out(super().acquire_fb(*args))

    def clone(self, src):
        if self._free:
            self._check_scrubbed()
        return self._track_out(super().clone(src))

    def release(self, pkt):
        if id(pkt) in self._free_ids:
            raise PoolError(f"packet {id(pkt):#x} (pid {pkt.pid}) "
                            f"released twice")
        self._out.discard(id(pkt))
        n = len(self._free)
        super().release(pkt)
        if len(self._free) > n:
            self._free_ids.add(id(pkt))


class SimPools:
    """The per-simulator pool pair (``sim.pools``)."""

    __slots__ = ("ctx", "pkt", "debug")

    def __init__(self, bus: ObserverBus,
                 debug: Optional[bool] = None) -> None:
        if debug is None:
            debug = os.environ.get("CEPHEUS_POOL_DEBUG") == "1"
        self.debug = debug
        self.ctx: ContextPool = DebugContextPool() if debug else ContextPool()
        self.pkt: PacketPool = (DebugPacketPool(bus) if debug
                                else PacketPool(bus))
