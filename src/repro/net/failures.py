"""Failure injection: dead links and dead switches.

The paper's safeguard fallback (§V-D) exists because "realistic
deployment of Cepheus must consider the possibility of extreme accident
instances" — yet the paper only prototypes the detection side.  This
module provides the accidents: a failed link silently discards
everything crossing it (as a yanked cable does), a failed switch
discards everything it receives.  The fallback tests and the
``lossy_fabric_fallback`` example use these to show Cepheus traffic
surviving a severed MDT via the AMcast fallback.

Failures can be scheduled mid-run (``at=``) and repaired, so tests can
also exercise recovery behaviour.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Tuple

from repro.errors import TopologyError
from repro.net.switch import Switch
from repro.net.topology import Topology

__all__ = ["FailureInjector"]


class FailureInjector:
    """Cuts and repairs links/switches on a live topology."""

    def __init__(self, topo: Topology) -> None:
        self.topo = topo
        self.sim = topo.sim
        # (device id, port) -> original peer tuple, for repair
        self._severed: Dict[Tuple[int, int], Tuple[object, int]] = {}
        self._dead_switches: Dict[str, object] = {}
        self.links_failed = 0
        self.switches_failed = 0

    # -- links -----------------------------------------------------------------

    def fail_link(self, dev_a, port_a: int, *, at: Optional[float] = None) -> None:
        """Sever the bidirectional link attached to ``dev_a.ports[port_a]``.

        Packets already serialized keep propagating (they are on the
        wire); everything transmitted afterwards is lost.
        """
        if at is not None:
            self.sim.schedule(max(0.0, at - self.sim.now),
                              self.fail_link, dev_a, port_a)
            return
        if (id(dev_a), port_a) in self._severed:
            # Already down (double-fail, or a scheduled failure firing
            # while the link is still cut): yanking a yanked cable is a
            # no-op, not an error — crucial for `at=` events that race
            # with explicit failures.
            return
        pa = dev_a.ports[port_a]
        if not pa.connected:
            raise TopologyError(f"port {port_a} of {dev_a} has no link")
        dev_b, port_b = pa.peer_device, pa.peer_port
        pb = dev_b.ports[port_b]
        self._severed[(id(dev_a), port_a)] = (dev_b, port_b)
        self._severed[(id(dev_b), port_b)] = (dev_a, port_a)
        pa.peer_device = None
        pb.peer_device = None
        self.links_failed += 1

    def repair_link(self, dev_a, port_a: int) -> None:
        """Undo :meth:`fail_link`."""
        key = (id(dev_a), port_a)
        if key not in self._severed:
            raise TopologyError("link was not failed by this injector")
        dev_b, port_b = self._severed.pop(key)
        self._severed.pop((id(dev_b), port_b), None)
        dev_a.ports[port_a].connect(dev_b, port_b)
        dev_b.ports[port_b].connect(dev_a, port_a)

    def fail_host_link(self, ip: int, *, at: Optional[float] = None) -> None:
        """Cut a host off the fabric (its leaf-switch access link)."""
        sw, port = self.topo.leaf_of(ip)
        self.fail_link(sw, port, at=at)

    # -- switches --------------------------------------------------------------------

    def fail_switch(self, sw: Switch, *, at: Optional[float] = None) -> None:
        """Make the switch a black hole: every arriving packet is lost."""
        if at is not None:
            self.sim.schedule(max(0.0, at - self.sim.now),
                              self.fail_switch, sw)
            return
        if sw.name in self._dead_switches:
            return
        self._dead_switches[sw.name] = sw.receive
        sw.receive = lambda pkt, in_port: None
        self.switches_failed += 1

    def repair_switch(self, sw: Switch) -> None:
        original = self._dead_switches.pop(sw.name, None)
        if original is None:
            raise TopologyError(f"{sw.name} was not failed by this injector")
        sw.receive = original

    # -- introspection -----------------------------------------------------------------

    @property
    def active_failures(self) -> int:
        return len(self._severed) // 2 + len(self._dead_switches)
