"""Priority Flow Control (IEEE 802.1Qbb), simplified single-priority.

The paper deploys Cepheus in lossless RoCE fabrics and describes PFC's
interaction with multicast replication (§III-D, Flow Control): when an
egress port of a replicating switch is paused, the ingress stops pulling
from upstream, the ingress-side occupancy grows, and the switch
eventually pauses *its* upstream.  We reproduce that with per-ingress
byte accounting:

* every time a packet that arrived on ingress ``i`` is queued at any
  egress, ``occupancy[i]`` grows;
* when the packet finally leaves the egress transmitter, ``occupancy[i]``
  shrinks (the egress :class:`~repro.net.port.Port` calls back via its
  ``ingress_of`` hook);
* crossing XOFF sends a PAUSE out of port ``i`` (toward the upstream
  device), and falling below XON sends a RESUME.

A replicated packet counts once per replica, which is exactly the
behaviour the paper wants: a single paused subtree inflates the ingress
count and throttles the whole group at the source's rate.
"""

from __future__ import annotations

from typing import Dict, List

from repro import constants
from repro.net.packet import Packet, PacketType

__all__ = ["PfcManager"]


class PfcManager:
    """Per-switch PFC state machine."""

    def __init__(
        self,
        device,
        n_ports: int,
        *,
        xoff_bytes: int = constants.PFC_XOFF_BYTES,
        xon_bytes: int = constants.PFC_XON_BYTES,
        enabled: bool = True,
    ) -> None:
        self.device = device
        self.enabled = enabled
        self.xoff_bytes = xoff_bytes
        self.xon_bytes = xon_bytes
        self._occupancy: List[int] = [0] * n_ports
        self._pause_sent: List[bool] = [False] * n_ports
        self.pause_frames_sent = 0
        self.resume_frames_sent = 0

    # -- occupancy accounting ------------------------------------------------

    def on_enqueue(self, pkt: Packet, in_port: int) -> None:
        """A packet from ``in_port`` was queued at some egress."""
        if not self.enabled or in_port < 0:
            return
        occ = self._occupancy[in_port] + pkt._ws
        self._occupancy[in_port] = occ
        if occ >= self.xoff_bytes and not self._pause_sent[in_port]:
            self._pause_sent[in_port] = True
            self.pause_frames_sent += 1
            self._send_frame(in_port, PacketType.PAUSE)

    def on_dequeue(self, pkt: Packet, in_port: int) -> None:
        """A packet from ``in_port`` finished transmission at some egress."""
        if not self.enabled or in_port < 0:
            return
        occ = self._occupancy[in_port] - pkt._ws
        if occ < 0:
            occ = 0
        self._occupancy[in_port] = occ
        if occ <= self.xon_bytes and self._pause_sent[in_port]:
            self._pause_sent[in_port] = False
            self.resume_frames_sent += 1
            self._send_frame(in_port, PacketType.RESUME)

    def occupancy(self, in_port: int) -> int:
        return self._occupancy[in_port]

    # -- frame I/O -------------------------------------------------------------

    def _send_frame(self, port_index: int, ptype: PacketType) -> None:
        port = self.device.ports[port_index]
        if not port.connected:
            return
        frame = Packet(ptype, src_ip=0, dst_ip=0,
                       created_at=self.device.sim.now)
        port.send_control(frame)

    def handle_frame(self, pkt: Packet, in_port: int) -> None:
        """A PAUSE/RESUME arrived on ``in_port``: gate our egress there."""
        if not self.enabled:
            return
        self.device.ports[in_port].set_paused(pkt.ptype == PacketType.PAUSE)
