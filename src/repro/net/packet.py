"""Packet model.

A :class:`Packet` carries the union of the header fields the
reproduction needs: Ethernet/IPv4 addressing, the RoCEv2 IB BTH
(dstQP, PSN, opcode flags), the AETH for ACK/NACK, the RETH for
one-sided WRITE, plus simulator-only metadata (creation time, ECN bit).

Addresses are plain integers: host IPs are small ints handed out by the
topology builder, and multicast group IDs (McstIDs) come from the
reserved range at/above :data:`repro.constants.MCSTID_BASE` — the same
trick the paper plays by using the McstID as a dstIP.
"""

from __future__ import annotations

import enum
import itertools
from typing import Any, Optional

from repro import constants

__all__ = ["PacketType", "RdmaOp", "Packet", "is_multicast_ip"]

_packet_ids = itertools.count()


class PacketType(enum.IntEnum):
    """Wire-level packet classification used by switches and NICs."""

    DATA = 0          # RoCE data segment (SEND or WRITE)
    ACK = 1           # RoCE AETH acknowledgement
    NACK = 2          # RoCE AETH negative ack (carries ePSN)
    CNP = 3           # DCQCN congestion notification packet
    MRP = 4           # Cepheus MFT Registration Protocol (UDP)
    MRP_CONFIRM = 5   # receiver -> controller membership confirmation
    PAUSE = 6         # PFC pause frame (link-local)
    RESUME = 7        # PFC resume frame (link-local)
    CTRL = 8          # generic out-of-band control (connection setup...)


class RdmaOp(enum.IntEnum):
    """RDMA operation carried by DATA packets."""

    SEND = 0
    WRITE = 1


def is_multicast_ip(ip: int) -> bool:
    """True when ``ip`` is a McstID (reserved multicast range)."""
    return ip >= constants.MCSTID_BASE


class Packet:
    """One simulated packet.

    ``payload`` is a byte *count*, not bytes — the simulation is
    timing-accurate, not data-accurate.  ``wire_size`` adds the fixed
    per-type header overhead and is what links serialize.
    """

    __slots__ = (
        "pid", "ptype", "src_ip", "dst_ip", "src_qp", "dst_qp",
        "psn", "payload", "op", "msg_id", "first", "last",
        "vaddr", "rkey", "ecn", "created_at", "retransmit",
        "mrp", "meta", "hops", "sr", "_ws",
    )

    def __init__(
        self,
        ptype: PacketType,
        src_ip: int,
        dst_ip: int,
        *,
        src_qp: int = 0,
        dst_qp: int = 0,
        psn: int = 0,
        payload: int = 0,
        op: RdmaOp = RdmaOp.SEND,
        msg_id: int = 0,
        first: bool = False,
        last: bool = False,
        vaddr: int = 0,
        rkey: int = 0,
        created_at: float = 0.0,
        retransmit: bool = False,
        mrp: Optional[Any] = None,
        meta: Optional[Any] = None,
        sr: Optional[Any] = None,
    ) -> None:
        self.pid = next(_packet_ids)
        self.ptype = ptype
        self.src_ip = src_ip
        self.dst_ip = dst_ip
        self.src_qp = src_qp
        self.dst_qp = dst_qp
        self.psn = psn
        self.payload = payload
        self.op = op
        self.msg_id = msg_id
        self.first = first
        self.last = last
        self.vaddr = vaddr
        self.rkey = rkey
        self.ecn = False
        self.created_at = created_at
        self.retransmit = retransmit
        self.mrp = mrp
        self.meta = meta
        self.sr = sr
        self.hops = 0
        # Wire-size memo, computed eagerly: every packet is serialized at
        # least once, so the lazy memo always paid this exact cost — and
        # paying it here lets the per-hop paths read the ``_ws`` slot
        # directly instead of going through the property.
        if ptype == PacketType.DATA:
            extra = 16 if (op == RdmaOp.WRITE and first) else 0
            if sr is not None:
                extra += sr.header_bytes
            self._ws = payload + constants.HEADER_BYTES + extra
        else:
            self._ws = self._wire_size()

    # -- wire size ---------------------------------------------------------

    @property
    def wire_size(self) -> int:
        """Bytes occupying the wire, headers included.

        Memoized in the ``_ws`` slot (filled eagerly by ``__init__``):
        every hop serializes the same packet (ports, rate limiters and
        CC all ask), and nothing size-affecting mutates after creation
        except the NIC attaching a source-route header — which refreshes
        the memo in place.  Hot paths read ``_ws`` directly.
        """
        ws = self._ws
        if ws >= 0:
            return ws
        self._ws = ws = self._wire_size()
        return ws

    def _wire_size(self) -> int:
        t = self.ptype
        if t == PacketType.DATA:
            extra = 16 if (self.op == RdmaOp.WRITE and self.first) else 0
            if self.sr is not None:
                extra += self.sr.header_bytes
            return self.payload + constants.HEADER_BYTES + extra
        if t in (PacketType.ACK, PacketType.NACK):
            return constants.ACK_BYTES
        if t == PacketType.CNP:
            return constants.CNP_BYTES
        if t in (PacketType.PAUSE, PacketType.RESUME):
            return 64
        if t in (PacketType.MRP, PacketType.MRP_CONFIRM):
            return min(constants.MRP_MTU_BYTES, 64 + self.payload)
        return 64 + self.payload

    # -- replication -------------------------------------------------------

    def clone(self) -> "Packet":
        """Deep-enough copy for in-network replication.

        A fresh ``pid`` is assigned; the Cepheus duplicator then rewrites
        the addressing fields of each replica independently.
        """
        return self.clone_into(Packet.__new__(Packet))

    def clone_into(self, p: "Packet") -> "Packet":
        """Copy every field of ``self`` into ``p`` (fresh pid) — the
        replication hot path shared by :meth:`clone` and the packet
        pool's recycled-clone fast path."""
        p.pid = next(_packet_ids)
        p.ptype = self.ptype
        p.src_ip = self.src_ip
        p.dst_ip = self.dst_ip
        p.src_qp = self.src_qp
        p.dst_qp = self.dst_qp
        p.psn = self.psn
        p.payload = self.payload
        p.op = self.op
        p.msg_id = self.msg_id
        p.first = self.first
        p.last = self.last
        p.vaddr = self.vaddr
        p.rkey = self.rkey
        p.ecn = self.ecn
        p.created_at = self.created_at
        p.retransmit = self.retransmit
        p.mrp = self.mrp
        p.meta = self.meta
        p.sr = self.sr
        p.hops = self.hops
        p._ws = self._ws  # identical size-affecting fields -> same memo
        return p

    # -- classification helpers --------------------------------------------

    @property
    def is_feedback(self) -> bool:
        """ACK/NACK/CNP — the three feedback types Cepheus handles."""
        return self.ptype in (PacketType.ACK, PacketType.NACK, PacketType.CNP)

    @property
    def is_mcast_data(self) -> bool:
        """DATA addressed to a McstID (pre-bridging multicast stream)."""
        return self.ptype == PacketType.DATA and is_multicast_ip(self.dst_ip)

    @property
    def is_mcast_feedback(self) -> bool:
        """Feedback addressed to a McstID (srcIP was rewritten on data)."""
        return self.is_feedback and is_multicast_ip(self.dst_ip)

    def flow_hash(self) -> int:
        """Flow-consistent hash used for ECMP uplink selection."""
        return hash((self.src_ip, self.dst_ip, self.src_qp, self.dst_qp))

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"<Packet #{self.pid} {self.ptype.name} {self.src_ip}->{self.dst_ip} "
            f"qp{self.src_qp}->{self.dst_qp} psn={self.psn} len={self.payload}>"
        )
