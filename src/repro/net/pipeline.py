"""The staged datapath pipeline and its single observer bus.

The paper's Fig. 7a draws the accelerator as a fixed sequence of
stages — ACL classify → MFT lookup → replicate (with ingress pruning
and retransmission filtering) → connection bridging → feedback
aggregation.  This module gives the reproduction that shape explicitly
(the way Elmo and Gleam frame programmable multicast datapaths):

* a :class:`PipelineContext` is carried per packet through an ordered
  chain of stage callables (a :class:`Pipeline`); a stage returns
  ``None`` to pass the context on, :data:`STOP` when it consumed the
  packet, or :data:`DEFER` after scheduling :meth:`Pipeline.resume`
  for a later virtual time (the accelerator admission delay and the
  look-aside FPGA detour are *stages*, not special cases);
* every cross-cutting consumer — the
  :class:`~repro.check.InvariantMonitor`, telemetry taps, the chaos and
  churn harnesses — subscribes to one :class:`ObserverBus` per
  :class:`~repro.net.simulator.Simulator` instead of monkey-patching
  component methods.

The bus is deliberately branch-cheap when nobody listens: channels are
plain tuples stored as attributes, so the datapath guards every
publication with a single ``if bus.<channel>:`` truthiness test and
pays nothing else on the no-observer fast path.
"""

from __future__ import annotations

from typing import Any, Callable, Dict, List, Optional, Tuple

__all__ = ["ObserverBus", "Pipeline", "PipelineContext", "STOP", "DEFER"]


class _Verdict:
    """Sentinel returned by a stage to alter chain control flow."""

    __slots__ = ("name",)

    def __init__(self, name: str) -> None:
        self.name = name

    def __repr__(self) -> str:
        return self.name


#: The stage consumed the packet; the chain halts here.
STOP = _Verdict("STOP")

#: The stage scheduled :meth:`Pipeline.resume` for a later virtual
#: time; the chain halts now and continues from the next stage then.
DEFER = _Verdict("DEFER")


class ObserverBus:
    """Publish/subscribe fan-out for datapath events.

    One bus serves a whole simulation (``sim.bus``); standalone
    components built without a simulator (a bare
    :class:`~repro.core.feedback.FeedbackEngine` in a unit test) create
    a private one.  Channels and their payloads:

    ========================  ==================================================
    ``classify``              ``(switch, pkt, in_port)`` — ACL redirected the
                              packet to the accelerator
    ``replicate``             ``(accel, mft, pkt, in_port, targets)`` — after
                              ingress pruning + retransmission filtering
    ``bridge``                ``(accel, mft, replica, entry)`` — after the
                              connection-bridging header rewrite of one replica
    ``feedback``              ``(engine, mft, kind, in_port, value, emits)`` —
                              after each feedback aggregation decision
    ``deliver``               ``(qp, pkt)`` — in-order delivery at a receiver QP
    ``qp_send``               ``(qp, pkt)`` — every DATA transmission
    ``emit``                  ``(switch, pkt, out_port, in_port)`` — a switch
                              queued a packet for egress
    ``drop``                  ``(device, pkt, port, reason)`` — random loss,
                              tail drop, or an unregistered-group discard
    ``membership_epoch``      ``(qp, epoch)`` — a membership delta re-based the
                              QP's PSN stream position
    ``stage``                 ``(pipeline, stage_name, verdict)`` — one stage
                              of a :class:`Pipeline` ran; ``verdict`` is
                              ``None``, :data:`STOP` or :data:`DEFER` (the
                              coverage-guided fuzzer's verdict tap)
    ``event``                 ``(now,)`` — per-simulator-event tick (sampled
                              structural sweeps)
    ``lane_spray``            ``(sprayer, spray_id, lane, lane_id, offset,
                              length, total, respray)`` — the sprayer posted
                              one lane's byte sub-range of a sprayed message
                              (``respray=True`` for a dead lane's share
                              re-posted on a survivor)
    ``lane_complete``         ``(reassembler, spray_id, ip, total, segments)``
                              — a receiver's reassembler declared a sprayed
                              message complete; ``segments`` is the raw
                              ``(offset, length, lane)`` list it accumulated
    ========================  ==================================================

    Subscriber lists are immutable tuples: subscribing or unsubscribing
    replaces the tuple, so in-flight publications iterate a stable
    snapshot and the empty-channel check is a single truthiness branch.

    Observers are *isolated* by default: an exception raised by one
    subscriber is recorded on :attr:`errors` and the remaining
    subscribers (and the datapath) proceed untouched.  A subscriber
    that *wants* to abort the run — the strict-mode invariant monitor —
    passes ``propagate=True`` and its exceptions escape to the caller.
    """

    CHANNELS: Tuple[str, ...] = (
        "classify", "replicate", "bridge", "feedback", "deliver",
        "qp_send", "emit", "drop", "membership_epoch", "stage", "event",
        "lane_spray", "lane_complete",
    )

    #: Bound on the retained error log (oldest entries are discarded).
    MAX_ERRORS = 100

    __slots__ = CHANNELS + ("_propagate", "errors", "dropped_errors",
                            "active_subscribers")

    def __init__(self) -> None:
        for channel in self.CHANNELS:
            setattr(self, channel, ())
        self._propagate: set = set()
        self.errors: List[Dict[str, Any]] = []
        self.dropped_errors = 0
        # Maintained count of subscriptions across all channels: the
        # packet pool's O(1) "is anyone watching?" gate.
        self.active_subscribers = 0

    # -- subscription ------------------------------------------------------

    def _check_channel(self, channel: str) -> None:
        if channel not in self.CHANNELS:
            raise ValueError(
                f"unknown bus channel {channel!r}; "
                f"known: {', '.join(self.CHANNELS)}")

    def subscribe(self, channel: str, fn: Callable[..., None], *,
                  propagate: bool = False) -> Callable[..., None]:
        """Register ``fn`` on ``channel``; returns ``fn`` for symmetry.

        Subscribing the same callable twice is a no-op (cluster-level
        attachment walks overlapping component sets).  Observers fire in
        subscription order.  ``propagate=True`` lets exceptions raised
        by ``fn`` escape to the publishing datapath instead of being
        isolated.
        """
        self._check_channel(channel)
        subs = getattr(self, channel)
        if fn not in subs:
            setattr(self, channel, subs + (fn,))
            self.active_subscribers += 1
        if propagate:
            self._propagate.add(fn)
        return fn

    def unsubscribe(self, channel: str, fn: Callable[..., None]) -> None:
        """Remove ``fn`` from ``channel``; unknown subscribers are a no-op."""
        self._check_channel(channel)
        subs = getattr(self, channel)
        if fn in subs:
            setattr(self, channel, tuple(f for f in subs if f != fn))
            self.active_subscribers -= 1
        self._propagate.discard(fn)

    def is_subscribed(self, channel: str, fn: Callable[..., None]) -> bool:
        self._check_channel(channel)
        return fn in getattr(self, channel)

    def subscriber_count(self) -> int:
        """Total subscriptions across every channel."""
        return sum(len(getattr(self, c)) for c in self.CHANNELS)

    def clear(self) -> None:
        """Drop every subscription (test teardown convenience)."""
        for channel in self.CHANNELS:
            setattr(self, channel, ())
        self._propagate.clear()
        self.active_subscribers = 0

    # -- publication -------------------------------------------------------

    def publish(self, channel: str, *args: Any) -> None:
        """Deliver ``args`` to every subscriber of ``channel``.

        Hot datapath sites guard the call with ``if bus.<channel>:`` so
        this body only runs when someone is listening.
        """
        try:
            subs = getattr(self, channel)
        except AttributeError:
            self._check_channel(channel)  # raises the uniform ValueError
            raise  # pragma: no cover - _check_channel always raises here
        for fn in subs:
            try:
                fn(*args)
            except Exception as exc:
                if fn in self._propagate:
                    raise
                self._record_error(channel, fn, exc)

    def _record_error(self, channel: str, fn: Callable[..., None],
                      exc: Exception) -> None:
        if len(self.errors) >= self.MAX_ERRORS:
            del self.errors[0]
            self.dropped_errors += 1
        self.errors.append({
            "channel": channel,
            "observer": repr(fn),
            "error": f"{type(exc).__name__}: {exc}",
        })

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        active = {c: len(getattr(self, c)) for c in self.CHANNELS
                  if getattr(self, c)}
        return f"<ObserverBus {active or 'idle'}>"


class PipelineContext:
    """Mutable per-packet state carried through a stage chain.

    ``mft``, ``targets`` and ``replicas`` are filled in by the
    accelerator's lookup/replicate stages; ``stage_index`` tracks the
    chain position so a deferring stage can resume after itself.
    """

    __slots__ = ("pkt", "in_port", "switch", "accel", "mft",
                 "targets", "replicas", "stage_index")

    def __init__(self, pkt, in_port: int, switch=None, accel=None) -> None:
        self.pkt = pkt
        self.in_port = in_port
        self.switch = switch
        self.accel = accel
        self.mft = None
        self.targets = None
        self.replicas = None
        self.stage_index = 0

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (f"<PipelineContext {self.pkt!r} in_port={self.in_port} "
                f"stage={self.stage_index}>")


class Pipeline:
    """An ordered chain of stage callables.

    A stage is any callable taking one :class:`PipelineContext` and
    returning ``None`` (continue), :data:`STOP` (packet consumed) or
    :data:`DEFER` (the stage scheduled :meth:`resume` itself).

    When a ``bus`` is attached and someone subscribes to its ``stage``
    channel, every stage execution publishes
    ``(pipeline, stage_name, verdict)`` — the behavioral-coverage feed
    of the protocol fuzzer.  With no subscriber the only added cost is
    one truthiness test per :meth:`run` call.
    """

    __slots__ = ("name", "stages", "bus", "_names", "_chain", "_n")

    def __init__(self, stages, name: str = "", bus: Optional[ObserverBus] = None) -> None:
        self.name = name
        self.stages = list(stages)
        self.bus = bus
        self._names: Optional[List[str]] = None
        # Stage chains are fixed at construction (nothing mutates
        # ``stages`` afterwards), so precompute the tuple + length the
        # fast loop binds locally — no list indexing descriptor churn.
        self._chain: Tuple[Callable, ...] = tuple(self.stages)
        self._n = len(self._chain)

    def run(self, ctx: PipelineContext, start: int = 0) -> Optional[_Verdict]:
        bus = self.bus
        if bus is not None and bus.stage:
            return self._run_observed(ctx, start, bus)
        chain = self._chain
        n = self._n
        i = start
        while i < n:
            verdict = chain[i](ctx)
            if verdict is not None:
                # Record the verdict stage only when the chain actually
                # halts: resume() needs the deferring stage's index, and
                # nothing reads it mid-chain — one store per run instead
                # of one per stage.
                ctx.stage_index = i
                return verdict
            i += 1
        return None

    def _run_observed(self, ctx: PipelineContext, start: int,
                      bus: ObserverBus) -> Optional[_Verdict]:
        """The ``run`` loop with the per-stage verdict tap armed."""
        names = self._names
        if names is None:
            names = self._names = self.stage_names()
        stages = self.stages
        n = len(stages)
        i = start
        while i < n:
            ctx.stage_index = i
            verdict = stages[i](ctx)
            bus.publish("stage", self, names[i], verdict)
            if verdict is not None:
                return verdict
            i += 1
        return None

    def resume(self, ctx: PipelineContext) -> Optional[_Verdict]:
        """Continue a deferred context from the stage after the deferrer."""
        return self.run(ctx, ctx.stage_index + 1)

    def stage_names(self) -> List[str]:
        """Human-readable stage names (``stage_`` prefixes stripped)."""
        names = []
        for s in self.stages:
            name = getattr(s, "__name__", None) or type(s).__name__
            if name.startswith("stage_"):
                name = name[len("stage_"):]
            names.append(name)
        return names

    def describe(self) -> str:
        return " -> ".join(self.stage_names())

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"<Pipeline {self.name or '?'}: {self.describe()}>"
