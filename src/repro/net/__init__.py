"""Network substrate: discrete-event simulator, packets, switches, topologies.

This package is the stand-in for the paper's physical fabric (Ethernet
switches + links) and for the ns-3 simulator used in §V-C.
"""

from repro.net.failures import FailureInjector
from repro.net.link import LinkInfo, connect
from repro.net.nic import Nic
from repro.net.packet import Packet, PacketType, RdmaOp, is_multicast_ip
from repro.net.pfc import PfcManager
from repro.net.pipeline import (DEFER, STOP, ObserverBus, Pipeline,
                                PipelineContext)
from repro.net.port import Port
from repro.net.simulator import Event, Simulator
from repro.net.switch import Switch, SwitchConfig
from repro.net.telemetry import (DeliveryTap, LatencyStats, PacketLog,
                                 QueueDepthProbe)
from repro.net.topology import Topology, dumbbell, fat_tree, star
from repro.net.trace import RunStats, ThroughputSampler, collect_run_stats

__all__ = [
    "Simulator", "Event",
    "Packet", "PacketType", "RdmaOp", "is_multicast_ip",
    "Port", "PfcManager",
    "LinkInfo", "connect",
    "Switch", "SwitchConfig",
    "ObserverBus", "Pipeline", "PipelineContext", "STOP", "DEFER",
    "Nic",
    "Topology", "star", "fat_tree", "dumbbell",
    "ThroughputSampler", "RunStats", "collect_run_stats",
    "FailureInjector",
    "LatencyStats", "DeliveryTap", "QueueDepthProbe", "PacketLog",
]
