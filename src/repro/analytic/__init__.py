"""Closed-form JCT models for the sweep points packet-level simulation
cannot reach (documented substitution, see DESIGN.md §2), plus the
regime/crossover analysis built on them."""

from repro.analytic.crossover import (bt_chain_crossover, find_crossover,
                                      speedup_at)
from repro.analytic.models import (NetModel, binomial_jct, cepheus_jct,
                                   chain_jct, long_jct, rdmc_jct, unicast_jct)

__all__ = ["NetModel", "cepheus_jct", "binomial_jct", "chain_jct",
           "long_jct", "rdmc_jct", "unicast_jct",
           "find_crossover", "bt_chain_crossover", "speedup_at"]
