"""Crossover analysis between broadcast schemes.

§II-C's central observation is that no single overlay wins everywhere:
BT is latency-friendly (small messages), Chain is throughput-friendly
(large messages), and deployments must pick per message size — while
Cepheus dominates both regimes.  This module locates those regime
boundaries from the closed-form models, so studies can answer
"from which message size does Chain beat BT at N members?" without
sweeping the simulator.
"""

from __future__ import annotations

from typing import Callable, Optional, Tuple

from repro.analytic.models import NetModel, binomial_jct, cepheus_jct, chain_jct

__all__ = ["find_crossover", "bt_chain_crossover", "speedup_at"]


def find_crossover(
    f: Callable[[int], float],
    g: Callable[[int], float],
    lo: int = 64,
    hi: int = 1 << 32,
) -> Optional[int]:
    """Smallest size in [lo, hi] where ``f(size) <= g(size)``, assuming
    the sign of (f - g) changes at most once over the range (true for
    the JCT models: their difference is monotone in size).

    Returns None when ``f`` never catches up within the range.
    """
    if f(lo) <= g(lo):
        return lo
    if f(hi) > g(hi):
        return None
    while lo + 1 < hi:
        mid = (lo + hi) // 2
        if f(mid) <= g(mid):
            hi = mid
        else:
            lo = mid
    return hi


def bt_chain_crossover(n: int, net: Optional[NetModel] = None,
                       slices: Optional[int] = None) -> Optional[int]:
    """Message size at which Chain starts beating BT for ``n`` members.

    Below the returned size the logarithmic-latency BT wins; above it
    the pipelined Chain wins — the §II-C "BT for short messages, Chain
    for large messages" rule, quantified.  ``slices`` defaults to the
    paper's "= #hosts" convention; with a small fixed slice count Chain
    may never win at large N (the function then returns None).
    """
    net = net or NetModel()
    s = n if slices is None else slices
    return find_crossover(
        lambda m: chain_jct(m, n, net, slices=s),
        lambda m: binomial_jct(m, n, net),
    )


def speedup_at(size: int, n: int, net: Optional[NetModel] = None,
               slices: Optional[int] = None) -> Tuple[float, float]:
    """(Cepheus speedup vs BT, vs Chain) at one operating point, with
    Chain sliced per the "= #hosts" convention by default."""
    net = net or NetModel()
    s = n if slices is None else slices
    c = cepheus_jct(size, n, net)
    return (binomial_jct(size, n, net) / c,
            chain_jct(size, n, net, slices=s) / c)
