"""Closed-form JCT models.

The paper's Fig. 12 sweeps flow sizes up to 1 GB over a 512-member
group; packet-level simulation of the largest points is impractical in
pure Python, so the benchmark harness stitches packet-level results
(small/medium sizes) with these closed forms (large sizes).  The models
share every constant with the packet engine — bandwidth, header tax,
per-hop latency, host-stack costs — and
``tests/analytic/test_validation.py`` pins them against packet-level
results at the crossover sizes.

All formulas give the JCT of a broadcast of ``size`` bytes to ``n-1``
receivers, matching :class:`repro.collectives.base.BroadcastResult.jct`
semantics (root post -> last receiver's application-level done).
"""

from __future__ import annotations

import math
from dataclasses import dataclass

from repro import constants

__all__ = ["NetModel", "cepheus_jct", "binomial_jct", "chain_jct",
           "rdmc_jct", "unicast_jct", "long_jct"]


@dataclass(frozen=True)
class NetModel:
    """Fabric + host constants shared with the packet engine."""

    bandwidth: float = constants.LINK_BANDWIDTH_BPS
    hop_latency: float = constants.LINK_PROPAGATION_S
    mtu: int = constants.MTU_BYTES
    header: int = constants.HEADER_BYTES
    stack_send: float = constants.HOST_STACK_SEND_S
    stack_recv: float = constants.HOST_STACK_RECV_S
    relay_extra: float = constants.HOST_STACK_RELAY_EXTRA_S
    accel_delay: float = constants.ACCELERATOR_DELAY_S
    hops: int = 2  # switch hops on a host-to-host path (2 = same rack)

    @property
    def goodput(self) -> float:
        """Application-payload bandwidth after the per-packet header tax."""
        return self.bandwidth * self.mtu / (self.mtu + self.header)

    def wire(self, size: int) -> float:
        """Serialization time of ``size`` payload bytes."""
        return size * 8.0 / self.goodput

    @property
    def path(self) -> float:
        """One-way propagation+switching latency of a host-to-host path."""
        return self.hop_latency * (self.hops + 1)

    @property
    def relay(self) -> float:
        """Intermediate-node turnaround cost."""
        return self.stack_recv + self.stack_send + self.relay_extra


def cepheus_jct(size: int, n: int, net: NetModel, mdt_depth: int = None) -> float:
    """One message into the MDT; replication adds no serial cost.

    ``mdt_depth`` is the switch depth of the distribution tree (defaults
    to ``net.hops``); each accelerated switch adds its pipeline delay.
    """
    depth = net.hops if mdt_depth is None else mdt_depth
    return (net.stack_send + net.wire(size)
            + net.hop_latency * (depth + 1)
            + net.accel_delay * depth
            + net.stack_recv)


def binomial_jct(size: int, n: int, net: NetModel) -> float:
    """BT: ceil(log2 n) full-message rounds on the critical path."""
    rounds = max(1, math.ceil(math.log2(n)))
    per_hop = net.wire(size) + net.path
    return (net.stack_send + rounds * per_hop
            + (rounds - 1) * net.relay + net.stack_recv)


def chain_jct(size: int, n: int, net: NetModel, slices: int = 4,
              min_slice: int = 4096) -> float:
    """Pipelined chain: (n-1) fill stages + (slices-1) drain stages.

    Mirrors :class:`~repro.collectives.chain.ChainBcast`'s slicing rule:
    at most ``slices`` pieces, none below ``min_slice`` bytes.
    """
    s = max(1, min(slices, size // min_slice, size))
    slice_wire = net.wire(math.ceil(size / s))
    stage = slice_wire + net.path + net.relay
    # The first hop pays no relay; the last receiver sees the final
    # slice after the pipeline fills ((n-1) stages) and drains (s-1).
    return (net.stack_send + (n - 1) * stage + (s - 1) * slice_wire
            - net.relay + net.stack_recv)


def unicast_jct(size: int, n: int, net: NetModel) -> float:
    """n-1 interleaved copies: the sender's NIC serializes them all."""
    return (net.stack_send * (n - 1) + (n - 1) * net.wire(size)
            + net.path + net.stack_recv)


def rdmc_jct(size: int, n: int, net: NetModel,
             block_size: int = 1 << 20,
             step_overhead: float = 45e-6) -> float:
    """Binomial pipeline: (d + B - 1) synchronized block steps."""
    d = max(1, math.ceil(math.log2(n)))
    blocks = max(1, math.ceil(size / block_size))
    steps = d + blocks - 1
    per_step = net.wire(math.ceil(size / blocks)) + net.path
    # The barrier overhead is paid *between* steps, not after the last.
    return (net.stack_send + steps * per_step
            + (steps - 1) * step_overhead + net.stack_recv)


def long_jct(size: int, n: int, net: NetModel,
             pieces_per_node: int = 4) -> float:
    """Spread-and-roll: root egress carries ~1.5x the message (scatter +
    ring pass-through); the late pieces then roll around the ring, which
    costs a per-hop relay chain plus a couple of piece serializations.

    Accuracy note: this is the coarsest of the models (~±40 % against
    the packet engine at small sizes); Fig. 12's analytic stitching only
    uses the cepheus/bt/chain models, which validate to within a few
    percent.
    """
    piece = net.wire(max(math.ceil(size / (n * pieces_per_node)), 1))
    fill = 1.5 * net.wire(size) * (n - 1) / n
    roll_tail = (n - 1) * (net.relay + net.path + piece)
    return net.stack_send + fill + roll_tail + piece + net.stack_recv
