"""Exception hierarchy for the Cepheus reproduction."""

from __future__ import annotations


class ReproError(Exception):
    """Base class for every error raised by this library."""


class ConfigurationError(ReproError):
    """An experiment or component was configured inconsistently."""


class TopologyError(ReproError):
    """A topology was malformed (unknown host, disconnected node...)."""


class RoutingError(ReproError):
    """No route exists for a destination, or a FIB entry is invalid."""


class TransportError(ReproError):
    """RoCE transport misuse (posting on a reset QP, PSN overflow...)."""


class QPStateError(TransportError):
    """A verbs call was made against a QP in the wrong state."""


class MemoryRegionError(TransportError):
    """A one-sided operation referenced an unknown or mismatched MR."""


class RegistrationError(ReproError):
    """MFT registration failed (switch table full, member missing...)."""


class GroupError(ReproError):
    """Multicast-group management error (duplicate member, bad McstID)."""


class FallbackTriggered(ReproError):
    """Raised internally when the safeguard fallback decides to abandon
    the in-network path; callers catch it and re-run over AMcast."""
