"""Cluster: topology + transports + (optionally) a Cepheus fabric.

Every experiment starts from a :class:`Cluster`.  It bundles the
simulator, a topology, one verbs context per host, the end-host stack
cost model (the per-message software overhead that makes AMcast relays
expensive, §II-C), and — unless disabled — a
:class:`~repro.core.fabric.CepheusFabric` with accelerators on every
switch.

Pairwise RC connections for the AMcast baselines are created lazily and
cached, so a 512-member Chain only ever materializes the 511 QP pairs
it uses instead of a full mesh.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Optional, Tuple

from repro import constants
from repro.core.accelerator import AcceleratorConfig
from repro.core.fabric import CepheusFabric
from repro.net.simulator import Simulator
from repro.net.switch import SwitchConfig
from repro.net.topology import Topology, dumbbell, fat_tree, star
from repro.transport.roce import RoceConfig, RoceQP
from repro.transport.verbs import VerbsContext

__all__ = ["HostStackModel", "Cluster"]


@dataclass(frozen=True)
class HostStackModel:
    """Per-message end-host software costs.

    ``send`` is paid before a message's first packet leaves (verbs post
    + MPI shim); ``recv`` after the last packet arrives before the
    application (or a relay) sees the data.  These are the costs the
    paper's §V-B1 analysis counts once for Cepheus and once *per hop*
    for AMcast ("the data traversing the end-host stacks thrice").
    """

    send: float = constants.HOST_STACK_SEND_S
    recv: float = constants.HOST_STACK_RECV_S
    relay_extra: float = constants.HOST_STACK_RELAY_EXTRA_S

    @property
    def relay(self) -> float:
        """Cost for an intermediate node to turn a receive into a send:
        completion reap + progress-engine/matching + re-post."""
        return self.recv + self.send + self.relay_extra


class Cluster:
    """One simulated deployment: hosts, switches, transports, fabric."""

    def __init__(
        self,
        topo: Topology,
        *,
        cepheus: bool = True,
        accel_config: Optional[AcceleratorConfig] = None,
        roce_config: Optional[RoceConfig] = None,
        stack: Optional[HostStackModel] = None,
    ) -> None:
        self.topo = topo
        self.sim: Simulator = topo.sim
        self.roce_config = roce_config or RoceConfig()
        self.stack = stack or HostStackModel()
        self.fabric: Optional[CepheusFabric] = (
            CepheusFabric(topo, accel_config) if cepheus else None
        )
        self.ctxs: Dict[int, VerbsContext] = {
            ip: VerbsContext(self.sim, topo.nic(ip), self.roce_config)
            for ip in topo.host_ips
        }
        self._pairs: Dict[Tuple[int, int], Tuple[RoceQP, RoceQP]] = {}

    # -- factories -------------------------------------------------------------

    @classmethod
    def testbed(
        cls,
        n_hosts: int = 4,
        *,
        switch_config: Optional[SwitchConfig] = None,
        **kwargs,
    ) -> "Cluster":
        """The paper's testbed shape: N servers on one switch (§IV)."""
        sim = Simulator()
        topo = star(sim, n_hosts, switch_config=switch_config)
        return cls(topo, **kwargs)

    @classmethod
    def fat_tree_cluster(
        cls,
        k: int,
        *,
        hosts_limit: Optional[int] = None,
        switch_config: Optional[SwitchConfig] = None,
        **kwargs,
    ) -> "Cluster":
        """The §V-C simulation fabric (k=16 reproduces 1024 servers)."""
        sim = Simulator()
        topo = fat_tree(sim, k, switch_config=switch_config,
                        hosts_limit=hosts_limit)
        return cls(topo, **kwargs)

    @classmethod
    def dumbbell_cluster(cls, n_left: int, n_right: int, *,
                         bottleneck: Optional[float] = None,
                         switch_config: Optional[SwitchConfig] = None,
                         **kwargs) -> "Cluster":
        sim = Simulator()
        topo = dumbbell(sim, n_left, n_right, bottleneck=bottleneck,
                        switch_config=switch_config)
        return cls(topo, **kwargs)

    # -- accessors -----------------------------------------------------------------

    @property
    def host_ips(self):
        return self.topo.host_ips

    def ctx(self, ip: int) -> VerbsContext:
        return self.ctxs[ip]

    # -- pairwise RC connections for AMcast baselines --------------------------------

    def qp_pair(self, a: int, b: int) -> Tuple[RoceQP, RoceQP]:
        """A connected RC pair (QP at a -> b, QP at b -> a); cached."""
        key = (a, b) if a < b else (b, a)
        pair = self._pairs.get(key)
        if pair is None:
            qa = self.ctxs[key[0]].create_qp()
            qb = self.ctxs[key[1]].create_qp()
            qa.connect(key[1], qb.qpn)
            qb.connect(key[0], qa.qpn)
            pair = (qa, qb)
            self._pairs[key] = pair
        return pair if a < b else (pair[1], pair[0])

    def qp_to(self, src: int, dst: int) -> RoceQP:
        """The QP at ``src`` talking to ``dst``."""
        return self.qp_pair(src, dst)[0]

    def run(self, until: Optional[float] = None,
            max_events: Optional[int] = None) -> int:
        return self.sim.run(until=until, max_events=max_events)
