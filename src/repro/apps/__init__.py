"""Realistic applications from the paper's evaluation (§V-B) plus the
cluster facade everything builds on."""

from repro.apps.cluster import Cluster, HostStackModel
from repro.apps.hpl import HplConfig, HplModel, HplResult
from repro.apps.mpi import ALGORITHMS, Communicator
from repro.apps.pubsub import Broker, PublishResult, Topic
from repro.apps.storage import IopsResult, ReplicatedStore, StorageConfig

__all__ = [
    "Cluster", "HostStackModel",
    "ALGORITHMS", "Communicator",
    "IopsResult", "ReplicatedStore", "StorageConfig",
    "HplConfig", "HplModel", "HplResult",
    "Broker", "Topic", "PublishResult",
]
