"""Publish-subscribe fan-out (§I motivation: Kafka-style systems).

The paper lists publish-subscribe among the one-to-many patterns that
"would substantially benefit from an efficient multicast primitive".
This module models the broker's fan-out path — the dominant cost of a
high-fan-out topic:

* a **broker** hosts topics; each topic has a set of subscriber hosts;
* ``publish(topic, size)`` delivers one message to every subscriber,
  either over per-subscriber unicast connections (the Kafka reality) or
  over one Cepheus multicast group per topic;
* the metrics mirror broker capacity planning: publish-to-last-delivery
  latency, broker egress bytes, and sustained publish throughput.

Topics are long-lived, so the one-time MFT registration amortizes to
zero — the same argument the paper makes for storage replication.
"""

from __future__ import annotations

import itertools
from dataclasses import dataclass, field
from typing import Dict, List, Optional

from repro.apps.cluster import Cluster
from repro.collectives import CepheusBcast, MultiUnicastBcast
from repro.errors import ConfigurationError

__all__ = ["PublishResult", "Topic", "Broker"]

_topic_ids = itertools.count(1)


@dataclass
class PublishResult:
    """Outcome of one publish call."""

    topic: str
    size: int
    latency: float            # publish -> last subscriber delivery
    broker_tx_bytes: int      # bytes the broker's NIC had to push

    def fanout_efficiency(self) -> float:
        """1.0 = the broker sent each byte once (perfect multicast)."""
        return self.size / self.broker_tx_bytes if self.broker_tx_bytes else 0.0


class Topic:
    """One topic: a subscriber set and a delivery engine."""

    def __init__(self, broker: "Broker", name: str,
                 subscribers: List[int], transport: str) -> None:
        if not subscribers:
            raise ConfigurationError(f"topic {name!r} has no subscribers")
        if broker.host_ip in subscribers:
            raise ConfigurationError("the broker cannot subscribe to itself")
        if transport not in ("cepheus", "unicast"):
            raise ConfigurationError(f"unknown transport {transport!r}")
        self.broker = broker
        self.name = name
        self.subscribers = list(subscribers)
        self.transport = transport
        members = [broker.host_ip] + self.subscribers
        engine_cls = CepheusBcast if transport == "cepheus" else \
            MultiUnicastBcast
        self._engine = engine_cls(broker.cluster, members, broker.host_ip)
        self._engine.prepare()
        self.published = 0

    def subscribe(self, ip: int) -> None:
        """Add a subscriber to a live topic.

        Cepheus topics patch the MDT with an incremental JOIN delta (the
        long-lived-topic argument from the paper: churn costs one branch
        install, not a re-registration).  Unicast topics rebuild their
        per-subscriber connection fan-out.
        """
        if ip == self.broker.host_ip:
            raise ConfigurationError("the broker cannot subscribe to itself")
        if ip in self.subscribers:
            # Idempotent: a duplicate subscribe is a no-op.  Brokers see
            # retried subscription requests all the time (at-least-once
            # control planes); re-running the JOIN delta would corrupt
            # the group's member state.
            return
        if self.transport == "cepheus":
            self._engine.join(ip)
        else:
            self._rebuild_unicast(self.subscribers + [ip])
        self.subscribers.append(ip)

    def unsubscribe(self, ip: int) -> None:
        """Drop a subscriber from a live topic (LEAVE delta for Cepheus)."""
        if ip not in self.subscribers:
            # Idempotent: unsubscribing a non-member is a no-op (the
            # mirror of the duplicate-subscribe rule above — retried
            # LEAVEs must not raise or touch live member state).
            return
        if self.transport == "cepheus":
            self._engine.leave(ip)
        else:
            self._rebuild_unicast([s for s in self.subscribers if s != ip])
        self.subscribers.remove(ip)

    def _rebuild_unicast(self, subscribers: List[int]) -> None:
        engine = MultiUnicastBcast(
            self.broker.cluster, [self.broker.host_ip] + subscribers,
            self.broker.host_ip)
        engine.prepare()
        self._engine = engine

    def publish(self, size: int) -> PublishResult:
        """One message to every subscriber; returns delivery metrics."""
        tx0 = self._broker_tx_bytes()
        result = self._engine.run(size)
        self.published += 1
        return PublishResult(
            topic=self.name, size=size, latency=result.jct,
            broker_tx_bytes=self._broker_tx_bytes() - tx0,
        )

    def _broker_tx_bytes(self) -> int:
        nic = self.broker.cluster.topo.nic(self.broker.host_ip)
        return nic.ports[0].stats.tx_bytes


class Broker:
    """A message broker host with named topics."""

    def __init__(self, cluster: Cluster, host_ip: int,
                 transport: str = "cepheus") -> None:
        if host_ip not in cluster.host_ips:
            raise ConfigurationError(f"no such host {host_ip}")
        self.cluster = cluster
        self.host_ip = host_ip
        self.default_transport = transport
        self.topics: Dict[str, Topic] = {}

    def create_topic(self, name: str, subscribers: List[int],
                     transport: Optional[str] = None) -> Topic:
        if name in self.topics:
            raise ConfigurationError(f"topic {name!r} already exists")
        topic = Topic(self, name, subscribers,
                      transport or self.default_transport)
        self.topics[name] = topic
        return topic

    def publish(self, name: str, size: int) -> PublishResult:
        try:
            topic = self.topics[name]
        except KeyError:
            raise ConfigurationError(f"unknown topic {name!r}")
        return topic.publish(size)

    def sustained_publish_rate(self, name: str, size: int,
                               n_messages: int = 200) -> float:
        """Messages/second the broker sustains on one topic (publishes
        back-to-back; each waits for full fan-out, the at-least-once
        acknowledgement discipline)."""
        t0 = self.cluster.sim.now
        for _ in range(n_messages):
            self.publish(name, size)
        elapsed = self.cluster.sim.now - t0
        return n_messages / elapsed if elapsed > 0 else float("inf")
