"""Broker fabric: a pub/sub deployment under open-loop load (§I).

The paper motivates Cepheus with Kafka-style publish-subscribe: topics
with large subscriber sets, continuous subscription churn, and brokers
whose egress bandwidth is the fan-out bottleneck.  :mod:`repro.apps.
pubsub` models one broker publishing closed-loop; this module scales
that to a *fabric*: many topics over a multi-rack cluster, each topic
backed by its own MDT multicast group, driven by the open-loop engine
(:mod:`repro.harness.openloop`) so the delivery-latency tail is an
honest queueing measurement rather than a one-deep echo test.

One trial is a pure function of (config, schedule):

* build the cluster, create every topic (per-topic MFT registration is
  setup, excluded from the measured window like every scheme's
  connection establishment);
* replay the schedule's three pre-drawn op streams — Poisson publishes
  on Zipf-popular topics, subscription toggles (incremental MRP deltas,
  optionally coalesced), and background unicast cross-traffic;
* record per-delivery latency into a seeded reservoir
  (:class:`~repro.net.telemetry.LatencyStats`) and report the SLO
  surface: p50/p99/p999 delivery latency, **delivery amplification**
  (broker egress bytes per payload byte — 1.0 is perfect multicast;
  MRP control packets ride the same NIC and are charged honestly), and
  **control-plane overhead** (MRP deltas + confirms per membership op).

A delta failure trips the topic's safeguard monitor (§V-D) — recorded
as a fallback event and a failing trial, never a hang.  Campaigns,
greedy shrinking, and JSON reproducers follow the churn-harness
discipline; ``cepheus-repro broker replay`` re-executes a reproducer
bit-for-bit.
"""

from __future__ import annotations

import json
from dataclasses import asdict, dataclass, replace
from typing import Dict, List, Optional, Tuple

from repro import constants
from repro.apps.cluster import Cluster
from repro.apps.pubsub import Broker
from repro.check import InvariantMonitor
from repro.core.fallback import SafeguardMonitor
from repro.harness.chaos import greedy_drop
from repro.harness.openloop import (
    ChurnOp, CrossOp, OpenLoopSchedule, PublishOp, generate_churn_stream,
    generate_cross_stream, generate_publish_stream, schedule_ops,
)
from repro.net.switch import SwitchConfig
from repro.net.telemetry import LatencyStats
from repro.transport.roce import RoceConfig

__all__ = [
    "BrokerFabricConfig", "BrokerFabricSchedule",
    "generate_brokerfabric_schedule", "run_brokerfabric_trial",
    "run_brokerfabric_campaign", "shrink_brokerfabric_schedule",
    "load_brokerfabric_reproducer", "replay_brokerfabric_reproducer",
]

REPRODUCER_KIND = "cepheus-broker-reproducer"


@dataclass(frozen=True)
class BrokerFabricConfig:
    """Parameters of one broker-fabric campaign."""

    topo: str = "fat_tree"        # "star" | "fat_tree"
    hosts: int = 16               # star size / fat-tree hosts_limit
    k: int = 4                    # fat-tree arity
    topics: int = 6               # topic count (topic 0 is the hottest)
    min_subscribers: int = 3      # initial subscriber-set draw, per topic
    max_subscribers: int = 8
    msg_size: int = 65536         # publish payload bytes
    publish_rate: float = 60000.0  # Poisson publish arrivals / s (fabric-wide)
    zipf_alpha: float = 0.9       # topic popularity skew
    churn_rate: float = 2000.0    # subscription toggles / s
    cross_rate: float = 4000.0    # background unicast transfers / s
    cross_size: int = 131072      # bytes per cross-traffic transfer
    horizon: float = 0.02         # measured window (virtual s)
    drain: float = 0.02           # extra time for in-flight tails
    coalesce_window: Optional[float] = None   # MRP delta batching (s)
    loss_rate: float = 0.0
    rto: float = 200e-6
    retransmit_mode: str = "gbn"

    def to_dict(self) -> Dict[str, object]:
        return asdict(self)

    @classmethod
    def from_dict(cls, d: Dict[str, object]) -> "BrokerFabricConfig":
        known = {f for f in cls.__dataclass_fields__}
        return cls(**{k: v for k, v in d.items() if k in known})


@dataclass(frozen=True)
class BrokerFabricSchedule:
    """Pure trial input: initial subscriber sets + the three op streams."""

    trial_seed: int
    topic_subs: Tuple[Tuple[int, ...], ...]
    ops: OpenLoopSchedule

    def to_dict(self) -> Dict[str, object]:
        return {"trial_seed": self.trial_seed,
                "topic_subs": [list(s) for s in self.topic_subs],
                "ops": self.ops.to_dict()}

    @classmethod
    def from_dict(cls, d: Dict[str, object]) -> "BrokerFabricSchedule":
        return cls(trial_seed=d["trial_seed"],
                   topic_subs=tuple(tuple(s) for s in d["topic_subs"]),
                   ops=OpenLoopSchedule.from_dict(d["ops"]))


# ---------------------------------------------------------------------------
# cluster + schedule construction
# ---------------------------------------------------------------------------

def _build_cluster(cfg: BrokerFabricConfig, trial_seed: int) -> Cluster:
    sw_cfg = SwitchConfig(loss_rate=cfg.loss_rate, seed=trial_seed)
    roce = RoceConfig(rto=cfg.rto, retransmit_mode=cfg.retransmit_mode)
    if cfg.topo == "star":
        return Cluster.testbed(cfg.hosts, switch_config=sw_cfg,
                               roce_config=roce)
    if cfg.topo == "fat_tree":
        return Cluster.fat_tree_cluster(cfg.k, hosts_limit=cfg.hosts,
                                        switch_config=sw_cfg,
                                        roce_config=roce)
    raise ValueError(f"unknown broker-fabric topology {cfg.topo!r}")


def generate_brokerfabric_schedule(cfg: BrokerFabricConfig,
                                   rng) -> BrokerFabricSchedule:
    """Draw one randomized-but-reproducible broker-fabric schedule."""
    trial_seed = rng.randrange(1 << 31)
    cluster = _build_cluster(cfg, 0)   # shape-only; state is discarded
    hosts = list(cluster.topo.host_ips)
    if len(hosts) < 3:
        raise ValueError("broker fabric needs at least 3 hosts")
    candidates = hosts[1:]             # hosts[0] is the broker
    lo = min(cfg.min_subscribers, len(candidates))
    hi = min(cfg.max_subscribers, len(candidates))
    if lo < 2:
        raise ValueError("topics need at least 2 initial subscribers")
    topic_subs = tuple(
        tuple(sorted(rng.sample(candidates, rng.randint(lo, hi))))
        for _ in range(cfg.topics))
    ops = OpenLoopSchedule(
        trial_seed=trial_seed,
        publishes=generate_publish_stream(
            rng, rate=cfg.publish_rate, horizon=cfg.horizon,
            n_topics=cfg.topics, zipf_alpha=cfg.zipf_alpha,
            size=cfg.msg_size),
        churn=generate_churn_stream(
            rng, rate=cfg.churn_rate, horizon=cfg.horizon,
            n_topics=cfg.topics, hosts=candidates,
            zipf_alpha=cfg.zipf_alpha),
        cross=generate_cross_stream(
            rng, rate=cfg.cross_rate, horizon=cfg.horizon,
            hosts=candidates, size=cfg.cross_size),
    )
    return BrokerFabricSchedule(trial_seed=trial_seed,
                                topic_subs=topic_subs, ops=ops)


# ---------------------------------------------------------------------------
# one trial
# ---------------------------------------------------------------------------

def run_brokerfabric_trial(cfg: BrokerFabricConfig,
                           schedule: BrokerFabricSchedule,
                           trial_index: int = 0) -> Dict[str, object]:
    """Execute one open-loop trial; returns a JSON-able record."""
    cluster = _build_cluster(cfg, schedule.trial_seed)
    sim = cluster.sim
    fabric = cluster.fabric
    monitor = InvariantMonitor()
    monitor.attach_cluster(cluster)
    try:
        broker_ip = cluster.host_ips[0]
        broker = Broker(cluster, broker_ip, transport="cepheus")

        # -- topics: per-topic multicast group + membership controller --
        topics = []
        mms = []
        fallbacks: List[Tuple[int, str]] = []
        for i, subs in enumerate(schedule.topic_subs):
            topic = broker.create_topic(f"topic{i:03d}", list(subs))
            group = topic._engine.group
            mm = fabric.membership(group,
                                   coalesce_window=cfg.coalesce_window)
            guard = SafeguardMonitor(
                sim, topic._engine.qps[broker_ip],
                constants.LINK_BANDWIDTH_BPS,
                on_fallback=lambda why, _i=i: fallbacks.append((_i, why)))
            mm.safeguard = guard       # trips on delta failure (§V-D)
            topics.append(topic)
            mms.append(mm)

        full_records = sum(a.mrp_records_installed
                           for a in fabric.accelerators.values())
        initial_subscriptions = sum(len(s) for s in schedule.topic_subs)

        # -- delivery measurement ---------------------------------------
        lat = LatencyStats(seed=0)
        publish_time: Dict[int, float] = {}    # msg_id -> post time
        counters = {
            "published": 0, "publish_done": 0, "deliveries": 0,
            "payload_bytes": 0, "subscribes": 0, "unsubscribes": 0,
            "churn_skipped": 0, "cross_sent": 0,
        }

        def wire(i: int, ip: int) -> None:
            # Deliveries are matched to publishes by the sender-assigned
            # msg_id, so the accounting is indifferent to join timing
            # (a joiner simply never sees pre-admission msg_ids).
            def on_msg(mid, sz, now, meta) -> None:
                t0 = publish_time.get(mid)
                if t0 is not None:
                    counters["deliveries"] += 1
                    lat.record(now - t0)
            topics[i]._engine.group.members[ip].on_message = on_msg

        for i, subs in enumerate(schedule.topic_subs):
            for ip in subs:
                wire(i, ip)

        # -- op execution -----------------------------------------------
        def publish_done(mid: int, now: float) -> None:
            counters["publish_done"] += 1

        def do_publish(op: PublishOp) -> None:
            counters["published"] += 1
            counters["payload_bytes"] += op.size
            mid = topics[op.topic]._engine.qps[broker_ip].post_send(
                op.size, on_complete=publish_done)
            publish_time[mid] = sim.now

        def do_churn(op: ChurnOp) -> None:
            group = topics[op.topic]._engine.group
            mm = mms[op.topic]
            ip = op.ip
            if ip == broker_ip or mm.has_inflight(ip):
                counters["churn_skipped"] += 1
                return
            if ip in group.members:
                if (ip == group.leader_ip or ip == group.current_source
                        or len(group.members) <= 2):
                    counters["churn_skipped"] += 1
                    return
                mm.leave(ip)
                counters["unsubscribes"] += 1
            else:
                mm.join(ip, cluster.ctx(ip).create_qp())
                wire(op.topic, ip)
                counters["subscribes"] += 1

        def do_cross(op: CrossOp) -> None:
            cluster.qp_to(op.src, op.dst).post_send(op.size)
            counters["cross_sent"] += 1

        # -- the measured window ------------------------------------------
        broker_nic = cluster.topo.nic(broker_ip)
        tx0 = broker_nic.ports[0].stats.tx_bytes
        start = sim.now
        schedule_ops(sim, start, schedule.ops.publishes, do_publish)
        schedule_ops(sim, start, schedule.ops.churn, do_churn)
        schedule_ops(sim, start, schedule.ops.cross, do_cross)
        sim.run(until=start + cfg.horizon + cfg.drain,
                max_events=50_000_000)
        for mm in mms:
            mm.flush_pending()
        sim.run(until=sim.now + cfg.drain, max_events=50_000_000)

        broker_tx = broker_nic.ports[0].stats.tx_bytes - tx0
        monitor.check_mft_consistency(fabric, expect_connected=True)

        # -- SLO surface ---------------------------------------------------
        s = lat.summary()
        payload = counters["payload_bytes"]
        membership_ops = sum(m.membership_ops for m in mms)
        deltas = sum(m.mrp_deltas_sent for m in mms)
        confirms = sum(m.mrp_confirms_rx for m in mms)
        delta_failures = [list(f) for m in mms for f in m.delta_failures]
        undrained = [t.name for t in topics
                     if not t._engine.qps[broker_ip].send_idle]
        final_subscriptions = sum(
            len(t._engine.group.members) - 1 for t in topics)
        violations = [v.to_dict() for v in monitor.violations]
        failing = (bool(violations) or bool(undrained)
                   or bool(delta_failures) or bool(fallbacks)
                   or counters["publish_done"] < counters["published"])
        return {
            "trial": trial_index,
            "trial_seed": schedule.trial_seed,
            "topics": len(topics),
            "hosts": len(cluster.host_ips),
            "initial_subscriptions": initial_subscriptions,
            "final_subscriptions": final_subscriptions,
            "published": counters["published"],
            "publish_done": counters["publish_done"],
            "deliveries": counters["deliveries"],
            "subscribes": counters["subscribes"],
            "unsubscribes": counters["unsubscribes"],
            "churn_skipped": counters["churn_skipped"],
            "cross_sent": counters["cross_sent"],
            "latency_us": {
                "count": s["count"],
                "mean": round(s["mean"] * 1e6, 3),
                "p50": round(s["p50"] * 1e6, 3),
                "p99": round(s["p99"] * 1e6, 3),
                "p999": round(s["p999"] * 1e6, 3),
                "max": round(s["max"] * 1e6, 3),
            },
            "broker_tx_bytes": broker_tx,
            "payload_bytes": payload,
            "amplification": round(broker_tx / payload, 4) if payload else 0.0,
            "membership_ops": membership_ops,
            "mrp_deltas_sent": deltas,
            "mrp_confirms_rx": confirms,
            "deltas_per_op": round(deltas / membership_ops, 4)
            if membership_ops else 0.0,
            "mrp_records_delta": sum(
                a.mrp_records_installed
                for a in fabric.accelerators.values()) - full_records,
            "delta_failures": delta_failures,
            "fallbacks": [[i, why] for i, why in fallbacks],
            "undrained_topics": undrained,
            "events": sim.events_run,
            "checked": monitor.events_checked,
            "violations": violations,
            "failing": failing,
        }
    finally:
        monitor.detach()


def _fails(cfg: BrokerFabricConfig, schedule: BrokerFabricSchedule) -> bool:
    return bool(run_brokerfabric_trial(cfg, schedule)["failing"])


# ---------------------------------------------------------------------------
# shrinking
# ---------------------------------------------------------------------------

def shrink_brokerfabric_schedule(
        cfg: BrokerFabricConfig,
        schedule: BrokerFabricSchedule) -> BrokerFabricSchedule:
    """Greedily minimize a failing schedule: drop churn ops, then cross
    ops, then trailing publishes — keeping every reduction that still
    fails.  Each probe is a full deterministic re-run."""
    def with_ops(**kw) -> BrokerFabricSchedule:
        return replace(schedule, ops=replace(schedule.ops, **kw))

    _, schedule = greedy_drop(
        schedule.ops.churn,
        lambda evs: with_ops(churn=tuple(evs)),
        lambda cand: _fails(cfg, cand))
    _, schedule = greedy_drop(
        schedule.ops.cross,
        lambda evs: with_ops(cross=tuple(evs)),
        lambda cand: _fails(cfg, cand))
    publishes = list(schedule.ops.publishes)
    while len(publishes) > 1:
        cand = with_ops(publishes=tuple(publishes[:-1]))
        if _fails(cfg, cand):
            publishes.pop()
            schedule = cand
        else:
            break
    return schedule


# ---------------------------------------------------------------------------
# campaigns + reproducers
# ---------------------------------------------------------------------------

def run_brokerfabric_campaign(cfg: BrokerFabricConfig, seed: int,
                              trials: int,
                              shrink: bool = True) -> Dict[str, object]:
    """Run ``trials`` seeded trials; shrink and package any failures."""
    import random

    records: List[Dict[str, object]] = []
    reproducers: List[Dict[str, object]] = []
    for t in range(trials):
        rng = random.Random((seed << 20) ^ (t * 0x9E3779B1 + 1))
        schedule = generate_brokerfabric_schedule(cfg, rng)
        record = run_brokerfabric_trial(cfg, schedule, trial_index=t)
        records.append(record)
        if record["failing"]:
            minimal = (shrink_brokerfabric_schedule(cfg, schedule)
                       if shrink else schedule)
            final = run_brokerfabric_trial(cfg, minimal, trial_index=t)
            reproducers.append({
                "kind": REPRODUCER_KIND,
                "config": cfg.to_dict(),
                "schedule": minimal.to_dict(),
                "violations": final["violations"],
                "delta_failures": final["delta_failures"],
                "undrained_topics": final["undrained_topics"],
                "trial": t,
            })
    return {
        "config": cfg.to_dict(),
        "seed": seed,
        "trials": trials,
        "records": records,
        "failing_trials": [r["trial"] for r in records if r["failing"]],
        "reproducers": reproducers,
    }


def load_brokerfabric_reproducer(
        path: str) -> Tuple[BrokerFabricConfig, BrokerFabricSchedule]:
    with open(path, "r", encoding="utf-8") as fh:
        doc = json.load(fh)
    if doc.get("kind") != REPRODUCER_KIND:
        raise ValueError(f"{path} is not a {REPRODUCER_KIND} document")
    return (BrokerFabricConfig.from_dict(doc["config"]),
            BrokerFabricSchedule.from_dict(doc["schedule"]))


def replay_brokerfabric_reproducer(path: str) -> Dict[str, object]:
    """Re-execute a dumped reproducer; returns its (fresh) trial record."""
    cfg, schedule = load_brokerfabric_reproducer(path)
    return run_brokerfabric_trial(cfg, schedule)
