"""HPL (High-Performance Linpack) phase model (§V-B2, Fig. 11).

HPL iterates over column panels of an N x N matrix (block size NB):

* **Panel Factorization (PF)** — compute on the owning column;
* **Panel Broadcast (PB)** — the factored panel is broadcast along each
  process *row*; HPL's recommended algorithm is ``increasing-ring``;
* **Update** — trailing-matrix DGEMM, preceded by **Row Swap (RS)**,
  a broadcast-shaped exchange along each process *column* for which HPL
  recommends the ``long`` algorithm.

The sources of PB/RS rotate with the iteration number, which is exactly
the §III-E source-switching scenario: with Cepheus one registered MFT
per row/column communicator serves every epoch.

Compute phases are modelled as calibrated time costs (flops / rate) —
the paper's point is the *communication* share, and compute cost is
identical across schemes.  Communication phases run packet-level on the
simulator through the same broadcast engines as everything else.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional

from repro.apps.cluster import Cluster
from repro.apps.mpi import Communicator
from repro.errors import ConfigurationError

__all__ = ["HplConfig", "HplResult", "HplModel"]


@dataclass
class HplConfig:
    """Problem + machine model.

    Defaults give a testbed-scale problem whose communication share
    matches Fig. 11: PB (on a 1x4 grid) is ~18 % of JCT under
    increasing-ring, so a 67 % PB-communication cut yields the paper's
    ~12 % end-to-end improvement.
    """

    n: int = 8192                 # matrix order
    nb: int = 256                 # panel block size
    node_gflops: float = 420e9    # DGEMM rate per node
    pf_gflops: float = 150e9      # panel factorization rate (memory bound)
    elem_bytes: int = 8           # double precision
    rs_gather_factor: float = 0.15
    """Fraction of the U block each non-root row ships to the root
    before a *multicast* Row Swap can start.  HPL's ``long`` algorithm
    integrates the swap into its spread-roll, so it pays no separate
    gather; a multicast RS must first assemble U at the source.  The
    value is calibrated against the paper's pdlaswp traffic split so the
    overall RS communication gain lands near Fig. 11b's 18 %."""


@dataclass
class HplResult:
    """JCT breakdown of one HPL run."""

    grid: str
    pb_algorithm: str
    rs_algorithm: str
    pf_time: float = 0.0
    pb_comm: float = 0.0
    rs_comm: float = 0.0
    update_time: float = 0.0
    iterations: int = 0

    @property
    def total(self) -> float:
        return self.pf_time + self.pb_comm + self.rs_comm + self.update_time

    @property
    def comm_time(self) -> float:
        return self.pb_comm + self.rs_comm

    @property
    def others(self) -> float:
        """The paper's 'Others' bar: PF + computation."""
        return self.pf_time + self.update_time

    def breakdown(self) -> Dict[str, float]:
        return {
            "pf": self.pf_time, "pb_comm": self.pb_comm,
            "rs_comm": self.rs_comm, "update": self.update_time,
            "total": self.total,
        }


class HplModel:
    """HPL on a P x Q process grid mapped onto cluster hosts."""

    def __init__(
        self,
        cluster: Cluster,
        grid: List[List[int]],
        config: Optional[HplConfig] = None,
        *,
        pb_algorithm: str = "increasing-ring",
        rs_algorithm: str = "long",
    ) -> None:
        if not grid or not grid[0]:
            raise ConfigurationError("grid must be a non-empty P x Q matrix")
        q = len(grid[0])
        if any(len(row) != q for row in grid):
            raise ConfigurationError("grid rows must have equal length")
        self.cluster = cluster
        self.grid = grid
        self.p = len(grid)
        self.q = q
        self.cfg = config or HplConfig()
        self.pb_algorithm = pb_algorithm
        self.rs_algorithm = rs_algorithm
        # One communicator per row (PB) and per column (RS), reused for
        # every iteration — with Cepheus this means one MFT per
        # communicator for the entire run, sources switching per epoch.
        self._row_comms: List[Optional[Communicator]] = [
            Communicator(cluster, row, pb_algorithm) if q >= 2 else None
            for row in grid
        ]
        self._col_comms: List[Optional[Communicator]] = [
            Communicator(cluster, [grid[i][j] for i in range(self.p)], rs_algorithm)
            if self.p >= 2 else None
            for j in range(q)
        ]

    # -- phase models --------------------------------------------------------

    def _pf_time(self, trailing: int) -> float:
        """Panel factorization: ~2*m*NB^2 flops on the owning column."""
        flops = 2.0 * trailing * self.cfg.nb ** 2
        return flops / (self.cfg.pf_gflops * self.p)

    def _update_time(self, trailing: int) -> float:
        """Trailing DGEMM: 2*NB*m^2 flops spread over the whole grid."""
        flops = 2.0 * self.cfg.nb * trailing * trailing
        return flops / (self.cfg.node_gflops * self.p * self.q)

    def _pb_bytes(self, trailing: int) -> int:
        """Panel bytes held by one process row."""
        rows_here = max(trailing // self.p, 1)
        return max(rows_here * self.cfg.nb * self.cfg.elem_bytes, 1)

    def _rs_bytes(self, trailing: int) -> int:
        """Row-swap bytes exchanged within one process column."""
        cols_here = max(trailing // self.q, 1)
        return max(self.cfg.nb * cols_here * self.cfg.elem_bytes, 1)

    def _run_rs_swap(self, col: List[int], root_row: int, nbytes: int) -> float:
        """The gather half of a *multicast* Row Swap.

        Candidate pivot rows must converge on the root row before the
        assembled U block can be multicast.  HPL's ``long`` spread-roll
        integrates this swap into its data movement, so only in-network
        multicast pays it as a separate phase — which is why the paper's
        RS improvement (18 %) is far below PB's (67 %).  Returns the
        elapsed simulated time.
        """
        sim = self.cluster.sim
        root_ip = col[root_row]
        share = max(int(nbytes * self.cfg.rs_gather_factor), 1)
        t0 = sim.now
        pending = {"n": len(col) - 1}
        if pending["n"] == 0:
            return 0.0
        done = {}

        def landed(mid: int, sz: int, now: float, meta) -> None:
            pending["n"] -= 1
            if pending["n"] == 0:
                done["t"] = now

        for ip in col:
            if ip == root_ip:
                continue
            self.cluster.qp_to(root_ip, ip).on_message = landed
            self.cluster.qp_to(ip, root_ip).post_send(share)
        sim.run()
        return done["t"] + self.cluster.stack.recv - t0

    # -- execution ----------------------------------------------------------------

    def run(self) -> HplResult:
        cfg = self.cfg
        result = HplResult(
            grid=f"{self.p}x{self.q}",
            pb_algorithm=self.pb_algorithm, rs_algorithm=self.rs_algorithm,
        )
        n_iters = cfg.n // cfg.nb
        for k in range(n_iters):
            trailing = cfg.n - k * cfg.nb
            if trailing <= cfg.nb:
                break
            result.iterations += 1
            result.pf_time += self._pf_time(trailing)

            if self.q >= 2:
                root_col = k % self.q
                jct = 0.0
                for comm in self._row_comms:
                    r = comm.bcast(self._pb_bytes(trailing), root=root_col)
                    jct = max(jct, r.jct)
                result.pb_comm += jct

            if self.p >= 2:
                root_row = k % self.p
                nbytes = self._rs_bytes(trailing)
                # AMcast "long" integrates the swap into its spread-roll;
                # a multicast RS pays an explicit gather first.
                needs_gather = self.rs_algorithm == "cepheus"
                swap = 0.0
                jct = 0.0
                for j, comm in enumerate(self._col_comms):
                    if needs_gather:
                        col = [self.grid[i][j] for i in range(self.p)]
                        swap = max(swap,
                                   self._run_rs_swap(col, root_row, nbytes))
                    r = comm.bcast(nbytes, root=root_row)
                    jct = max(jct, r.jct)
                result.rs_comm += swap + jct

            result.update_time += self._update_time(trailing - cfg.nb)
        return result
