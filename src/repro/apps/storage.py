"""Distributed-storage data replication (§V-B1, Table I, Fig. 10).

The paper integrates Cepheus into a proprietary storage system to speed
up *three-replica writing*.  The measured facts it reports:

* sustained 8 KB writes bottleneck in the client's **storage protocol
  stack**, not the network (1-unicast tops out near 1.19 M IOPS on a
  100 G link that could carry ~1.5 M);
* 3-unicasts runs the submission path three times per IO and sinks to
  0.413 M IOPS;
* Cepheus submits once per IO and lands within ~2 % of 1-unicast.

We therefore model the client stack explicitly: a single submission
pipeline that spends :data:`~repro.constants.STORAGE_STACK_PER_IO_S`
of CPU per posted *copy*, a configurable queue depth, and RDMA WRITE
data movement over the simulated fabric.  Single-IO latency (Fig. 10)
is the same machinery with queue depth 1.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional

from repro import constants
from repro.apps.cluster import Cluster
from repro.errors import ConfigurationError
from repro.transport.memory import MemoryRegion
from repro.transport.roce import RoceQP

__all__ = ["StorageConfig", "IopsResult", "ReplicatedStore"]

#: Arena each storage server registers for incoming replicas.
_ARENA_BYTES = 1 << 30


@dataclass
class StorageConfig:
    """Client/servers cost model."""

    stack_per_io: float = constants.STORAGE_STACK_PER_IO_S
    queue_depth: int = constants.STORAGE_QUEUE_DEPTH
    completion_cost: float = 0.14e-6  # reap one CQE in the storage stack


@dataclass
class IopsResult:
    """Outcome of a sustained-write measurement."""

    scheme: str
    io_size: int
    ios_completed: int
    duration: float

    @property
    def iops(self) -> float:
        return self.ios_completed / self.duration

    @property
    def goodput_gbps(self) -> float:
        return self.ios_completed * self.io_size * 8.0 / self.duration / 1e9


class ReplicatedStore:
    """One client writing replicas to N storage servers.

    ``scheme`` is one of:

    * ``"unicast"`` — one-to-one writing to the first server (the
      Table I ideal-baseline reference);
    * ``"multi-unicast"`` — the default N-unicasts replication;
    * ``"cepheus"`` — multicast WRITE through the MDT (MR info is
      registered into the MFT so leaf switches rewrite the RETH).
    """

    SCHEMES = ("unicast", "multi-unicast", "cepheus")

    def __init__(self, cluster: Cluster, client_ip: int,
                 server_ips: List[int], scheme: str,
                 config: Optional[StorageConfig] = None) -> None:
        if scheme not in self.SCHEMES:
            raise ConfigurationError(f"unknown scheme {scheme!r}")
        if client_ip in server_ips:
            raise ConfigurationError("client cannot also be a server")
        if not server_ips:
            raise ConfigurationError("need at least one server")
        self.cluster = cluster
        self.client_ip = client_ip
        self.server_ips = list(server_ips)
        self.scheme = scheme
        self.cfg = config or StorageConfig()
        self._prepared = False
        self._server_mrs: Dict[int, MemoryRegion] = {}
        self._client_qps: Dict[int, RoceQP] = {}
        self._mcast_qp: Optional[RoceQP] = None

    # -- setup ------------------------------------------------------------------

    def prepare(self) -> None:
        if self._prepared:
            return
        for ip in self.server_ips:
            self._server_mrs[ip] = self.cluster.ctx(ip).reg_mr(_ARENA_BYTES)
        if self.scheme == "cepheus":
            self._prepare_cepheus()
        else:
            targets = (self.server_ips[:1] if self.scheme == "unicast"
                       else self.server_ips)
            for ip in targets:
                self._client_qps[ip] = self.cluster.qp_to(self.client_ip, ip)
        self._prepared = True

    def _prepare_cepheus(self) -> None:
        fabric = self.cluster.fabric
        if fabric is None:
            raise ConfigurationError("cepheus scheme needs an accelerated fabric")
        qps = {ip: self.cluster.ctx(ip).create_qp()
               for ip in [self.client_ip] + self.server_ips}
        mr_info = {ip: (mr.addr, mr.rkey) for ip, mr in self._server_mrs.items()}
        group = fabric.create_group(qps, leader_ip=self.client_ip,
                                    mr_info=mr_info)
        fabric.register_sync(group)
        self._mcast_qp = qps[self.client_ip]

    @property
    def copies_per_io(self) -> int:
        """Submission-path traversals per application IO."""
        if self.scheme == "multi-unicast":
            return len(self.server_ips)
        return 1

    # -- one IO -------------------------------------------------------------------

    def _post_io(self, io_size: int, on_complete) -> None:
        """Post the WRITE(s) of one IO; ``on_complete(now)`` fires when
        every replica of this IO is acknowledged."""
        if self.scheme == "cepheus":
            # One message; the aggregated ACK covers all replicas.
            self._mcast_qp.post_write(
                io_size, vaddr=0, rkey=0,
                on_complete=lambda mid, now: on_complete(now))
            return
        pending = {"n": len(self._client_qps)}

        def one_done(mid: int, now: float) -> None:
            pending["n"] -= 1
            if pending["n"] == 0:
                on_complete(now)

        for ip, qp in self._client_qps.items():
            mr = self._server_mrs[ip]
            qp.post_write(io_size, vaddr=mr.addr, rkey=mr.rkey,
                          on_complete=one_done)

    # -- sustained writing (Table I) --------------------------------------------------

    def run_iops(self, io_size: int = 8192, n_ios: int = 20000) -> IopsResult:
        """Keep ``queue_depth`` IOs in flight until ``n_ios`` complete."""
        self.prepare()
        sim = self.cluster.sim
        state = {
            "submitted": 0, "completed": 0, "outstanding": 0,
            "cpu_free": sim.now, "t0": sim.now, "t_end": sim.now,
        }
        cost = self.cfg.stack_per_io * self.copies_per_io

        def try_submit() -> None:
            while (state["submitted"] < n_ios
                   and state["outstanding"] < self.cfg.queue_depth):
                state["submitted"] += 1
                state["outstanding"] += 1
                # The client CPU serializes submissions.
                start = max(sim.now, state["cpu_free"]) + cost
                state["cpu_free"] = start
                sim.schedule(start - sim.now, self._post_io, io_size, io_done)

        def io_done(now: float) -> None:
            state["completed"] += 1
            state["outstanding"] -= 1
            # Completion reap also consumes the submission CPU.
            state["cpu_free"] = max(state["cpu_free"], now) + \
                self.cfg.completion_cost * self.copies_per_io
            state["t_end"] = now
            try_submit()

        try_submit()
        sim.run()
        if state["completed"] != n_ios:
            raise ConfigurationError(
                f"storage run stalled at {state['completed']}/{n_ios} IOs")
        return IopsResult(self.scheme, io_size, n_ios,
                          state["t_end"] - state["t0"])

    # -- single-IO latency (Fig. 10) ------------------------------------------------------

    def run_latency(self, io_size: int, samples: int = 8) -> float:
        """Mean end-to-end latency of one IO at queue depth 1: submit ->
        all replicas acked -> completion notice reaped."""
        self.prepare()
        sim = self.cluster.sim
        total = 0.0
        for _ in range(samples):
            t0 = sim.now
            done = {}
            cost = self.cfg.stack_per_io * self.copies_per_io
            sim.schedule(cost, self._post_io, io_size,
                         lambda now: done.setdefault("t", now))
            sim.run()
            total += (done["t"] + self.cfg.completion_cost) - t0
        return total / samples
