"""MPI-like communicator facade (§IV 'End-host APIs').

The paper integrates Cepheus under ``MPI_Bcast`` by patching OpenMPI +
UCX; applications keep calling the same collective and only the engine
changes.  :class:`Communicator` mirrors that: ``bcast(size, root)``
dispatches to any registered broadcast engine ("cepheus", "binomial",
"chain", ...), caching prepared algorithm instances.

For the Cepheus engine a *single* multicast group serves every root:
changing the root is a §III-E source switch (one MFT, PSN sync), not a
re-registration — exactly the HPL usage pattern.
"""

from __future__ import annotations

from typing import Callable, Dict, List, Optional, Tuple

from repro.apps.cluster import Cluster
from repro.collectives import (BinomialTreeBcast, BroadcastAlgorithm,
                               BroadcastResult, CepheusBcast, ChainBcast,
                               IncreasingRingBcast, LongBcast,
                               MultiUnicastBcast, RdmcBcast)
from repro.errors import ConfigurationError

__all__ = ["ALGORITHMS", "Communicator"]

#: Engine registry: name -> factory(cluster, members, root) -> algorithm.
ALGORITHMS: Dict[str, Callable[..., BroadcastAlgorithm]] = {
    "cepheus": CepheusBcast,
    "binomial": BinomialTreeBcast,
    "chain": ChainBcast,
    "increasing-ring": IncreasingRingBcast,
    "long": LongBcast,
    "rdmc": RdmcBcast,
    "multi-unicast": MultiUnicastBcast,
}


class Communicator:
    """A group of ranks with a pluggable broadcast engine."""

    def __init__(self, cluster: Cluster, ranks: List[int],
                 algorithm: str = "cepheus") -> None:
        if algorithm not in ALGORITHMS:
            raise ConfigurationError(
                f"unknown algorithm {algorithm!r}; have {sorted(ALGORITHMS)}")
        if len(ranks) < 2:
            raise ConfigurationError("communicator needs at least 2 ranks")
        self.cluster = cluster
        self.ranks = list(ranks)
        self.algorithm = algorithm
        self._cepheus: Optional[CepheusBcast] = None
        self._amcast: Dict[Tuple[str, int], BroadcastAlgorithm] = {}
        self._reducers: Dict[Tuple[str, int], object] = {}
        self._allreducers: Dict[str, object] = {}
        self._ops: Dict[tuple, object] = {}
        self.bcast_count = 0

    @property
    def size(self) -> int:
        return len(self.ranks)

    def ip_of(self, rank: int) -> int:
        return self.ranks[rank]

    # -- the collective ---------------------------------------------------------

    def bcast(self, size: int, root: int = 0) -> BroadcastResult:
        """Broadcast ``size`` bytes from rank ``root`` to all other ranks."""
        if not 0 <= root < self.size:
            raise ConfigurationError(f"root rank {root} out of range")
        self.bcast_count += 1
        root_ip = self.ranks[root]
        engine = self._engine_for(root_ip)
        return engine.run(size)

    def _engine_for(self, root_ip: int) -> BroadcastAlgorithm:
        if self.algorithm == "cepheus":
            if self._cepheus is None:
                self._cepheus = CepheusBcast(self.cluster, self.ranks, root_ip)
                self._cepheus.prepare()
            elif self._cepheus.root != root_ip:
                self._cepheus.set_source(root_ip)  # §III-E, no re-registration
            return self._cepheus
        key = (self.algorithm, root_ip)
        engine = self._amcast.get(key)
        if engine is None:
            engine = ALGORITHMS[self.algorithm](self.cluster, self.ranks, root_ip)
            self._amcast[key] = engine
        return engine

    # -- §VIII extensions: reduce / allreduce --------------------------------

    def reduce(self, size: int, root: int = 0, *,
               in_network: Optional[bool] = None):
        """MPI_Reduce: combine ``size`` bytes from every rank at ``root``.

        ``in_network=True`` uses the experimental reduce-mode MDT
        (:mod:`repro.ext.inreduce`); the default follows the
        communicator's engine (in-network iff it is ``cepheus``).
        Returns the reduction result object.
        """
        from repro.collectives.reduce import BinomialReduce
        from repro.ext.inreduce import InNetworkReduce

        if not 0 <= root < self.size:
            raise ConfigurationError(f"root rank {root} out of range")
        use_fabric = (self.algorithm == "cepheus") if in_network is None \
            else in_network
        root_ip = self.ranks[root]
        key = ("reduce-net" if use_fabric else "reduce-host", root_ip)
        engine = self._reducers.get(key)
        if engine is None:
            cls = InNetworkReduce if use_fabric else BinomialReduce
            engine = cls(self.cluster, self.ranks, root_ip)
            self._reducers[key] = engine
        return engine.run(size)

    def allreduce(self, size: int, strategy: Optional[str] = None):
        """AllReduce over the communicator; default strategy pairs the
        communicator's broadcast engine with a binomial reduce."""
        from repro.collectives.allreduce import AllReduce

        strat = strategy or (
            "ring" if self.algorithm in ("chain", "long")
            else f"ps-{self.algorithm}")
        engine = self._allreducers.get(strat)
        if engine is None:
            engine = AllReduce(self.cluster, self.ranks, strat)
            self._allreducers[strat] = engine
        return engine.run(size)

    def scatter(self, shard_size: int, root: int = 0):
        """MPI_Scatter: rank ``root`` distributes distinct shards."""
        from repro.collectives.mpi_ops import Scatter
        return self._cached_op("scatter", Scatter,
                               root=self.ranks[root]).run(shard_size)

    def gather(self, shard_size: int, root: int = 0):
        """MPI_Gather: every rank ships its shard to ``root``."""
        from repro.collectives.mpi_ops import Gather
        return self._cached_op("gather", Gather,
                               root=self.ranks[root]).run(shard_size)

    def allgather(self, shard_size: int):
        """MPI_Allgather; in-network (rotating-source multicast rounds)
        when the communicator's engine is cepheus, ring otherwise."""
        from repro.collectives.mpi_ops import Allgather
        engine = "cepheus" if self.algorithm == "cepheus" else "ring"
        return self._cached_op("allgather", Allgather,
                               engine=engine).run(shard_size)

    def alltoall(self, shard_size: int):
        """MPI_Alltoall: personalized pairwise exchange."""
        from repro.collectives.mpi_ops import Alltoall
        return self._cached_op("alltoall", Alltoall).run(shard_size)

    def barrier(self):
        """Synchronize all ranks; in-network reduce+bcast when the
        engine is cepheus, dissemination otherwise."""
        from repro.collectives.mpi_ops import Barrier
        engine = ("cepheus" if self.algorithm == "cepheus"
                  else "dissemination")
        return self._cached_op("barrier", Barrier, engine=engine).run()

    def _cached_op(self, key: str, cls, **kwargs):
        full_key = (key, tuple(sorted(kwargs.items())))
        op = self._ops.get(full_key)
        if op is None:
            op = cls(self.cluster, self.ranks, **kwargs)
            self._ops[full_key] = op
        return op
