"""Online protocol-invariant checking for the Cepheus fabric.

`repro.check` is correctness tooling, not simulation machinery: the
:class:`~repro.check.invariants.InvariantMonitor` subscribes to the
simulation's :class:`~repro.net.pipeline.ObserverBus` channels and
asserts the paper's reliability invariants (§III-D, §V) on every event.
The chaos harness (:mod:`repro.harness.chaos`) and the property tests
run everything under this monitor so a regression in the feedback
aggregation or failure-repair paths surfaces as a named violation
instead of a silently wrong benchmark number.
"""

from repro.check.coverage import CoverageCollector, CoverageMap
from repro.check.invariants import (InvariantMonitor, InvariantViolationError,
                                    Violation)

__all__ = ["CoverageCollector", "CoverageMap", "InvariantMonitor",
           "InvariantViolationError", "Violation"]
