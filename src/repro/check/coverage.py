"""Behavioral-coverage signatures for the protocol fuzzer.

Classic fuzzers measure coverage over branches of compiled code; this
reproduction's analogue is coverage over *protocol behavior*, observed
through the same single :class:`~repro.net.pipeline.ObserverBus` the
invariant monitor uses.  A :class:`CoverageCollector` subscribed to a
simulation turns its event stream into a set of stable string keys:

``stage/<deployment>/<chain>/<stage>/<verdict>``
    One pipeline stage executed with one verdict (the ``stage`` channel
    published by :class:`~repro.net.pipeline.Pipeline`) — e.g. the
    look-aside detour deferring, ``sp_forward`` stopping on a missing
    residual rule, the loss stage consuming a packet.
``trans/<deployment>/<channel>-><channel>``
    Consecutive bus publications (channel-transition pairs): the
    ordering fingerprint of the datapath — replicate feeding bridge,
    a drop interleaving a feedback exchange, a membership epoch bump
    mid-delivery.
``fb/<deployment>/<kind>/<emits>``
    One feedback-aggregation decision: the incoming kind and the set of
    packet types it emitted (empty = absorbed), per §III-D rule.
``drop/<deployment>/<reason>``
    A packet discard with its reason string.
``viol/<deployment>/<invariant>``
    An :class:`~repro.check.invariants.InvariantMonitor` violation
    signature (added by the harness from the monitor's record).

Keys are plain strings so a :class:`CoverageMap` is JSON-able and its
:meth:`~CoverageMap.signature` — a SHA-256 over the sorted key set — is
deterministic across runs, process boundaries and any ``--jobs``
parallelism (set union is order-independent).
"""

from __future__ import annotations

import hashlib
from typing import Iterable, List, Optional, Tuple

__all__ = ["CoverageMap", "CoverageCollector"]


class CoverageMap:
    """A set of behavioral-coverage keys with a stable digest."""

    __slots__ = ("keys",)

    def __init__(self, keys: Optional[Iterable[str]] = None) -> None:
        self.keys = set(keys or ())

    def add(self, key: str) -> bool:
        """Record ``key``; True when it is new coverage."""
        if key in self.keys:
            return False
        self.keys.add(key)
        return True

    def add_all(self, keys: Iterable[str]) -> List[str]:
        """Record many keys; returns the ones that were new, sorted."""
        fresh = [k for k in set(keys) - self.keys]
        self.keys.update(fresh)
        return sorted(fresh)

    def merge(self, other: "CoverageMap") -> List[str]:
        return self.add_all(other.keys)

    def signature(self) -> str:
        """SHA-256 over the sorted key set (order-independent)."""
        h = hashlib.sha256()
        for key in sorted(self.keys):
            h.update(key.encode("utf-8"))
            h.update(b"\n")
        return h.hexdigest()

    def to_list(self) -> List[str]:
        return sorted(self.keys)

    @classmethod
    def from_list(cls, keys: Iterable[str]) -> "CoverageMap":
        return cls(keys)

    def __len__(self) -> int:
        return len(self.keys)

    def __contains__(self, key: str) -> bool:
        return key in self.keys

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"<CoverageMap {len(self.keys)} keys {self.signature()[:12]}>"


#: Channels whose publications feed the transition-pair fingerprint.
#: ``event`` (per-simulator-event tick) and ``stage`` (already covered
#: by its own richer key) are deliberately excluded — a transition pair
#: should say "replication fed bridging", not "time passed".
TRANSITION_CHANNELS: Tuple[str, ...] = (
    "classify", "replicate", "bridge", "feedback", "deliver",
    "qp_send", "emit", "drop", "membership_epoch",
)


class CoverageCollector:
    """Feeds a :class:`CoverageMap` from one simulation's ObserverBus.

    ``deployment`` prefixes every key, so the same schedule run under
    inline / lookaside / source_routed contributes *distinct* coverage
    — reaching a behavior in a new deployment is new coverage.  Switch
    identities are normalized out of stage keys (``sw3.rx`` -> ``rx``):
    coverage is about *which code behaved how*, not on which of many
    identical switches.
    """

    def __init__(self, bus, deployment: str,
                 coverage: Optional[CoverageMap] = None) -> None:
        self.bus = bus
        self.deployment = deployment
        self.coverage = coverage if coverage is not None else CoverageMap()
        self._prev_channel: Optional[str] = None
        self._subscriptions: List[Tuple[str, object]] = []
        self._attach()

    # -- key builders ------------------------------------------------------

    def _chain_kind(self, pipeline) -> str:
        """``sw2.rx`` -> ``rx``; ``sw2.accel[inline]`` -> ``accel``."""
        name = pipeline.name
        _, _, tail = name.rpartition(".")
        return tail.split("[", 1)[0] or "chain"

    def _transition(self, channel: str) -> None:
        prev = self._prev_channel
        self._prev_channel = channel
        if prev is not None:
            self.coverage.add(
                f"trans/{self.deployment}/{prev}->{channel}")

    # -- bus handlers ------------------------------------------------------

    def _attach(self) -> None:
        bus = self.bus
        bus.subscribe("stage", self._on_stage)
        self._subscriptions.append(("stage", self._on_stage))
        for channel in TRANSITION_CHANNELS:
            handler = self._make_transition_handler(channel)
            bus.subscribe(channel, handler)
            self._subscriptions.append((channel, handler))

    def _make_transition_handler(self, channel: str):
        if channel == "feedback":
            def on_feedback(engine, mft, kind, in_port, value, emits,
                            _ch=channel) -> None:
                self._transition(_ch)
                emitted = ",".join(sorted(p.name for p, _ in emits)) or "none"
                self.coverage.add(
                    f"fb/{self.deployment}/{kind.name}/{emitted}")
            return on_feedback
        if channel == "drop":
            def on_drop(device, pkt, port, reason, _ch=channel) -> None:
                self._transition(_ch)
                self.coverage.add(f"drop/{self.deployment}/{reason}")
            return on_drop

        def on_any(*args, _ch=channel) -> None:
            self._transition(_ch)
        return on_any

    def _on_stage(self, pipeline, stage_name: str, verdict) -> None:
        self.coverage.add(
            f"stage/{self.deployment}/{self._chain_kind(pipeline)}/"
            f"{stage_name}/{verdict.name if verdict is not None else 'PASS'}")

    # -- harness hooks -----------------------------------------------------

    def add_violations(self, violations: Iterable) -> None:
        """Fold invariant-monitor violations into the coverage set."""
        for v in violations:
            invariant = v["invariant"] if isinstance(v, dict) else v.invariant
            self.coverage.add(f"viol/{self.deployment}/{invariant}")

    def detach(self) -> None:
        for channel, fn in self._subscriptions:
            self.bus.unsubscribe(channel, fn)
        self._subscriptions.clear()
