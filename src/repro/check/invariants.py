"""The InvariantMonitor: per-event protocol-invariant assertions.

The reliability story of the paper (§III-D feedback aggregation, §V-C
loss tolerance, §V-D safeguard) rests on a small set of safety
invariants that must hold for *every* event, under any loss pattern,
failure schedule or source rotation:

``psn-contiguity``
    A sender never skips a PSN: the first transmission of PSN *p*
    implies every PSN below *p* was transmitted before (§III-A — the
    commodity RNIC numbers the stream densely; a gap on the wire means
    corrupted send-queue state).
``delivery-order`` / ``duplicate-delivery`` / ``duplicate-message``
    Exactly-once, in-order delivery per receiver QP (invariant 1 of
    DESIGN.md): delivered PSNs advance by exactly one and a message id
    completes at most once per receiver.
``ack-overclaim`` / ``ack-regression``
    The min-AckPSN rule (§III-D): an aggregated ACK(p) may only be
    emitted when every downstream MDT path has cumulatively
    acknowledged at least *p*, and the aggregate never moves backwards.
``nack-covers-loss``
    The MePSN rule (§III-D): a NACK(e) may only be forwarded upstream
    once every downstream path has acknowledged everything below *e* —
    otherwise a later NACK could cover an earlier loss.
``cnp-not-most-congested``
    CNP filtering (§III-D): only the designated most-congested
    downstream path's CNPs pass within an aging window.
``retransmit-filter-miss`` / ``ingress-loop``
    Retransmission filtering and ingress pruning: a replica is never
    forwarded onto a path that already acknowledged its PSN (when the
    filter is enabled) and never back out of its ingress port.
``mft-*``
    MFT structural consistency (Fig. 3): Path Index <-> Path Table
    bijection, radix bound, AggAckPSN <= min AckPSN, AckOutPort is a
    tree port — plus, on demand, MDT/topology consistency after
    :class:`~repro.net.failures.FailureInjector` cuts and repairs.
``path-lane-psn-overlap``
    k-path spraying (MRC lanes): the *primary* per-lane byte
    sub-ranges of one spray partition the message — two lanes may
    never be assigned overlapping bytes (only failover *resprays* may
    re-cover a dead lane's range), and no sub-range may exceed the
    message bounds.
``lane-reassembly-gap``
    Lane reassembly completes without holes: when a receiver's
    :class:`~repro.transport.spray.LaneReassembler` declares a sprayed
    message complete, the monitor independently re-merges the published
    segment list and flags any uncovered byte of ``[0, total)``.

The monitor is *online*: it subscribes to the simulation's single
:class:`~repro.net.pipeline.ObserverBus` — the ``feedback``,
``replicate``, ``qp_send``, ``deliver`` and ``membership_epoch``
channels the datapath publishes on, and optionally the per-event
``event`` channel for sampled structural sweeps.  Subscriptions use
``propagate=True`` so strict-mode violations abort the run instead of
being isolated like ordinary observers.  In the default (non-strict)
mode violations are recorded and the run continues — the chaos harness
needs the full trace to shrink a reproducer; ``strict=True`` raises
:class:`InvariantViolationError` at the first offence.

Ablation configurations are respected: when a feature switch
(``trigger_condition``, ``nack_aggregation``, ``cnp_filter``,
``retransmit_filter``) is deliberately off, the corresponding check is
skipped — the ablation benches *exist* to demonstrate those violations.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Set, Tuple

from repro.core.mft import NO_ACK, Mft
from repro.errors import ReproError
from repro.net.packet import Packet, PacketType

__all__ = ["InvariantMonitor", "InvariantViolationError", "Violation"]


class InvariantViolationError(ReproError):
    """A protocol invariant was violated (raised only in strict mode)."""


@dataclass
class Violation:
    """One recorded invariant violation."""

    invariant: str   # stable identifier, e.g. "ack-overclaim"
    where: str       # offending component ("sw0", "qp host2:0x101", ...)
    detail: str      # human-readable specifics
    at: float = 0.0  # virtual time, when known

    def to_dict(self) -> Dict[str, object]:
        return {"invariant": self.invariant, "where": self.where,
                "detail": self.detail, "at": self.at}

    def __str__(self) -> str:  # pragma: no cover - debugging aid
        return f"[{self.invariant}] {self.where} @ {self.at:.9f}: {self.detail}"


def _min_downstream(mft: Mft) -> Optional[int]:
    """Minimum AckPSN over downstream paths, side-effect-free (the
    monitor must not touch the ``min_port`` cache the trigger uses)."""
    best: Optional[int] = None
    for e in mft.path_table:
        if e.port == mft.ack_out_port:
            continue
        if best is None or e.ack_psn < best:
            best = e.ack_psn
    return best


def _merge_ranges(ranges) -> List[Tuple[int, int]]:
    """Independent (offset, length) range union — the monitor must not
    trust :func:`repro.transport.spray.merge_ranges`, which is part of
    the machinery under test."""
    merged: List[Tuple[int, int]] = []
    for off, length in sorted(r for r in ranges if r[1] > 0):
        if merged and off <= merged[-1][0] + merged[-1][1]:
            last_off, last_len = merged[-1]
            merged[-1] = (last_off, max(last_len, off + length - last_off))
        else:
            merged.append((off, length))
    return merged


class InvariantMonitor:
    """Collects (or raises on) protocol-invariant violations.

    Attach with :meth:`attach_cluster` for full coverage, or piecewise
    via :meth:`attach_engine` / :meth:`attach_accelerator` /
    :meth:`attach_qp` for unit-level property tests.
    """

    def __init__(self, strict: bool = False, sweep_every: int = 4096) -> None:
        self.strict = strict
        self.sweep_every = sweep_every
        self.violations: List[Violation] = []
        self.events_checked = 0
        self._now = 0.0
        # sender side: per-QP high-water mark of transmitted PSNs
        self._tx_hi: Dict[int, int] = {}
        # receiver side: per-QP last delivered PSN + completed msg ids
        self._rx_last: Dict[int, int] = {}
        self._rx_msgs: Dict[int, Set[int]] = {}
        self._qp_names: Dict[int, str] = {}
        # per-MFT last aggregated ACK observed on the wire
        self._agg_seen: Dict[int, int] = {}
        # per-MFT highest membership epoch observed (must not regress)
        self._mft_epoch: Dict[int, int] = {}
        # per-spray primary (non-respray) lane segments: (sprayer, sid)
        # -> [(offset, length, lane)]
        self._spray_primary: Dict[Tuple[int, int],
                                  List[Tuple[int, int, int]]] = {}
        self._fabrics: List[object] = []
        # Every bus subscription this monitor made, for symmetric detach.
        self._subscriptions: List[Tuple[object, str, object]] = []

    # ------------------------------------------------------------------
    # attachment (bus subscriptions)
    # ------------------------------------------------------------------

    def _subscribe(self, bus, channel: str, fn) -> None:
        """Idempotent tracked subscription; ``propagate=True`` so the
        strict-mode :class:`InvariantViolationError` escapes the bus's
        observer isolation and aborts the run."""
        if bus.is_subscribed(channel, fn):
            return
        bus.subscribe(channel, fn, propagate=True)
        self._subscriptions.append((bus, channel, fn))

    def attach_engine(self, engine) -> None:
        """Monitor one :class:`FeedbackEngine` (unit-level use)."""
        self._subscribe(engine.bus, "feedback", self.on_feedback)

    def attach_accelerator(self, accel) -> None:
        self._subscribe(accel.bus, "replicate", self.on_replicate)
        self._subscribe(accel.feedback.bus, "feedback", self.on_feedback)

    def attach_qp(self, qp) -> None:
        self._subscribe(qp.bus, "qp_send", self.on_qp_send)
        self._subscribe(qp.bus, "deliver", self.on_qp_deliver)
        self._subscribe(qp.bus, "membership_epoch", self.on_membership_epoch)
        self._qp_names[id(qp)] = f"{qp.nic.name}:qp{qp.qpn:#x}"

    def attach_fabric(self, fabric) -> None:
        for accel in fabric.accelerators.values():
            self.attach_accelerator(accel)
        self._fabrics.append(fabric)

    def attach_cluster(self, cluster, trace: bool = True) -> None:
        """Tap every layer of a :class:`~repro.apps.cluster.Cluster`
        through its simulator's bus: accelerators, feedback engines, all
        QPs — including QPs created later, because the bus lives on the
        simulator, not the components — and, when ``trace``, the
        per-event channel for sampled structural sweeps."""
        bus = cluster.sim.bus
        if cluster.fabric is not None:
            self.attach_fabric(cluster.fabric)
        for ctx in cluster.ctxs.values():
            for qp in ctx.qps:
                self.attach_qp(qp)
        self._subscribe(bus, "qp_send", self.on_qp_send)
        self._subscribe(bus, "deliver", self.on_qp_deliver)
        self._subscribe(bus, "membership_epoch", self.on_membership_epoch)
        self._subscribe(bus, "lane_spray", self.on_lane_spray)
        self._subscribe(bus, "lane_complete", self.on_lane_complete)
        if trace:
            self._subscribe(bus, "event", self.on_event)

    def detach(self) -> None:
        """Unsubscribe every bus channel this monitor attached to."""
        for bus, channel, fn in self._subscriptions:
            bus.unsubscribe(channel, fn)
        self._subscriptions.clear()

    # ------------------------------------------------------------------
    # verdicts
    # ------------------------------------------------------------------

    @property
    def ok(self) -> bool:
        return not self.violations

    def assert_clean(self) -> None:
        if self.violations:
            head = "; ".join(str(v) for v in self.violations[:5])
            raise InvariantViolationError(
                f"{len(self.violations)} invariant violation(s): {head}")

    def summary(self) -> Dict[str, object]:
        return {
            "events_checked": self.events_checked,
            "violations": [v.to_dict() for v in self.violations],
        }

    def _flag(self, invariant: str, where: str, detail: str) -> None:
        v = Violation(invariant, where, detail, self._now)
        self.violations.append(v)
        if self.strict:
            raise InvariantViolationError(str(v))

    # ------------------------------------------------------------------
    # simulator tap: sampled online structural sweeps
    # ------------------------------------------------------------------

    def on_event(self, now: float) -> None:
        self._now = now
        self.events_checked += 1
        if self._fabrics and self.events_checked % self.sweep_every == 0:
            for fabric in self._fabrics:
                # Links may legitimately be down mid-run (failures are
                # being injected); only structural state is swept online.
                self.check_mft_consistency(fabric, expect_connected=False)

    # ------------------------------------------------------------------
    # QP taps: PSN contiguity + exactly-once delivery
    # ------------------------------------------------------------------

    def _qp_name(self, qp) -> str:
        key = id(qp)
        name = self._qp_names.get(key)
        if name is None:
            name = self._qp_names[key] = f"{qp.nic.name}:qp{qp.qpn:#x}"
        return name

    def on_qp_send(self, qp, pkt: Packet) -> None:
        self._now = qp.sim.now
        self.events_checked += 1
        if pkt.ptype != PacketType.DATA:
            return
        key = id(qp)
        hi = self._tx_hi.get(key)
        if hi is None:
            # First observed transmission sets the base: QPs begin at a
            # synchronized stream position (0, or rqPSN after a §III-E
            # source switch), either is legitimate.
            self._tx_hi[key] = pkt.psn
            return
        if pkt.psn > hi + 1 and self._rx_last.get(key, -1) < pkt.psn - 1:
            # Multicast QPs share one bridged PSN stream (§III-E): a QP
            # that *delivered* PSNs while another member was source may
            # legitimately resume sending above its own tx high-water.
            # A gap covered by neither its sends nor its deliveries is a
            # skipped PSN.
            self._flag("psn-contiguity", self._qp_name(qp),
                       f"DATA psn {pkt.psn} transmitted but {hi + 1}.."
                       f"{pkt.psn - 1} never were (skipped PSN)")
        if pkt.psn > hi:
            self._tx_hi[key] = pkt.psn

    def on_membership_epoch(self, qp, epoch: int) -> None:
        """A membership change re-based this QP's stream position
        (JOIN syncs rqPSN to the source's sqPSN; LEAVE retires the QP).
        Reset the per-QP PSN trackers so the legitimate discontinuity is
        not flagged — completed message ids are kept: exactly-once
        delivery spans epochs."""
        self.events_checked += 1
        key = id(qp)
        self._tx_hi.pop(key, None)
        self._rx_last.pop(key, None)

    def on_qp_deliver(self, qp, pkt: Packet) -> None:
        self._now = qp.sim.now
        self.events_checked += 1
        key = id(qp)
        last = self._rx_last.get(key)
        if last is not None:
            if pkt.psn <= last:
                self._flag("duplicate-delivery", self._qp_name(qp),
                           f"psn {pkt.psn} delivered again (last={last})")
            elif (pkt.psn != last + 1
                  and self._tx_hi.get(key, -1) < pkt.psn - 1):
                # Mirror of the send-side exemption: the stretch a QP
                # transmitted as source never arrives on its own receive
                # side, so its delivery stream resumes above it.
                self._flag("delivery-order", self._qp_name(qp),
                           f"psn {pkt.psn} delivered after {last} "
                           f"(gap of {pkt.psn - last - 1})")
        if last is None or pkt.psn > last:
            self._rx_last[key] = pkt.psn
        if pkt.last:
            done = self._rx_msgs.setdefault(key, set())
            if pkt.msg_id in done:
                self._flag("duplicate-message", self._qp_name(qp),
                           f"message {pkt.msg_id} completed twice")
            done.add(pkt.msg_id)

    # ------------------------------------------------------------------
    # lane taps: spray partition disjointness + reassembly coverage
    # ------------------------------------------------------------------

    def on_lane_spray(self, sprayer, sid: int, lane: int, offset: int,
                      length: int, total: int, respray: bool) -> None:
        self._now = sprayer.sim.now
        self.events_checked += 1
        where = f"spray {sid}"
        if offset < 0 or length <= 0 or offset + length > total:
            self._flag("path-lane-psn-overlap", where,
                       f"lane {lane} sub-range [{offset}, {offset + length})"
                       f" exceeds the message bounds [0, {total})")
            return
        if respray:
            # A failover respray deliberately re-covers a dead lane's
            # bytes; only primary shares must partition the message.
            return
        segs = self._spray_primary.setdefault((id(sprayer), sid), [])
        for o, l, ln in segs:
            if offset < o + l and o < offset + length:
                self._flag("path-lane-psn-overlap", where,
                           f"lane {lane} sub-range [{offset}, "
                           f"{offset + length}) overlaps lane {ln}'s "
                           f"[{o}, {o + l})")
        segs.append((offset, length, lane))

    def on_lane_complete(self, reassembler, sid: int, ip: int,
                         total: int, segments) -> None:
        self.events_checked += 1
        # Re-merge independently of the reassembler's own union.
        merged = _merge_ranges([(o, l) for o, l, _ in segments])
        if len(merged) != 1 or merged[0] != (0, total):
            self._flag("lane-reassembly-gap", f"host {ip}",
                       f"spray {sid} declared complete but segments "
                       f"cover {merged} of [0, {total})")

    # ------------------------------------------------------------------
    # feedback taps: min-AckPSN, MePSN, CNP filter
    # ------------------------------------------------------------------

    def on_feedback(self, engine, mft: Mft, kind: PacketType,
                    in_port: int, value: int, emits) -> None:
        self.events_checked += 1
        where = f"mft {mft.mcst_id:#x}"
        m_true = _min_downstream(mft)
        for ptype, psn in emits:
            if ptype == PacketType.ACK:
                if m_true is None or psn > m_true:
                    self._flag("ack-overclaim", where,
                               f"aggregated ACK({psn}) emitted but min "
                               f"downstream AckPSN is {m_true}")
                prev = self._agg_seen.get(id(mft))
                if prev is not None and psn < prev:
                    self._flag("ack-regression", where,
                               f"aggregated ACK({psn}) after ACK({prev})")
                self._agg_seen[id(mft)] = psn
            elif ptype == PacketType.NACK:
                if engine.cfg.nack_aggregation:
                    lagging = [e.port for e in mft.path_table
                               if e.port != mft.ack_out_port
                               and e.ack_psn < psn - 1]
                    if lagging:
                        self._flag(
                            "nack-covers-loss", where,
                            f"NACK({psn}) forwarded while ports {lagging} "
                            f"have not acknowledged below it (MePSN rule)")
            elif ptype == PacketType.CNP:
                if engine.cfg.cnp_filter:
                    counts = mft.cnp_counters
                    if in_port != mft.cnp_max_port:
                        self._flag("cnp-not-most-congested", where,
                                   f"CNP passed from port {in_port} but "
                                   f"designated port is {mft.cnp_max_port}")
                    elif counts and counts.get(in_port, 0) != max(counts.values()):
                        self._flag("cnp-not-most-congested", where,
                                   f"CNP passed from port {in_port} whose "
                                   f"count {counts.get(in_port, 0)} is not "
                                   f"the window maximum {max(counts.values())}")

    # ------------------------------------------------------------------
    # accelerator tap: replication filtering / pruning
    # ------------------------------------------------------------------

    def on_replicate(self, accel, mft: Mft, pkt: Packet,
                     in_port: int, targets) -> None:
        self._now = accel.switch.sim.now
        self.events_checked += 1
        where = accel.switch.name
        for e in targets:
            if e.port == in_port:
                self._flag("ingress-loop", where,
                           f"group {mft.mcst_id:#x}: replica of psn "
                           f"{pkt.psn} sent back out ingress port {in_port}")
            if accel.cfg.retransmit_filter and pkt.psn <= e.ack_psn:
                self._flag("retransmit-filter-miss", where,
                           f"group {mft.mcst_id:#x}: psn {pkt.psn} "
                           f"re-forwarded to port {e.port} which already "
                           f"acknowledged {e.ack_psn}")
        hdr = pkt.sr
        if hdr is not None and hdr.epoch == mft.epoch:
            # Source-routed mode: once the soft MFT has converged to the
            # packet's epoch, the replication set must agree with the
            # packet's effective sp-rule (header rule, or the residual
            # table for spilled rules).  Host-facing entries are exempt:
            # their lifecycle belongs to the MRP delta flow, which may
            # lag the re-encoded header by design.
            bitmap = hdr.rules.get(accel.switch.name)
            if bitmap is None:
                bitmap = accel.sr_rules.get(hdr.fallback_key)
            if bitmap is not None:
                for e in targets:
                    if not e.is_host and not (bitmap >> e.port) & 1:
                        self._flag(
                            "sr-rule-divergence", where,
                            f"group {mft.mcst_id:#x}: psn {pkt.psn} "
                            f"replicated to port {e.port} which the "
                            f"epoch-{hdr.epoch} sp-rule does not cover")

    # ------------------------------------------------------------------
    # structural sweeps: MFT <-> topology consistency
    # ------------------------------------------------------------------

    def check_mft_consistency(self, fabric, expect_connected: bool = False,
                              injector=None) -> None:
        """Verify every MFT on every accelerator of ``fabric``.

        ``expect_connected=True`` additionally requires every MDT port to
        sit on a live link — call this after all failures are repaired.
        ``injector`` (a :class:`FailureInjector`) lets the sweep verify
        the injector's own severed-link bookkeeping too.
        """
        for name, accel in sorted(fabric.accelerators.items()):
            sw = accel.switch
            for mcst_id, mft in accel.table.items():
                where = f"{name}/mft {mcst_id:#x}"
                rows = mft.path_table
                if len(rows) > sw.n_ports:
                    self._flag("mft-radix", where,
                               f"{len(rows)} paths exceed radix {sw.n_ports}")
                seen_ports: Set[int] = set()
                for i, e in enumerate(rows):
                    if e.port in seen_ports:
                        self._flag("mft-duplicate-port", where,
                                   f"port {e.port} appears twice in the "
                                   f"path table")
                    seen_ports.add(e.port)
                    if not (0 <= e.port < sw.n_ports):
                        self._flag("mft-bad-port", where,
                                   f"path row {i} references port {e.port}")
                        continue
                    if mft.path_index[e.port] != i + 1:
                        self._flag("mft-index-mismatch", where,
                                   f"path_index[{e.port}] = "
                                   f"{mft.path_index[e.port]}, row is {i}")
                    if e.is_host and not sw.is_host_port(e.port):
                        self._flag("mft-bridging-port", where,
                                   f"host-facing entry on non-host port "
                                   f"{e.port}")
                    if expect_connected and not sw.ports[e.port].connected:
                        self._flag("mft-severed-path", where,
                                   f"MDT port {e.port} has no live link")
                for port, idx in enumerate(mft.path_index):
                    if idx and not (1 <= idx <= len(rows)):
                        self._flag("mft-dangling-index", where,
                                   f"path_index[{port}] = {idx} but table "
                                   f"has {len(rows)} rows")
                if (mft.ack_out_port is not None
                        and not mft.has_port(mft.ack_out_port)):
                    self._flag("mft-ackout-unknown", where,
                               f"AckOutPort {mft.ack_out_port} is not a "
                               f"tree port")
                m = _min_downstream(mft)
                if (m is not None and mft.agg_ack_psn != NO_ACK
                        and mft.agg_ack_psn > m):
                    self._flag("mft-agg-above-min", where,
                               f"AggAckPSN {mft.agg_ack_psn} above min "
                               f"downstream AckPSN {m}")
                prev_epoch = self._mft_epoch.get(id(mft))
                if prev_epoch is not None and mft.epoch < prev_epoch:
                    self._flag("mft-epoch-regression", where,
                               f"membership epoch went backwards: "
                               f"{prev_epoch} -> {mft.epoch}")
                self._mft_epoch[id(mft)] = max(prev_epoch or 0, mft.epoch)
                for port, members in mft.port_members.items():
                    if members and not mft.has_port(port):
                        self._flag("mft-member-orphan", where,
                                   f"port {port} serves members "
                                   f"{sorted(members)} but has no path "
                                   f"entry")
                if mft.port_members:
                    for e in rows:
                        if (e.is_host and e.dst_ip
                                and e.dst_ip not in
                                mft.port_members.get(e.port, ())):
                            self._flag("mft-member-orphan", where,
                                       f"host entry for {e.dst_ip} on port "
                                       f"{e.port} has no member-set record")
                # The member->port reverse index must mirror port_members
                # exactly — a stale index entry would mis-route a later
                # LEAVE/PRUNE to the wrong path.
                flat = {ip: port for port, members in
                        mft.port_members.items() for ip in members}
                if mft.member_port != flat:
                    only_idx = set(mft.member_port) - set(flat)
                    only_set = set(flat) - set(mft.member_port)
                    wrong = {ip for ip in set(flat) & set(mft.member_port)
                             if flat[ip] != mft.member_port[ip]}
                    self._flag("mft-member-index-divergence", where,
                               f"member_port out of sync: index-only="
                               f"{sorted(only_idx)} set-only="
                               f"{sorted(only_set)} wrong-port="
                               f"{sorted(wrong)}")
        if injector is not None:
            self._check_injector(injector)

    def _check_injector(self, injector) -> None:
        """The injector's severed map must mirror the port state."""
        for (dev_id, port), (peer, peer_port) in injector._severed.items():
            if peer.ports[peer_port].connected:
                # The reverse direction of a severed link must be cut too
                # (fail_link severs both; a half-open link would silently
                # deliver one direction).
                self._flag("injector-half-open", f"port {peer_port}",
                           "severed link has a live reverse direction")
