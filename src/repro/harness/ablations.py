"""Ablations of the design choices §III-D calls out.

Each function disables exactly one Cepheus mechanism and measures the
symptom the paper predicts:

* no ACK trigger condition  -> ACK explosion at the sender;
* no NACK MePSN rule        -> inter-covering: losses survive to the app
  only via the slow safeguard timeout (inflated FCT under loss);
* no CNP filtering          -> CNP magnification: the sender sees a
  multiplied congestion signal and under-utilizes the fabric;
* no retransmission filter  -> duplicate retransmits burn downstream
  bandwidth (receivers see duplicates the RNIC must discard);
* per-receiver (flat) state -> memory grows linearly with group size
  instead of being bounded by the port count.
"""

from __future__ import annotations

from typing import Dict, Optional

from repro import constants
from repro.apps import Cluster
from repro.collectives import CepheusBcast
from repro.core.accelerator import AcceleratorConfig
from repro.core.feedback import FeedbackConfig
from repro.harness.report import ExperimentResult
from repro.net.trace import ThroughputSampler

__all__ = ["ablation_ack_trigger", "ablation_nack_rule",
           "ablation_cnp_filter", "ablation_retransmit_filter",
           "ablation_state_memory", "ablation_deployment"]

MB = 1 << 20


def _run_bcast(n_hosts: int, size: int, *, loss: float = 0.0,
               feedback: Optional[FeedbackConfig] = None,
               retransmit_filter: bool = True,
               fat_tree: bool = False):
    """One Cepheus broadcast with a custom accelerator config; returns
    (result, algo, cluster).

    Loss-sensitive ablations use a fat-tree with loss injected at the
    middle switches so different MDT branches lose *different* packets
    (in a star the drop happens before replication and every receiver
    loses the same PSN, which hides both the retransmission filter and
    the inter-covering hazard).
    """
    accel = AcceleratorConfig(retransmit_filter=retransmit_filter,
                              feedback=feedback)
    if fat_tree:
        cl = Cluster.fat_tree_cluster(4, accel_config=accel)
        members = cl.host_ips[:n_hosts]
    else:
        cl = Cluster.testbed(n_hosts, accel_config=accel)
        members = cl.host_ips
    if loss:
        cl.topo.set_loss_rate(loss)
    algo = CepheusBcast(cl, members)
    result = algo.run(size)
    return result, algo, cl


def ablation_ack_trigger(quick: bool = True) -> ExperimentResult:
    """Trigger condition on/off: ACKs arriving at the sender."""
    size = (8 if quick else 64) * MB
    res = ExperimentResult(
        exp_id="abl-ack", title="ACK trigger condition (anti ACK-explosion)",
        headers=["variant", "sender_acks", "jct_ms", "acks_per_mb"],
        paper_claim="the Trigger Condition reduces ACKs to the sender, "
                    "mitigating the ACK exploding issue",
    )
    for variant, trig in (("with-trigger", True), ("no-trigger", False)):
        r, algo, _ = _run_bcast(
            8, size, feedback=FeedbackConfig(trigger_condition=trig))
        acks = algo.qps[algo.root].acks_received
        res.rows.append({"variant": variant, "sender_acks": acks,
                         "jct_ms": r.jct * 1e3,
                         "acks_per_mb": acks / (size / MB)})
    return res


def ablation_nack_rule(quick: bool = True) -> ExperimentResult:
    """MePSN rule on/off under branch-divergent loss.

    Without the rule, a later NACK's implicit cumulative ACK covers an
    earlier loss on another branch: the sender reaps those WQEs, never
    retransmits the missing PSN, and the affected receivers stall
    *forever* (go-back-N restarts from the falsely-advanced snd_una).
    The run is therefore time-capped and we report how many receivers
    actually finished.
    """
    size = (4 if quick else 16) * MB
    cap = 60e-3
    res = ExperimentResult(
        exp_id="abl-nack", title="NACK aggregation (anti inter-covering)",
        headers=["variant", "receivers_done", "receivers_total",
                 "delivered_frac_min"],
        paper_claim="without the MePSN rule a later NACK covers an earlier "
                    "loss; the sender never retransmits it (§III-D)",
    )
    for variant, nack in (("with-mepsn", True), ("no-mepsn", False)):
        accel = AcceleratorConfig(
            feedback=FeedbackConfig(nack_aggregation=nack))
        cl = Cluster.fat_tree_cluster(4, accel_config=accel)
        cl.topo.set_loss_rate(8e-3)
        members = cl.host_ips[:8]
        algo = CepheusBcast(cl, members)
        algo.prepare()
        got = {ip: 0 for ip in members[1:]}
        done = {ip: False for ip in members[1:]}
        for ip in members[1:]:
            def handler(mid, sz, now, meta, _ip=ip):
                got[_ip] += sz
                done[_ip] = True
            algo.qps[ip].on_message = handler
        algo.qps[algo.root].post_send(size)
        cl.sim.run(until=cap)
        finished = sum(
            1 for ip in members[1:]
            if algo.qps[ip].recv.bytes_delivered >= size)
        mtu = algo.qps[algo.root].cfg.mtu
        min_frac = min(
            min(algo.qps[ip].rq_psn * mtu / size, 1.0)
            for ip in members[1:])
        # Quiesce: stop the (possibly wedged) transfer so later
        # experiments in the same process see a clean event queue.
        algo.qps[algo.root].abort_sends()
        res.rows.append({"variant": variant, "receivers_done": finished,
                         "receivers_total": len(members) - 1,
                         "delivered_frac_min": min_frac})
    return res


def ablation_cnp_filter(quick: bool = True) -> ExperimentResult:
    """CNP filter on/off with a congested receiver: sender throughput."""
    size = (16 if quick else 64) * MB
    res = ExperimentResult(
        exp_id="abl-cnp", title="CNP filtering (anti magnification)",
        headers=["variant", "sender_cnps", "jct_ms", "goodput_gbps"],
        paper_claim="multi-stream CNPs must be filtered so the rate matches "
                    "the most congested receiver, not the sum of signals",
    )
    for variant, filt in (("with-filter", True), ("no-filter", False)):
        accel = AcceleratorConfig(feedback=FeedbackConfig(cnp_filter=filt))
        # Dumbbell: congestion sits on the shared trunk, *upstream* of
        # the replication point, so every receiver sees marked packets
        # and emits its own CNP stream — one congestion event, three
        # signals.  That is the magnification the filter must defuse.
        cl = Cluster.dumbbell_cluster(2, 4, accel_config=accel)
        members = [1, 3, 4, 5]             # sender left; receivers right
        algo = CepheusBcast(cl, members)
        algo.prepare()
        cl.qp_to(2, 6).post_send(size)     # background flow on the trunk
        r = algo.run(size)
        cnps = algo.qps[algo.root].cc.cnp_count
        res.rows.append({"variant": variant, "sender_cnps": cnps,
                         "jct_ms": r.jct * 1e3,
                         "goodput_gbps": r.goodput_gbps()})
    return res


def ablation_retransmit_filter(quick: bool = True) -> ExperimentResult:
    """Retransmission filter on/off under loss: duplicate deliveries."""
    size = (4 if quick else 32) * MB
    res = ExperimentResult(
        exp_id="abl-retx", title="Retransmission filtering (duplicate suppression)",
        headers=["variant", "fct_ms", "filtered", "dup_deliveries"],
        paper_claim="filtering saves bandwidth and prevents receivers from "
                    "receiving duplicate retransmitted packets",
    )
    for variant, filt in (("with-filter", True), ("no-filter", False)):
        r, algo, cl = _run_bcast(8, size, loss=2e-3, fat_tree=True,
                                 retransmit_filter=filt)
        filtered = sum(a.retransmits_filtered
                       for a in cl.fabric.accelerators.values())
        # Duplicate arrivals make the RNIC respond with an immediate
        # re-ACK, so receiver ACK counts expose suppressed duplicates.
        dups = sum(qp.acks_sent for ip, qp in algo.qps.items()
                   if ip != algo.root)
        res.rows.append({"variant": variant, "fct_ms": r.jct * 1e3,
                         "filtered": filtered,
                         "dup_deliveries": dups})
    return res


def ablation_deployment(quick: bool = True) -> ExperimentResult:
    """Inline (ASIC) vs look-aside (FPGA prototype) integration, §IV.

    The prototype detours multicast traffic over dedicated switch ports;
    the proposed ASIC integration is inline.  Latency: the detour adds
    two link traversals.  Throughput: bounded by the board's aggregate
    transceiver capacity (the §VI scalability limit) — visible once the
    offered multicast load exceeds it.

    The ``source_routed`` row carries the distribution tree in packet
    headers (Elmo-style) instead of control-installed MFTs; its datapath
    matches inline JCTs while trading header bytes for switch state.
    """
    from repro.core.accelerator import AcceleratorConfig

    size_small, size_large = 64, (16 if quick else 64) * MB
    res = ExperimentResult(
        exp_id="abl-deploy", title="Inline (ASIC) vs look-aside (FPGA board)",
        headers=["deployment", "small_jct_us", "large_jct_ms", "detours"],
        paper_claim="ASIC integration avoids occupying switch ports; the "
                    "FPGA detour costs a fixed latency and is capacity-"
                    "bounded by the board's transceivers",
    )
    for deployment in ("inline", "lookaside", "source_routed"):
        cfg = AcceleratorConfig(deployment=deployment)
        cl = Cluster.testbed(4, accel_config=cfg)
        algo = CepheusBcast(cl, cl.host_ips)
        small = algo.run(size_small).jct
        large = algo.run(size_large).jct
        res.rows.append({
            "deployment": deployment,
            "small_jct_us": small * 1e6,
            "large_jct_ms": large * 1e3,
            "detours": cl.fabric.accelerators["sw0"].lookaside_detours,
        })
    return res


def ablation_state_memory(quick: bool = True) -> ExperimentResult:
    """Hierarchical per-path state vs naive per-receiver tracking."""
    res = ExperimentResult(
        exp_id="abl-mem", title="Feedback state: hierarchical vs per-receiver",
        headers=["group_size", "hierarchical_B", "per_receiver_B", "ratio"],
        paper_claim="per-path state bounds switch memory by the port count "
                    "regardless of MG size (0.69MB per 1K groups at 64 ports)",
    )
    per_entry = 10  # dstIP + dstQP + AckPSN, as in Mft.memory_bytes
    for group_size in (16, 64, 256, 1024, 4096):
        hierarchical = 64 + per_entry * min(group_size, 64) + 20
        per_receiver = 64 + per_entry * group_size + 20
        res.rows.append({
            "group_size": group_size,
            "hierarchical_B": hierarchical,
            "per_receiver_B": per_receiver,
            "ratio": per_receiver / hierarchical,
        })
    return res
