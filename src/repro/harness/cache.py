"""Content-addressed experiment-result cache.

An experiment run is a pure function of (experiment id, config,
code).  The cache key is therefore the SHA-256 of the canonicalized
config document plus a fingerprint of every source file in the
``repro`` package: touch any file under ``src/repro`` and every key
changes, so stale hits are impossible by construction (the FuzzBench
"experiment = pure function of config" discipline).

Entries are JSON files named ``<key>.json`` under the cache root, each
holding the canonical :class:`~repro.harness.report.ExperimentResult`
payload plus the provenance of the run that produced it.
"""

from __future__ import annotations

import hashlib
import json
import os
import pathlib
from dataclasses import dataclass, field
from typing import Any, Dict, Optional

__all__ = ["canonical_config", "config_hash", "code_fingerprint",
           "ResultCache", "DEFAULT_CACHE_DIR"]

DEFAULT_CACHE_DIR = ".bench_cache"

_CODE_FINGERPRINT: Optional[str] = None


def canonical_config(config: Dict[str, Any]) -> str:
    """Deterministic, whitespace-free JSON encoding of a config dict."""
    return json.dumps(config, sort_keys=True, separators=(",", ":"),
                      ensure_ascii=False)


def config_hash(config: Dict[str, Any]) -> str:
    return hashlib.sha256(canonical_config(config).encode("utf-8")).hexdigest()


def code_fingerprint(refresh: bool = False) -> str:
    """SHA-256 over every ``.py`` file of the installed ``repro``
    package (relative path + contents, sorted), memoized per process."""
    global _CODE_FINGERPRINT
    if _CODE_FINGERPRINT is not None and not refresh:
        return _CODE_FINGERPRINT
    import repro

    pkg_root = pathlib.Path(repro.__file__).parent
    digest = hashlib.sha256()
    for path in sorted(pkg_root.rglob("*.py")):
        rel = path.relative_to(pkg_root).as_posix()
        digest.update(rel.encode("utf-8"))
        digest.update(b"\0")
        digest.update(path.read_bytes())
        digest.update(b"\0")
    _CODE_FINGERPRINT = digest.hexdigest()
    return _CODE_FINGERPRINT


@dataclass
class ResultCache:
    """File-backed store of experiment payloads, keyed by content.

    ``get``/``put`` operate on the *bench entry* dict (see
    ``repro.harness.bench``): the canonical result document plus run
    provenance.  A ``put`` is atomic (write + rename) so a crashed or
    parallel run never leaves a half-written entry.
    """

    root: pathlib.Path
    hits: int = 0
    misses: int = 0
    fingerprint: str = field(default_factory=code_fingerprint)

    def __post_init__(self) -> None:
        self.root = pathlib.Path(self.root)

    def key(self, exp_id: str, config: Dict[str, Any]) -> str:
        blob = f"{exp_id}\0{config_hash(config)}\0{self.fingerprint}"
        return hashlib.sha256(blob.encode("utf-8")).hexdigest()

    def _path(self, key: str) -> pathlib.Path:
        return self.root / f"{key}.json"

    def get(self, key: str) -> Optional[Dict[str, Any]]:
        path = self._path(key)
        try:
            with open(path, "r", encoding="utf-8") as fh:
                entry = json.load(fh)
        except (OSError, ValueError):
            self.misses += 1
            return None
        self.hits += 1
        return entry

    def put(self, key: str, entry: Dict[str, Any]) -> None:
        self.root.mkdir(parents=True, exist_ok=True)
        path = self._path(key)
        tmp = path.with_suffix(".tmp")
        with open(tmp, "w", encoding="utf-8") as fh:
            json.dump(entry, fh, indent=2, sort_keys=True)
            fh.write("\n")
        os.replace(tmp, path)
