"""Deterministic membership-churn campaigns over the Cepheus fabric.

The dynamic-membership machinery (incremental MRP deltas, aggregate
re-evaluation on LEAVE/PRUNE, the leaf-driven failure detector) is
control-plane code racing against in-flight data — exactly the kind of
logic a throughput number never exercises.  This module stresses it the
same way :mod:`repro.harness.chaos` stresses the loss-recovery paths:

* a **schedule** is drawn up front from a seeded RNG: a list of
  membership *events* (JOINs of fresh hosts, voluntary LEAVEs, and
  receiver *crashes* — the host's access link is cut and never
  repaired, so only the failure detector can unstick the group) plus
  message offsets that interleave broadcasts with the churn;
* a **trial** is a pure function of (config, schedule): build a fresh
  cluster, register the initial group, start the failure detector, post
  the message sequence while members come and go, and record per-member
  deliveries + invariant violations.  Exactly-once delivery is asserted
  for every member of the *final* epoch (departed members legitimately
  miss the tail of an in-flight message);
* a **campaign** runs N seeded trials; failing trials are greedily
  shrunk (drop churn events, then trailing messages) into JSON
  reproducers that ``cepheus-repro churn replay`` re-executes.

The ``mutate="no-detector"`` knob disables the failure detector: a
schedule containing a crash must then stall (the dead receiver pins the
min-AckPSN aggregate forever) — the smoke tests use it to prove the
campaign detects real liveness bugs rather than vacuously passing.
"""

from __future__ import annotations

import json
from dataclasses import asdict, dataclass, replace
from typing import Dict, List, Optional, Set, Tuple

from repro import constants
from repro.apps.cluster import Cluster
from repro.check import InvariantMonitor
from repro.collectives import CepheusBcast
from repro.harness.chaos import greedy_drop
from repro.net.failures import FailureInjector
from repro.net.switch import SwitchConfig
from repro.transport.roce import RoceConfig

__all__ = [
    "ChurnConfig", "ChurnEvent", "ChurnSchedule", "generate_churn_schedule",
    "run_churn_trial", "run_churn_campaign", "shrink_churn_schedule",
    "load_churn_reproducer", "replay_churn_reproducer",
]

REPRODUCER_KIND = "cepheus-churn-reproducer"


@dataclass(frozen=True)
class ChurnConfig:
    """Parameters of one churn campaign (all trials share these)."""

    topo: str = "star"            # "star" | "fat_tree"
    hosts: int = 8                # star size / fat-tree hosts_limit
    k: int = 4                    # fat-tree arity
    initial_members: int = 5      # group size at registration (from hosts[0])
    messages: int = 4             # broadcasts per trial (sequential)
    msg_packets: int = 8          # packets per broadcast (size = n * MTU)
    joins: int = 2                # JOIN events per trial
    leaves: int = 1               # voluntary LEAVE events per trial
    crashes: int = 1              # receiver crashes per trial (never repaired)
    horizon: float = 0.04         # virtual seconds per trial
    loss_rate: float = 0.0        # baseline random loss on every switch
    rto: float = 200e-6
    retransmit_mode: str = "gbn"
    detector_interval: float = 150e-6
    detector_misses: int = 3
    coalesce_window: Optional[float] = None  # batch deltas per window (s)
    mutate: Optional[str] = None  # "no-detector" disables failure pruning

    def to_dict(self) -> Dict[str, object]:
        return asdict(self)

    @classmethod
    def from_dict(cls, d: Dict[str, object]) -> "ChurnConfig":
        known = {f for f in cls.__dataclass_fields__}
        return cls(**{k: v for k, v in d.items() if k in known})


@dataclass(frozen=True)
class ChurnEvent:
    """One membership change at virtual time ``at`` (relative to the
    traffic start).  ``kind`` is ``join`` / ``leave`` / ``crash``."""

    kind: str
    ip: int
    at: float

    def to_dict(self) -> Dict[str, object]:
        return {"kind": self.kind, "ip": self.ip, "at": self.at}

    @classmethod
    def from_dict(cls, d: Dict[str, object]) -> "ChurnEvent":
        return cls(kind=d["kind"], ip=d["ip"], at=d["at"])


@dataclass(frozen=True)
class ChurnSchedule:
    """Pure, JSON-able trial input: message offsets + churn events.

    The leader (``hosts[0]``) is the source of every message — LEAVE and
    PRUNE are forbidden for the current source, so churn targets are
    always plain receivers.
    """

    trial_seed: int
    offsets: Tuple[float, ...]
    events: Tuple[ChurnEvent, ...]

    def to_dict(self) -> Dict[str, object]:
        return {"trial_seed": self.trial_seed,
                "offsets": list(self.offsets),
                "events": [e.to_dict() for e in self.events]}

    @classmethod
    def from_dict(cls, d: Dict[str, object]) -> "ChurnSchedule":
        return cls(trial_seed=d["trial_seed"],
                   offsets=tuple(d["offsets"]),
                   events=tuple(ChurnEvent.from_dict(e)
                                for e in d["events"]))


# ---------------------------------------------------------------------------
# cluster construction + schedule generation
# ---------------------------------------------------------------------------

def _build_cluster(cfg: ChurnConfig, trial_seed: int) -> Cluster:
    sw_cfg = SwitchConfig(loss_rate=cfg.loss_rate, seed=trial_seed)
    roce = RoceConfig(rto=cfg.rto, retransmit_mode=cfg.retransmit_mode)
    if cfg.topo == "star":
        return Cluster.testbed(cfg.hosts, switch_config=sw_cfg,
                               roce_config=roce)
    if cfg.topo == "fat_tree":
        return Cluster.fat_tree_cluster(cfg.k, hosts_limit=cfg.hosts,
                                        switch_config=sw_cfg,
                                        roce_config=roce)
    raise ValueError(f"unknown churn topology {cfg.topo!r}")


def generate_churn_schedule(cfg: ChurnConfig, rng) -> ChurnSchedule:
    """Draw one randomized-but-reproducible churn schedule."""
    trial_seed = rng.randrange(1 << 31)
    cluster = _build_cluster(cfg, 0)   # shape-only; state is discarded
    hosts = list(cluster.topo.host_ips)
    if cfg.initial_members < 2 or cfg.initial_members > len(hosts):
        raise ValueError(f"initial_members={cfg.initial_members} out of "
                         f"range for {len(hosts)} hosts")
    initial = hosts[:cfg.initial_members]
    outsiders = hosts[cfg.initial_members:]
    h = cfg.horizon

    events: List[ChurnEvent] = []
    joiners = rng.sample(outsiders, min(cfg.joins, len(outsiders)))
    for ip in joiners:
        events.append(ChurnEvent("join", ip, round(rng.uniform(0.05, 0.45) * h, 9)))
    # Removals come from the initial non-leader members and never shrink
    # the group below 2 (the joiners may not have arrived yet when a
    # removal fires, so they don't count toward the floor).
    removable = list(initial[1:])
    budget = max(0, cfg.initial_members - 2)
    n_leave = min(cfg.leaves, budget, len(removable))
    n_crash = min(cfg.crashes, budget - n_leave, len(removable) - n_leave)
    victims = rng.sample(removable, n_leave + n_crash)
    for ip in victims[:n_leave]:
        events.append(ChurnEvent("leave", ip, round(rng.uniform(0.05, 0.45) * h, 9)))
    for ip in victims[n_leave:]:
        # Crashes land early so the detector sees post-crash traffic.
        events.append(ChurnEvent("crash", ip, round(rng.uniform(0.05, 0.30) * h, 9)))
    events.sort(key=lambda e: (e.at, e.kind, e.ip))

    offsets = [0.0] + sorted(
        round(rng.uniform(0.05, 0.5) * h, 9)
        for _ in range(cfg.messages - 1))
    if events and cfg.messages > 1:
        # Guarantee at least one message posted after the last churn
        # event: a crash during total silence is undetectable by a
        # missed-feedback detector (and uninteresting).
        tail = round(max(e.at for e in events) + 0.05 * h, 9)
        offsets[-1] = max(offsets[-1], tail)
    return ChurnSchedule(trial_seed=trial_seed, offsets=tuple(offsets),
                         events=tuple(events))


# ---------------------------------------------------------------------------
# one trial
# ---------------------------------------------------------------------------

def run_churn_trial(cfg: ChurnConfig, schedule: ChurnSchedule,
                    trial_index: int = 0) -> Dict[str, object]:
    """Execute one churn trial; returns a JSON-able deterministic record."""
    cluster = _build_cluster(cfg, schedule.trial_seed)
    sim = cluster.sim
    fabric = cluster.fabric
    monitor = InvariantMonitor()
    monitor.attach_cluster(cluster)
    try:
        hosts = list(cluster.host_ips)
        initial = hosts[:cfg.initial_members]
        leader = initial[0]
        algo = CepheusBcast(cluster, initial, leader)
        algo.prepare()
        full_records = sum(a.mrp_records_installed
                           for a in fabric.accelerators.values())

        mm = fabric.membership(algo.group,
                               coalesce_window=cfg.coalesce_window)
        if cfg.mutate is None:
            mm.start_failure_detector(interval=cfg.detector_interval,
                                      misses=cfg.detector_misses)
        elif cfg.mutate != "no-detector":
            raise ValueError(f"unknown mutation {cfg.mutate!r}")

        injector = FailureInjector(cluster.topo)
        start = sim.now
        size = cfg.msg_packets * constants.MTU_BYTES
        deliveries: Dict[int, int] = {}
        expected: Dict[int, int] = {}
        crashed: Set[int] = set()

        def wire(ip: int) -> None:
            deliveries.setdefault(ip, 0)
            expected.setdefault(ip, 0)

            def on_msg(mid, sz, now, meta, _ip=ip) -> None:
                deliveries[_ip] += 1
            algo.group.members[ip].on_message = on_msg

        for ip in initial:
            if ip != leader:
                wire(ip)

        # -- churn events -------------------------------------------------
        def do_join(ip: int) -> None:
            qp = cluster.ctx(ip).create_qp()
            mm.join(ip, qp)
            wire(ip)

        def do_leave(ip: int) -> None:
            if ip in algo.group.members and not mm.has_inflight(ip):
                mm.leave(ip)

        def do_crash(ip: int) -> None:
            sw, port = cluster.topo.leaf_of(ip)
            injector.fail_link(sw, port)   # never repaired
            crashed.add(ip)

        actions = {"join": do_join, "leave": do_leave, "crash": do_crash}
        for ev in schedule.events:
            sim.schedule(start + ev.at - sim.now, actions[ev.kind], ev.ip)

        # -- traffic ------------------------------------------------------
        state = {"completed": 0, "done_times": []}
        src_qp = algo.group.members[leader]

        def post_next() -> None:
            # Snapshot who is owed this message: every current member
            # except the source and receivers already known dead.  A
            # joiner whose delta is still in flight counts — the JOIN
            # PSN sync guarantees it recovers everything posted from the
            # moment it was admitted.
            for ip in algo.group.members:
                if ip != leader and ip not in crashed:
                    expected[ip] += 1

            def on_done(mid: int, now: float) -> None:
                state["completed"] += 1
                state["done_times"].append(now - start)
                i_next = state["completed"]
                if i_next < len(schedule.offsets):
                    when = max(start + schedule.offsets[i_next],
                               sim.now + 1e-6)
                    sim.schedule(when - sim.now, post_next)

            src_qp.post_send(size, on_complete=on_done)

        post_next()
        sim.run(until=start + cfg.horizon, max_events=20_000_000)
        mm.stop_failure_detector()

        # Crashed receivers must have been pruned out of the group (the
        # failure detector's whole job); once they are, every MDT port
        # sits on a live link again and the structural sweep can demand
        # connectivity despite the unrepaired access links.
        unpruned = sorted(ip for ip in crashed if ip in algo.group.members)
        if not unpruned:
            monitor.check_mft_consistency(fabric, expect_connected=True,
                                          injector=injector)
        else:
            monitor.check_mft_consistency(fabric, injector=injector)

        final_members = [ip for ip in algo.group.members if ip != leader]
        mismatched = sorted(
            ip for ip in final_members
            if deliveries.get(ip, 0) != expected.get(ip, 0))
        violations = [v.to_dict() for v in monitor.violations]
        failing = (bool(violations)
                   or state["completed"] < cfg.messages
                   or not src_qp.send_idle
                   or bool(mismatched)
                   or bool(unpruned)
                   or bool(mm.delta_failures))
        delta_records = sum(a.mrp_records_installed
                            for a in fabric.accelerators.values()) - full_records
        removed_records = sum(a.mrp_records_removed
                              for a in fabric.accelerators.values())
        return {
            "trial": trial_index,
            "trial_seed": schedule.trial_seed,
            "schedule": schedule.to_dict(),
            "expected_messages": cfg.messages,
            "completed_messages": state["completed"],
            "done_times_us": [round(t * 1e6, 3) for t in state["done_times"]],
            "deliveries": {str(ip): deliveries[ip] for ip in sorted(deliveries)},
            "expected": {str(ip): expected[ip] for ip in sorted(expected)},
            "final_members": sorted(algo.group.members),
            "final_epoch": algo.group.epoch,
            "epoch_log": [list(e) for e in mm.epoch_log],
            "pruned": sorted(mm.pruned),
            "unpruned_crashes": unpruned,
            "mismatched": mismatched,
            "delta_failures": [list(f) for f in mm.delta_failures],
            "full_records": full_records,
            "delta_records": delta_records,
            "removed_records": removed_records,
            "events": sim.events_run,
            "checked": monitor.events_checked,
            "violations": violations,
            "failing": failing,
        }
    finally:
        monitor.detach()


def _fails(cfg: ChurnConfig, schedule: ChurnSchedule) -> bool:
    return bool(run_churn_trial(cfg, schedule)["failing"])


# ---------------------------------------------------------------------------
# shrinking
# ---------------------------------------------------------------------------

def shrink_churn_schedule(cfg: ChurnConfig,
                          schedule: ChurnSchedule) -> ChurnSchedule:
    """Greedily minimize a failing schedule: drop churn events one at a
    time, then trailing messages, keeping every reduction that still
    fails.  Each probe is a full deterministic re-run."""
    _, schedule = greedy_drop(
        schedule.events,
        lambda evs: replace(schedule, events=tuple(evs)),
        lambda cand: _fails(cfg, cand))
    offsets = list(schedule.offsets)
    while len(offsets) > 1:
        cand_cfg = replace(cfg, messages=len(offsets) - 1)
        cand = replace(schedule, offsets=tuple(offsets[:-1]))
        if _fails(cand_cfg, cand):
            offsets.pop()
            schedule = cand
            cfg = cand_cfg
        else:
            break
    return schedule


# ---------------------------------------------------------------------------
# campaigns + reproducers
# ---------------------------------------------------------------------------

def run_churn_campaign(cfg: ChurnConfig, seed: int, trials: int,
                       shrink: bool = True) -> Dict[str, object]:
    """Run ``trials`` seeded trials; shrink and package any failures.

    Deterministic for a given (config, seed, trials) — the same
    per-trial seeding discipline as the chaos campaigns.
    """
    import random

    records: List[Dict[str, object]] = []
    reproducers: List[Dict[str, object]] = []
    for t in range(trials):
        rng = random.Random((seed << 20) ^ (t * 0x9E3779B1 + 1))
        schedule = generate_churn_schedule(cfg, rng)
        record = run_churn_trial(cfg, schedule, trial_index=t)
        records.append(record)
        if record["failing"]:
            minimal = (shrink_churn_schedule(cfg, schedule)
                       if shrink else schedule)
            trial_cfg = replace(cfg, messages=len(minimal.offsets))
            final = run_churn_trial(trial_cfg, minimal, trial_index=t)
            reproducers.append({
                "kind": REPRODUCER_KIND,
                "config": trial_cfg.to_dict(),
                "schedule": minimal.to_dict(),
                "violations": final["violations"],
                "mismatched": final["mismatched"],
                "completed_messages": final["completed_messages"],
                "trial": t,
            })
    return {
        "config": cfg.to_dict(),
        "seed": seed,
        "trials": trials,
        "records": records,
        "failing_trials": [r["trial"] for r in records if r["failing"]],
        "reproducers": reproducers,
    }


def load_churn_reproducer(path: str) -> Tuple[ChurnConfig, ChurnSchedule]:
    with open(path, "r", encoding="utf-8") as fh:
        doc = json.load(fh)
    if doc.get("kind") != REPRODUCER_KIND:
        raise ValueError(f"{path} is not a {REPRODUCER_KIND} document")
    return (ChurnConfig.from_dict(doc["config"]),
            ChurnSchedule.from_dict(doc["schedule"]))


def replay_churn_reproducer(path: str) -> Dict[str, object]:
    """Re-execute a dumped reproducer; returns its (fresh) trial record."""
    cfg, schedule = load_churn_reproducer(path)
    return run_churn_trial(cfg, schedule)
