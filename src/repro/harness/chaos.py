"""Deterministic chaos campaigns over the Cepheus fabric.

The reliability machinery of the paper (§III-D aggregation rules, §V-C
loss tolerance, §V-D failure handling) is exactly the code most likely
to rot silently: a subtle bug in feedback aggregation or a failure
repair path does not move a throughput number.  This module attacks it
the way Jepsen attacks databases — randomized failure schedules, run
under the :class:`~repro.check.InvariantMonitor`, with deterministic
seeds and a greedy shrinker that reduces any failing trial to a minimal
reproducer:

* a **schedule** is generated up front from a seeded RNG: a list of
  *incidents* (link cuts, switch black-holes, host disconnects, loss
  windows — each with a failure and a repair time) plus a per-message
  *source plan* (mid-run §III-E source switching);
* a **trial** is a pure function of (config, schedule): build a fresh
  cluster, register one multicast group, post the message sequence
  while the incidents fire, and record deliveries + invariant
  violations.  Two runs of the same trial are bit-for-bit identical;
* a **campaign** runs N trials; every failing trial is replayed through
  :func:`shrink_schedule`, which greedily drops incidents and trailing
  messages while the failure persists, and the minimal schedule is
  dumped as a JSON reproducer that ``cepheus-repro chaos replay``
  re-executes.

A ``mutate`` knob arms the :data:`repro.transport.qp.psn_tx_hook` fault
hook inside a trial, deliberately corrupting the protocol — the smoke
tests use it to prove the monitor (and the shrinker) actually detect
violations rather than vacuously passing.
"""

from __future__ import annotations

import json
from dataclasses import asdict, dataclass, field, replace
from typing import Dict, List, Optional, Tuple

from repro import constants
from repro.apps.cluster import Cluster
from repro.check import InvariantMonitor
from repro.collectives import CepheusBcast
from repro.core.accelerator import AcceleratorConfig
from repro.net.failures import FailureInjector
from repro.net.switch import Switch, SwitchConfig
from repro.transport import qp as qp_state
from repro.transport.roce import RoceConfig

__all__ = [
    "ChaosConfig", "Incident", "Schedule", "generate_schedule",
    "greedy_drop", "run_trial", "run_campaign", "shrink_schedule",
    "load_reproducer", "replay_reproducer",
]

REPRODUCER_KIND = "cepheus-chaos-reproducer"


@dataclass(frozen=True)
class ChaosConfig:
    """Parameters of one chaos campaign (all trials share these)."""

    topo: str = "star"           # "star" | "fat_tree"
    hosts: int = 6               # star size / fat-tree hosts_limit
    k: int = 4                   # fat-tree arity
    messages: int = 3            # broadcasts per trial (sequential)
    msg_packets: int = 8         # packets per broadcast (size = n * MTU)
    incidents: int = 2           # failure incidents per trial
    horizon: float = 0.04        # virtual seconds of traffic per trial
    loss_rate: float = 0.0       # baseline random loss on every switch
    rto: float = 200e-6
    retransmit_mode: str = "gbn"
    deployment: str = "inline"   # accelerator style: inline | lookaside | source_routed
    mutate: Optional[str] = None  # "psn-skip" arms the PSN fault hook

    def to_dict(self) -> Dict[str, object]:
        return asdict(self)

    @classmethod
    def from_dict(cls, d: Dict[str, object]) -> "ChaosConfig":
        known = {f for f in cls.__dataclass_fields__}
        return cls(**{k: v for k, v in d.items() if k in known})


@dataclass(frozen=True)
class Incident:
    """One failure + its repair.  ``target`` is a JSON-able address:

    * ``["link", switch_name, port]`` — a switch-to-switch link
    * ``["host", ip]`` — a host's access link
    * ``["switch", switch_name]`` — a whole-switch black hole
    * ``["loss", switch_name, rate]`` — a transient loss window
    """

    kind: str
    target: Tuple
    at: float
    repair_at: float

    def to_dict(self) -> Dict[str, object]:
        return {"kind": self.kind, "target": list(self.target),
                "at": self.at, "repair_at": self.repair_at}

    @classmethod
    def from_dict(cls, d: Dict[str, object]) -> "Incident":
        return cls(kind=d["kind"], target=tuple(d["target"]),
                   at=d["at"], repair_at=d["repair_at"])


@dataclass(frozen=True)
class Schedule:
    """Everything a trial does besides the config: pure data, JSON-able.

    ``offsets[i]`` is the earliest start (relative to traffic start) of
    message *i*; the trial posts it at ``max(offset, previous message
    completion)``, which spreads the messages across the horizon so the
    incidents actually overlap transfers (and the idle windows between
    them, which stress posting into a severed fabric).
    """

    trial_seed: int
    sources: Tuple[int, ...]          # source host of message i
    offsets: Tuple[float, ...]        # earliest start of message i
    incidents: Tuple[Incident, ...]

    def to_dict(self) -> Dict[str, object]:
        return {"trial_seed": self.trial_seed,
                "sources": list(self.sources),
                "offsets": list(self.offsets),
                "incidents": [i.to_dict() for i in self.incidents]}

    @classmethod
    def from_dict(cls, d: Dict[str, object]) -> "Schedule":
        return cls(trial_seed=d["trial_seed"],
                   sources=tuple(d["sources"]),
                   offsets=tuple(d.get("offsets", [0.0] * len(d["sources"]))),
                   incidents=tuple(Incident.from_dict(i)
                                   for i in d["incidents"]))


# ---------------------------------------------------------------------------
# cluster construction + target enumeration
# ---------------------------------------------------------------------------

def _build_cluster(cfg: ChaosConfig, trial_seed: int) -> Cluster:
    sw_cfg = SwitchConfig(loss_rate=cfg.loss_rate, seed=trial_seed)
    roce = RoceConfig(rto=cfg.rto, retransmit_mode=cfg.retransmit_mode)
    accel = AcceleratorConfig(deployment=cfg.deployment)
    if cfg.topo == "star":
        return Cluster.testbed(cfg.hosts, switch_config=sw_cfg,
                               accel_config=accel, roce_config=roce)
    if cfg.topo == "fat_tree":
        return Cluster.fat_tree_cluster(cfg.k, hosts_limit=cfg.hosts,
                                        switch_config=sw_cfg,
                                        accel_config=accel,
                                        roce_config=roce)
    raise ValueError(f"unknown chaos topology {cfg.topo!r}")


def _enumerate_targets(cluster: Cluster) -> List[Tuple]:
    """Deterministic pool of failure targets for a topology."""
    topo = cluster.topo
    targets: List[Tuple] = []
    for info in topo.links:
        if isinstance(info.dev_a, Switch) and isinstance(info.dev_b, Switch):
            targets.append(("link", info.dev_a.name, info.port_a))
    for ip in topo.host_ips:
        targets.append(("host", ip))
    for sw in topo.switches:
        targets.append(("switch", sw.name))
        targets.append(("loss", sw.name))
    return targets


def generate_schedule(cfg: ChaosConfig, rng) -> Schedule:
    """Draw one randomized-but-reproducible trial schedule."""
    trial_seed = rng.randrange(1 << 31)
    cluster = _build_cluster(cfg, 0)   # shape-only; state is discarded
    hosts = cluster.topo.host_ips
    sources = tuple(rng.choice(hosts) for _ in range(cfg.messages))
    h = cfg.horizon
    # First message starts immediately; later ones spread over the same
    # window the incidents are drawn from, so failures land both mid-
    # transfer and in the idle gaps where the next post hits a dead
    # fabric.
    offsets = (0.0,) + tuple(sorted(
        round(rng.uniform(0.05, 0.55) * h, 9)
        for _ in range(cfg.messages - 1)))
    pool = _enumerate_targets(cluster)
    n = min(cfg.incidents, len(pool))
    incidents = []
    for raw in rng.sample(pool, n):
        if raw[0] == "loss":
            raw = raw + (round(rng.uniform(0.05, 0.3), 4),)
        at = round(rng.uniform(0.05, 0.55) * h, 9)
        repair_at = round(at + rng.uniform(0.05, 0.2) * h, 9)
        incidents.append(Incident(kind=raw[0], target=raw,
                                  at=at, repair_at=repair_at))
    incidents.sort(key=lambda i: (i.at, i.target))
    return Schedule(trial_seed=trial_seed, sources=sources,
                    offsets=offsets, incidents=tuple(incidents))


# ---------------------------------------------------------------------------
# one trial
# ---------------------------------------------------------------------------

def _install_incident(cluster: Cluster, injector: FailureInjector,
                      inc: Incident, start: float) -> None:
    sim = cluster.sim
    topo = cluster.topo
    by_name = {sw.name: sw for sw in topo.switches}
    kind, target = inc.kind, inc.target
    if kind == "link":
        sw, port = by_name[target[1]], target[2]
        sim.schedule(start + inc.at - sim.now, injector.fail_link, sw, port)
        sim.schedule(start + inc.repair_at - sim.now,
                     injector.repair_link, sw, port)
    elif kind == "host":
        ip = target[1]
        sw, port = topo.leaf_of(ip)
        sim.schedule(start + inc.at - sim.now, injector.fail_link, sw, port)
        sim.schedule(start + inc.repair_at - sim.now,
                     injector.repair_link, sw, port)
    elif kind == "switch":
        sw = by_name[target[1]]
        sim.schedule(start + inc.at - sim.now, injector.fail_switch, sw)
        sim.schedule(start + inc.repair_at - sim.now,
                     injector.repair_switch, sw)
    elif kind == "loss":
        sw, rate = by_name[target[1]], target[2]
        base = sw.config.loss_rate

        def set_rate(r: float) -> None:
            sw.config.loss_rate = r

        sim.schedule(start + inc.at - sim.now, set_rate, rate)
        sim.schedule(start + inc.repair_at - sim.now, set_rate, base)
    else:
        raise ValueError(f"unknown incident kind {kind!r}")


def run_trial(cfg: ChaosConfig, schedule: Schedule,
              trial_index: int = 0,
              coverage=None) -> Dict[str, object]:
    """Execute one trial; returns a JSON-able, deterministic record.

    ``coverage`` (a :class:`repro.check.CoverageMap`) arms a
    :class:`repro.check.CoverageCollector` for the trial, keyed by the
    config's deployment — the fuzzer and the stage-coverage regression
    tests use it; plain campaigns skip the instrumentation cost.
    """
    cluster = _build_cluster(cfg, schedule.trial_seed)
    sim = cluster.sim
    monitor = InvariantMonitor()
    monitor.attach_cluster(cluster)
    collector = None
    if coverage is not None:
        from repro.check import CoverageCollector
        collector = CoverageCollector(sim.bus, cfg.deployment, coverage)
    saved_hook = qp_state.psn_tx_hook
    try:
        members = list(cluster.host_ips)
        algo = CepheusBcast(cluster, members)
        algo.prepare()
        injector = FailureInjector(cluster.topo)
        start = sim.now
        for inc in schedule.incidents:
            _install_incident(cluster, injector, inc, start)

        if cfg.mutate == "psn-skip":
            # Corrupt the wire: every PSN at/after the middle of message
            # two is shifted up by one, leaving a hole the receivers can
            # never fill.  The monitor must flag `psn-contiguity`.
            skip_at = cfg.msg_packets + max(1, cfg.msg_packets // 2)
            qp_state.psn_tx_hook = (
                lambda qp, psn: psn + 1 if psn >= skip_at else psn)
        elif cfg.mutate is not None:
            raise ValueError(f"unknown mutation {cfg.mutate!r}")

        size = cfg.msg_packets * constants.MTU_BYTES
        deliveries: Dict[int, int] = {ip: 0 for ip in members}
        for ip in members:
            def on_msg(mid, sz, now, meta, _ip=ip) -> None:
                deliveries[_ip] += 1
            algo.qps[ip].on_message = on_msg

        state = {"completed": 0, "done_times": []}

        def post_next() -> None:
            i = state["completed"]
            src = schedule.sources[i]
            if algo.group.current_source != src:
                algo.set_source(src)

            def on_done(mid: int, now: float) -> None:
                state["completed"] += 1
                state["done_times"].append(now - start)
                i_next = state["completed"]
                if i_next < len(schedule.sources):
                    # Honor the schedule offset, with a short floor that
                    # lets residual feedback settle before the §III-E
                    # source switch (which needs idle QPs).
                    when = max(start + schedule.offsets[i_next],
                               sim.now + 1e-6)
                    sim.schedule(when - sim.now, post_next)

            algo.qps[src].post_send(size, on_complete=on_done)

        post_next()
        sim.run(until=start + cfg.horizon, max_events=20_000_000)

        # All incidents repair before the horizon, so the fabric must be
        # structurally whole again — sweep with connectivity required.
        monitor.check_mft_consistency(cluster.fabric, expect_connected=True,
                                      injector=injector)

        # Liveness: every message completed, and every member delivered
        # each message it was not itself the source of.
        expected = len(schedule.sources)
        per_member_ok = all(
            deliveries[ip] == sum(1 for s in schedule.sources if s != ip)
            for ip in members)
        delivered_all = state["completed"] == expected and per_member_ok
        violations = [v.to_dict() for v in monitor.violations]
        return {
            "trial": trial_index,
            "trial_seed": schedule.trial_seed,
            "schedule": schedule.to_dict(),
            "expected_messages": expected,
            "completed_messages": state["completed"],
            "done_times_us": [round(t * 1e6, 3) for t in state["done_times"]],
            "deliveries": {str(ip): deliveries[ip] for ip in members},
            "events": sim.events_run,
            "checked": monitor.events_checked,
            "active_failures_at_end": injector.active_failures,
            "violations": violations,
            "delivered_all": delivered_all,
            "failing": bool(violations) or not delivered_all,
        }
    finally:
        qp_state.psn_tx_hook = saved_hook
        if collector is not None:
            collector.add_violations(monitor.violations)
            collector.detach()
        monitor.detach()


def _fails(cfg: ChaosConfig, schedule: Schedule) -> bool:
    return bool(run_trial(cfg, schedule)["failing"])


# ---------------------------------------------------------------------------
# shrinking
# ---------------------------------------------------------------------------

def greedy_drop(items, rebuild, fails):
    """One greedy delta-debugging pass over ``items``.

    Tries removing each element in turn; ``rebuild(remaining)`` makes
    the candidate and ``fails(candidate)`` re-runs the trial.  Every
    removal that still fails is kept.  Shared by the chaos, churn and
    fuzz shrinkers — each probe is a full deterministic re-run, so the
    result is guaranteed to reproduce the failure.

    Returns ``(surviving_items, final_candidate)``; the candidate is
    ``rebuild(items)`` even when nothing could be dropped.
    """
    items = list(items)
    candidate = rebuild(items)
    i = 0
    while i < len(items):
        cand = rebuild(items[:i] + items[i + 1:])
        if fails(cand):
            items.pop(i)
            candidate = cand
        else:
            i += 1
    return items, candidate


def shrink_schedule(cfg: ChaosConfig, schedule: Schedule) -> Schedule:
    """Greedily minimize a failing schedule.

    Drops incidents one at a time, then trailing messages, keeping every
    reduction that still fails.
    """
    _, schedule = greedy_drop(
        schedule.incidents,
        lambda inc: replace(schedule, incidents=tuple(inc)),
        lambda cand: _fails(cfg, cand))
    sources = list(schedule.sources)
    while len(sources) > 1:
        cand = replace(schedule, sources=tuple(sources[:-1]))
        if _fails(cfg, cand):
            sources.pop()
            schedule = cand
        else:
            break
    return schedule


# ---------------------------------------------------------------------------
# campaigns + reproducers
# ---------------------------------------------------------------------------

def run_campaign(cfg: ChaosConfig, seed: int, trials: int,
                 shrink: bool = True) -> Dict[str, object]:
    """Run ``trials`` seeded trials; shrink and package any failures.

    The returned document is fully deterministic for a given
    (config, seed, trials): running it twice yields identical JSON.
    """
    import random

    records: List[Dict[str, object]] = []
    reproducers: List[Dict[str, object]] = []
    for t in range(trials):
        rng = random.Random((seed << 20) ^ (t * 0x9E3779B1 + 1))
        schedule = generate_schedule(cfg, rng)
        record = run_trial(cfg, schedule, trial_index=t)
        records.append(record)
        if record["failing"]:
            minimal = shrink_schedule(cfg, schedule) if shrink else schedule
            final = run_trial(cfg, minimal, trial_index=t)
            reproducers.append({
                "kind": REPRODUCER_KIND,
                "config": cfg.to_dict(),
                "schedule": minimal.to_dict(),
                "violations": final["violations"],
                "delivered_all": final["delivered_all"],
                "trial": t,
            })
    return {
        "config": cfg.to_dict(),
        "seed": seed,
        "trials": trials,
        "records": records,
        "failing_trials": [r["trial"] for r in records if r["failing"]],
        "reproducers": reproducers,
    }


def load_reproducer(path: str) -> Tuple[ChaosConfig, Schedule]:
    with open(path, "r", encoding="utf-8") as fh:
        doc = json.load(fh)
    if doc.get("kind") != REPRODUCER_KIND:
        raise ValueError(f"{path} is not a {REPRODUCER_KIND} document")
    return (ChaosConfig.from_dict(doc["config"]),
            Schedule.from_dict(doc["schedule"]))


def replay_reproducer(path: str) -> Dict[str, object]:
    """Re-execute a dumped reproducer; returns its (fresh) trial record."""
    cfg, schedule = load_reproducer(path)
    return run_trial(cfg, schedule)
