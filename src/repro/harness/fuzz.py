"""Coverage-guided protocol fuzzing with differential deployment oracles.

The chaos (:mod:`repro.harness.chaos`) and churn
(:mod:`repro.harness.churn`) campaigns sample failure schedules blindly
from a seed; this module closes the loop the way fuzzbench-style
fuzzers do — schedules that reach *new behavior* are kept in a corpus
and mutated further, so the campaign spends its budget on the
schedules that exercise the most protocol surface:

* a **FuzzSchedule** is the union of both harnesses' inputs: a chaos
  incident list (link cuts, switch black-holes, loss windows), a churn
  op list (JOINs of outsiders, voluntary LEAVEs), a per-message source
  plan (§III-E source switching) and message offsets — pure JSON-able
  data;
* a **trial** runs the *same* schedule once per accelerator deployment
  (inline, look-aside, source-routed) under the
  :class:`~repro.check.InvariantMonitor` and a
  :class:`~repro.check.CoverageCollector`; behavioral coverage is the
  union of stage-verdict, channel-transition, feedback-decision, drop
  and violation keys across the deployments;
* two **differential oracles** run per trial: (a) every *stable*
  receiver (an initial member never targeted by churn) must see a
  byte-identical ``(message, psn, payload)`` delivery sequence in all
  deployments — replication state may live inline in the switch, on a
  look-aside FPGA, or in Elmo-style source headers, but the wire
  contract cannot change; (b) per-message completion times must stay
  within tolerance of the analytic model — no faster than the wire
  serialization bound, and (for quiescent schedules) no slower than
  ``jct_slack`` times the §II JCT model, which catches silent
  retransmission storms that deliver correct bytes late;
* the **fuzz loop** replays the corpus first (deterministic coverage
  baseline), then spends the remaining budget mutating corpus entries
  (incident add/remove/retime/retarget, churn op splice/drop/burst,
  offset jitter, Poisson arrival replan, source retarget, reseed)
  and crossing pairs over
  (seed-respecting: the child keeps one parent's ``trial_seed``).
  Schedules reaching new coverage join the corpus; failing schedules
  are greedily shrunk with the shared
  :func:`~repro.harness.chaos.greedy_drop` minimizer into JSON
  reproducers that ``cepheus-repro fuzz replay`` re-executes.

Everything is deterministic: trials are pure functions of
(config, schedule), the corpus evolves identically for a given seed,
and coverage signatures are order-independent SHA-256 digests — two
``fuzz run`` invocations produce bit-for-bit identical documents, and
``--jobs`` parallel corpus replay yields the same signature as the
sequential one.
"""

from __future__ import annotations

import hashlib
import json
import os
import random
from dataclasses import asdict, dataclass, replace
from typing import Dict, List, Optional, Set, Tuple

from repro import constants
from repro.analytic.models import NetModel, cepheus_jct
from repro.apps.cluster import Cluster
from repro.check import CoverageCollector, CoverageMap, InvariantMonitor
from repro.collectives import CepheusBcast
from repro.core.accelerator import DEPLOYMENTS, AcceleratorConfig
from repro.errors import TopologyError
from repro.harness.chaos import (Incident, _enumerate_targets,
                                 _install_incident, greedy_drop)
from repro.harness.churn import ChurnEvent
from repro.net.failures import FailureInjector
from repro.net.switch import SwitchConfig
from repro.transport.roce import RoceConfig
from repro.transport.spray import (LaneHealthMonitor, LaneReassembler,
                                   LaneSprayer)

__all__ = [
    "FuzzConfig", "FuzzSchedule", "generate_fuzz_schedule",
    "mutate_schedule", "crossover_schedules", "run_fuzz_trial",
    "run_fuzz", "shrink_fuzz_schedule", "load_corpus", "save_corpus",
    "replay_corpus", "load_fuzz_reproducer", "replay_fuzz_reproducer",
]

CORPUS_KIND = "cepheus-fuzz-input"
REPRODUCER_KIND = "cepheus-fuzz-reproducer"

#: Mutation operator names, in the deterministic order the loop draws
#: from.  Kept module-level so the self-tests can assert the menu.
MUTATIONS: Tuple[str, ...] = (
    "incident-add", "incident-remove", "incident-retime",
    "incident-retarget", "churn-splice", "churn-drop",
    "offset-jitter", "source-retarget", "reseed",
    "publish-poisson", "churn-burst", "lane-kill",
)


@dataclass(frozen=True)
class FuzzConfig:
    """Parameters shared by every trial of one fuzzing session."""

    topo: str = "star"            # "star" | "fat_tree"
    hosts: int = 8                # star size / fat-tree hosts_limit
    k: int = 4                    # fat-tree arity
    initial_members: int = 6      # group size at registration
    messages: int = 3             # broadcasts per trial (sequential)
    msg_packets: int = 8          # packets per broadcast (size = n * MTU)
    incidents_max: int = 2        # cap on chaos incidents per schedule
    joins_max: int = 1            # cap on JOIN churn ops per schedule
    leaves_max: int = 1           # cap on LEAVE churn ops per schedule
    horizon: float = 0.04         # virtual seconds per trial
    loss_rate: float = 0.0        # baseline random loss on every switch
    rto: float = 200e-6
    retransmit_mode: str = "gbn"
    deployments: Tuple[str, ...] = DEPLOYMENTS
    jct_slack: float = 5.0        # throughput-oracle ceiling multiplier
    paths: int = 1                # MRC lanes per group (k-path spraying)
    lane_stall_timeout: float = 1e-3  # dead-lane declaration threshold

    def to_dict(self) -> Dict[str, object]:
        d = asdict(self)
        d["deployments"] = list(self.deployments)
        return d

    @classmethod
    def from_dict(cls, d: Dict[str, object]) -> "FuzzConfig":
        known = {f for f in cls.__dataclass_fields__}
        kw = {k: v for k, v in d.items() if k in known}
        if "deployments" in kw:
            kw["deployments"] = tuple(kw["deployments"])
        return cls(**kw)


@dataclass(frozen=True)
class FuzzSchedule:
    """One fuzzing input: chaos incidents + churn ops + source plan.

    The validity contract (enforced by :func:`_sanitize`, which every
    generator/mutator runs through):

    * sources are initial members; churn never targets a source or the
      leader (``hosts[0]``), so the §III-E rotation stays legal;
    * joiners are outsiders (hosts beyond the initial membership), one
      JOIN per ip; leavers are distinct non-source initial members;
    * incident repairs land by ``0.75 * horizon`` so recovery has tail
      room before the liveness check, and churn ops land by
      ``0.6 * horizon`` so their MRP deltas settle;
    * ``lane_kills`` (``(lane, at, repair_at)``; meaningful only when
      ``cfg.paths > 1``) sever one lane's *exclusive* uplink so the
      sprayer's failover re-spray path runs under fuzz; at most
      ``paths - 1`` lanes are ever killed, one per lane, and with
      k lanes all sources collapse onto the leader (§III-E source
      switching is single-lane).  The field is omitted from the
      canonical dict when empty, so every pre-lane corpus entry keeps
      its content hash.
    """

    trial_seed: int
    sources: Tuple[int, ...]
    offsets: Tuple[float, ...]
    incidents: Tuple[Incident, ...]
    churn: Tuple[ChurnEvent, ...]
    lane_kills: Tuple[Tuple[int, float, float], ...] = ()

    def to_dict(self) -> Dict[str, object]:
        d: Dict[str, object] = {
            "trial_seed": self.trial_seed,
            "sources": list(self.sources),
            "offsets": list(self.offsets),
            "incidents": [i.to_dict() for i in self.incidents],
            "churn": [e.to_dict() for e in self.churn]}
        if self.lane_kills:
            d["lane_kills"] = [list(k) for k in self.lane_kills]
        return d

    @classmethod
    def from_dict(cls, d: Dict[str, object]) -> "FuzzSchedule":
        return cls(trial_seed=d["trial_seed"],
                   sources=tuple(d["sources"]),
                   offsets=tuple(d["offsets"]),
                   incidents=tuple(Incident.from_dict(i)
                                   for i in d["incidents"]),
                   churn=tuple(ChurnEvent.from_dict(e)
                               for e in d.get("churn", [])),
                   lane_kills=tuple(
                       (int(l), float(a), float(r))
                       for l, a, r in d.get("lane_kills", [])))

    def content_hash(self) -> str:
        """Canonical digest; names corpus files and dedupes entries."""
        blob = json.dumps(self.to_dict(), sort_keys=True)
        return hashlib.sha256(blob.encode("utf-8")).hexdigest()


# ---------------------------------------------------------------------------
# cluster construction + schedule shape
# ---------------------------------------------------------------------------

def _build_cluster(cfg: FuzzConfig, trial_seed: int,
                   deployment: str) -> Cluster:
    sw_cfg = SwitchConfig(loss_rate=cfg.loss_rate, seed=trial_seed)
    roce = RoceConfig(rto=cfg.rto, retransmit_mode=cfg.retransmit_mode)
    accel = AcceleratorConfig(deployment=deployment)
    if cfg.topo == "star":
        return Cluster.testbed(cfg.hosts, switch_config=sw_cfg,
                               accel_config=accel, roce_config=roce)
    if cfg.topo == "fat_tree":
        return Cluster.fat_tree_cluster(cfg.k, hosts_limit=cfg.hosts,
                                        switch_config=sw_cfg,
                                        accel_config=accel,
                                        roce_config=roce)
    raise ValueError(f"unknown fuzz topology {cfg.topo!r}")


class _Shape:
    """Topology facts every generator/mutator needs (computed once)."""

    def __init__(self, cfg: FuzzConfig) -> None:
        cluster = _build_cluster(cfg, 0, cfg.deployments[0])
        hosts = list(cluster.topo.host_ips)
        if cfg.initial_members < 2 or cfg.initial_members > len(hosts):
            raise ValueError(f"initial_members={cfg.initial_members} out of "
                             f"range for {len(hosts)} hosts")
        self.hosts = hosts
        self.initial = hosts[:cfg.initial_members]
        self.leader = self.initial[0]
        self.outsiders = hosts[cfg.initial_members:]
        self.targets = _enumerate_targets(cluster)


def _draw_churn_time(cfg: FuzzConfig, offsets: Tuple[float, ...],
                     rng) -> float:
    """Half the draws land within a transfer-scale window of a message
    post, where a join/leave delta races the in-flight aggregate —
    uniform draws would almost never hit the microsecond-wide transfer
    inside a millisecond-scale horizon."""
    h = cfg.horizon
    if offsets and rng.random() < 0.5:
        base = rng.choice(offsets)
        window = (cfg.msg_packets * constants.MTU_BYTES * 8.0
                  / constants.LINK_BANDWIDTH_BPS) * 8.0
        at = base + rng.uniform(-window, window)
        return round(min(max(at, 0.0), 0.6 * h), 9)
    return round(rng.uniform(0.05, 0.5) * h, 9)


def _draw_incident(cfg: FuzzConfig, shape: _Shape, rng) -> Incident:
    raw = rng.choice(shape.targets)
    if raw[0] == "loss":
        raw = raw + (round(rng.uniform(0.05, 0.3), 4),)
    h = cfg.horizon
    at = round(rng.uniform(0.05, 0.55) * h, 9)
    repair_at = round(at + rng.uniform(0.05, 0.2) * h, 9)
    return Incident(kind=raw[0], target=raw, at=at, repair_at=repair_at)


def _draw_lane_kill(cfg: FuzzConfig, rng) -> Tuple[int, float, float]:
    h = cfg.horizon
    lane = rng.randrange(cfg.paths)
    at = round(rng.uniform(0.05, 0.4) * h, 9)
    repair_at = round(at + rng.uniform(0.1, 0.25) * h, 9)
    return (lane, at, repair_at)


def _sanitize(cfg: FuzzConfig, shape: _Shape,
              schedule: FuzzSchedule) -> FuzzSchedule:
    """Clamp a schedule onto the validity contract (see class doc)."""
    h = cfg.horizon
    if cfg.paths > 1:
        # Source switching is single-lane (§III-E); with k lanes the
        # leader sources every message.
        sources = tuple(shape.leader for _ in schedule.sources)
    else:
        sources = tuple(s if s in shape.initial else shape.leader
                        for s in schedule.sources)
    lane_kills: List[Tuple[int, float, float]] = []
    if cfg.paths > 1:
        killed = set()
        for lane, at, repair_at in schedule.lane_kills:
            lane = int(lane) % cfg.paths
            # Never kill every lane: the re-spray needs a survivor.
            if lane in killed or len(killed) >= cfg.paths - 1:
                continue
            killed.add(lane)
            at = min(max(at, 0.0), round(0.55 * h, 9))
            repair_at = min(max(repair_at, at + 1e-6), round(0.75 * h, 9))
            lane_kills.append((lane, round(at, 9), round(repair_at, 9)))
        lane_kills.sort()
    protected = set(sources) | {shape.leader}
    joined, left = set(), set()
    churn: List[ChurnEvent] = []
    for ev in schedule.churn:
        at = min(max(ev.at, 0.0), round(0.6 * h, 9))
        if ev.kind == "join":
            if ev.ip in shape.outsiders and ev.ip not in joined:
                joined.add(ev.ip)
                churn.append(replace(ev, at=at))
        elif ev.kind == "leave":
            if (ev.ip in shape.initial and ev.ip not in protected
                    and ev.ip not in left):
                left.add(ev.ip)
                churn.append(replace(ev, at=at))
        # crashes need the failure detector; the fuzzer stays on the
        # join/leave subset where liveness is unconditional.
    churn.sort(key=lambda e: (e.at, e.kind, e.ip))
    incidents = []
    targeted = set()
    for inc in schedule.incidents:
        if len(incidents) >= cfg.incidents_max:
            break
        # One incident per device: duplicate targets would interleave
        # fail/repair pairs on the same switch or link.
        ident = (inc.kind, inc.target[1])
        if ident in targeted:
            continue
        targeted.add(ident)
        at = min(max(inc.at, 0.0), round(0.55 * h, 9))
        repair_at = min(max(inc.repair_at, at + 1e-6), round(0.75 * h, 9))
        incidents.append(replace(inc, at=at, repair_at=repair_at))
    incidents.sort(key=lambda i: (i.at, i.target))
    offsets = (0.0,) + tuple(sorted(
        round(min(max(o, 0.0), 0.6 * h), 9)
        for o in schedule.offsets[1:len(sources)]))
    offsets = offsets + (0.0,) * (len(sources) - len(offsets))
    return replace(schedule, sources=sources, offsets=offsets,
                   incidents=tuple(incidents), churn=tuple(churn),
                   lane_kills=tuple(lane_kills))


def generate_fuzz_schedule(cfg: FuzzConfig, rng,
                           shape: Optional[_Shape] = None) -> FuzzSchedule:
    """Draw one randomized-but-reproducible fuzzing input."""
    shape = shape or _Shape(cfg)
    trial_seed = rng.randrange(1 << 31)
    h = cfg.horizon
    sources = tuple(rng.choice(shape.initial) for _ in range(cfg.messages))
    offsets = (0.0,) + tuple(sorted(
        round(rng.uniform(0.05, 0.55) * h, 9)
        for _ in range(cfg.messages - 1)))
    incidents = tuple(_draw_incident(cfg, shape, rng)
                      for _ in range(rng.randint(0, cfg.incidents_max)))
    churn: List[ChurnEvent] = []
    for ip in rng.sample(shape.outsiders,
                         min(rng.randint(0, cfg.joins_max),
                             len(shape.outsiders))):
        churn.append(ChurnEvent("join", ip,
                                _draw_churn_time(cfg, offsets, rng)))
    candidates = [ip for ip in shape.initial[1:] if ip not in sources]
    for ip in rng.sample(candidates,
                         min(rng.randint(0, cfg.leaves_max),
                             len(candidates))):
        churn.append(ChurnEvent("leave", ip,
                                _draw_churn_time(cfg, offsets, rng)))
    # Guarded so a paths=1 config consumes exactly the pre-lane rng
    # draw sequence (the committed corpus depends on it).
    lane_kills: Tuple[Tuple[int, float, float], ...] = ()
    if cfg.paths > 1:
        lane_kills = tuple(_draw_lane_kill(cfg, rng)
                           for _ in range(rng.randint(0, 1)))
    return _sanitize(cfg, shape, FuzzSchedule(
        trial_seed=trial_seed, sources=sources, offsets=offsets,
        incidents=incidents, churn=tuple(churn), lane_kills=lane_kills))


# ---------------------------------------------------------------------------
# mutation + crossover
# ---------------------------------------------------------------------------

def mutate_schedule(cfg: FuzzConfig, schedule: FuzzSchedule, rng,
                    shape: Optional[_Shape] = None) -> FuzzSchedule:
    """Apply one random mutation operator; always returns a valid input."""
    shape = shape or _Shape(cfg)
    op = rng.choice(MUTATIONS)
    h = cfg.horizon
    incidents = list(schedule.incidents)
    churn = list(schedule.churn)
    if op == "incident-add":
        incidents.append(_draw_incident(cfg, shape, rng))
    elif op == "incident-remove" and incidents:
        incidents.pop(rng.randrange(len(incidents)))
    elif op == "incident-retime" and incidents:
        i = rng.randrange(len(incidents))
        inc = incidents[i]
        at = round(inc.at + rng.uniform(-0.15, 0.15) * h, 9)
        incidents[i] = replace(
            inc, at=at,
            repair_at=round(at + rng.uniform(0.05, 0.2) * h, 9))
    elif op == "incident-retarget" and incidents:
        i = rng.randrange(len(incidents))
        fresh = _draw_incident(cfg, shape, rng)
        incidents[i] = replace(fresh, at=incidents[i].at,
                               repair_at=incidents[i].repair_at)
    elif op == "churn-splice":
        kind = rng.choice(("join", "leave"))
        pool = (shape.outsiders if kind == "join"
                else [ip for ip in shape.initial[1:]
                      if ip not in schedule.sources])
        if pool:
            churn.append(ChurnEvent(
                kind, rng.choice(pool),
                _draw_churn_time(cfg, schedule.offsets, rng)))
    elif op == "churn-drop" and churn:
        churn.pop(rng.randrange(len(churn)))
    elif op == "offset-jitter" and len(schedule.offsets) > 1:
        offs = list(schedule.offsets)
        i = rng.randrange(1, len(offs))
        offs[i] = round(offs[i] + rng.uniform(-0.1, 0.1) * h, 9)
        return _sanitize(cfg, shape, replace(schedule, offsets=tuple(offs)))
    elif op == "source-retarget":
        srcs = list(schedule.sources)
        srcs[rng.randrange(len(srcs))] = rng.choice(shape.initial)
        return _sanitize(cfg, shape, replace(schedule, sources=tuple(srcs)))
    elif op == "reseed":
        return _sanitize(cfg, shape, replace(
            schedule, trial_seed=rng.randrange(1 << 31)))
    elif op == "publish-poisson" and len(schedule.offsets) > 1:
        # Open-loop arrival replan (the broker-fabric workload shape,
        # :mod:`repro.harness.openloop`): the uniform message spread
        # becomes exponential inter-arrivals, so mutated inputs explore
        # Poisson bursts — back-to-back posts whose aggregates overlap.
        mean_gap = (0.6 * h) / len(schedule.offsets)
        offs, t = [0.0], 0.0
        for _ in range(len(schedule.offsets) - 1):
            t += rng.expovariate(1.0 / mean_gap)
            offs.append(round(t, 9))
        return _sanitize(cfg, shape, replace(schedule, offsets=tuple(offs)))
    elif op == "churn-burst":
        # Hot-topic churn clustering: one join+leave pair inside a
        # coalescing-window-scale gap, so the two MRP deltas race each
        # other (and any delta batching) instead of landing settled.
        taken = {e.ip for e in churn}
        joins = [ip for ip in shape.outsiders if ip not in taken]
        leaves = [ip for ip in shape.initial[1:]
                  if ip not in schedule.sources and ip not in taken]
        if joins and leaves:
            at = _draw_churn_time(cfg, schedule.offsets, rng)
            gap = round(rng.uniform(1e-6, 5e-4), 9)
            churn.append(ChurnEvent("join", rng.choice(joins), at))
            churn.append(ChurnEvent("leave", rng.choice(leaves),
                                    round(at + gap, 9)))
    elif op == "lane-kill" and cfg.paths > 1:
        # Add a kill for an unkilled lane, or retime an existing one;
        # a paths=1 config makes this operator a sanitized no-op.
        kills = list(schedule.lane_kills)
        if kills and rng.random() < 0.5:
            i = rng.randrange(len(kills))
            lane = kills[i][0]
            _, at, repair_at = _draw_lane_kill(cfg, rng)
            kills[i] = (lane, at, repair_at)
        else:
            kills.append(_draw_lane_kill(cfg, rng))
        return _sanitize(cfg, shape, replace(
            schedule, incidents=tuple(incidents), churn=tuple(churn),
            lane_kills=tuple(kills)))
    return _sanitize(cfg, shape, replace(
        schedule, incidents=tuple(incidents), churn=tuple(churn)))


def crossover_schedules(cfg: FuzzConfig, a: FuzzSchedule, b: FuzzSchedule,
                        rng, shape: Optional[_Shape] = None) -> FuzzSchedule:
    """Seed-respecting crossover: the child keeps parent ``a``'s
    ``trial_seed`` and source/offset plan, and mixes the failure and
    churn material of both parents."""
    shape = shape or _Shape(cfg)
    pool = list(a.incidents) + list(b.incidents)
    n = min(len(pool), cfg.incidents_max)
    incidents = tuple(rng.sample(pool, rng.randint(0, n)) if pool else ())
    churn = tuple(b.churn if rng.random() < 0.5 else a.churn)
    return _sanitize(cfg, shape, replace(
        a, incidents=incidents, churn=churn))


# ---------------------------------------------------------------------------
# one trial: three deployments + differential oracles
# ---------------------------------------------------------------------------

def _install_lane_kills(cluster: Cluster, injector: FailureInjector,
                        schedule: FuzzSchedule, leader: int,
                        initial: List[int], cfg: FuzzConfig, start: float,
                        coverage: CoverageMap, deployment: str) -> None:
    """Schedule each lane kill on that lane's *exclusive* uplink.

    Star topologies (and fat-trees narrower than the lane count) have
    no lane-exclusive link to cut — the kill is skipped, but the
    outcome still lands in coverage so the loop can tell the two
    schedules apart.
    """
    sim = cluster.sim
    try:
        uplinks = cluster.topo.lane_uplinks(leader, initial, cfg.paths)
    except TopologyError:
        coverage.add(f"lanekill/{deployment}/no-exclusive-uplink")
        return

    def repair(sw, port) -> None:
        try:
            injector.repair_link(sw, port)
        except TopologyError:
            pass  # a chaos incident repairing the same link won the race

    for lane, at, repair_at in schedule.lane_kills:
        sw, port = uplinks[lane]
        sim.schedule(start + at - sim.now, injector.fail_link, sw, port)
        sim.schedule(start + repair_at - sim.now, repair, sw, port)
    coverage.add(f"lanekill/{deployment}/installed")


def _run_one_deployment(cfg: FuzzConfig, schedule: FuzzSchedule,
                        deployment: str,
                        coverage: CoverageMap) -> Dict[str, object]:
    """Execute the schedule under one deployment; feeds ``coverage``."""
    cluster = _build_cluster(cfg, schedule.trial_seed, deployment)
    sim = cluster.sim
    fabric = cluster.fabric
    monitor = InvariantMonitor()
    monitor.attach_cluster(cluster)
    collector = CoverageCollector(sim.bus, deployment, coverage)
    try:
        hosts = list(cluster.host_ips)
        initial = hosts[:cfg.initial_members]
        leader = initial[0]
        algo = CepheusBcast(cluster, initial, leader, paths=cfg.paths,
                            lane_stall_timeout=cfg.lane_stall_timeout)
        algo.prepare()
        mm = fabric.membership(algo.group)
        injector = FailureInjector(cluster.topo)
        start = sim.now
        for inc in schedule.incidents:
            _install_incident(cluster, injector, inc, start)
        if cfg.paths > 1 and schedule.lane_kills:
            _install_lane_kills(cluster, injector, schedule, leader,
                                initial, cfg, start, coverage, deployment)
        if cfg.paths > 1:
            # Spray delivery rides qp.on_message; the reassemblers also
            # publish "lane_complete" for the reassembly-gap invariant.
            for ip in initial:
                if ip == leader:
                    continue
                reasm = LaneReassembler(ip, lambda sid, total, now: None,
                                        bus=sim.bus)
                reasm.attach([algo.group.lane_members[lane][ip]
                              for lane in range(cfg.paths)])

        def do_join(ip: int) -> None:
            qp = cluster.ctx(ip).create_qp()
            if cfg.paths > 1:
                lane_qps = [qp] + [cluster.ctx(ip).create_qp()
                                   for _ in range(cfg.paths - 1)]
                reasm = LaneReassembler(ip, lambda sid, total, now: None,
                                        bus=sim.bus)
                reasm.attach(lane_qps)
                mm.join(ip, qp, lane_qps=lane_qps)
            else:
                mm.join(ip, qp)

        def do_leave(ip: int) -> None:
            if ip in algo.group.members and ip not in mm._inflight:
                mm.leave(ip)

        actions = {"join": do_join, "leave": do_leave}
        for ev in schedule.churn:
            sim.schedule(start + ev.at - sim.now, actions[ev.kind], ev.ip)

        # Per-receiver delivery log for the payload oracle.  msg_id is a
        # process-global counter, so deployments see different raw ids
        # for the same message — normalize to the schedule ordinal.
        # With k lanes the log is keyed ``(ip, lane)`` and normalized by
        # spray id instead (sub-message msg_ids differ per lane).
        mid_order: Dict[int, int] = {}
        sid_order: Dict[int, int] = {}
        seq: Dict[object, List[Tuple[int, int, int]]] = {}

        def on_deliver(qp, pkt) -> None:
            meta = pkt.meta
            if isinstance(meta, tuple) and meta and meta[0] == "lane-spray":
                seq.setdefault((qp.nic.ip, meta[2]), []).append(
                    (sid_order.get(meta[1], -1), pkt.psn, pkt.payload))
            else:
                seq.setdefault(qp.nic.ip, []).append(
                    (mid_order.get(pkt.msg_id, -1), pkt.psn, pkt.payload))

        sim.bus.subscribe("deliver", on_deliver)

        size = cfg.msg_packets * constants.MTU_BYTES
        state = {"completed": 0, "durations": []}
        dead_carry: Set[int] = set()

        def post_next() -> None:
            i = state["completed"]
            src = schedule.sources[i]
            if algo.group.current_source != src:
                algo.set_source(src)
            posted_at = sim.now

            def on_done(mid: int, now: float) -> None:
                state["completed"] += 1
                state["durations"].append(now - posted_at)
                i_next = state["completed"]
                if i_next < len(schedule.sources):
                    when = max(start + schedule.offsets[i_next],
                               sim.now + 1e-6)
                    sim.schedule(when - sim.now, post_next)

            if cfg.paths > 1:
                lane_qps = [algo.group.lane_members[lane][src]
                            for lane in range(cfg.paths)]
                sprayer = LaneSprayer(sim, lane_qps, bus=sim.bus)
                # A lane declared dead stays dead for the trial — the
                # failover contract is per-spray, not a repair detector.
                sprayer.dead |= dead_carry
                health = LaneHealthMonitor(
                    sim, sprayer, interval=cfg.rto,
                    stall_timeout=cfg.lane_stall_timeout,
                    on_dead=lambda lane, _now: dead_carry.add(lane))

                def spray_done(sid: int, now: float) -> None:
                    health.stop()
                    on_done(sid, now)

                sprayer.on_complete = spray_done
                sid = sprayer.spray(size)
                sid_order[sid] = i
                health.start()
            else:
                mid = algo.qps[src].post_send(size, on_complete=on_done)
                mid_order[mid] = i

        post_next()
        sim.run(until=start + cfg.horizon, max_events=20_000_000)
        sim.bus.unsubscribe("deliver", on_deliver)

        # All incidents repair and all churn deltas land before the
        # horizon: the fabric must be structurally whole again.
        monitor.check_mft_consistency(fabric, expect_connected=True,
                                      injector=injector)
        violations = [v.to_dict() for v in monitor.violations]
        collector.add_violations(violations)
        for op, _ip, _why in mm.delta_failures:
            coverage.add(f"mmdelta/{deployment}/{op}/failed")
        if cfg.paths > 1:
            source_idle = all(
                algo.group.lane_members[lane][s].send_idle
                for s in set(schedule.sources)
                for lane in range(cfg.paths))
        else:
            source_idle = all(algo.qps[s].send_idle
                              for s in set(schedule.sources))
        return {
            "deployment": deployment,
            "completed": state["completed"],
            "durations": list(state["durations"]),
            "seq": seq,
            "source_idle": source_idle,
            "delta_failures": [list(f) for f in mm.delta_failures],
            "violations": violations,
            "events": sim.events_run,
        }
    finally:
        collector.detach()
        monitor.detach()


def _net_model(cfg: FuzzConfig) -> Tuple[NetModel, int]:
    """Analytic model + MDT depth matching the fuzz topologies."""
    if cfg.topo == "star":
        return NetModel(hops=1), 1
    return NetModel(hops=5), 4


def run_fuzz_trial(cfg: FuzzConfig, schedule: FuzzSchedule,
                   trial_index: int = 0) -> Dict[str, object]:
    """Run the schedule under every deployment and apply both oracles.

    Returns a JSON-able, fully deterministic record: per-deployment
    summaries, the unified coverage key list + signature, and a
    ``fail_reasons`` list (empty when the trial passes).
    """
    coverage = CoverageMap()
    runs = [_run_one_deployment(cfg, schedule, dep, coverage)
            for dep in cfg.deployments]
    reasons: List[str] = []
    expected = len(schedule.sources)
    for run in runs:
        dep = run["deployment"]
        for v in run["violations"]:
            reasons.append(f"invariant:{dep}:{v['invariant']}")
        if run["completed"] < expected or not run["source_idle"]:
            reasons.append(f"liveness:{dep}:{run['completed']}/{expected}")
        # A failed membership delta is only a bug on a healthy fabric;
        # with incidents in play, a join/leave racing a severed link is
        # *supposed* to exhaust its retries (the outcome still lands in
        # coverage as an mmdelta/ key).
        if run["delta_failures"] and not schedule.incidents:
            reasons.append(f"delta-failure:{dep}")

    # Oracle (a): byte-identical delivery sequences across deployments
    # for every stable receiver.  Only meaningful when every deployment
    # finished — an incomplete run already failed liveness above, and
    # its truncated sequences would double-report the same root cause.
    # Lane kills exempt the trial: failover re-spray timing (and hence
    # the post-kill lane assignment of every byte) is legitimately
    # deployment-dependent; the reassembly invariant still guards
    # exactly-once coverage inside each deployment.
    def _ip_of(key) -> int:
        return key[0] if isinstance(key, tuple) else key

    churned = {e.ip for e in schedule.churn}
    hosts_in_group = ({_ip_of(k) for k in runs[0]["seq"]} if runs else ())
    stable = sorted(ip for ip in hosts_in_group if ip not in churned)
    stable_set = set(stable)
    size = cfg.msg_packets * constants.MTU_BYTES
    all_complete = all(r["completed"] == expected and r["source_idle"]
                       for r in runs)
    if all_complete and len(runs) > 1 and not schedule.lane_kills:
        base = runs[0]
        for run in runs[1:]:
            keys = set(base["seq"]) | set(run["seq"])
            for key in sorted(keys):
                if _ip_of(key) not in stable_set:
                    continue
                if run["seq"].get(key, []) != base["seq"].get(key, []):
                    reasons.append(
                        f"diff-payload:{base['deployment']}"
                        f"vs{run['deployment']}:{key}")
        owed = {ip: sum(cfg.msg_packets
                        for s in schedule.sources if s != ip)
                for ip in stable}
        for run in runs:
            got_by_ip: Dict[int, int] = {}
            for key, deliveries in run["seq"].items():
                ip = _ip_of(key)
                got_by_ip[ip] = got_by_ip.get(ip, 0) + len(deliveries)
            for ip in stable:
                got = got_by_ip.get(ip, 0)
                if got != owed[ip]:
                    reasons.append(
                        f"delivery-count:{run['deployment']}:{ip}:"
                        f"{got}/{owed[ip]}")

    # Oracle (b): throughput within tolerance of the analytic model.
    # Floor always (nothing beats wire serialization); ceiling only for
    # quiescent schedules where the §II JCT model is the contract.
    net, depth = _net_model(cfg)
    floor = net.wire(size)
    quiescent = (not schedule.incidents and not schedule.churn
                 and not schedule.lane_kills and cfg.loss_rate == 0.0)
    ceiling = cfg.jct_slack * cepheus_jct(size, cfg.initial_members,
                                          net, mdt_depth=depth)
    for run in runs:
        for i, dur in enumerate(run["durations"]):
            if dur < floor:
                reasons.append(
                    f"throughput-floor:{run['deployment']}:msg{i}")
            if quiescent and dur > ceiling:
                reasons.append(
                    f"throughput-ceiling:{run['deployment']}:msg{i}")

    return {
        "trial": trial_index,
        "schedule": schedule.to_dict(),
        "schedule_hash": schedule.content_hash(),
        "coverage": coverage.to_list(),
        "coverage_signature": coverage.signature(),
        "deployments": [{
            "deployment": r["deployment"],
            "completed": r["completed"],
            "durations_us": [round(d * 1e6, 3) for d in r["durations"]],
            "source_idle": r["source_idle"],
            "violations": r["violations"],
            "events": r["events"],
        } for r in runs],
        "stable_receivers": stable,
        "fail_reasons": sorted(reasons),
        "failing": bool(reasons),
    }


def _fails(cfg: FuzzConfig, schedule: FuzzSchedule) -> bool:
    return bool(run_fuzz_trial(cfg, schedule)["failing"])


def shrink_fuzz_schedule(cfg: FuzzConfig,
                         schedule: FuzzSchedule) -> FuzzSchedule:
    """Greedily minimize a failing input with the shared shrinker:
    drop incidents, then churn ops, then lane kills, then trailing
    messages."""
    _, schedule = greedy_drop(
        schedule.incidents,
        lambda inc: replace(schedule, incidents=tuple(inc)),
        lambda cand: _fails(cfg, cand))
    _, schedule = greedy_drop(
        schedule.churn,
        lambda ch: replace(schedule, churn=tuple(ch)),
        lambda cand: _fails(cfg, cand))
    _, schedule = greedy_drop(
        schedule.lane_kills,
        lambda lk: replace(schedule, lane_kills=tuple(lk)),
        lambda cand: _fails(cfg, cand))
    while len(schedule.sources) > 1:
        cand = replace(schedule,
                       sources=schedule.sources[:-1],
                       offsets=schedule.offsets[:-1])
        if _fails(cfg, cand):
            schedule = cand
        else:
            break
    return schedule


# ---------------------------------------------------------------------------
# the fuzz loop
# ---------------------------------------------------------------------------

def run_fuzz(cfg: FuzzConfig, seed: int, budget_trials: int,
             corpus: Optional[List[FuzzSchedule]] = None,
             shrink: bool = True) -> Dict[str, object]:
    """Coverage-guided fuzzing session; deterministic for (cfg, seed,
    budget, corpus).

    The first trials replay the given corpus (its coverage is the
    baseline); the rest of the budget mutates corpus entries biased
    toward recent coverage finds, crosses pairs over, or draws fresh
    schedules.  The returned document carries the evolved corpus so
    callers can persist it with :func:`save_corpus`.
    """
    shape = _Shape(cfg)
    corpus = list(corpus or [])
    seen = {s.content_hash() for s in corpus}
    global_cov = CoverageMap()
    records: List[Dict[str, object]] = []
    reproducers: List[Dict[str, object]] = []
    new_entries: List[FuzzSchedule] = []
    for t in range(budget_trials):
        rng = random.Random((seed << 20) ^ (t * 0x9E3779B1 + 1))
        if t < len(corpus):
            schedule = corpus[t]
            origin = "corpus"
        elif corpus and rng.random() < 0.6:
            parent = rng.choice(corpus)
            schedule = mutate_schedule(cfg, parent, rng, shape)
            origin = "mutate"
        elif len(corpus) >= 2 and rng.random() < 0.5:
            a, b = rng.sample(corpus, 2)
            schedule = crossover_schedules(cfg, a, b, rng, shape)
            origin = "crossover"
        else:
            schedule = generate_fuzz_schedule(cfg, rng, shape)
            origin = "generate"
        record = run_fuzz_trial(cfg, schedule, trial_index=t)
        fresh = global_cov.add_all(record["coverage"])
        h = schedule.content_hash()
        admitted = bool(fresh) and h not in seen
        if admitted:
            corpus.append(schedule)
            new_entries.append(schedule)
            seen.add(h)
        records.append({
            "trial": t,
            "origin": origin,
            "schedule_hash": h,
            "new_coverage": len(fresh),
            "admitted": admitted,
            "coverage_signature": record["coverage_signature"],
            "fail_reasons": record["fail_reasons"],
            "failing": record["failing"],
        })
        if record["failing"]:
            minimal = (shrink_fuzz_schedule(cfg, schedule)
                       if shrink else schedule)
            final = run_fuzz_trial(cfg, minimal, trial_index=t)
            reproducers.append({
                "kind": REPRODUCER_KIND,
                "config": cfg.to_dict(),
                "schedule": minimal.to_dict(),
                "fail_reasons": final["fail_reasons"],
                "trial": t,
            })
    return {
        "config": cfg.to_dict(),
        "seed": seed,
        "budget_trials": budget_trials,
        "records": records,
        "coverage_keys": len(global_cov),
        "coverage_signature": global_cov.signature(),
        "corpus_size": len(corpus),
        "corpus_hashes": sorted(s.content_hash() for s in corpus),
        "new_corpus_entries": [s.to_dict() for s in new_entries],
        "failing_trials": [r["trial"] for r in records if r["failing"]],
        "reproducers": reproducers,
        "_corpus": corpus,   # stripped by the CLI before serialization
    }


# ---------------------------------------------------------------------------
# corpus persistence + replay
# ---------------------------------------------------------------------------

def save_corpus(dirpath: str, cfg: FuzzConfig,
                schedules: List[FuzzSchedule]) -> List[str]:
    """Write each schedule as ``input-<hash12>.json``; skips entries
    already on disk.  Returns the paths written."""
    os.makedirs(dirpath, exist_ok=True)
    written = []
    for s in schedules:
        path = os.path.join(dirpath, f"input-{s.content_hash()[:12]}.json")
        if os.path.exists(path):
            continue
        doc = {"kind": CORPUS_KIND, "config": cfg.to_dict(),
               "schedule": s.to_dict()}
        with open(path, "w", encoding="utf-8") as fh:
            fh.write(json.dumps(doc, indent=2, sort_keys=True) + "\n")
        written.append(path)
    return written


def load_corpus(dirpath: str) -> List[Tuple[FuzzConfig, FuzzSchedule]]:
    """Load every corpus input, sorted by filename for determinism."""
    entries = []
    if not os.path.isdir(dirpath):
        return entries
    for name in sorted(os.listdir(dirpath)):
        if not name.endswith(".json"):
            continue
        with open(os.path.join(dirpath, name), "r", encoding="utf-8") as fh:
            doc = json.load(fh)
        if doc.get("kind") != CORPUS_KIND:
            continue
        entries.append((FuzzConfig.from_dict(doc["config"]),
                        FuzzSchedule.from_dict(doc["schedule"])))
    return entries


def _replay_entry(doc: Dict[str, object]) -> Dict[str, object]:
    """Worker for parallel corpus replay (module-level: picklable)."""
    cfg = FuzzConfig.from_dict(doc["config"])
    schedule = FuzzSchedule.from_dict(doc["schedule"])
    record = run_fuzz_trial(cfg, schedule)
    return {"schedule_hash": record["schedule_hash"],
            "coverage": record["coverage"],
            "coverage_signature": record["coverage_signature"],
            "fail_reasons": record["fail_reasons"],
            "failing": record["failing"]}


def replay_corpus(dirpath: str, jobs: int = 1) -> Dict[str, object]:
    """Re-run every corpus input; the unified coverage signature is
    identical whatever ``jobs`` is (set union is order-independent)."""
    entries = load_corpus(dirpath)
    docs = [{"config": c.to_dict(), "schedule": s.to_dict()}
            for c, s in entries]
    if jobs > 1 and len(docs) > 1:
        from concurrent.futures import ProcessPoolExecutor
        with ProcessPoolExecutor(max_workers=jobs) as pool:
            results = list(pool.map(_replay_entry, docs))
    else:
        results = [_replay_entry(d) for d in docs]
    unified = CoverageMap()
    for r in results:
        unified.add_all(r["coverage"])
    return {
        "corpus_dir": dirpath,
        "inputs": len(results),
        "records": [{k: v for k, v in r.items() if k != "coverage"}
                    for r in results],
        "coverage_keys": len(unified),
        "coverage_signature": unified.signature(),
        "failing": sorted(r["schedule_hash"] for r in results
                          if r["failing"]),
    }


def load_fuzz_reproducer(path: str) -> Tuple[FuzzConfig, FuzzSchedule]:
    with open(path, "r", encoding="utf-8") as fh:
        doc = json.load(fh)
    if doc.get("kind") != REPRODUCER_KIND:
        raise ValueError(f"{path} is not a {REPRODUCER_KIND} document")
    return (FuzzConfig.from_dict(doc["config"]),
            FuzzSchedule.from_dict(doc["schedule"]))


def replay_fuzz_reproducer(path: str) -> Dict[str, object]:
    """Re-execute a dumped reproducer; returns its (fresh) trial record."""
    cfg, schedule = load_fuzz_reproducer(path)
    return run_fuzz_trial(cfg, schedule)
