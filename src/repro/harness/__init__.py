"""Experiment harness: one entry per paper table/figure + ablations,
the parallel cached experiment engine (`repro.harness.engine`), the
machine-readable bench documents + regression gate
(`repro.harness.bench`), plus the deterministic chaos campaign runner
(`repro.harness.chaos`)."""

from repro.harness.bench import compare, headline_metrics, load_document
from repro.harness.cache import ResultCache, code_fingerprint
from repro.harness.chaos import (ChaosConfig, Incident, Schedule,
                                 generate_schedule, load_reproducer,
                                 replay_reproducer, run_campaign, run_trial,
                                 shrink_schedule)
from repro.harness.engine import EngineRun, run_engine
from repro.harness.openloop import (ChurnOp, CrossOp, OpenLoopSchedule,
                                    PublishOp, ZipfSampler,
                                    generate_churn_stream,
                                    generate_cross_stream,
                                    generate_publish_stream, poisson_offsets,
                                    schedule_ops)
from repro.harness.report import (ExperimentResult, ascii_chart, fmt_size,
                                  fmt_time, format_table, ratio)
from repro.harness.runner import ALL_EXPERIMENTS, run_experiments
from repro.harness.sweeps import BcastSweep
from repro.harness.workloads import (DNN_UPDATES, MIXED, QUERY,
                                     STORAGE_REPLICATION, MulticastWorkload,
                                     PoissonArrivals, SizeDistribution)

__all__ = ["ExperimentResult", "fmt_size", "fmt_time", "format_table",
           "ratio", "ascii_chart", "ALL_EXPERIMENTS", "run_experiments",
           "BcastSweep",
           "EngineRun", "run_engine", "ResultCache", "code_fingerprint",
           "headline_metrics", "compare", "load_document",
           "ChaosConfig", "Incident", "Schedule", "generate_schedule",
           "run_trial", "run_campaign", "shrink_schedule",
           "load_reproducer", "replay_reproducer",
           "PublishOp", "ChurnOp", "CrossOp", "OpenLoopSchedule",
           "ZipfSampler", "poisson_offsets", "generate_publish_stream",
           "generate_churn_stream", "generate_cross_stream", "schedule_ops",
           "SizeDistribution", "PoissonArrivals", "MulticastWorkload",
           "QUERY", "STORAGE_REPLICATION", "DNN_UPDATES", "MIXED"]
