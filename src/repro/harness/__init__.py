"""Experiment harness: one entry per paper table/figure + ablations,
plus the deterministic chaos campaign runner (`repro.harness.chaos`)."""

from repro.harness.chaos import (ChaosConfig, Incident, Schedule,
                                 generate_schedule, load_reproducer,
                                 replay_reproducer, run_campaign, run_trial,
                                 shrink_schedule)
from repro.harness.report import (ExperimentResult, ascii_chart, fmt_size,
                                  fmt_time, format_table, ratio)
from repro.harness.runner import ALL_EXPERIMENTS, run_experiments
from repro.harness.sweeps import BcastSweep
from repro.harness.workloads import (DNN_UPDATES, MIXED, QUERY,
                                     STORAGE_REPLICATION, MulticastWorkload,
                                     PoissonArrivals, SizeDistribution)

__all__ = ["ExperimentResult", "fmt_size", "fmt_time", "format_table",
           "ratio", "ascii_chart", "ALL_EXPERIMENTS", "run_experiments",
           "BcastSweep",
           "ChaosConfig", "Incident", "Schedule", "generate_schedule",
           "run_trial", "run_campaign", "shrink_schedule",
           "load_reproducer", "replay_reproducer",
           "SizeDistribution", "PoissonArrivals", "MulticastWorkload",
           "QUERY", "STORAGE_REPLICATION", "DNN_UPDATES", "MIXED"]
