"""Run the whole evaluation and emit paper-style text.

``python -m repro.harness.runner``            quick mode (minutes)
``python -m repro.harness.runner --full``     paper-scale parameters
``python -m repro.harness.runner --only fig8,fig12``
``python -m repro.harness.runner --jobs 4``   parallel fan-out
``python -m repro.harness.runner --jobs 4 --emit BENCH_quick.json``

Experiments are pure functions of (id, quick); ``--jobs`` fans them
out across a process pool and ``--cache-dir`` (default
``.bench_cache``; ``--no-cache`` disables) memoizes results keyed by
(id, config hash, code fingerprint) so unchanged experiments are
skipped on re-runs.  ``--emit`` writes the consolidated machine-
readable BENCH document (see ``repro.harness.bench``).
"""

from __future__ import annotations

import argparse
import json
import sys
from typing import Callable, Dict, List, Optional

from repro.harness import ablations, experiments
from repro.harness.report import ExperimentResult

__all__ = ["ALL_EXPERIMENTS", "run_experiments", "main"]

ALL_EXPERIMENTS: Dict[str, Callable[[bool], ExperimentResult]] = {
    "fig7b": experiments.fig7b_memory,
    "fig8": experiments.fig8_bcast_small,
    "fig9": experiments.fig9_bcast_large,
    "rdmc": experiments.rdmc_comparison,
    "tab1": experiments.tab1_storage_iops,
    "fig10": experiments.fig10_storage_latency,
    "fig11": experiments.fig11_hpl,
    "fig12": experiments.fig12_large_scale,
    "fig13": experiments.fig13_loss,
    "fig14": experiments.fig14_fairness,
    "churn": experiments.churn_membership,
    "srmc_scaling": experiments.srmc_scaling,
    "brokerfabric": experiments.brokerfabric_slo,
    "mrc_fanin": experiments.mrc_fanin,
    "mrc_loss": experiments.mrc_loss,
    "abl-ack": ablations.ablation_ack_trigger,
    "abl-nack": ablations.ablation_nack_rule,
    "abl-cnp": ablations.ablation_cnp_filter,
    "abl-retx": ablations.ablation_retransmit_filter,
    "abl-deploy": ablations.ablation_deployment,
    "abl-mem": ablations.ablation_state_memory,
}


def run_experiments(names: List[str], quick: bool = True, stream=None,
                    jobs: int = 1,
                    cache_dir: Optional[str] = None) -> List[ExperimentResult]:
    """Run the named experiments; prints each table as it completes.

    ``jobs > 1`` fans independent experiments across a process pool;
    ``cache_dir`` enables the content-addressed result cache.  Both
    paths return byte-identical results (``ExperimentResult.to_json``)
    in request order.
    """
    from repro.harness.cache import ResultCache
    from repro.harness.engine import run_engine

    cache = ResultCache(cache_dir) if cache_dir else None
    run = run_engine(names, quick=quick, jobs=jobs, cache=cache,
                     stream=stream)
    return run.results


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description="Cepheus evaluation harness")
    parser.add_argument("--full", action="store_true",
                        help="paper-scale parameters (slow)")
    parser.add_argument("--only", default="",
                        help="comma-separated experiment ids")
    parser.add_argument("--jobs", type=int, default=1,
                        help="experiment worker processes (default 1)")
    parser.add_argument("--emit", default="",
                        help="write the consolidated BENCH JSON here")
    parser.add_argument("--cache-dir", default="",
                        help="result-cache directory (default .bench_cache)")
    parser.add_argument("--no-cache", action="store_true",
                        help="disable the result cache")
    args = parser.parse_args(argv)
    names = ([n.strip() for n in args.only.split(",") if n.strip()]
             if args.only else list(ALL_EXPERIMENTS))
    unknown = [n for n in names if n not in ALL_EXPERIMENTS]
    if unknown:
        parser.error(f"unknown experiments: {unknown}; "
                     f"have {sorted(ALL_EXPERIMENTS)}")
    if args.jobs < 1:
        parser.error("--jobs must be >= 1")

    from repro.harness.cache import DEFAULT_CACHE_DIR, ResultCache
    from repro.harness.engine import run_engine

    cache = None
    if not args.no_cache:
        cache = ResultCache(args.cache_dir or DEFAULT_CACHE_DIR)
    run = run_engine(names, quick=not args.full, jobs=args.jobs,
                     cache=cache, stream=sys.stdout)
    print(f"{len(names)} experiment(s) in {run.total_wall_s:.1f}s "
          f"({run.executed} executed, {run.cache_hits} cached, "
          f"jobs={args.jobs})", file=sys.stderr)
    if args.emit:
        with open(args.emit, "w", encoding="utf-8") as fh:
            json.dump(run.document(), fh, indent=2, sort_keys=True)
            fh.write("\n")
        print(f"bench document written to {args.emit}", file=sys.stderr)
    return 0


if __name__ == "__main__":  # pragma: no cover
    raise SystemExit(main())
