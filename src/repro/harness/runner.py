"""Run the whole evaluation and emit paper-style text.

``python -m repro.harness.runner``            quick mode (minutes)
``python -m repro.harness.runner --full``     paper-scale parameters
``python -m repro.harness.runner --only fig8,fig12``
"""

from __future__ import annotations

import argparse
import sys
import time
from typing import Callable, Dict, List

from repro.harness import ablations, experiments
from repro.harness.report import ExperimentResult, format_table

__all__ = ["ALL_EXPERIMENTS", "run_experiments", "main"]

ALL_EXPERIMENTS: Dict[str, Callable[[bool], ExperimentResult]] = {
    "fig7b": experiments.fig7b_memory,
    "fig8": experiments.fig8_bcast_small,
    "fig9": experiments.fig9_bcast_large,
    "rdmc": experiments.rdmc_comparison,
    "tab1": experiments.tab1_storage_iops,
    "fig10": experiments.fig10_storage_latency,
    "fig11": experiments.fig11_hpl,
    "fig12": experiments.fig12_large_scale,
    "fig13": experiments.fig13_loss,
    "fig14": experiments.fig14_fairness,
    "abl-ack": ablations.ablation_ack_trigger,
    "abl-nack": ablations.ablation_nack_rule,
    "abl-cnp": ablations.ablation_cnp_filter,
    "abl-retx": ablations.ablation_retransmit_filter,
    "abl-deploy": ablations.ablation_deployment,
    "abl-mem": ablations.ablation_state_memory,
}


def run_experiments(names: List[str], quick: bool = True,
                    stream=None) -> List[ExperimentResult]:
    """Run the named experiments; prints each table as it completes."""
    out = stream or sys.stdout
    results = []
    for name in names:
        fn = ALL_EXPERIMENTS[name]
        t0 = time.time()
        res = fn(quick)
        res.notes = (res.notes + " | " if res.notes else "") + \
            f"wall {time.time() - t0:.1f}s ({'quick' if quick else 'full'})"
        results.append(res)
        print(format_table(res), file=out)
        print(file=out)
    return results


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description="Cepheus evaluation harness")
    parser.add_argument("--full", action="store_true",
                        help="paper-scale parameters (slow)")
    parser.add_argument("--only", default="",
                        help="comma-separated experiment ids")
    args = parser.parse_args(argv)
    names = ([n.strip() for n in args.only.split(",") if n.strip()]
             if args.only else list(ALL_EXPERIMENTS))
    unknown = [n for n in names if n not in ALL_EXPERIMENTS]
    if unknown:
        parser.error(f"unknown experiments: {unknown}; "
                     f"have {sorted(ALL_EXPERIMENTS)}")
    run_experiments(names, quick=not args.full)
    return 0


if __name__ == "__main__":  # pragma: no cover
    raise SystemExit(main())
