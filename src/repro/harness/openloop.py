"""Seeded open-loop load generation over virtual time.

Closed-loop drivers (post, wait, post again) measure a system that is
never more than one request deep — they cannot see queueing tails,
because the load generator politely stops arriving whenever the system
slows down.  The broker-fabric scenario needs the opposite: an
**open-loop** generator whose arrival process is fixed up front and
does not react to completions, the standard discipline for tail-latency
measurement (Poisson arrivals make the run an M/G/k observation).

This module is the load-shaping half, independent of any scenario:

* :func:`poisson_offsets` — cumulative-exponential arrival times drawn
  from a seeded RNG (virtual seconds, deterministic per seed);
* :class:`ZipfSampler` — Zipf(alpha) topic popularity, the canonical
  pub/sub skew (a few hot topics carry most publishes);
* op records (:class:`PublishOp`, :class:`ChurnOp`, :class:`CrossOp`)
  and :class:`OpenLoopSchedule`, a frozen JSON-able bundle of the three
  streams — the same pure (config, schedule) -> record discipline the
  churn and chaos harnesses use, so failing runs replay bit-for-bit;
* stream generators composing the above, and :func:`schedule_ops`,
  which arms one simulator event per op at its absolute virtual time —
  arrivals fire regardless of how far behind the system is.

Churn ops are *toggles* (subscribe if out, unsubscribe if in): the
generator stays trivially valid under any interleaving, and the
executing scenario applies its own floors (leader, minimum group size,
one in-flight delta per member) deterministically.
"""

from __future__ import annotations

import bisect
import math
from dataclasses import dataclass
from typing import Callable, Dict, List, Sequence, Tuple

__all__ = [
    "PublishOp", "ChurnOp", "CrossOp", "OpenLoopSchedule",
    "ZipfSampler", "poisson_offsets", "generate_publish_stream",
    "generate_churn_stream", "generate_cross_stream", "schedule_ops",
]


# ---------------------------------------------------------------------------
# op records
# ---------------------------------------------------------------------------

@dataclass(frozen=True)
class PublishOp:
    """One publish arrival: message of ``size`` bytes on topic index
    ``topic`` at virtual offset ``at``."""

    at: float
    topic: int
    size: int

    def to_dict(self) -> Dict[str, object]:
        return {"at": self.at, "topic": self.topic, "size": self.size}

    @classmethod
    def from_dict(cls, d: Dict[str, object]) -> "PublishOp":
        return cls(at=d["at"], topic=d["topic"], size=d["size"])


@dataclass(frozen=True)
class ChurnOp:
    """One subscription toggle for host ``ip`` on topic index ``topic``."""

    at: float
    topic: int
    ip: int

    def to_dict(self) -> Dict[str, object]:
        return {"at": self.at, "topic": self.topic, "ip": self.ip}

    @classmethod
    def from_dict(cls, d: Dict[str, object]) -> "ChurnOp":
        return cls(at=d["at"], topic=d["topic"], ip=d["ip"])


@dataclass(frozen=True)
class CrossOp:
    """One background unicast transfer ``src -> dst`` of ``size`` bytes."""

    at: float
    src: int
    dst: int
    size: int

    def to_dict(self) -> Dict[str, object]:
        return {"at": self.at, "src": self.src, "dst": self.dst,
                "size": self.size}

    @classmethod
    def from_dict(cls, d: Dict[str, object]) -> "CrossOp":
        return cls(at=d["at"], src=d["src"], dst=d["dst"], size=d["size"])


@dataclass(frozen=True)
class OpenLoopSchedule:
    """The three pre-drawn op streams of one open-loop trial."""

    trial_seed: int
    publishes: Tuple[PublishOp, ...]
    churn: Tuple[ChurnOp, ...]
    cross: Tuple[CrossOp, ...]

    def to_dict(self) -> Dict[str, object]:
        return {
            "trial_seed": self.trial_seed,
            "publishes": [p.to_dict() for p in self.publishes],
            "churn": [c.to_dict() for c in self.churn],
            "cross": [x.to_dict() for x in self.cross],
        }

    @classmethod
    def from_dict(cls, d: Dict[str, object]) -> "OpenLoopSchedule":
        return cls(
            trial_seed=d["trial_seed"],
            publishes=tuple(PublishOp.from_dict(p) for p in d["publishes"]),
            churn=tuple(ChurnOp.from_dict(c) for c in d["churn"]),
            cross=tuple(CrossOp.from_dict(x) for x in d["cross"]),
        )


# ---------------------------------------------------------------------------
# distributions
# ---------------------------------------------------------------------------

class ZipfSampler:
    """Zipf(alpha) over ``n`` ranks via inverse-CDF lookup.

    Rank 0 is the hottest item.  The CDF is precomputed once; each
    :meth:`sample` costs one uniform draw + one bisect, so a schedule
    with 10^6 publishes stays cheap to generate.  ``alpha == 0`` is the
    uniform distribution.
    """

    def __init__(self, n: int, alpha: float) -> None:
        if n < 1:
            raise ValueError(f"ZipfSampler needs n >= 1, got {n}")
        weights = [1.0 / (rank + 1) ** alpha for rank in range(n)]
        total = sum(weights)
        self._cdf: List[float] = []
        acc = 0.0
        for w in weights:
            acc += w / total
            self._cdf.append(acc)
        self._cdf[-1] = 1.0   # guard against float drift

    def sample(self, rng) -> int:
        return bisect.bisect_left(self._cdf, rng.random())


def poisson_offsets(rng, rate: float, horizon: float) -> List[float]:
    """Arrival offsets of a Poisson process of ``rate``/s over
    ``[0, horizon)``: cumulative exponential inter-arrival times.

    Rounded to nanoseconds so schedules survive a JSON round-trip
    bit-for-bit (the reproducer contract).
    """
    if rate <= 0.0:
        return []
    out: List[float] = []
    t = 0.0
    while True:
        t += -math.log(1.0 - rng.random()) / rate
        if t >= horizon:
            return out
        out.append(round(t, 9))


# ---------------------------------------------------------------------------
# stream generators
# ---------------------------------------------------------------------------

def generate_publish_stream(rng, *, rate: float, horizon: float,
                            n_topics: int, zipf_alpha: float,
                            size: int) -> Tuple[PublishOp, ...]:
    """Poisson publish arrivals; each lands on a Zipf-popular topic."""
    zipf = ZipfSampler(n_topics, zipf_alpha)
    return tuple(PublishOp(at=at, topic=zipf.sample(rng), size=size)
                 for at in poisson_offsets(rng, rate, horizon))


def generate_churn_stream(rng, *, rate: float, horizon: float,
                          n_topics: int, hosts: Sequence[int],
                          zipf_alpha: float = 0.0) -> Tuple[ChurnOp, ...]:
    """Poisson subscription toggles: hosts uniform, topics Zipf-popular
    (``zipf_alpha=0`` is uniform).  Hot topics churn hardest — the same
    skew publishes follow, and the regime where per-window MRP delta
    coalescing has batches to fold.

    Continuous churn: the stream never drains, hosts flap in and out of
    topics for the whole horizon.
    """
    hosts = list(hosts)
    if not hosts:
        return ()
    zipf = ZipfSampler(n_topics, zipf_alpha)
    return tuple(
        ChurnOp(at=at, topic=zipf.sample(rng), ip=rng.choice(hosts))
        for at in poisson_offsets(rng, rate, horizon))


def generate_cross_stream(rng, *, rate: float, horizon: float,
                          hosts: Sequence[int],
                          size: int) -> Tuple[CrossOp, ...]:
    """Background unicast cross-traffic between distinct host pairs."""
    hosts = list(hosts)
    if len(hosts) < 2:
        return ()
    out: List[CrossOp] = []
    for at in poisson_offsets(rng, rate, horizon):
        src, dst = rng.sample(hosts, 2)
        out.append(CrossOp(at=at, src=src, dst=dst, size=size))
    return tuple(out)


# ---------------------------------------------------------------------------
# the open-loop driver
# ---------------------------------------------------------------------------

def schedule_ops(sim, start: float, ops: Sequence, fn: Callable) -> int:
    """Arm ``fn(op)`` at ``start + op.at`` for every op (one simulator
    event each) — the open-loop contract: arrival times are fixed before
    the run and never wait on completions.  Returns the op count."""
    for op in ops:
        sim.schedule(start + op.at - sim.now, fn, op)
    return len(ops)
