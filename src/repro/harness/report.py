"""Paper-style reporting: aligned tables, ratios, size labels, and
machine-readable exports (CSV/JSON) for downstream analysis."""

from __future__ import annotations

import csv
import io
import json
import math
from dataclasses import dataclass, field
from typing import Any, Dict, List, Optional, Sequence

__all__ = ["ExperimentResult", "format_table", "fmt_size", "fmt_time",
           "ratio", "ascii_chart"]


def _encode_cell(value: Any) -> Any:
    """Map non-finite floats to portable JSON markers.

    ``json.dumps`` would happily emit ``NaN``/``Infinity``, but those
    are not valid JSON and break strict parsers (jq, browsers, the
    bench-compare gate).  A tagged object survives any spec-compliant
    round trip instead.
    """
    if isinstance(value, float) and not math.isfinite(value):
        return {"__nonfinite__": repr(value)}  # 'nan', 'inf', '-inf'
    return value


def _decode_cell(value: Any) -> Any:
    if isinstance(value, dict) and set(value) == {"__nonfinite__"}:
        return float(value["__nonfinite__"])
    return value


@dataclass
class ExperimentResult:
    """One reproduced table/figure: rows + provenance.

    ``wall_time_s`` / ``mode`` / ``cached`` are *run provenance* set by
    the harness runner, not part of the result's identity: two runs of
    the same experiment differ only in these fields, so they are
    excluded from :meth:`to_json` (which must be byte-stable for the
    cache and the serial-vs-parallel determinism guarantee) and
    reported separately in the BENCH_*.json documents.
    """

    exp_id: str
    title: str
    headers: List[str]
    rows: List[Dict[str, Any]] = field(default_factory=list)
    paper_claim: str = ""
    notes: str = ""
    mode: str = ""              # "quick" | "full" | "" (unset)
    wall_time_s: float = 0.0    # volatile, excluded from to_json
    cached: bool = False        # satisfied from the result cache

    def column(self, key: str) -> List[Any]:
        return [row.get(key) for row in self.rows]

    def to_text(self) -> str:
        return format_table(self)

    def to_csv(self) -> str:
        """Headers + rows as CSV (missing cells are empty)."""
        buf = io.StringIO()
        writer = csv.DictWriter(buf, fieldnames=self.headers,
                                extrasaction="ignore")
        writer.writeheader()
        for row in self.rows:
            writer.writerow({h: row.get(h, "") for h in self.headers})
        return buf.getvalue()

    def to_dict(self) -> Dict[str, Any]:
        """The canonical (deterministic, JSON-native) payload."""
        return {
            "exp_id": self.exp_id,
            "title": self.title,
            "paper_claim": self.paper_claim,
            "notes": self.notes,
            "mode": self.mode,
            "headers": list(self.headers),
            "rows": [{k: _encode_cell(v) for k, v in row.items()}
                     for row in self.rows],
        }

    def to_json(self) -> str:
        """Full result (metadata + rows) as a JSON document.

        The encoding is canonical — fixed key order, sorted keys,
        strict (RFC 8259) floats — so byte-equality of two documents
        is equivalent to equality of the results.  Non-finite floats
        are tagged (see :func:`_encode_cell`); everything else must be
        JSON-native, guaranteeing ``from_json(to_json(r)) == r``.
        """
        return json.dumps(self.to_dict(), indent=2, sort_keys=True,
                          allow_nan=False, ensure_ascii=False)

    @classmethod
    def from_dict(cls, doc: Dict[str, Any]) -> "ExperimentResult":
        return cls(
            exp_id=doc["exp_id"],
            title=doc["title"],
            headers=list(doc["headers"]),
            rows=[{k: _decode_cell(v) for k, v in row.items()}
                  for row in doc["rows"]],
            paper_claim=doc.get("paper_claim", ""),
            notes=doc.get("notes", ""),
            mode=doc.get("mode", ""),
        )

    @classmethod
    def from_json(cls, text: str) -> "ExperimentResult":
        """Inverse of :meth:`to_json` (wall time/cached are run-local
        provenance and intentionally reset)."""
        return cls.from_dict(json.loads(text))


def fmt_size(nbytes: int) -> str:
    """64 -> '64B', 1048576 -> '1MB'."""
    if nbytes >= 1 << 30 and nbytes % (1 << 30) == 0:
        return f"{nbytes >> 30}GB"
    if nbytes >= 1 << 20 and nbytes % (1 << 20) == 0:
        return f"{nbytes >> 20}MB"
    if nbytes >= 1 << 10 and nbytes % (1 << 10) == 0:
        return f"{nbytes >> 10}KB"
    return f"{nbytes}B"


def fmt_time(seconds: float) -> str:
    """Scale-aware duration formatting."""
    if seconds >= 1.0:
        return f"{seconds:.3f}s"
    if seconds >= 1e-3:
        return f"{seconds * 1e3:.2f}ms"
    return f"{seconds * 1e6:.1f}us"


def ratio(baseline: float, improved: float) -> float:
    """How many times faster ``improved`` is than ``baseline``."""
    if improved <= 0:
        raise ValueError("improved time must be positive")
    return baseline / improved


def _cell(value: Any) -> str:
    if isinstance(value, float):
        return f"{value:.4g}"
    return str(value)


def ascii_chart(series: Dict[str, List[float]], *, width: int = 60,
                height: int = 12, unit: str = "") -> str:
    """Dependency-free line chart for time series (one char per sample,
    one letter per series), used to render Fig. 14-style dynamics in a
    terminal.

    >>> print(ascii_chart({"f1": [0, 5, 10]}, width=3, height=3, unit="G"))
    ... # doctest: +SKIP
    """
    if not series or all(not v for v in series.values()):
        return "(empty series)"
    peak = max(max(v) for v in series.values() if v)
    if peak <= 0:
        peak = 1.0
    n = max(len(v) for v in series.values())
    step = max(1, n // width)
    cols = range(0, n, step)
    grid = [[" "] * len(list(cols)) for _ in range(height)]
    labels = {}
    for idx, (name, values) in enumerate(sorted(series.items())):
        mark = name[-1] if name and name[-1].isalnum() else None
        if not mark or mark in labels:
            mark = next(c for c in "123456789ABCDEFGHIJKLMNOPQRSTUVWXYZ"
                        if c not in labels)
        labels[mark] = name
        for ci, start in enumerate(cols):
            window = values[start:start + step]
            if not window:
                continue
            level = sum(window) / len(window)
            row = height - 1 - min(height - 1,
                                   int(level / peak * (height - 1) + 0.5))
            if grid[row][ci] == " ":
                grid[row][ci] = mark
            else:
                grid[row][ci] = "*"  # overlap
    lines = []
    for r, row in enumerate(grid):
        level = peak * (height - 1 - r) / (height - 1)
        lines.append(f"{level:8.1f}{unit} |" + "".join(row))
    lines.append(" " * 10 + "+" + "-" * len(list(cols)))
    legend = "  ".join(f"{m}={name}" for m, name in sorted(labels.items()))
    lines.append(" " * 11 + legend + "  (*=overlap)")
    return "\n".join(lines)


def format_table(result: ExperimentResult) -> str:
    """Render an ExperimentResult as an aligned text table."""
    headers = result.headers
    body = [[_cell(row.get(h, "")) for h in headers] for row in result.rows]
    widths = [
        max(len(h), *(len(r[i]) for r in body)) if body else len(h)
        for i, h in enumerate(headers)
    ]
    lines = [f"== {result.exp_id}: {result.title} =="]
    if result.paper_claim:
        lines.append(f"paper: {result.paper_claim}")
    lines.append("  ".join(h.ljust(w) for h, w in zip(headers, widths)))
    lines.append("  ".join("-" * w for w in widths))
    for r in body:
        lines.append("  ".join(c.rjust(w) for c, w in zip(r, widths)))
    if result.notes:
        lines.append(f"note: {result.notes}")
    if result.mode or result.wall_time_s or result.cached:
        prov = []
        if result.wall_time_s:
            prov.append(f"wall {result.wall_time_s:.1f}s")
        if result.mode:
            prov.append(f"({result.mode})")
        if result.cached:
            prov.append("[cached]")
        lines.append("run: " + " ".join(prov))
    return "\n".join(lines)
