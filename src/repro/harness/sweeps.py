"""Generic parameter sweeps for custom studies.

The per-figure experiments hard-code the paper's parameters; this
module provides the free-form counterpart: a cartesian sweep over
message sizes, group sizes and broadcast engines, each point on a fresh
cluster, collected into an :class:`~repro.harness.report.ExperimentResult`.

Example
-------
>>> from repro.harness.sweeps import BcastSweep
>>> sweep = BcastSweep(sizes=[4096, 1 << 20],
...                    group_sizes=[4],
...                    algorithms=["cepheus", "chain"])
>>> res = sweep.run()                        # doctest: +SKIP
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, Dict, List, Optional

from repro.apps.cluster import Cluster
from repro.apps.mpi import ALGORITHMS
from repro.errors import ConfigurationError
from repro.harness.report import ExperimentResult, fmt_size

__all__ = ["BcastSweep"]


@dataclass
class BcastSweep:
    """Cartesian sweep: sizes x group sizes x algorithms."""

    sizes: List[int]
    group_sizes: List[int]
    algorithms: List[str]
    cluster_factory: Optional[Callable[[int], Cluster]] = None
    title: str = "custom broadcast sweep"

    def __post_init__(self) -> None:
        unknown = [a for a in self.algorithms if a not in ALGORITHMS]
        if unknown:
            raise ConfigurationError(
                f"unknown algorithms {unknown}; have {sorted(ALGORITHMS)}")
        if not self.sizes or not self.group_sizes:
            raise ConfigurationError("sweep axes must be non-empty")

    def _make_cluster(self, n: int) -> Cluster:
        if self.cluster_factory is not None:
            return self.cluster_factory(n)
        return Cluster.testbed(n)

    def run(self) -> ExperimentResult:
        """Execute every point; each (group size, algorithm) pair reuses
        one cluster across sizes (connection setup is untimed anyway)."""
        res = ExperimentResult(
            exp_id="sweep", title=self.title,
            headers=["group", "size"] + [f"{a}_jct" for a in self.algorithms],
        )
        for n in self.group_sizes:
            engines = {}
            for alg in self.algorithms:
                cl = self._make_cluster(n)
                members = cl.host_ips[:n]
                if len(members) < n:
                    raise ConfigurationError(
                        f"cluster provides {len(members)} hosts < group {n}")
                engines[alg] = ALGORITHMS[alg](cl, members)
            for size in self.sizes:
                row: Dict[str, object] = {"group": n, "size": fmt_size(size)}
                for alg in self.algorithms:
                    row[f"{alg}_jct"] = engines[alg].run(size).jct
                res.rows.append(row)
        return res
