"""Generic parameter sweeps for custom studies.

The per-figure experiments hard-code the paper's parameters; this
module provides the free-form counterpart: a cartesian sweep over
message sizes, group sizes and broadcast engines, each point on a fresh
cluster, collected into an :class:`~repro.harness.report.ExperimentResult`.

Sweep points are independent, so ``run(jobs=N)`` fans the
(group size, algorithm) units across a process pool — each unit keeps
the serial path's engine-reuse-across-sizes semantics, so parallel and
serial sweeps produce identical rows.

Example
-------
>>> from repro.harness.sweeps import BcastSweep
>>> sweep = BcastSweep(sizes=[4096, 1 << 20],
...                    group_sizes=[4],
...                    algorithms=["cepheus", "chain"])
>>> res = sweep.run()                        # doctest: +SKIP
>>> res = sweep.run(jobs=4)                  # doctest: +SKIP
"""

from __future__ import annotations

from concurrent.futures import ProcessPoolExecutor
from dataclasses import dataclass, field
from typing import Callable, Dict, List, Optional, Tuple

from repro.apps.cluster import Cluster
from repro.apps.mpi import ALGORITHMS
from repro.errors import ConfigurationError
from repro.harness.report import ExperimentResult, fmt_size

__all__ = ["BcastSweep"]


def _run_unit(payload: Tuple[int, str, List[int],
                             Optional[Callable[[int], Cluster]]]) -> List[float]:
    """One (group size, algorithm) unit: a fresh cluster, then every
    size in order on the same engine (module-level so it pickles for
    the process pool; a custom ``cluster_factory`` must be picklable
    too when ``jobs > 1``)."""
    n, alg, sizes, factory = payload
    cl = factory(n) if factory is not None else Cluster.testbed(n)
    members = cl.host_ips[:n]
    if len(members) < n:
        raise ConfigurationError(
            f"cluster provides {len(members)} hosts < group {n}")
    engine = ALGORITHMS[alg](cl, members)
    return [engine.run(size).jct for size in sizes]


@dataclass
class BcastSweep:
    """Cartesian sweep: sizes x group sizes x algorithms."""

    sizes: List[int]
    group_sizes: List[int]
    algorithms: List[str]
    cluster_factory: Optional[Callable[[int], Cluster]] = None
    title: str = "custom broadcast sweep"

    def __post_init__(self) -> None:
        unknown = [a for a in self.algorithms if a not in ALGORITHMS]
        if unknown:
            raise ConfigurationError(
                f"unknown algorithms {unknown}; have {sorted(ALGORITHMS)}")
        if not self.sizes or not self.group_sizes:
            raise ConfigurationError("sweep axes must be non-empty")

    def run(self, jobs: int = 1) -> ExperimentResult:
        """Execute every point; each (group size, algorithm) pair reuses
        one cluster across sizes (connection setup is untimed anyway).
        ``jobs > 1`` fans the pairs across a process pool."""
        res = ExperimentResult(
            exp_id="sweep", title=self.title,
            headers=["group", "size"] + [f"{a}_jct" for a in self.algorithms],
        )
        units = [(n, alg) for n in self.group_sizes
                 for alg in self.algorithms]
        payloads = [(n, alg, self.sizes, self.cluster_factory)
                    for n, alg in units]
        if jobs > 1:
            with ProcessPoolExecutor(max_workers=jobs) as pool:
                jcts = list(pool.map(_run_unit, payloads))
        else:
            jcts = [_run_unit(p) for p in payloads]
        by_unit = dict(zip(units, jcts))
        for n in self.group_sizes:
            for i, size in enumerate(self.sizes):
                row: Dict[str, object] = {"group": n, "size": fmt_size(size)}
                for alg in self.algorithms:
                    row[f"{alg}_jct"] = by_unit[(n, alg)][i]
                res.rows.append(row)
        return res
