"""Synthetic workload generation.

The per-figure experiments replay the paper's fixed parameter points;
this module generates *workloads* — randomized but reproducible message
schedules — for distribution-level studies (FCT percentiles under a
realistic size mix, sustained-load behaviour):

* :class:`SizeDistribution` — empirical CDF sampler with deterministic
  seeding, plus presets for the size mixes the paper's motivation names
  (§II-A "both large objects and small query messages"):
  ``QUERY`` (RPC-scale), ``STORAGE_REPLICATION`` (4 KB-1 MB IOs),
  ``DNN_UPDATES`` (multi-MB tensors), and ``MIXED`` (the §II-A blend).
* :class:`PoissonArrivals` — open-loop arrival process at a target load.
* :class:`MulticastWorkload` — composes both into a replayable schedule
  and drives any broadcast engine over it, collecting per-message FCTs.
"""

from __future__ import annotations

import bisect
import random
from dataclasses import dataclass
from typing import List, Optional, Sequence, Tuple

from repro.errors import ConfigurationError

__all__ = ["SizeDistribution", "PoissonArrivals", "MulticastWorkload",
           "QUERY", "STORAGE_REPLICATION", "DNN_UPDATES", "MIXED"]


class SizeDistribution:
    """Empirical CDF over message sizes.

    Defined by (size, cumulative-probability) knots; samples are drawn
    by inverse transform with log-linear interpolation between knots,
    which matches how flow-size CDFs are usually published.
    """

    def __init__(self, knots: Sequence[Tuple[int, float]], name: str = "") -> None:
        if len(knots) < 2:
            raise ConfigurationError("a CDF needs at least 2 knots")
        sizes = [s for s, _ in knots]
        probs = [p for _, p in knots]
        if sizes != sorted(sizes) or probs != sorted(probs):
            raise ConfigurationError("CDF knots must be non-decreasing")
        if probs[-1] != 1.0:
            raise ConfigurationError("CDF must end at probability 1.0")
        if any(s <= 0 for s in sizes):
            raise ConfigurationError("sizes must be positive")
        self.name = name
        self._sizes = sizes
        self._probs = probs

    def sample(self, rng: random.Random) -> int:
        u = rng.random()
        i = bisect.bisect_left(self._probs, u)
        if i == 0:
            return self._sizes[0]
        lo_p, hi_p = self._probs[i - 1], self._probs[i]
        lo_s, hi_s = self._sizes[i - 1], self._sizes[i]
        frac = (u - lo_p) / (hi_p - lo_p) if hi_p > lo_p else 0.0
        # log-linear interpolation between knots
        import math
        size = math.exp(math.log(lo_s) + frac * (math.log(hi_s) -
                                                 math.log(lo_s)))
        return max(1, int(size))

    def mean(self, samples: int = 20000, seed: int = 1) -> float:
        rng = random.Random(seed)
        return sum(self.sample(rng) for _ in range(samples)) / samples


#: RPC/query-scale messages (64 B - 4 KB, heavily small).
QUERY = SizeDistribution(
    [(64, 0.0), (256, 0.5), (1024, 0.9), (4096, 1.0)], name="query")

#: Storage replication IOs (4 KB typical, up to 1 MB).
STORAGE_REPLICATION = SizeDistribution(
    [(4096, 0.0), (8192, 0.55), (65536, 0.85), (1 << 20, 1.0)],
    name="storage")

#: DNN gradient/update tensors (hundreds of KB to tens of MB).
DNN_UPDATES = SizeDistribution(
    [(256 << 10, 0.0), (1 << 20, 0.3), (8 << 20, 0.8), (64 << 20, 1.0)],
    name="dnn")

#: The §II-A blend: mostly queries, a storage body, a bulky tail.
MIXED = SizeDistribution(
    [(64, 0.0), (1024, 0.45), (8192, 0.7), (256 << 10, 0.9),
     (8 << 20, 1.0)], name="mixed")


class PoissonArrivals:
    """Open-loop Poisson arrival times at a target mean rate."""

    def __init__(self, rate_per_s: float) -> None:
        if rate_per_s <= 0:
            raise ConfigurationError("arrival rate must be positive")
        self.rate = rate_per_s

    def times(self, n: int, rng: random.Random, start: float = 0.0) -> List[float]:
        t = start
        out = []
        for _ in range(n):
            t += rng.expovariate(self.rate)
            out.append(t)
        return out


@dataclass
class WorkloadResult:
    """Per-message FCTs for one replayed workload."""

    engine: str
    fcts: List[Tuple[int, float]]  # (size, fct)

    def percentile(self, p: float) -> float:
        ordered = sorted(f for _, f in self.fcts)
        if not ordered:
            return 0.0
        idx = min(len(ordered) - 1, int(p / 100 * len(ordered)))
        return ordered[idx]

    def small_large_split(self, threshold: int = 64 << 10):
        small = [f for s, f in self.fcts if s < threshold]
        large = [f for s, f in self.fcts if s >= threshold]
        return small, large


class MulticastWorkload:
    """A replayable (seeded) schedule of multicast messages.

    ``run(engine_factory)`` replays the schedule *closed-loop per
    message* (each broadcast completes before the next is posted at its
    scheduled-or-later time), which keeps engines comparable without
    modelling application pipelining.
    """

    def __init__(self, sizes: SizeDistribution, arrivals: PoissonArrivals,
                 n_messages: int, seed: int = 0) -> None:
        rng = random.Random(seed)
        times = arrivals.times(n_messages, rng)
        self.schedule: List[Tuple[float, int]] = [
            (t, sizes.sample(rng)) for t in times
        ]

    def run(self, cluster, members, engine_cls, **engine_kw) -> WorkloadResult:
        engine = engine_cls(cluster, list(members), **engine_kw)
        engine.prepare()
        sim = cluster.sim
        fcts: List[Tuple[int, float]] = []
        for when, size in self.schedule:
            if sim.now < when:
                sim.run(until=when)
            result = engine.run(size)
            fcts.append((size, result.jct))
        return WorkloadResult(engine.name, fcts)
