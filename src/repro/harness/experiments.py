"""One function per paper table/figure (§V), each returning an
:class:`~repro.harness.report.ExperimentResult`.

Every function takes a ``quick`` flag: ``quick=True`` shrinks sizes and
group scales so the whole suite runs in minutes under pytest-benchmark;
``quick=False`` runs the paper-faithful parameters (used to produce
EXPERIMENTS.md).  Scale substitutions are spelled out in each
docstring and in the result's ``notes``.
"""

from __future__ import annotations

import math
from typing import Callable, Dict, List, Optional, Sequence, Tuple

from repro import constants
from repro.analytic import NetModel, binomial_jct, cepheus_jct, chain_jct
from repro.apps import Cluster, HplConfig, HplModel, ReplicatedStore
from repro.collectives import (BinomialTreeBcast, CepheusBcast, ChainBcast,
                               RdmcBcast)
from repro.core.mft import Mft
from repro.harness.report import ExperimentResult, fmt_size
from repro.net import SwitchConfig
from repro.net.trace import ThroughputSampler, collect_run_stats

__all__ = [
    "fig8_bcast_small", "fig9_bcast_large", "rdmc_comparison",
    "tab1_storage_iops", "fig10_storage_latency", "fig11_hpl",
    "fig12_large_scale", "fig13_loss", "fig14_fairness", "fig7b_memory",
    "churn_membership", "srmc_scaling", "deployment_golden",
    "brokerfabric_slo", "mrc_fanin", "mrc_loss",
]

KB = 1 << 10
MB = 1 << 20


def _fresh_testbed(n: int = 4) -> Cluster:
    return Cluster.testbed(n)


# ---------------------------------------------------------------------------
# Fig. 8 — MPI-Bcast JCT, small messages, 4-host testbed
# ---------------------------------------------------------------------------

def fig8_bcast_small(quick: bool = True) -> ExperimentResult:
    """Cepheus vs BT vs Chain for 64 B - 64 KB (paper: 2.5-3.5x over BT,
    3-5.2x over Chain)."""
    sizes = [64, 1 * KB, 16 * KB, 64 * KB] if quick else \
        [64, 256, 1 * KB, 4 * KB, 16 * KB, 64 * KB]
    res = ExperimentResult(
        exp_id="fig8", title="MPI-Bcast JCT, small messages (testbed, 4 hosts)",
        headers=["size", "cepheus_us", "bt_us", "chain_us",
                 "speedup_vs_bt", "speedup_vs_chain"],
        paper_claim="Cepheus 2.5-3.5x faster than BT, 3-5.2x than Chain",
    )
    cl = _fresh_testbed(4)
    algos = {
        "cepheus": CepheusBcast(cl, cl.host_ips),
        "bt": BinomialTreeBcast(cl, cl.host_ips),
        "chain": ChainBcast(cl, cl.host_ips, slices=4),
    }
    for size in sizes:
        jct = {k: a.run(size).jct for k, a in algos.items()}
        res.rows.append({
            "size": fmt_size(size),
            "cepheus_us": jct["cepheus"] * 1e6,
            "bt_us": jct["bt"] * 1e6,
            "chain_us": jct["chain"] * 1e6,
            "speedup_vs_bt": jct["bt"] / jct["cepheus"],
            "speedup_vs_chain": jct["chain"] / jct["cepheus"],
        })
    return res


# ---------------------------------------------------------------------------
# Fig. 9 — MPI-Bcast JCT, large messages
# ---------------------------------------------------------------------------

def fig9_bcast_large(quick: bool = True) -> ExperimentResult:
    """Cepheus vs BT vs Chain for large messages (paper: 1.3-2.8x over
    Chain, 2-2.8x over BT).  Chain uses 4 slices (= #hosts), the paper's
    'common configuration'.

    Scale substitution: the paper sweeps to 512 MB; ``quick`` stops at
    64 MB (throughput ratios are size-stable there, full mode at 256 MB).
    """
    sizes = [1 * MB, 16 * MB, 64 * MB] if quick else \
        [1 * MB, 4 * MB, 16 * MB, 64 * MB, 256 * MB]
    res = ExperimentResult(
        exp_id="fig9", title="MPI-Bcast JCT, large messages (testbed, 4 hosts)",
        headers=["size", "cepheus_ms", "bt_ms", "chain_ms",
                 "speedup_vs_bt", "speedup_vs_chain"],
        paper_claim="Cepheus 2-2.8x over BT, 1.3-2.8x over Chain",
        notes="paper sweeps to 512MB; ratios saturate well below that",
    )
    cl = _fresh_testbed(4)
    algos = {
        "cepheus": CepheusBcast(cl, cl.host_ips),
        "bt": BinomialTreeBcast(cl, cl.host_ips),
        "chain": ChainBcast(cl, cl.host_ips, slices=4),
    }
    for size in sizes:
        jct = {k: a.run(size).jct for k, a in algos.items()}
        res.rows.append({
            "size": fmt_size(size),
            "cepheus_ms": jct["cepheus"] * 1e3,
            "bt_ms": jct["bt"] * 1e3,
            "chain_ms": jct["chain"] * 1e3,
            "speedup_vs_bt": jct["bt"] / jct["cepheus"],
            "speedup_vs_chain": jct["chain"] / jct["cepheus"],
        })
    return res


# ---------------------------------------------------------------------------
# §V-A text — RDMC comparison at 256 MB
# ---------------------------------------------------------------------------

def rdmc_comparison(quick: bool = True) -> ExperimentResult:
    """Paper: 256 MB broadcast, Cepheus 24.4 ms vs RDMC ~35 ms."""
    size = 64 * MB if quick else 256 * MB
    res = ExperimentResult(
        exp_id="rdmc", title=f"{fmt_size(size)} broadcast vs RDMC (4 hosts)",
        headers=["scheme", "jct_ms", "ratio_vs_cepheus"],
        paper_claim="256MB: Cepheus 24.4ms, RDMC ~35ms (1.43x)",
    )
    cl = _fresh_testbed(4)
    ce = CepheusBcast(cl, cl.host_ips).run(size).jct
    rd = RdmcBcast(cl, cl.host_ips).run(size).jct
    res.rows.append({"scheme": "cepheus", "jct_ms": ce * 1e3,
                     "ratio_vs_cepheus": 1.0})
    res.rows.append({"scheme": "rdmc", "jct_ms": rd * 1e3,
                     "ratio_vs_cepheus": rd / ce})
    return res


# ---------------------------------------------------------------------------
# Table I — replication writing throughput
# ---------------------------------------------------------------------------

def tab1_storage_iops(quick: bool = True) -> ExperimentResult:
    """8 KB replication IOPS (paper: 1-unicast 1.188 M, 3-unicasts
    0.413 M, Cepheus 1.167 M; Cepheus goodput 76.5 Gbps)."""
    n_ios = 5000 if quick else 40000
    res = ExperimentResult(
        exp_id="tab1", title="Replication writing throughput, 8KB IOs",
        headers=["scheme", "iops_M", "goodput_gbps"],
        paper_claim="1-unicast 1.188M / 3-unicasts 0.413M / Cepheus 1.167M IOPS",
    )
    for scheme, servers in (("unicast", [2]), ("multi-unicast", [2, 3, 4]),
                            ("cepheus", [2, 3, 4])):
        cl = _fresh_testbed(4)
        store = ReplicatedStore(cl, 1, servers, scheme)
        r = store.run_iops(8 * KB, n_ios=n_ios)
        label = {"unicast": "1-unicast", "multi-unicast": "3-unicasts",
                 "cepheus": "cepheus"}[scheme]
        res.rows.append({"scheme": label, "iops_M": r.iops / 1e6,
                         "goodput_gbps": r.goodput_gbps})
    return res


# ---------------------------------------------------------------------------
# Fig. 10 — single IO latency
# ---------------------------------------------------------------------------

def fig10_storage_latency(quick: bool = True) -> ExperimentResult:
    """Single-IO write latency vs IO size (paper: Cepheus -23 % @8 KB,
    -60 % @512 KB vs 3-unicasts; comparable to 1-unicast)."""
    sizes = [8 * KB, 64 * KB, 512 * KB] if quick else \
        [8 * KB, 32 * KB, 64 * KB, 128 * KB, 256 * KB, 512 * KB]
    res = ExperimentResult(
        exp_id="fig10", title="Single IO latency (three-replica write)",
        headers=["io_size", "unicast_us", "three_unicasts_us", "cepheus_us",
                 "reduction_vs_3uni"],
        paper_claim="-23% @8KB, -60% @512KB vs 3-unicasts; ~= 1-unicast",
    )
    for size in sizes:
        lat = {}
        for scheme, servers in (("unicast", [2]),
                                ("multi-unicast", [2, 3, 4]),
                                ("cepheus", [2, 3, 4])):
            cl = _fresh_testbed(4)
            lat[scheme] = ReplicatedStore(cl, 1, servers, scheme).run_latency(size)
        res.rows.append({
            "io_size": fmt_size(size),
            "unicast_us": lat["unicast"] * 1e6,
            "three_unicasts_us": lat["multi-unicast"] * 1e6,
            "cepheus_us": lat["cepheus"] * 1e6,
            "reduction_vs_3uni": 1 - lat["cepheus"] / lat["multi-unicast"],
        })
    return res


# ---------------------------------------------------------------------------
# Fig. 11 — HPL end-to-end + communication time
# ---------------------------------------------------------------------------

def fig11_hpl(quick: bool = True) -> ExperimentResult:
    """HPL JCT breakdown on 1x4 (PB) and 4x1 (RS) grids (paper: -12 %
    JCT / -67 % comm for PB; -4 % JCT / -18 % comm for RS).

    Both grids run the paper-scale N=8192 problem: the RS comparison is
    scale-sensitive (at small panels the DCQCN incast transient of the
    pre-multicast gather outweighs the multicast gain — an honest model
    finding recorded in EXPERIMENTS.md).
    """
    cfg = HplConfig(n=8192, nb=256)
    res = ExperimentResult(
        exp_id="fig11", title="HPL JCT and communication-time breakdown",
        headers=["experiment", "scheme", "total_s", "comm_s", "others_s",
                 "jct_reduction", "comm_reduction"],
        paper_claim="PB accel: JCT -12%, comm -67%; RS accel: JCT -4%, comm -18%",
    )

    def one(grid, kind: str, baseline_alg: str) -> None:
        out = {}
        for alg in (baseline_alg, "cepheus"):
            cl = _fresh_testbed(4)
            kwargs = {f"{kind}_algorithm": alg}
            out[alg] = HplModel(cl, grid, cfg, **kwargs).run()
        base, ceph = out[baseline_alg], out["cepheus"]
        for alg, r in out.items():
            res.rows.append({
                "experiment": f"{kind.upper()} ({r.grid})", "scheme": alg,
                "total_s": r.total, "comm_s": r.comm_time, "others_s": r.others,
                "jct_reduction": (1 - r.total / base.total) if alg != baseline_alg else 0.0,
                "comm_reduction": (1 - r.comm_time / base.comm_time) if alg != baseline_alg else 0.0,
            })

    one([[1, 2, 3, 4]], "pb", "increasing-ring")
    one([[1], [2], [3], [4]], "rs", "long")
    return res


# ---------------------------------------------------------------------------
# Fig. 12 — large-scale multicast FCT (simulation)
# ---------------------------------------------------------------------------

def fig12_large_scale(quick: bool = True) -> ExperimentResult:
    """FCT of a large multicast group over a 3-layer fat-tree.

    Paper: group 512 on a 1024-server fat-tree, 64 B - 1 GB; Cepheus up
    to 164x/4.5x faster than Chain/BT for short flows and 2.1x/8.9x for
    large flows.

    Scale substitution: packet level up to a size cap; the largest
    points use the validated closed-form models (marked ``analytic``).
    ``quick`` uses a 64-member group on a k=8 fat-tree.
    """
    if quick:
        k, group_size = 8, 64
        sizes = [64, 64 * KB, 1 * MB, 64 * MB, 1024 * MB]
        cap = 2 * MB
    else:
        k, group_size = 16, 512
        sizes = [64, 64 * KB, 1 * MB, 4 * MB, 64 * MB, 1024 * MB]
        cap = 4 * MB
    res = ExperimentResult(
        exp_id="fig12",
        title=f"{group_size}-member multicast FCT on a k={k} fat-tree",
        headers=["size", "mode", "cepheus", "bt", "chain",
                 "speedup_vs_bt", "speedup_vs_chain"],
        paper_claim="512-scale: up to 164x/4.5x (short, vs Chain/BT), "
                    "2.1x/8.9x (large)",
        notes=f"packet-level up to {fmt_size(cap)}, analytic beyond "
              "(models validated against the packet engine in tests)",
    )
    cl = Cluster.fat_tree_cluster(k)
    members = cl.host_ips[:group_size]
    # Chain slices follow the paper's "= #hosts" configuration, which
    # at large scale keeps Chain bandwidth-competitive (its large-flow
    # deficit is then the ~2x fill/drain cost, per the paper's 2.1x).
    algos = {
        "cepheus": CepheusBcast(cl, members),
        "bt": BinomialTreeBcast(cl, members),
        "chain": ChainBcast(cl, members, slices=group_size),
    }
    # Analytic counterparts share constants with the engine; the MDT of
    # a 3-layer fat-tree is at most 5 switch hops deep.
    net = NetModel(hops=5)
    models: Dict[str, Callable[..., float]] = {
        "cepheus": lambda s: cepheus_jct(s, group_size, net, mdt_depth=5),
        "bt": lambda s: binomial_jct(s, group_size, net),
        "chain": lambda s: chain_jct(s, group_size, net, slices=group_size),
    }
    for size in sizes:
        if size <= cap:
            jct = {k2: a.run(size).jct for k2, a in algos.items()}
            mode = "packet"
        else:
            jct = {k2: m(size) for k2, m in models.items()}
            mode = "analytic"
        res.rows.append({
            "size": fmt_size(size), "mode": mode,
            "cepheus": jct["cepheus"], "bt": jct["bt"], "chain": jct["chain"],
            "speedup_vs_bt": jct["bt"] / jct["cepheus"],
            "speedup_vs_chain": jct["chain"] / jct["cepheus"],
        })
    return res


# ---------------------------------------------------------------------------
# Fig. 13 — loss tolerance
# ---------------------------------------------------------------------------

def fig13_loss(quick: bool = True,
               setups: Optional[List[Tuple[int, int, int]]] = None,
               rates: Optional[List[float]] = None) -> ExperimentResult:
    """FCT and normalized throughput under random loss at the middle
    switches (paper: scales 64 & 512, 128 MB flows, loss 1e-8..1e-4;
    Cepheus beats Chain at scale 64 but degrades faster — go-back-N
    retransmits serve *all* receivers).

    Scale substitution: ``quick`` uses scales 16/64 with 4/8 MB flows
    (losses per flow kept comparable by the smaller packet count being
    offset by the higher tested rates); full mode runs 64-member groups
    with 32 MB flows.  ``setups`` entries are (fat-tree k, group size,
    flow bytes); both axes can be overridden for cheaper smoke runs.
    """
    if setups is None:
        if quick:
            setups = [(4, 16, 4 * MB), (8, 64, 8 * MB)]
        else:
            setups = [(8, 64, 32 * MB), (16, 512, 8 * MB)]
    if rates is None:
        # The extra 5e-4 point guarantees visible drops at quick-mode
        # flow sizes (at 1e-4 a lucky seed can see none).
        rates = ([0.0, 1e-6, 1e-5, 1e-4, 5e-4] if quick
                 else [0.0, 1e-8, 1e-6, 1e-5, 1e-4, 5e-4])
    res = ExperimentResult(
        exp_id="fig13", title="FCT and normalized throughput under packet loss",
        headers=["scale", "loss_rate", "scheme", "fct_ms", "norm_tput"],
        paper_claim="Cepheus keeps better FCT than Chain at scale 64; at "
                    "512/1e-4 go-back-N retransmission makes it worse",
    )
    for k, group_size, flow in setups:
        baselines: Dict[str, float] = {}
        for rate in rates:
            for scheme in ("cepheus", "chain"):
                cl = Cluster.fat_tree_cluster(k)
                cl.topo.set_loss_rate(rate, layers=("agg", "core"))
                members = cl.host_ips[:group_size]
                algo = (CepheusBcast(cl, members) if scheme == "cepheus"
                        else ChainBcast(cl, members, slices=group_size))
                fct = algo.run(flow).jct
                if rate == 0.0:
                    baselines[scheme] = fct
                res.rows.append({
                    "scale": group_size, "loss_rate": rate, "scheme": scheme,
                    "fct_ms": fct * 1e3,
                    "norm_tput": baselines[scheme] / fct,
                })
    return res


# ---------------------------------------------------------------------------
# Fig. 14 — fairness and convergence
# ---------------------------------------------------------------------------

def fig14_fairness(quick: bool = True) -> ExperimentResult:
    """Throughput dynamics of one multicast and two unicast flows with
    staggered starts (paper: fair sharing + adaptation to a new
    bottleneck after the first unicast flow ends)."""
    f1_bytes = (220 if quick else 400) * MB
    f2_bytes = (30 if quick else 60) * MB
    f3_bytes = (30 if quick else 60) * MB
    t_f2, t_f3 = 3e-3, 13e-3
    cl = Cluster.fat_tree_cluster(4)  # exactly 16 hosts, like the paper's pick
    sim = cl.sim
    algo = CepheusBcast(cl, cl.host_ips)
    algo.prepare()
    s1 = ThroughputSampler(1e-3)
    algo.qps[3].rx_sampler = s1          # f1 measured at f2's bottleneck host
    s2, s3 = ThroughputSampler(1e-3), ThroughputSampler(1e-3)
    q2 = cl.qp_to(2, 3)
    cl.qp_to(3, 2).rx_sampler = s2
    q4 = cl.qp_to(4, 5)
    cl.qp_to(5, 4).rx_sampler = s3
    algo.qps[1].post_send(f1_bytes)
    sim.schedule(t_f2, lambda: q2.post_send(f2_bytes))
    sim.schedule(t_f3, lambda: q4.post_send(f3_bytes))
    sim.run()
    res = ExperimentResult(
        exp_id="fig14", title="Multicast vs unicast throughput dynamics",
        headers=["t_ms", "f1_gbps", "f2_gbps", "f3_gbps"],
        paper_claim="f1 grabs full bandwidth, converges to fair share with "
                    "f2, re-grabs, then re-converges with f3",
        notes="f1 sampled at the f2-bottleneck receiver; DCQCN converges "
              "over ~10ms windows",
    )
    a, b, c = s1.series_gbps(), s2.series_gbps(), s3.series_gbps()
    for i in range(max(len(a), len(b), len(c))):
        pick = lambda s: s[i] if i < len(s) else 0.0
        res.rows.append({"t_ms": i, "f1_gbps": pick(a), "f2_gbps": pick(b),
                         "f3_gbps": pick(c)})
    return res


# ---------------------------------------------------------------------------
# Fig. 7b — accelerator state memory (software analogue)
# ---------------------------------------------------------------------------

def fig7b_memory(quick: bool = True) -> ExperimentResult:
    """The FPGA-resource table has no software analogue; we reproduce
    the paper's scalability claim instead: 1 K groups cost <= 0.69 MB of
    MFT memory on a 64-port switch, independent of group size."""
    n_groups = 1024
    res = ExperimentResult(
        exp_id="fig7b", title="MFT memory model (64-port switch)",
        headers=["groups", "bytes_per_group", "total_MB", "paper_bound_MB"],
        paper_claim="1K MGs cost at most 0.69MB per switch",
    )
    full = Mft(constants.MCSTID_BASE, 64)
    from repro.core.mft import PathEntry
    for port in range(64):
        full.add_entry(PathEntry(port=port, is_host=(port % 2 == 0),
                                 dst_ip=port + 1, dst_qp=0x100 + port))
    per_group = full.memory_bytes()
    res.rows.append({
        "groups": n_groups, "bytes_per_group": per_group,
        "total_MB": per_group * n_groups / 1e6, "paper_bound_MB": 0.69,
    })
    return res


# ---------------------------------------------------------------------------
# Membership churn — incremental MRP deltas vs full registration
# ---------------------------------------------------------------------------

def churn_membership(quick: bool = True) -> ExperimentResult:
    """Dynamic group membership under churn (no paper figure; exercises
    the §III-C registration protocol's incremental extension).

    Seeded churn campaigns (joins of fresh hosts, voluntary leaves, a
    crashed receiver auto-pruned by the missed-feedback detector) on
    both topologies, reporting how many MRP records the deltas install
    compared to the initial full registration, and that exactly-once
    delivery and the protocol invariants hold across epochs.
    """
    from repro.harness.churn import ChurnConfig, run_churn_campaign

    trials = 2 if quick else 6
    res = ExperimentResult(
        exp_id="churn",
        title="Membership churn: incremental MRP deltas + failure pruning",
        headers=["topo", "members", "churn_events", "msgs_done",
                 "full_records", "delta_records_per_join", "removed_records",
                 "pruned", "violations", "failing_trials"],
        paper_claim="single-member deltas patch one branch (strictly fewer "
                    "MRP records than re-registration); a crashed receiver "
                    "is pruned without stalling in-flight transfers",
        notes=f"{trials} seeded trials per topology; deterministic",
    )
    for topo, hosts in (("star", 8), ("fat_tree", 8)):
        cfg = ChurnConfig(topo=topo, hosts=hosts, k=4)
        doc = run_churn_campaign(cfg, seed=11, trials=trials, shrink=False)
        recs = doc["records"]
        joins = sum(1 for r in recs
                    for e in r["schedule"]["events"] if e["kind"] == "join")
        res.rows.append({
            "topo": topo,
            "members": cfg.initial_members,
            "churn_events": sum(len(r["schedule"]["events"]) for r in recs),
            "msgs_done": sum(r["completed_messages"] for r in recs),
            "full_records": recs[0]["full_records"],
            "delta_records_per_join":
                sum(r["delta_records"] for r in recs) / max(1, joins),
            "removed_records": sum(r["removed_records"] for r in recs),
            "pruned": sum(len(r["pruned"]) for r in recs),
            "violations": sum(len(r["violations"]) for r in recs),
            "failing_trials": len(doc["failing_trials"]),
        })
    return res


# ---------------------------------------------------------------------------
# Broker fabric — open-loop pub/sub SLOs + membership-delta coalescing
# ---------------------------------------------------------------------------

def brokerfabric_slo(quick: bool = True) -> ExperimentResult:
    """Broker-fabric pub/sub under open-loop load (no paper figure;
    quantifies the §I pub/sub motivation as an SLO surface).

    One seeded schedule — Poisson publishes on Zipf-popular topics,
    continuous subscription churn, background unicast cross-traffic —
    replayed twice over per-topic MDT multicast groups: once with
    one-MRP-delta-per-membership-op (the baseline §III-C protocol) and
    once with per-window delta coalescing.  Reports the delivery-latency
    tail (p50/p99/p999), delivery amplification (broker egress bytes per
    payload byte; 1.0 is perfect multicast), control-plane overhead
    (MRP deltas per membership op), and the MRP-message reduction
    coalescing buys on the identical op stream.
    """
    import random
    from dataclasses import replace as _replace

    from repro.apps.brokerfabric import (BrokerFabricConfig,
                                         generate_brokerfabric_schedule,
                                         run_brokerfabric_trial)

    if quick:
        cfg = BrokerFabricConfig(horizon=0.01)
        window = 500e-6
    else:
        cfg = BrokerFabricConfig(
            k=16, hosts=1024, topics=150,
            min_subscribers=500, max_subscribers=900,
            publish_rate=20_000.0, churn_rate=20_000.0,
            cross_rate=2_000.0, horizon=0.02, drain=0.04)
        window = 2e-3
    schedule = generate_brokerfabric_schedule(cfg, random.Random(11))
    res = ExperimentResult(
        exp_id="brokerfabric",
        title="Broker-fabric pub/sub: open-loop SLO tail + delta coalescing",
        headers=["mode", "topics", "subscriptions", "published",
                 "deliveries", "p50_us", "p99_us", "p999_us",
                 "amplification", "membership_ops", "mrp_deltas",
                 "deltas_per_op", "failing"],
        paper_claim="per-topic MDT multicast holds the broker's delivery "
                    "amplification at ~1x under open-loop load and churn; "
                    "coalescing cuts MRP messages on the same op stream "
                    "without hurting the latency tail",
        notes=f"one seeded schedule x 2 control-plane modes; "
              f"coalesce window {window * 1e6:.0f}us; deterministic",
    )
    baseline_deltas = 0
    for mode, win in (("uncoalesced", None), ("coalesced", window)):
        rec = run_brokerfabric_trial(
            _replace(cfg, coalesce_window=win), schedule)
        if mode == "uncoalesced":
            baseline_deltas = rec["mrp_deltas_sent"]
        res.rows.append({
            "mode": mode,
            "topics": rec["topics"],
            "subscriptions": rec["initial_subscriptions"],
            "published": rec["published"],
            "deliveries": rec["deliveries"],
            "p50_us": rec["latency_us"]["p50"],
            "p99_us": rec["latency_us"]["p99"],
            "p999_us": rec["latency_us"]["p999"],
            "amplification": rec["amplification"],
            "membership_ops": rec["membership_ops"],
            "mrp_deltas": rec["mrp_deltas_sent"],
            "deltas_per_op": rec["deltas_per_op"],
            "failing": int(rec["failing"]),
        })
    if baseline_deltas:
        saved = baseline_deltas - res.rows[-1]["mrp_deltas"]
        res.notes += (f"; coalescing saved {saved} of "
                      f"{baseline_deltas} MRP deltas")
    return res


# ---------------------------------------------------------------------------
# Source-routed multicast: switch-state scaling to 10^6 groups
# ---------------------------------------------------------------------------

def srmc_scaling(quick: bool = True) -> ExperimentResult:
    """Switch-state scaling of the ``source_routed`` deployment (no paper
    figure; quantifies the Elmo/Bert trade-off behind §II's group-count
    motivation).

    A fixed k=8 fat-tree carries a churn-free population of groups drawn
    from a seeded small/large mix with pod locality.  Each group's
    distribution tree is compiled by the real header encoder
    (:mod:`repro.core.source_routing`) and charged to three backends:

    * **mft** — Cepheus-style per-group per-switch MFT entries: state and
      control-plane registration load grow linearly with group count.
    * **elmo** — source routing with a bounded residual rule table per
      switch; overflow groups past the cap share a default rule, so
      switch state plateaus at O(residual cap).
    * **bert** — same, plus tree aggregation: groups whose spilled rules
      have identical signatures share one table entry, cutting both the
      residual footprint and the default-rule redundancy.

    ``quick`` sweeps 10^3..1.6*10^4 groups; ``full`` reaches the 10^6
    headline scale.  The ``*_state_x`` columns are each backend's state
    growth relative to its own first row: mft tracks the group count
    while elmo/bert stay O(1).
    """
    from repro.core.source_routing import ScalingModel

    sizes = ([1_000, 4_000, 16_000] if quick
             else [1_000, 10_000, 100_000, 1_000_000])
    res = ExperimentResult(
        exp_id="srmc_scaling",
        title="Source-routed multicast: switch state vs group count",
        headers=["groups", "mft_state_bytes", "elmo_state_bytes",
                 "bert_state_bytes", "mft_state_x", "elmo_state_x",
                 "bert_state_x", "hdr_bytes_pkt", "overflow_pct",
                 "bert_shared_pct", "mft_ctrl_records", "elmo_ctrl_records",
                 "bert_ctrl_records", "elmo_redundant_ports",
                 "bert_redundant_ports"],
        paper_claim="per-group MFT state grows linearly with group count "
                    "while header-encoded trees keep switch state flat at "
                    "O(residual table); Bert aggregation additionally "
                    "shares rules across similar trees",
        notes="seeded analytic sweep on a k=8 fat-tree (128 hosts); "
              "deterministic; *_state_x normalised to each backend's "
              "first row",
    )
    model = ScalingModel()
    first: Dict[str, float] = {}
    for n in sizes:
        row = model.run(n, seed=7)
        for key in ("mft_state_bytes", "elmo_state_bytes",
                    "bert_state_bytes"):
            first.setdefault(key, float(row[key]) or 1.0)
        res.rows.append({
            "groups": n,
            "mft_state_bytes": row["mft_state_bytes"],
            "elmo_state_bytes": row["elmo_state_bytes"],
            "bert_state_bytes": row["bert_state_bytes"],
            "mft_state_x": round(row["mft_state_bytes"]
                                 / first["mft_state_bytes"], 3),
            "elmo_state_x": round(row["elmo_state_bytes"]
                                  / first["elmo_state_bytes"], 3),
            "bert_state_x": round(row["bert_state_bytes"]
                                  / first["bert_state_bytes"], 3),
            "hdr_bytes_pkt": row["hdr_bytes_pkt"],
            "overflow_pct": row["overflow_pct"],
            "bert_shared_pct": row["bert_shared_pct"],
            "mft_ctrl_records": row["mft_ctrl_records"],
            "elmo_ctrl_records": row["elmo_ctrl_records"],
            "bert_ctrl_records": row["bert_ctrl_records"],
            "elmo_redundant_ports": row["elmo_redundant_ports"],
            "bert_redundant_ports": row["bert_redundant_ports"],
        })
    return res


# ---------------------------------------------------------------------------
# MRC-style k-path spraying: lane-count sweep + failover recovery
# ---------------------------------------------------------------------------

def mrc_fanin(quick: bool = True) -> ExperimentResult:
    """k-path spraying JCT across lane counts, with the Gleam baseline
    (no paper figure; quantifies the MRC comparison point of §II-A).

    Broadcasts striped over k ∈ {1, 2, 4} lanes on a k=8 fat-tree
    (16-host slice: four edge-disjoint uplink stages, so all four lanes
    ride disjoint core paths).  The sender's single NIC link serializes
    every byte regardless of lane count, so spraying is JCT-neutral —
    the value of the lanes is the per-path failure domain measured by
    ``mrc_loss``, and this sweep pins that neutrality (within one MTU's
    worth of per-lane tail rounding).  The last column repeats k=4
    under Gleam AIMD congestion control instead of DCQCN: on an
    uncongested fabric both sit at line rate, so the baselines agree.
    """
    from repro.transport import RoceConfig

    sizes = [256 * KB, 1 * MB] if quick else [256 * KB, 1 * MB, 16 * MB]
    res = ExperimentResult(
        exp_id="mrc_fanin",
        title="MRC k-path spraying: JCT vs lane count (fat-tree k=8)",
        headers=["size", "k1_us", "k2_us", "k4_us", "k4_gleam_us",
                 "k4_vs_k1"],
        paper_claim="striping over k disjoint paths is JCT-neutral (the "
                    "sender NIC serializes every byte either way); the "
                    "lanes buy per-path failover, not bandwidth",
        notes="8 members on a 16-host fat-tree(8) slice; deterministic",
    )
    variants = {}
    for key, paths, roce in (("k1", 1, None), ("k2", 2, None),
                             ("k4", 4, None),
                             ("k4_gleam", 4, RoceConfig(cc="gleam"))):
        cl = Cluster.fat_tree_cluster(8, hosts_limit=16, roce_config=roce)
        variants[key] = CepheusBcast(cl, cl.topo.host_ips[:8], paths=paths)
    for size in sizes:
        jct = {k: a.run(size).jct for k, a in variants.items()}
        res.rows.append({
            "size": fmt_size(size),
            "k1_us": jct["k1"] * 1e6,
            "k2_us": jct["k2"] * 1e6,
            "k4_us": jct["k4"] * 1e6,
            "k4_gleam_us": jct["k4_gleam"] * 1e6,
            "k4_vs_k1": jct["k1"] / jct["k4"],
        })
    return res


def mrc_loss(quick: bool = True) -> ExperimentResult:
    """Lane failover: kill one of two lanes mid-transfer and measure
    recovery (no paper figure; the MRC-style per-path feedback claim).

    For every deployment, a 2-lane broadcast runs once clean and once
    with lane 1's exclusive uplink severed ~15 us into the transfer.
    The health monitor declares the lane dead after ``stall_timeout``
    (0.5 ms here) without acknowledgement progress and re-sprays its
    share over lane 0; the surviving lane's PSN stream never rewinds —
    zero timeouts and zero retransmitted packets on it — so recovery
    costs one detection timeout plus the re-sprayed share's
    serialization, not a group-wide go-back-N.
    """
    from repro.core.accelerator import AcceleratorConfig
    from repro.net.failures import FailureInjector

    size = (1 * MB) if quick else (4 * MB)
    stall = 0.5e-3
    res = ExperimentResult(
        exp_id="mrc_loss",
        title="MRC lane failover: dead-path re-spray recovery (k=2)",
        headers=["deployment", "clean_us", "kill_us", "detect_us",
                 "recovery_us", "resprays", "survivor_retx", "delivered"],
        paper_claim="a dead path's share is re-sprayed on the survivors: "
                    "recovery ~= the detection timeout, the surviving "
                    "lane never retransmits (no group-wide go-back-N)",
        notes=f"{fmt_size(size)} broadcast, 6 members on fat-tree(4); "
              f"lane killed at +15us, stall_timeout {stall * 1e3:.1f}ms; "
              f"deterministic",
    )
    for deployment in ("inline", "lookaside", "source_routed"):
        accel = AcceleratorConfig(deployment=deployment)
        cl = Cluster.fat_tree_cluster(4, accel_config=accel)
        members = cl.topo.host_ips[:6]
        clean = CepheusBcast(cl, members, paths=2,
                             lane_stall_timeout=stall).run(size)

        cl = Cluster.fat_tree_cluster(4, accel_config=accel)
        members = cl.topo.host_ips[:6]
        algo = CepheusBcast(cl, members, paths=2, lane_stall_timeout=stall)
        algo.prepare()
        injector = FailureInjector(cl.topo)
        sw, port = cl.topo.lane_uplinks(members[0], members, 2)[1]
        injector.fail_link(sw, port, at=cl.sim.now + 15e-6)
        r = algo.run(size)
        detect = algo.health.dead_events[0][1] - r.start
        survivor_retx = sum(
            algo.group.lane_members[lane][members[0]].timeouts
            + algo.group.lane_members[lane][members[0]].retransmitted_packets
            for lane in algo.sprayer.live_lanes)
        res.rows.append({
            "deployment": deployment,
            "clean_us": clean.jct * 1e6,
            "kill_us": r.jct * 1e6,
            "detect_us": detect * 1e6,
            "recovery_us": r.jct * 1e6 - detect * 1e6,
            "resprays": algo.sprayer.resprays,
            "survivor_retx": survivor_retx,
            "delivered": len(r.recv_times),
        })
    return res


# ---------------------------------------------------------------------------
# Byte-identity probes (tier-1 golden fixtures, one per deployment)
# ---------------------------------------------------------------------------

def deployment_golden(deployment: str) -> ExperimentResult:
    """One small fixed broadcast per deployment, pinned byte-for-byte.

    Unlike the tolerance-gated headline goldens, this probe's canonical
    :meth:`ExperimentResult.to_json` is compared *byte-identically*
    against a committed fixture (``tests/harness/golden_bytes/``): any
    perf refactor that perturbs virtual-time results or event counts —
    even inside tolerance — fails in seconds instead of surfacing in
    the CI bench job.  The ``events`` column pins the cumulative
    simulator event count after each transfer, so a change in *how
    much work* the event core schedules is caught, not just a change
    in the timings it produces.
    """
    from repro.core.accelerator import AcceleratorConfig

    res = ExperimentResult(
        exp_id=f"golden-{deployment}",
        title=f"Byte-identity probe ({deployment} deployment)",
        headers=["size", "jct_us", "events"],
        notes="tier-1 golden fixture: compared byte-for-byte, no tolerances",
        mode="quick",
    )
    cl = Cluster.testbed(
        4, accel_config=AcceleratorConfig(deployment=deployment))
    algo = CepheusBcast(cl, cl.host_ips)
    for size in (64, 16 * KB, 1 * MB):
        r = algo.run(size)
        res.rows.append({
            "size": fmt_size(size),
            "jct_us": r.jct * 1e6,
            "events": cl.sim.events_run,
        })
    return res
