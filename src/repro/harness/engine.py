"""Parallel experiment-execution engine.

The entries of :data:`repro.harness.runner.ALL_EXPERIMENTS` are
independent pure functions of ``(experiment id, quick)`` — every
experiment builds its own cluster and simulator, and all randomness is
seeded from the topology.  The engine exploits that twice:

* **fan-out** — a :class:`concurrent.futures.ProcessPoolExecutor`
  runs experiments on ``--jobs`` workers; results are collected and
  printed in request order, so serial and parallel runs emit
  byte-identical ``ExperimentResult.to_json()`` payloads (tables can
  differ only in the wall-clock provenance line);
* **memoization** — a content-addressed
  :class:`~repro.harness.cache.ResultCache` keyed by (experiment id,
  canonical config hash, code fingerprint) skips experiments whose
  inputs have not changed since the last run.

The engine is the machinery behind ``python -m repro.harness.runner
--jobs N`` and ``cepheus-repro bench emit``.
"""

from __future__ import annotations

import sys
import time
from concurrent.futures import ProcessPoolExecutor
from dataclasses import dataclass, field
from typing import Any, Dict, List, Optional

from repro.harness import bench
from repro.harness.cache import ResultCache
from repro.harness.report import ExperimentResult, format_table

__all__ = ["EngineRun", "experiment_config", "execute_one", "run_engine"]


def experiment_config(name: str, quick: bool) -> Dict[str, Any]:
    """The canonical config document an experiment is a function of."""
    return {"experiment": name, "quick": bool(quick)}


def execute_one(name: str, quick: bool) -> Dict[str, Any]:
    """Run one registry experiment; returns its bench entry.

    Module-level (picklable) so it can serve as the process-pool
    worker; the registry lookup happens here, inside the worker, so
    the parent never has to ship the experiment callable itself.
    """
    from repro.harness import runner
    from repro.net.simulator import Simulator

    fn = runner.ALL_EXPERIMENTS[name]
    events_before = Simulator.lifetime_events
    t0 = time.perf_counter()
    result = fn(quick)
    wall = time.perf_counter() - t0
    result.mode = "quick" if quick else "full"
    result.wall_time_s = wall
    return bench.make_entry(result, wall_s=wall,
                            events=Simulator.lifetime_events - events_before)


@dataclass
class EngineRun:
    """Outcome of one engine invocation."""

    names: List[str]
    mode: str
    jobs: int
    entries: Dict[str, Dict[str, Any]] = field(default_factory=dict)
    results: List[ExperimentResult] = field(default_factory=list)
    total_wall_s: float = 0.0
    executed: int = 0           # experiment functions actually run
    cache_hits: int = 0
    fingerprint: str = ""

    def document(self) -> Dict[str, Any]:
        """The consolidated BENCH document for this run."""
        return bench.make_document(
            self.entries, mode=self.mode, jobs=self.jobs,
            fingerprint=self.fingerprint, total_wall_s=self.total_wall_s)


def _result_from_entry(entry: Dict[str, Any]) -> ExperimentResult:
    result = ExperimentResult.from_dict(entry["result"])
    result.wall_time_s = entry.get("wall_s", 0.0)
    result.cached = entry.get("cached", False)
    return result


def run_engine(names: List[str], *, quick: bool = True, jobs: int = 1,
               cache: Optional[ResultCache] = None,
               stream=None) -> EngineRun:
    """Execute ``names`` (registry ids), fanning cache misses across
    ``jobs`` workers; tables print to ``stream`` in request order."""
    out = stream if stream is not None else sys.stdout
    mode = "quick" if quick else "full"
    run = EngineRun(names=list(names), mode=mode, jobs=jobs)
    t_start = time.perf_counter()

    keys: Dict[str, str] = {}
    if cache is not None:
        run.fingerprint = cache.fingerprint
        for name in names:
            keys[name] = cache.key(name, experiment_config(name, quick))
            entry = cache.get(keys[name])
            if entry is not None:
                entry = dict(entry)
                entry["cached"] = True
                run.entries[name] = entry
                run.cache_hits += 1
    else:
        from repro.harness.cache import code_fingerprint
        run.fingerprint = code_fingerprint()

    pending = [n for n in names if n not in run.entries]
    emitted = 0

    def emit_ready() -> None:
        """Print finished tables, preserving request order."""
        nonlocal emitted
        while emitted < len(names) and names[emitted] in run.entries:
            name = names[emitted]
            result = _result_from_entry(run.entries[name])
            print(format_table(result), file=out)
            print(file=out)
            emitted += 1

    emit_ready()
    if pending:
        if jobs > 1:
            with ProcessPoolExecutor(max_workers=jobs) as pool:
                futures = {name: pool.submit(execute_one, name, quick)
                           for name in pending}
                for name in pending:
                    run.entries[name] = futures[name].result()
                    run.executed += 1
                    if cache is not None:
                        cache.put(keys[name], run.entries[name])
                    emit_ready()
        else:
            for name in pending:
                run.entries[name] = execute_one(name, quick)
                run.executed += 1
                if cache is not None:
                    cache.put(keys[name], run.entries[name])
                emit_ready()

    run.total_wall_s = time.perf_counter() - t_start
    # Re-key into request order so the BENCH document is deterministic.
    run.entries = {name: run.entries[name] for name in names}
    run.results = [_result_from_entry(run.entries[name]) for name in names]
    return run
