"""Machine-readable benchmark documents and the regression gate.

A ``BENCH_*.json`` document is the consolidated trajectory record of
one harness run::

    {
      "schema": "cepheus-bench/v2",
      "mode": "quick",
      "jobs": 4,
      "code_fingerprint": "sha256...",
      "total_wall_s": 37.2,
      "events_per_sec": 812345.6,  # aggregate over uncached entries
      "experiments": {
        "fig8": {
          "wall_s": 0.01,          # volatile, never compared
          "events": 123456,        # simulator events executed
          "events_per_sec": 654321.0,  # null when cached
          "cached": false,
          "rows": 4,
          "metrics": {"mean_speedup_vs_bt": 2.71, ...},
          "result": {...}          # canonical ExperimentResult payload
        }, ...
      }
    }

``headline_metrics`` distils each experiment table into scalar
metrics (the per-column means plus the row count); ``compare`` diffs
two documents metric-by-metric against per-metric relative tolerances
and is the machinery behind ``cepheus-repro bench compare``.
"""

from __future__ import annotations

import fnmatch
import json
import math
from dataclasses import dataclass, field
from typing import Any, Dict, List, Optional

from repro.harness.report import ExperimentResult

__all__ = ["SCHEMA", "COMPAT_SCHEMAS", "headline_metrics", "make_entry",
           "make_document",
           "load_document", "MetricDelta", "Comparison", "compare",
           "load_tolerances", "tolerance_for", "DEFAULT_REL_TOL",
           "DEFAULT_ABS_TOL"]

SCHEMA = "cepheus-bench/v2"

#: Documents this reader still accepts (v1 lacks the events/sec
#: throughput fields; compare simply has nothing to note for them).
COMPAT_SCHEMAS = ("cepheus-bench/v1", SCHEMA)

#: Fallback tolerances when a metric has no override: 8 % relative
#: drift, with a small absolute floor for metrics whose baseline is 0.
DEFAULT_REL_TOL = 0.08
DEFAULT_ABS_TOL = 1e-9


def headline_metrics(result: ExperimentResult) -> Dict[str, float]:
    """Scalar summary of a result table.

    For every column whose cells are all numeric (booleans excluded),
    report the column mean as ``mean_<column>``; always report
    ``rows``.  A non-finite mean is dropped rather than emitted — the
    document stays strict JSON, and the compare gate then reports the
    metric as *missing*, which fails loudly instead of silently
    passing a NaN==anything comparison.
    """
    metrics: Dict[str, float] = {"rows": float(len(result.rows))}
    for header in result.headers:
        values = [row.get(header) for row in result.rows]
        if not values or not all(
                isinstance(v, (int, float)) and not isinstance(v, bool)
                for v in values):
            continue
        mean = math.fsum(values) / len(values)
        if math.isfinite(mean):
            metrics[f"mean_{header}"] = mean
    return metrics


def make_entry(result: ExperimentResult, *, wall_s: float,
               events: int) -> Dict[str, Any]:
    """One ``experiments`` entry: canonical payload + provenance.

    ``events_per_sec`` is the headline simulator-throughput figure
    (ROADMAP item 1's perf trajectory); it is None for cached entries —
    a cache hit's wall time measures the cache, not the simulator.
    """
    eps: Optional[float] = None
    if not result.cached and wall_s > 0 and events:
        eps = round(events / wall_s, 1)
    return {
        "wall_s": round(wall_s, 6),
        "events": events,
        "events_per_sec": eps,
        "cached": result.cached,
        "rows": len(result.rows),
        "metrics": headline_metrics(result),
        "result": result.to_dict(),
    }


def make_document(entries: Dict[str, Dict[str, Any]], *, mode: str,
                  jobs: int, fingerprint: str,
                  total_wall_s: float) -> Dict[str, Any]:
    # Aggregate throughput over the *uncached* entries only (same
    # reasoning as per-entry events_per_sec).
    live = [(e.get("events", 0), e.get("wall_s", 0.0))
            for e in entries.values() if not e.get("cached")]
    events = sum(ev for ev, _ in live)
    wall = math.fsum(w for _, w in live)
    return {
        "schema": SCHEMA,
        "mode": mode,
        "jobs": jobs,
        "code_fingerprint": fingerprint,
        "total_wall_s": round(total_wall_s, 3),
        "events_per_sec": round(events / wall, 1) if wall > 0 and events else None,
        "experiments": entries,
    }


def load_document(path: str) -> Dict[str, Any]:
    with open(path, "r", encoding="utf-8") as fh:
        doc = json.load(fh)
    if doc.get("schema") not in COMPAT_SCHEMAS:
        raise ValueError(
            f"{path}: not a {SCHEMA} document "
            f"(schema={doc.get('schema')!r})")
    return doc


# ---------------------------------------------------------------------------
# Tolerances and comparison
# ---------------------------------------------------------------------------

def load_tolerances(path: str) -> Dict[str, Any]:
    """Load a tolerance file: ``default_rel_tol``, ``default_abs_tol``
    and a ``metrics`` map of ``"<exp_id>.<metric>"`` glob patterns to
    relative tolerances."""
    with open(path, "r", encoding="utf-8") as fh:
        tol = json.load(fh)
    tol.setdefault("default_rel_tol", DEFAULT_REL_TOL)
    tol.setdefault("default_abs_tol", DEFAULT_ABS_TOL)
    tol.setdefault("metrics", {})
    return tol


def _pattern_tolerance(name: str,
                       tolerances: Optional[Dict[str, Any]]) -> Optional[float]:
    """The most-specific (longest) matching ``metrics`` pattern, if any."""
    if not tolerances:
        return None
    best: Optional[float] = None
    best_len = -1
    for pattern, rel in tolerances.get("metrics", {}).items():
        if fnmatch.fnmatchcase(name, pattern) and len(pattern) > best_len:
            best, best_len = float(rel), len(pattern)
    return best


def tolerance_for(name: str, tolerances: Optional[Dict[str, Any]]) -> float:
    best = _pattern_tolerance(name, tolerances)
    if best is not None:
        return best
    if not tolerances:
        return DEFAULT_REL_TOL
    return float(tolerances.get("default_rel_tol", DEFAULT_REL_TOL))


@dataclass
class MetricDelta:
    """Outcome for one ``exp_id.metric`` pair."""

    name: str
    baseline: Optional[float]
    current: Optional[float]
    rel_tol: float
    status: str = "ok"          # ok | regressed | missing | added

    @property
    def rel_delta(self) -> float:
        if self.baseline is None or self.current is None:
            return math.inf
        if self.baseline == self.current:     # covers NaN==NaN via repr below
            return 0.0
        if (isinstance(self.baseline, float) and math.isnan(self.baseline)
                and isinstance(self.current, float)
                and math.isnan(self.current)):
            return 0.0
        denom = abs(self.baseline)
        if denom < DEFAULT_ABS_TOL:
            return (0.0 if abs(self.current - self.baseline) < DEFAULT_ABS_TOL
                    else math.inf)
        return abs(self.current - self.baseline) / denom


@dataclass
class Comparison:
    """Full diff of two BENCH documents."""

    deltas: List[MetricDelta] = field(default_factory=list)
    missing_experiments: List[str] = field(default_factory=list)
    added_experiments: List[str] = field(default_factory=list)
    #: Informational throughput lines (events/sec drift); never failing —
    #: wall-clock rate is machine-dependent provenance, not a gated metric.
    throughput_notes: List[str] = field(default_factory=list)

    @property
    def regressions(self) -> List[MetricDelta]:
        return [d for d in self.deltas if d.status in ("regressed", "missing")]

    @property
    def ok(self) -> bool:
        return not self.regressions and not self.missing_experiments

    def format(self, *, verbose: bool = False) -> str:
        lines: List[str] = []
        fails = self.regressions
        for d in sorted(self.deltas, key=lambda d: d.name):
            if d.status == "ok" and not verbose:
                continue
            if d.status == "missing":
                lines.append(f"FAIL {d.name}: metric missing from current run "
                             f"(baseline {d.baseline:.6g})")
            elif d.status == "added":
                lines.append(f"note {d.name}: new metric "
                             f"(current {d.current:.6g}, no baseline)")
            else:
                tag = "FAIL" if d.status == "regressed" else "  ok"
                lines.append(
                    f"{tag} {d.name}: baseline {d.baseline:.6g} -> current "
                    f"{d.current:.6g} (drift {d.rel_delta:.2%}, "
                    f"tol {d.rel_tol:.2%})")
        for exp in self.missing_experiments:
            lines.append(f"FAIL {exp}: experiment missing from current run")
        for exp in self.added_experiments:
            lines.append(f"note {exp}: new experiment (no baseline)")
        lines.extend(self.throughput_notes)
        n_ok = len(self.deltas) - len([d for d in self.deltas
                                       if d.status != "ok"])
        lines.append(f"compared {len(self.deltas)} metric(s): "
                     f"{n_ok} ok, {len(fails)} failing, "
                     f"{len(self.added_experiments)} new experiment(s)")
        return "\n".join(lines)


def compare(current: Dict[str, Any], baseline: Dict[str, Any],
            tolerances: Optional[Dict[str, Any]] = None, *,
            check_events: bool = False,
            max_wall_drift: Optional[float] = None,
            min_events_per_sec: Optional[Dict[str, float]] = None) -> Comparison:
    """Diff ``current`` against ``baseline`` metric-by-metric.

    Every baseline metric must exist in ``current`` and sit within its
    relative tolerance; experiments/metrics only present in ``current``
    are reported but never fail (the trajectory is allowed to grow).
    Wall times, event counts and cache flags are provenance and not
    compared by default; two opt-in gates tighten that:

    * ``check_events`` — per-experiment simulator event counts must
      match the baseline exactly (the simulations are deterministic; a
      drifting event count means the datapath's scheduling behaviour
      changed).  A ``"<exp_id>.events"`` tolerance pattern can relax
      individual experiments.
    * ``max_wall_drift`` — ``total_wall_s`` may exceed the baseline by
      at most this fraction (one-sided: getting faster never fails).
      Catches accidental hot-path regressions, e.g. an observer bus
      publication that stopped being branch-guarded.
    * ``min_events_per_sec`` — per-experiment absolute simulator
      throughput floors (``{"fig11": 150000.0, ...}``) checked against
      the *current* document only; the baseline plays no part.  An
      experiment that is absent, was served from the result cache
      (``events_per_sec`` is null — a cache hit measures the cache, not
      the simulator) or runs below its floor fails.  This is the CI
      guard that keeps the event-core optimizations from silently
      eroding; floors are machine-dependent by nature, so they belong
      in the CI invocation, not in the tolerance file.
    """
    comp = Comparison()
    cur_exps = current.get("experiments", {})
    base_exps = baseline.get("experiments", {})
    comp.missing_experiments = sorted(set(base_exps) - set(cur_exps))
    comp.added_experiments = sorted(set(cur_exps) - set(base_exps))
    for exp_id in sorted(set(base_exps) & set(cur_exps)):
        base_metrics = base_exps[exp_id].get("metrics", {})
        cur_metrics = cur_exps[exp_id].get("metrics", {})
        for metric in sorted(set(base_metrics) | set(cur_metrics)):
            name = f"{exp_id}.{metric}"
            base = base_metrics.get(metric)
            cur = cur_metrics.get(metric)
            delta = MetricDelta(name=name, baseline=base, current=cur,
                                rel_tol=tolerance_for(name, tolerances))
            if base is None:
                delta.status = "added"
            elif cur is None:
                delta.status = "missing"
            elif delta.rel_delta > delta.rel_tol:
                delta.status = "regressed"
            comp.deltas.append(delta)
        if check_events:
            name = f"{exp_id}.events"
            base = base_exps[exp_id].get("events")
            cur = cur_exps[exp_id].get("events")
            if base is not None:
                rel_tol = _pattern_tolerance(name, tolerances) or 0.0
                delta = MetricDelta(name=name, baseline=float(base),
                                    current=None if cur is None
                                    else float(cur), rel_tol=rel_tol)
                if cur is None:
                    delta.status = "missing"
                elif delta.rel_delta > delta.rel_tol:
                    delta.status = "regressed"
                comp.deltas.append(delta)
    if min_events_per_sec:
        for exp_id in sorted(min_events_per_sec):
            floor = float(min_events_per_sec[exp_id])
            name = f"{exp_id}.events_per_sec"
            entry = cur_exps.get(exp_id)
            eps = entry.get("events_per_sec") if entry is not None else None
            delta = MetricDelta(name=name, baseline=floor,
                                current=None if eps is None else float(eps),
                                rel_tol=0.0)
            if eps is None:
                # Absent experiment, or a cached entry: neither measured
                # the simulator, so the floor cannot be attested.
                delta.status = "missing"
            elif float(eps) < floor:
                delta.status = "regressed"  # one-sided: faster is fine
            comp.deltas.append(delta)
    base_eps = baseline.get("events_per_sec")
    cur_eps = current.get("events_per_sec")
    if base_eps and cur_eps:
        drift = cur_eps / base_eps - 1.0
        comp.throughput_notes.append(
            f"note events_per_sec: baseline {base_eps:.6g} -> current "
            f"{cur_eps:.6g} ({drift:+.1%}, informational)")
    elif cur_eps:
        comp.throughput_notes.append(
            f"note events_per_sec: current {cur_eps:.6g} "
            f"(no baseline, informational)")
    if max_wall_drift is not None:
        base_wall = baseline.get("total_wall_s")
        cur_wall = current.get("total_wall_s")
        if base_wall:
            delta = MetricDelta(name="total_wall_s", baseline=float(base_wall),
                                current=None if cur_wall is None
                                else float(cur_wall),
                                rel_tol=float(max_wall_drift))
            if cur_wall is None:
                delta.status = "missing"
            elif float(cur_wall) > float(base_wall) * (1.0 + max_wall_drift):
                delta.status = "regressed"  # one-sided: faster is fine
            comp.deltas.append(delta)
    return comp
