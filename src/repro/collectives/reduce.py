"""Many-to-one reduction (the paper's stated future work, §VIII).

The paper closes with: "we plan to extend Cepheus for more collective
communication primitives, such as many-to-one (e.g., MPI-Reduce)".
This module provides the host-side reduction half that composes with
the Cepheus broadcast:

* :class:`BinomialReduce` — the mirror image of the binomial broadcast:
  partial sums combine pairwise up a binomial tree in ceil(log2 N)
  rounds.  Each combining step pays a per-byte compute cost (vector
  addition is memory-bound), which is the realistic limiter for large
  gradients.
* :class:`RingReduceScatter` — each rank ends with the fully-reduced
  1/N-th shard of the vector after N-1 pipelined steps; the classic
  bandwidth-optimal first half of ring allreduce.

:class:`repro.collectives.allreduce.AllReduce` composes these with a
broadcast/allgather phase; the Cepheus-accelerated composition is the
Parameter-Server pattern from the paper's introduction (gradients
aggregate toward the PS, the update is *multicast* back out).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, Dict, List, Optional

from repro.apps.cluster import Cluster
from repro.collectives.binomial import binomial_children
from repro.errors import ConfigurationError

__all__ = ["ReduceResult", "BinomialReduce", "RingReduceScatter",
           "REDUCE_COMPUTE_BPS"]

#: Combining rate for the elementwise reduction (memory-bound vector
#: add: read two operands + write one at ~50 GB/s effective).
REDUCE_COMPUTE_BPS: float = 50e9 * 8


@dataclass
class ReduceResult:
    """Outcome of one reduction."""

    algorithm: str
    root: int
    size: int
    start: float
    done: Optional[float] = None
    combines: int = 0

    @property
    def duration(self) -> float:
        if self.done is None:
            raise ConfigurationError("reduction never completed")
        return self.done - self.start


class _ReduceBase:
    """Common plumbing for host-level reductions."""

    name = "abstract-reduce"

    def __init__(self, cluster: Cluster, members: List[int],
                 root: Optional[int] = None) -> None:
        if len(members) < 2:
            raise ConfigurationError("reduce needs at least 2 members")
        self.cluster = cluster
        self.root = members[0] if root is None else root
        if self.root not in members:
            raise ConfigurationError(f"root {self.root} not in members")
        self.ranks = [self.root] + [m for m in members if m != self.root]
        self._prepared = False

    def prepare(self) -> None:
        if not self._prepared:
            self._setup()
            self._prepared = True

    def run(self, size: int) -> ReduceResult:
        self.prepare()
        sim = self.cluster.sim
        result = ReduceResult(self.name, self.root, size, start=sim.now)
        self._launch(size, result)
        sim.run()
        if result.done is None:
            raise ConfigurationError(f"{self.name}: reduction stalled")
        return result

    def _combine_delay(self, nbytes: int) -> float:
        return nbytes * 8.0 / REDUCE_COMPUTE_BPS

    def _setup(self) -> None:
        raise NotImplementedError

    def _launch(self, size: int, result: ReduceResult) -> None:
        raise NotImplementedError


class BinomialReduce(_ReduceBase):
    """Pairwise combining up the binomial tree (MPI_Reduce default)."""

    name = "binomial-reduce"

    def _setup(self) -> None:
        for rank, ip in enumerate(self.ranks):
            for child in binomial_children(rank, len(self.ranks)):
                self.cluster.qp_pair(ip, self.ranks[child])

    def _launch(self, size: int, result: ReduceResult) -> None:
        sim = self.cluster.sim
        stack = self.cluster.stack
        n = len(self.ranks)
        # Each parent waits for all of its children's partial vectors,
        # combining as they arrive; leaves send immediately.
        pending: Dict[int, int] = {
            r: len(binomial_children(r, n)) for r in range(n)
        }

        def send_up(rank: int) -> None:
            if rank == 0:
                result.done = sim.now + stack.recv
                return
            parent = rank - (1 << (rank.bit_length() - 1))
            ip, pip = self.ranks[rank], self.ranks[parent]
            sim.schedule(stack.send,
                         self.cluster.qp_to(ip, pip).post_send, size)

        def on_partial(rank: int):
            def handler(mid: int, sz: int, now: float, meta) -> None:
                result.combines += 1
                delay = stack.recv + self._combine_delay(sz)

                def combined() -> None:
                    pending[rank] -= 1
                    if pending[rank] == 0:
                        send_up(rank)

                sim.schedule(delay, combined)
            return handler

        for rank in range(n):
            for child in binomial_children(rank, n):
                self.cluster.qp_to(
                    self.ranks[rank], self.ranks[child]
                ).on_message = on_partial(rank)
            if pending[rank] == 0:
                send_up(rank)


class RingReduceScatter(_ReduceBase):
    """Pipelined ring reduce-scatter: after N-1 steps, rank i holds the
    fully-reduced shard i.  Completion = every shard reduced."""

    name = "ring-reduce-scatter"

    def _setup(self) -> None:
        n = len(self.ranks)
        for i in range(n):
            self.cluster.qp_pair(self.ranks[i], self.ranks[(i + 1) % n])

    def _shards(self, size: int) -> List[int]:
        n = min(len(self.ranks), size)
        base, rem = divmod(size, n)
        return [base + (1 if i < rem else 0) for i in range(n)]

    def _launch(self, size: int, result: ReduceResult) -> None:
        sim = self.cluster.sim
        stack = self.cluster.stack
        n = len(self.ranks)
        shards = self._shards(size)
        nshards = len(shards)
        remaining = {"n": nshards}

        def forward(rank: int, shard: int, hops: int) -> None:
            nxt = (rank + 1) % n
            self.cluster.qp_to(self.ranks[rank], self.ranks[nxt]).post_send(
                shards[shard], meta=(shard, hops + 1))

        def on_piece(rank: int):
            def handler(mid: int, sz: int, now: float, meta) -> None:
                shard, hops = meta
                result.combines += 1
                delay = stack.recv + self._combine_delay(sz) + stack.send
                if hops >= n - 1:
                    remaining["n"] -= 1
                    if remaining["n"] == 0:
                        result.done = now + stack.recv + \
                            self._combine_delay(sz)
                    return
                sim.schedule(delay, forward, rank, shard, hops)
            return handler

        for rank in range(n):
            prev = self.ranks[(rank - 1) % n]
            self.cluster.qp_to(self.ranks[rank], prev).on_message = \
                on_piece(rank)

        def start() -> None:
            # In step 0, rank i injects shard (i+1) mod nshards toward
            # its successor; shard s then travels n-1 hops, combining at
            # every stop, and finishes at rank s.
            for rank in range(n):
                shard = (rank + 1) % nshards
                forward(rank, shard, 0)

        sim.schedule(stack.send, start)
