"""The remaining MPI collectives (§VIII: "more collective communication
primitives, such as many-to-one (e.g., MPI-Reduce) and many-to-many
(e.g., MPI-Alltoall)").

Host-level implementations of the standard algorithms, plus the
Cepheus-accelerated variants where the communication is broadcast-
shaped:

* :class:`Scatter` — root sends distinct shards (sequential blocking
  sends; distinct data cannot be multicast);
* :class:`Gather` — everyone sends its shard to the root concurrently;
* :class:`Allgather` — ring algorithm, or ``engine="cepheus"``:
  N multicast rounds over **one** group whose source rotates per round
  (§III-E source switching doing real work: no re-registration, ever);
* :class:`Alltoall` — personalized pairwise exchange over an XOR
  schedule (distinct data per pair: inherently unicast);
* :class:`Barrier` — dissemination barrier, or ``engine="cepheus"``:
  an in-network 1-byte reduce to the root followed by a 1-byte
  multicast (two wire-times end-to-end).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional

from repro.apps.cluster import Cluster
from repro.errors import ConfigurationError

__all__ = ["CollectiveResult", "Scatter", "Gather", "Allgather",
           "Alltoall", "Barrier"]


@dataclass
class CollectiveResult:
    """Timing of one collective operation."""

    operation: str
    engine: str
    size: int            # per-rank payload bytes
    duration: float
    rounds: int = 0


class _CollectiveBase:
    """Shared member/rank bookkeeping."""

    name = "abstract"

    def __init__(self, cluster: Cluster, members: List[int],
                 root: Optional[int] = None) -> None:
        if len(members) < 2:
            raise ConfigurationError(f"{self.name} needs at least 2 members")
        self.cluster = cluster
        self.root = members[0] if root is None else root
        if self.root not in members:
            raise ConfigurationError(f"root {self.root} not in members")
        self.ranks = [self.root] + [m for m in members if m != self.root]

    @property
    def n(self) -> int:
        return len(self.ranks)

    def _drain(self) -> None:
        self.cluster.sim.run()


class Scatter(_CollectiveBase):
    """Root distributes shard *i* to rank *i* (MPI_Scatter)."""

    name = "scatter"

    def run(self, shard_size: int) -> CollectiveResult:
        sim = self.cluster.sim
        stack = self.cluster.stack
        t0 = sim.now
        done = {"n": self.n - 1, "t": t0}

        def landed(mid: int, sz: int, now: float, meta) -> None:
            done["n"] -= 1
            done["t"] = max(done["t"], now + stack.recv)

        def post(idx: int) -> None:
            if idx >= self.n:
                return
            ip = self.ranks[idx]
            self.cluster.qp_to(ip, self.root).on_message = landed
            self.cluster.qp_to(self.root, ip).post_send(
                shard_size, on_sent=lambda mid, now: post(idx + 1))

        sim.schedule(stack.send, post, 1)
        self._drain()
        if done["n"] != 0:
            raise ConfigurationError("scatter stalled")
        return CollectiveResult(self.name, "host", shard_size,
                                done["t"] - t0, rounds=self.n - 1)


class Gather(_CollectiveBase):
    """Everyone ships its shard to the root (MPI_Gather)."""

    name = "gather"

    def run(self, shard_size: int) -> CollectiveResult:
        sim = self.cluster.sim
        stack = self.cluster.stack
        t0 = sim.now
        done = {"n": self.n - 1, "t": t0}

        def landed(mid: int, sz: int, now: float, meta) -> None:
            done["n"] -= 1
            done["t"] = max(done["t"], now + stack.recv)

        def start() -> None:
            for ip in self.ranks[1:]:
                self.cluster.qp_to(self.root, ip).on_message = landed
                self.cluster.qp_to(ip, self.root).post_send(shard_size)

        sim.schedule(stack.send, start)
        self._drain()
        if done["n"] != 0:
            raise ConfigurationError("gather stalled")
        return CollectiveResult(self.name, "host", shard_size,
                                done["t"] - t0, rounds=1)


class Allgather(_CollectiveBase):
    """Every rank ends with every shard (MPI_Allgather).

    ``engine="ring"``: the classic N-1 step ring.
    ``engine="cepheus"``: N multicast rounds over one rotating-source
    group — every round is one wire-time, so the whole allgather costs
    ~N shard-times plus N source switches (which are free, §III-E).
    """

    name = "allgather"

    def __init__(self, cluster: Cluster, members: List[int],
                 engine: str = "ring") -> None:
        super().__init__(cluster, members)
        if engine not in ("ring", "cepheus"):
            raise ConfigurationError(f"unknown allgather engine {engine!r}")
        self.engine = engine
        self._bcast = None
        if engine == "cepheus":
            from repro.collectives.cepheus_bcast import CepheusBcast
            self._bcast = CepheusBcast(cluster, self.ranks, self.root)
            self._bcast.prepare()

    def run(self, shard_size: int) -> CollectiveResult:
        if self.engine == "cepheus":
            return self._run_cepheus(shard_size)
        return self._run_ring(shard_size)

    def _run_cepheus(self, shard_size: int) -> CollectiveResult:
        sim = self.cluster.sim
        t0 = sim.now
        for ip in self.ranks:
            self._bcast.set_source(ip)
            self._bcast.run(shard_size)
        return CollectiveResult(self.name, "cepheus", shard_size,
                                sim.now - t0, rounds=self.n)

    def _run_ring(self, shard_size: int) -> CollectiveResult:
        sim = self.cluster.sim
        stack = self.cluster.stack
        n = self.n
        t0 = sim.now
        remaining = {"n": n * (n - 1), "t": t0}

        def forward(rank: int, shard: int, hops: int) -> None:
            nxt = (rank + 1) % n
            self.cluster.qp_to(self.ranks[rank], self.ranks[nxt]).post_send(
                shard_size, meta=(shard, hops + 1))

        def on_piece(rank: int):
            def handler(mid: int, sz: int, now: float, meta) -> None:
                shard, hops = meta
                remaining["n"] -= 1
                remaining["t"] = max(remaining["t"], now + stack.recv)
                if hops < n - 1:
                    sim.schedule(stack.relay, forward, rank, shard, hops)
            return handler

        for rank in range(n):
            prev = self.ranks[(rank - 1) % n]
            self.cluster.qp_to(self.ranks[rank], prev).on_message = \
                on_piece(rank)

        def start() -> None:
            for rank in range(n):
                forward(rank, rank, 0)

        sim.schedule(stack.send, start)
        self._drain()
        if remaining["n"] != 0:
            raise ConfigurationError("allgather stalled")
        return CollectiveResult(self.name, "ring", shard_size,
                                remaining["t"] - t0, rounds=n - 1)


class Alltoall(_CollectiveBase):
    """Personalized exchange: rank i sends a distinct shard to every j.

    XOR pairwise schedule (n rounds for power-of-two groups, n rounds
    with idle slots otherwise); inherently unicast — the §VIII item the
    paper leaves fully open.
    """

    name = "alltoall"

    def run(self, shard_size: int) -> CollectiveResult:
        sim = self.cluster.sim
        stack = self.cluster.stack
        n = self.n
        t0 = sim.now
        # round-robin over XOR partners; total messages n*(n-1)
        rounds = 1
        while rounds < n:
            rounds <<= 1  # next power of two
        state = {"pending": 0, "round": 0, "t": t0}

        def run_round() -> None:
            r = state["round"]
            if r >= rounds:
                return
            state["round"] += 1
            pairs = []
            for i in range(n):
                j = i ^ r
                if j < n and j != i:
                    pairs.append((i, j))
            if not pairs:
                sim.schedule(0.0, run_round)
                return
            state["pending"] = len(pairs)
            for i, j in pairs:
                src, dst = self.ranks[i], self.ranks[j]

                def landed(mid, sz, now, meta) -> None:
                    state["pending"] -= 1
                    state["t"] = max(state["t"], now + stack.recv)
                    if state["pending"] == 0:
                        sim.schedule(stack.relay, run_round)

                self.cluster.qp_to(dst, src).on_message = landed
                self.cluster.qp_to(src, dst).post_send(shard_size)

        sim.schedule(stack.send, run_round)
        self._drain()
        if state["round"] < rounds or state["pending"] != 0:
            raise ConfigurationError("alltoall stalled")
        return CollectiveResult(self.name, "host", shard_size,
                                state["t"] - t0, rounds=rounds - 1)


class Barrier(_CollectiveBase):
    """Synchronize all members.

    ``engine="dissemination"``: ceil(log2 n) rounds of 1-byte exchanges.
    ``engine="cepheus"``: in-network 1-byte reduce to the root, then a
    1-byte multicast — two wire-times regardless of group size.
    """

    name = "barrier"

    def __init__(self, cluster: Cluster, members: List[int],
                 engine: str = "dissemination") -> None:
        super().__init__(cluster, members)
        if engine not in ("dissemination", "cepheus"):
            raise ConfigurationError(f"unknown barrier engine {engine!r}")
        self.engine = engine
        self._reduce = None
        self._bcast = None
        if engine == "cepheus":
            from repro.collectives.cepheus_bcast import CepheusBcast
            from repro.ext.inreduce import InNetworkReduce
            self._reduce = InNetworkReduce(cluster, self.ranks, self.root)
            self._reduce.prepare()
            self._bcast = CepheusBcast(cluster, self.ranks, self.root)
            self._bcast.prepare()

    def run(self) -> CollectiveResult:
        if self.engine == "cepheus":
            sim = self.cluster.sim
            t0 = sim.now
            self._reduce.run(1)   # everyone checked in
            self._bcast.run(1)    # everyone released
            return CollectiveResult(self.name, "cepheus", 1,
                                    sim.now - t0, rounds=2)
        return self._run_dissemination()

    def _run_dissemination(self) -> CollectiveResult:
        sim = self.cluster.sim
        stack = self.cluster.stack
        n = self.n
        t0 = sim.now
        rounds = max(1, (n - 1).bit_length())
        got: Dict[int, int] = {r: 0 for r in range(n)}
        state = {"round": 0, "pending": 0, "t": t0}

        def run_round() -> None:
            r = state["round"]
            if r >= rounds:
                return
            state["round"] += 1
            dist = 1 << r
            state["pending"] = n
            for i in range(n):
                j = (i + dist) % n
                src, dst = self.ranks[i], self.ranks[j]

                def landed(mid, sz, now, meta, _j=j) -> None:
                    state["pending"] -= 1
                    state["t"] = max(state["t"], now + stack.recv)
                    if state["pending"] == 0:
                        sim.schedule(stack.relay, run_round)

                self.cluster.qp_to(dst, src).on_message = landed
                self.cluster.qp_to(src, dst).post_send(1)

        sim.schedule(stack.send, run_round)
        self._drain()
        if state["round"] < rounds or state["pending"] != 0:
            raise ConfigurationError("barrier stalled")
        return CollectiveResult(self.name, "dissemination", 1,
                                state["t"] - t0, rounds=rounds)
