"""Chain (pipelined) broadcast — the throughput-oriented AMcast baseline.

Nodes form a logical chain (§II-C, Fig. 1c); the message is cut into
``slices`` pieces and every intermediate node relays each slice to its
successor as soon as it lands, so all links stream concurrently once
the pipeline fills.  Latency is linear in the chain length — fatal for
small messages (Fig. 8) and for large groups (the 164x short-flow gap
of Fig. 12) — and every slice pays the end-host stack at every hop,
which is why practical deployments cap the slice count (the paper, like
common practice, uses 4 slices = #hosts in §V-A).

``IncreasingRingBcast`` is HPL's default Panel-Broadcast variant
(``increasing-ring``): the same chain shape without slicing.
"""

from __future__ import annotations

from typing import Dict, List, Optional

from repro.apps.cluster import Cluster
from repro.collectives.base import BroadcastAlgorithm, BroadcastResult
from repro.errors import ConfigurationError

__all__ = ["ChainBcast", "IncreasingRingBcast"]


class ChainBcast(BroadcastAlgorithm):
    """Pipelined chain with a configurable slice count."""

    name = "chain"

    def __init__(self, cluster: Cluster, members: List[int],
                 root: Optional[int] = None, *, slices: int = 4,
                 min_slice: int = 4096) -> None:
        """``slices`` follows the paper's convention (= #hosts in the
        common configuration); ``min_slice`` stops small messages from
        being shredded into per-byte fragments — no implementation
        slices below a few KB because each slice costs a relay-stack
        traversal at every hop."""
        super().__init__(cluster, members, root)
        if slices < 1:
            raise ConfigurationError(f"slice count must be >= 1, got {slices}")
        if min_slice < 1:
            raise ConfigurationError(f"min_slice must be >= 1, got {min_slice}")
        self.slices = slices
        self.min_slice = min_slice

    def _setup(self) -> None:
        for i in range(self.n - 1):
            self.cluster.qp_pair(self.ranks[i], self.ranks[i + 1])

    def _slice_sizes(self, size: int) -> List[int]:
        """Cut ``size`` into (at most) ``slices`` non-empty pieces of at
        least ``min_slice`` bytes (single slice for small messages)."""
        k = max(1, min(self.slices, size // self.min_slice, size))
        base, rem = divmod(size, k)
        return [base + (1 if i < rem else 0) for i in range(k)]

    def _launch(self, size: int, result: BroadcastResult) -> None:
        sim = self.cluster.sim
        stack = self.cluster.stack
        sizes = self._slice_sizes(size)
        nslices = len(sizes)
        received: Dict[int, int] = {ip: 0 for ip in self.ranks[1:]}

        def forward(rank: int, slice_idx: int) -> None:
            """Node ``rank`` posts slice ``slice_idx`` to its successor."""
            ip, nxt = self.ranks[rank], self.ranks[rank + 1]
            qp = self.cluster.qp_to(ip, nxt)
            qp.post_send(sizes[slice_idx], meta=slice_idx)

        def on_delivery(rank: int):
            ip = self.ranks[rank]

            def handler(mid: int, sz: int, now: float, meta) -> None:
                received[ip] += 1
                if received[ip] == nslices:
                    self._record_delivery(result, ip, now)
                if rank + 1 < self.n:
                    # Intermediate node: pay the relay stack per slice.
                    sim.schedule(stack.relay, forward, rank, meta)

            return handler

        for rank in range(1, self.n):
            prev = self.ranks[rank - 1]
            self.cluster.qp_to(self.ranks[rank], prev).on_message = on_delivery(rank)

        def start_root() -> None:
            for s in range(nslices):
                forward(0, s)

        sim.schedule(stack.send, start_root)


class IncreasingRingBcast(ChainBcast):
    """HPL's ``increasing-ring`` Panel Broadcast: an unsliced chain."""

    name = "increasing-ring"

    def __init__(self, cluster: Cluster, members: List[int],
                 root: Optional[int] = None) -> None:
        super().__init__(cluster, members, root, slices=1)
