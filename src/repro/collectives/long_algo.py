"""The "long" broadcast — HPL's recommended Row-Swap algorithm.

HPL's ``long`` (spread-and-roll) variant is a bandwidth-reducing
broadcast: the root *scatters* N distinct pieces across the ring, then
an (N-1)-step ring *allgather* rolls every piece past every node.  Each
node transmits ~``size/N`` bytes per step, so no single link carries
the whole message twice — better than BT for the long panels of the
Update phase, which is why HPL recommends it for RS (§V-B2).

Cepheus replaces this with a single multicast and wins 18 % of RS
communication time (Fig. 11b); this implementation is the baseline side
of that comparison.
"""

from __future__ import annotations

from typing import Dict, List, Optional

from repro.apps.cluster import Cluster
from repro.collectives.base import BroadcastAlgorithm, BroadcastResult
from repro.errors import ConfigurationError

__all__ = ["LongBcast"]


class LongBcast(BroadcastAlgorithm):
    """Scatter + ring-allgather ("spread and roll").

    ``pieces_per_node`` controls pipelining granularity: the message is
    cut into ``pieces_per_node * N`` pieces so ring forwarding overlaps
    with the scatter (1 reproduces coarse store-and-forward behaviour;
    HPL's production implementation overlaps aggressively, so 4 is the
    default).
    """

    name = "long"

    def __init__(self, cluster: Cluster, members: List[int],
                 root: Optional[int] = None, *,
                 pieces_per_node: int = 4) -> None:
        super().__init__(cluster, members, root)
        if pieces_per_node < 1:
            raise ConfigurationError(
                f"pieces_per_node must be >= 1, got {pieces_per_node}")
        self.pieces_per_node = pieces_per_node

    def _setup(self) -> None:
        n = self.n
        for rank in range(n):  # ring edges
            self.cluster.qp_pair(self.ranks[rank], self.ranks[(rank + 1) % n])
        for rank in range(1, n):  # scatter edges
            self.cluster.qp_pair(self.root, self.ranks[rank])

    def _piece_sizes(self, size: int) -> List[int]:
        k = min(self.n * self.pieces_per_node, size)
        base, rem = divmod(size, k)
        return [base + (1 if i < rem else 0) for i in range(k)]

    def _launch(self, size: int, result: BroadcastResult) -> None:
        sim = self.cluster.sim
        stack = self.cluster.stack
        sizes = self._piece_sizes(size)
        npieces = len(sizes)
        n = self.n
        # Piece meta travels with the message: (piece_id, hops_so_far).
        have: Dict[int, int] = {ip: 0 for ip in self.ranks[1:]}

        def forward(rank: int, piece: int, hops: int) -> None:
            """Roll ``piece`` one step around the ring."""
            if hops >= n - 1:
                return  # the piece has visited everyone
            nxt = self.ranks[(rank + 1) % n]
            qp = self.cluster.qp_to(self.ranks[rank], nxt)
            qp.post_send(sizes[piece], meta=(piece, hops + 1, "roll"))

        def got_piece(rank: int, piece: int, hops: int, now: float) -> None:
            ip = self.ranks[rank]
            if rank != 0:
                have[ip] += 1
                if have[ip] == npieces:
                    self._record_delivery(result, ip, now)
            sim.schedule(stack.relay, forward, rank, piece, hops)

        def handler_for(rank: int):
            def handler(mid: int, sz: int, now: float, meta) -> None:
                piece, hops, _ = meta
                got_piece(rank, piece, hops, now)
            return handler

        # Receive handlers: scatter arrives from the root; rolls arrive
        # from the ring predecessor.
        for rank in range(1, n):
            ip = self.ranks[rank]
            self.cluster.qp_to(ip, self.root).on_message = handler_for(rank)
        for rank in range(n):
            ip = self.ranks[rank]
            prev = self.ranks[(rank - 1) % n]
            self.cluster.qp_to(ip, prev).on_message = handler_for(rank)

        def start_root() -> None:
            # Scatter piece p to rank p % N (the root keeps its own
            # residue class and starts rolling those pieces directly).
            # Posts are chained sequentially off local send completions —
            # a blocking scatter — so early pieces leave early and the
            # ring can start rolling while the scatter continues.
            def post_piece(piece: int) -> None:
                if piece >= npieces:
                    return
                chain = lambda mid, now: post_piece(piece + 1)
                origin = piece % n
                if origin == 0:
                    qp = self.cluster.qp_to(self.root, self.ranks[1 % n])
                    qp.post_send(sizes[piece], meta=(piece, 1, "roll"),
                                 on_sent=chain)
                else:
                    self.cluster.qp_to(self.root, self.ranks[origin]).post_send(
                        sizes[piece], meta=(piece, 0, "scatter"), on_sent=chain)

            post_piece(0)

        sim.schedule(stack.send, start_root)
