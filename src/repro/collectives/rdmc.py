"""RDMC-style binomial pipeline broadcast (Behrens et al., DSN'18).

RDMC is the large-message AMcast specialist the paper compares against
in §V-A: the message is cut into fixed-size blocks (1 MB in RDMC) and
the blocks flow through a *binomial pipeline* — synchronized steps in
which nodes exchange one block with their hypercube neighbour on the
rotating dimension.  With B blocks over N=2^d nodes the schedule needs
about ``d + B - 1`` steps, i.e. near-optimal bandwidth with logarithmic
ramp-up, but every step is gated on receiver-driven synchronization
(RDMC sends blocks only when the receiver is known ready), modelled
here as a per-step overhead.

The step schedule is computed greedily: on dimension ``step mod d``
each node sends its partner the newest block the partner lacks (the
root injects blocks oldest-first).  This reproduces the binomial
pipeline's behaviour for power-of-two groups; other sizes fold the
excess nodes into an extra chain hop off their hypercube image, which
is also what RDMC does.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Set

from repro.apps.cluster import Cluster
from repro.collectives.base import BroadcastAlgorithm, BroadcastResult
from repro.errors import ConfigurationError

__all__ = ["RdmcBcast"]

#: Default RDMC block size (the RDMC paper's choice).
DEFAULT_BLOCK = 1 << 20
#: Per-step synchronization overhead: receiver-readiness signalling +
#: step barrier.  Calibrated so a 4-node 256 MB broadcast lands near the
#: paper's ~35 ms RDMC figure (§V-A 'Comparison to RDMC').
DEFAULT_STEP_OVERHEAD = 45e-6


class RdmcBcast(BroadcastAlgorithm):
    """Synchronous stepped binomial pipeline."""

    name = "rdmc"

    def __init__(self, cluster: Cluster, members: List[int],
                 root: Optional[int] = None, *,
                 block_size: int = DEFAULT_BLOCK,
                 step_overhead: float = DEFAULT_STEP_OVERHEAD) -> None:
        super().__init__(cluster, members, root)
        if block_size < 1:
            raise ConfigurationError(f"block size must be positive: {block_size}")
        self.block_size = block_size
        self.step_overhead = step_overhead
        # Hypercube dimension of the power-of-two core group.
        self.d = max(1, (self.n).bit_length() - 1)
        self.core = 1 << self.d  # largest power of two <= n
        self.steps_taken = 0

    def _setup(self) -> None:
        # Hypercube edges among the core group.
        for rank in range(self.core):
            for j in range(self.d):
                peer = rank ^ (1 << j)
                if rank < peer < self.core:
                    self.cluster.qp_pair(self.ranks[rank], self.ranks[peer])
        # Excess nodes hang off their image in the core group.
        for rank in range(self.core, self.n):
            self.cluster.qp_pair(self.ranks[rank - self.core], self.ranks[rank])

    # ------------------------------------------------------------------

    def _block_sizes(self, size: int) -> List[int]:
        nblocks = max(1, (size + self.block_size - 1) // self.block_size)
        base, rem = divmod(size, nblocks)
        return [base + (1 if i < rem else 0) for i in range(nblocks)]

    def _launch(self, size: int, result: BroadcastResult) -> None:
        sim = self.cluster.sim
        stack = self.cluster.stack
        sizes = self._block_sizes(size)
        nblocks = len(sizes)
        have: List[Set[int]] = [set() for _ in range(self.n)]
        have[0] = set(range(nblocks))
        self.steps_taken = 0

        def finished(rank: int) -> bool:
            return len(have[rank]) == nblocks

        def pick_block(src: int, dst: int) -> Optional[int]:
            gap = have[src] - have[dst]
            if not gap:
                return None
            if src == 0:
                # The root injects each block into the pipeline once
                # (oldest block nobody holds yet); only when everything
                # is injected does it help with cleanup.
                injected = set().union(*have[1:]) if self.n > 1 else set()
                fresh = gap - injected
                return min(fresh) if fresh else min(gap)
            # Relays propagate their newest block (binomial pipeline rule).
            return max(gap)

        def step() -> None:
            if all(finished(r) for r in range(1, self.n)):
                return
            j = self.steps_taken % self.d
            self.steps_taken += 1
            transfers = []  # (src_rank, dst_rank, block)
            for rank in range(self.core):
                peer = rank ^ (1 << j)
                if peer >= self.core or rank > peer:
                    continue
                for src, dst in ((rank, peer), (peer, rank)):
                    blk = pick_block(src, dst)
                    if blk is not None:
                        transfers.append((src, dst, blk))
            # Excess nodes receive from their core image every step.
            for rank in range(self.core, self.n):
                img = rank - self.core
                blk = pick_block(img, rank)
                if blk is not None:
                    transfers.append((img, rank, blk))
            if not transfers:
                # Degenerate barrier (nothing exchangeable this dim):
                # rotate to the next dimension immediately.
                sim.schedule(0.0, step)
                return
            pending = {"n": len(transfers)}

            def one_done(dst_rank: int, blk: int):
                def handler(mid: int, sz: int, now: float, meta) -> None:
                    have[dst_rank].add(blk)
                    ip = self.ranks[dst_rank]
                    if finished(dst_rank):
                        self._record_delivery(result, ip, now)
                    pending["n"] -= 1
                    if pending["n"] == 0:
                        # Step barrier + receiver-readiness signalling.
                        sim.schedule(self.step_overhead, step)
                return handler

            for src, dst, blk in transfers:
                src_ip, dst_ip = self.ranks[src], self.ranks[dst]
                self.cluster.qp_to(dst_ip, src_ip).on_message = one_done(dst, blk)
                self.cluster.qp_to(src_ip, dst_ip).post_send(sizes[blk], meta=blk)

        sim.schedule(stack.send, step)
