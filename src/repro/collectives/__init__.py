"""Broadcast algorithms: the Cepheus primitive + every AMcast baseline
the paper evaluates against (§II-C, §V)."""

from repro.collectives.allreduce import AllReduce, AllReduceResult
from repro.collectives.base import BroadcastAlgorithm, BroadcastResult
from repro.collectives.binomial import BinomialTreeBcast, binomial_children
from repro.collectives.cepheus_bcast import CepheusBcast
from repro.collectives.chain import ChainBcast, IncreasingRingBcast
from repro.collectives.long_algo import LongBcast
from repro.collectives.mpi_ops import (Allgather, Alltoall, Barrier,
                                       CollectiveResult, Gather, Scatter)
from repro.collectives.rdmc import RdmcBcast
from repro.collectives.reduce import (BinomialReduce, ReduceResult,
                                      RingReduceScatter)
from repro.collectives.unicast import MultiUnicastBcast

__all__ = [
    "AllReduce", "AllReduceResult",
    "BroadcastAlgorithm", "BroadcastResult",
    "BinomialReduce", "RingReduceScatter", "ReduceResult",
    "BinomialTreeBcast", "binomial_children",
    "CepheusBcast",
    "ChainBcast", "IncreasingRingBcast",
    "LongBcast",
    "Scatter", "Gather", "Allgather", "Alltoall", "Barrier",
    "CollectiveResult",
    "RdmcBcast",
    "MultiUnicastBcast",
]
