"""The Cepheus broadcast primitive.

One RoCE message into the fabric; the MDT replicates it, leaf switches
bridge the connections, and the aggregated feedback stream drives the
sender's unmodified RC engine (§III).  ``prepare`` performs MFT
registration (control-plane, excluded from JCT like every other
scheme's connection setup); ``run`` posts exactly one message on the
current source's QP.

Includes the §V-D safeguard fallback: a registration failure, or a
mid-flight goodput collapse detected by the
:class:`~repro.core.fallback.SafeguardMonitor`, makes the collective
re-issue the broadcast over a plain AMcast algorithm (Chain by
default).
"""

from __future__ import annotations

from typing import Callable, Dict, List, Optional

from repro import constants
from repro.apps.cluster import Cluster
from repro.collectives.base import BroadcastAlgorithm, BroadcastResult
from repro.collectives.chain import ChainBcast
from repro.core.fallback import SafeguardMonitor
from repro.core.group import MulticastGroup
from repro.core.source_switch import SourceSwitchCoordinator
from repro.errors import ConfigurationError, RegistrationError
from repro.transport.roce import RoceQP
from repro.transport.spray import (LaneHealthMonitor, LaneReassembler,
                                   LaneSprayer)

__all__ = ["CepheusBcast"]


class CepheusBcast(BroadcastAlgorithm):
    """In-network multicast over one RC connection per member."""

    name = "cepheus"

    def __init__(
        self,
        cluster: Cluster,
        members: List[int],
        root: Optional[int] = None,
        *,
        safeguard: bool = False,
        expected_bps: Optional[float] = None,
        fallback_factory: Optional[Callable[[], BroadcastAlgorithm]] = None,
        recovery: str = "amcast",
        paths: int = 1,
        lane_stall_timeout: float = 3e-3,
    ) -> None:
        """``recovery`` selects the safeguard action: ``"amcast"`` re-runs
        the payload over the fallback algorithm (§V-D), ``"partial"``
        implements the paper's envisioned fine-grained fallback — probe
        membership, re-form the multicast group around the survivors,
        and re-send in-network, reporting the unreachable members.

        ``paths=k`` turns on MRC-style k-path spraying: the group
        becomes a k-lane McstID family, every member gets one RC
        connection per lane, and each broadcast is striped over the
        lanes' PSN sub-ranges.  A lane whose acknowledgements stall for
        ``lane_stall_timeout`` is declared dead and its share re-sprayed
        across the surviving lanes (no group-wide go-back-N).
        ``paths=1`` is bit-for-bit the classic single-tree broadcast."""
        super().__init__(cluster, members, root)
        if cluster.fabric is None:
            raise ConfigurationError(
                "CepheusBcast needs a Cepheus-enabled cluster (cepheus=True)")
        if recovery not in ("amcast", "partial"):
            raise ConfigurationError(f"unknown recovery mode {recovery!r}")
        if paths < 1:
            raise ConfigurationError(f"paths must be >= 1, got {paths}")
        if paths > 1 and safeguard:
            raise ConfigurationError(
                "the safeguard fallback is single-lane only; k-path "
                "spraying recovers per lane instead")
        self.paths = paths
        self.lane_stall_timeout = lane_stall_timeout
        self.safeguard = safeguard
        self.expected_bps = expected_bps or constants.LINK_BANDWIDTH_BPS
        self.fallback_factory = fallback_factory or (
            lambda: ChainBcast(cluster, list(self.ranks), self.root))
        self.recovery = recovery
        self.group: Optional[MulticastGroup] = None
        self.coordinator: Optional[SourceSwitchCoordinator] = None
        self.qps: Dict[int, RoceQP] = {}
        self.sprayer: Optional[LaneSprayer] = None
        self.health: Optional[LaneHealthMonitor] = None
        self.reassemblers: Dict[int, LaneReassembler] = {}
        self.fell_back = False
        self.fallback_reason: Optional[str] = None
        self.unreachable: set = set()
        self._fallback_algo: Optional[BroadcastAlgorithm] = None

    # -- setup ----------------------------------------------------------------

    def _setup(self) -> None:
        fabric = self.cluster.fabric
        self.qps = {ip: self.cluster.ctx(ip).create_qp() for ip in self.ranks}
        if self.paths == 1:
            self.group = fabric.create_group(self.qps, leader_ip=self.root)
        else:
            lane_members = [self.qps] + [
                {ip: self.cluster.ctx(ip).create_qp() for ip in self.ranks}
                for _ in range(self.paths - 1)
            ]
            self.group = fabric.create_group(
                self.qps, leader_ip=self.root, lane_members=lane_members)
        try:
            fabric.register_sync(self.group)
        except RegistrationError as exc:
            self._enter_fallback(f"registration failed: {exc}")
            return
        self.coordinator = SourceSwitchCoordinator(self.group)

    def _enter_fallback(self, reason: str) -> None:
        self.fell_back = True
        self.fallback_reason = reason
        if self._fallback_algo is None:
            self._fallback_algo = self.fallback_factory()
            self._fallback_algo.prepare()

    # -- source rotation (HPL-style reuse of the single MFT, §III-E) -----------

    def set_source(self, ip: int) -> None:
        """Switch the multicast source without re-registering."""
        self.prepare()
        if self.paths > 1:
            raise ConfigurationError(
                "source switching is single-lane only: §III-E PSN "
                "synchronization covers one stream, not k lane streams")
        if self.fell_back:
            # AMcast fallback: just re-root the fallback algorithm.
            self._fallback_algo = None
            self.root = ip
            self._enter_fallback(self.fallback_reason or "source switch")
            return
        self.coordinator.switch_to(ip)
        self.root = ip

    # -- dynamic membership (incremental MRP, §III-C) ---------------------------

    def join(self, ip: int) -> None:
        """Admit ``ip`` at runtime via an incremental MRP JOIN delta.

        Only the joiner's branch of the MDT is patched — no full
        re-registration.  Unavailable after a safeguard fallback (the
        AMcast algorithms have static membership).
        """
        self.prepare()
        if self.fell_back:
            raise ConfigurationError(
                "cannot join after safeguard fallback (static AMcast tree)")
        qp = self.cluster.ctx(ip).create_qp()
        lane_qps = None
        if self.paths > 1:
            lane_qps = [qp] + [self.cluster.ctx(ip).create_qp()
                               for _ in range(self.paths - 1)]
        self.cluster.fabric.membership(self.group).join_sync(
            ip, qp, lane_qps=lane_qps)
        self.qps[ip] = qp
        self.ranks.append(ip)

    def leave(self, ip: int) -> None:
        """Retire ``ip`` at runtime via an incremental MRP LEAVE delta."""
        self.prepare()
        if self.fell_back:
            raise ConfigurationError(
                "cannot leave after safeguard fallback (static AMcast tree)")
        self.cluster.fabric.membership(self.group).leave_sync(ip)
        self.qps.pop(ip, None)
        if ip in self.ranks:
            self.ranks.remove(ip)

    # -- one broadcast -----------------------------------------------------------

    def _launch(self, size: int, result: BroadcastResult) -> None:
        if self.fell_back:
            self._launch_fallback(size, result)
            return
        if self.paths > 1:
            self._launch_spray(size, result)
            return
        sim = self.cluster.sim
        stack = self.cluster.stack
        src_ip = self.group.current_source
        src_qp = self.qps[src_ip]

        for ip in self.ranks:
            if ip == src_ip:
                continue
            def handler(mid: int, sz: int, now: float, meta, _ip=ip) -> None:
                self._record_delivery(result, _ip, now)
            self.qps[ip].on_message = handler

        monitor: Optional[SafeguardMonitor] = None
        if self.safeguard:
            monitor = SafeguardMonitor(
                sim, src_qp, self.expected_bps,
                on_fallback=lambda reason: self._trip_midflight(
                    reason, size, result),
            )

        def sender_done(mid: int, now: float) -> None:
            result.sender_done = now
            if monitor is not None:
                monitor.stop()

        def post() -> None:
            src_qp.post_send(size, on_complete=sender_done)
            if monitor is not None:
                monitor.start()

        sim.schedule(stack.send, post)

    def _launch_spray(self, size: int, result: BroadcastResult) -> None:
        """k-path launch: stripe the message over the lane QPs.

        Every receiver gets a :class:`LaneReassembler` hooked on all of
        its lane QPs; the broadcast completes for a receiver when its
        per-lane segments cover the whole message.  A
        :class:`LaneHealthMonitor` runs for the duration of the
        transfer and re-sprays a dead lane's share on the survivors.
        """
        sim = self.cluster.sim
        stack = self.cluster.stack
        group = self.group
        src_ip = group.current_source

        for ip in self.ranks:
            if ip == src_ip:
                continue
            def done(sid: int, total: int, now: float, _ip=ip) -> None:
                self._record_delivery(result, _ip, now)
            reasm = LaneReassembler(ip, done, bus=sim.bus)
            reasm.attach([group.lane_members[lane][ip]
                          for lane in range(self.paths)])
            self.reassemblers[ip] = reasm

        lane_src_qps = [group.lane_members[lane][src_ip]
                        for lane in range(self.paths)]

        def all_acked(sid: int, now: float) -> None:
            result.sender_done = now
            if self.health is not None:
                self.health.stop()

        prev_dead = self.sprayer.dead if self.sprayer is not None else set()
        self.sprayer = LaneSprayer(sim, lane_src_qps, bus=sim.bus,
                                   on_complete=all_acked)
        self.sprayer.dead |= prev_dead  # a lane stays dead across sprays
        self.health = LaneHealthMonitor(
            sim, self.sprayer, stall_timeout=self.lane_stall_timeout)

        def post() -> None:
            self.sprayer.spray(size)
            self.health.start()

        sim.schedule(stack.send, post)

    def _trip_midflight(self, reason: str, size: int,
                        result: BroadcastResult) -> None:
        """Goodput collapsed: stop the dead in-network transfer and
        recover per the configured mode (§V-D)."""
        self.qps[self.group.current_source].abort_sends()
        if self.recovery == "partial":
            self._recover_partial(reason, size, result)
        else:
            self._enter_fallback(reason)
            self._launch_fallback(size, result)

    def _recover_partial(self, reason: str, size: int,
                         result: BroadcastResult) -> None:
        """Fine-grained fallback: probe membership via a partial MRP
        registration, re-form the group around the survivors, re-send
        in-network.  Falls back to AMcast if the probe itself fails.

        Everything runs through asynchronous registration callbacks so
        the recovery happens *inside* the ongoing simulation run.
        """
        fabric = self.cluster.fabric
        self.fell_back = True
        self.fallback_reason = reason

        def amcast_rescue(why: str) -> None:
            self.fallback_reason = f"{reason}; partial recovery failed: {why}"
            if self._fallback_algo is None:
                self._fallback_algo = self.fallback_factory()
                self._fallback_algo.prepare()
            self._launch_fallback(size, result)

        probe = fabric.create_group(dict(self.qps), leader_ip=self.root)
        ctl = fabric.register(
            probe, allow_partial=True, timeout=2e-3,
            on_failure=amcast_rescue,
            on_success=lambda: probe_done(),
        )

        def probe_done() -> None:
            fabric.unregister(probe)
            self.unreachable = set(ctl.unconfirmed)
            survivors = [ip for ip in self.ranks
                         if ip not in self.unreachable]
            if len(survivors) < 2:
                amcast_rescue("no surviving receivers")
                return
            qps = {ip: self.qps[ip] for ip in survivors}
            group2 = fabric.create_group(qps, leader_ip=self.root)
            fabric.register(
                group2,
                on_failure=amcast_rescue,
                on_success=lambda: resend(group2, survivors),
            )

        def resend(group2: MulticastGroup, survivors) -> None:
            self.group = group2
            self.coordinator = SourceSwitchCoordinator(group2)
            src_qp = self.qps[self.root]
            # Stream-position resync (the recovery analogue of §III-E
            # PSN synchronization): survivors expect the PSNs of the
            # aborted transfer; align them with the sender's restart
            # point so the re-sent message is accepted in order.
            for ip in survivors:
                if ip == self.root:
                    continue
                qp = self.qps[ip]
                qp.rq_psn = src_qp.sq_psn
                qp._nack_pending = False
            src_qp.post_send(
                size,
                on_complete=lambda mid, now: setattr(
                    result, "sender_done", now))

    def _launch_fallback(self, size: int, result: BroadcastResult) -> None:
        """Run the payload over the AMcast algorithm instead.

        The fallback's deliveries land in a sub-result while the sim
        runs; :meth:`run` merges them into the caller's result after the
        drain (they may arrive after a partial Cepheus delivery, so the
        later timestamp wins).
        """
        algo = self._fallback_algo
        sub = BroadcastResult(algorithm=algo.name, root=algo.root, size=size,
                              start=self.cluster.sim.now)
        algo._launch(size, sub)
        self._pending_merge = sub

    def run(self, size: int) -> BroadcastResult:
        """Like the base run, but merges mid-flight fallback deliveries."""
        self.prepare()
        sim = self.cluster.sim
        res = BroadcastResult(algorithm=self.name, root=self.root,
                              size=size, start=sim.now)
        ev0 = sim.events_run
        self._pending_merge: Optional[BroadcastResult] = None
        self._launch(size, res)
        sim.run()
        if self._pending_merge is not None:
            for ip, t in self._pending_merge.recv_times.items():
                if ip not in res.recv_times or t > res.recv_times[ip]:
                    res.recv_times[ip] = t
            res.algorithm = f"{self.name}+fallback"
        elif self.fell_back and self.recovery == "partial":
            res.algorithm = f"{self.name}+partial"
        res.events = sim.events_run - ev0
        missing = [ip for ip in self.ranks if ip != self.root
                   and ip not in res.recv_times
                   and ip not in self.unreachable]
        if missing:
            raise ConfigurationError(
                f"{self.name}: receivers never completed: {missing}")
        return res
