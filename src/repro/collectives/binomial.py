"""Binomial Tree (BT) broadcast — the latency-oriented AMcast baseline.

The classic MPI algorithm (§II-C, Fig. 1b): ``ceil(log2 N)`` recursive
rounds; in round *k* every node holding the data forwards it to the
rank ``2^k`` away.  Latency is logarithmic, which makes BT the small-
message choice, but every internal node retransmits the *whole*
message — for large messages the root alone pushes ``log2(N)`` copies,
so bandwidth utilization falls far behind optimal (that is the gap
Fig. 9/12 quantify).

The implementation is asynchronous, as in MPICH/OpenMPI: a node relays
to its binomial children back-to-back as soon as its own receive (plus
the host-stack relay cost) completes; the next child's send is chained
off the previous send's local completion.
"""

from __future__ import annotations

from typing import List

from repro.collectives.base import BroadcastAlgorithm, BroadcastResult

__all__ = ["binomial_children", "BinomialTreeBcast"]


def binomial_children(rank: int, n: int) -> List[int]:
    """Children of ``rank`` in a binomial tree of ``n`` ranks (root 0).

    Ordered chronologically (the round each edge fires in), i.e. the
    order an async implementation posts the sends.

    >>> binomial_children(0, 8)
    [1, 2, 4]
    >>> binomial_children(1, 8)
    [3, 5]
    >>> binomial_children(3, 8)
    [7]
    >>> binomial_children(6, 8)
    []
    """
    if not 0 <= rank < n:
        raise ValueError(f"rank {rank} out of range for n={n}")
    start = 0 if rank == 0 else rank.bit_length()
    children = []
    j = start
    while rank + (1 << j) < n:
        children.append(rank + (1 << j))
        j += 1
    return children


class BinomialTreeBcast(BroadcastAlgorithm):
    """BT over pairwise RC connections."""

    name = "binomial-tree"

    def _setup(self) -> None:
        for rank, ip in enumerate(self.ranks):
            for child in binomial_children(rank, self.n):
                self.cluster.qp_pair(ip, self.ranks[child])

    def _launch(self, size: int, result: BroadcastResult) -> None:
        sim = self.cluster.sim
        stack = self.cluster.stack

        def relay_from(rank: int, at_delay: float) -> None:
            """Schedule this node's sends to its children, sequentially."""
            ip = self.ranks[rank]
            children = binomial_children(rank, self.n)

            def send_child(idx: int) -> None:
                if idx >= len(children):
                    return
                child_rank = children[idx]
                child_ip = self.ranks[child_rank]
                qp = self.cluster.qp_to(ip, child_ip)
                peer = self.cluster.qp_to(child_ip, ip)

                def delivered(mid: int, sz: int, now: float, meta) -> None:
                    self._record_delivery(result, child_ip, now)
                    relay_from(child_rank, stack.relay)

                peer.on_message = delivered
                # Chain the next child's post off this send's local
                # completion (blocking-send semantics).
                qp.post_send(size, on_sent=lambda mid, now: send_child(idx + 1))

            sim.schedule(at_delay, send_child, 0)

        relay_from(0, stack.send)
