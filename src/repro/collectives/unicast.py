"""Multi-unicast broadcast: the naive AMcast lower bound.

The sender keeps one RC connection per receiver and transmits the full
message N-1 times (§II-C: "this causes a severe bandwidth bottleneck on
the sender's outbound link").  It is the scheme behind the storage
baseline of Table I ("3-unicasts") and the reference point every
overlay tries to beat.

All sends are posted together — like a storage client issuing the three
replica WRITEs of one IO — so they interleave on the sender's NIC and
every receiver finishes around (N-1) x the one-to-one time.
"""

from __future__ import annotations

from repro.collectives.base import BroadcastAlgorithm, BroadcastResult

__all__ = ["MultiUnicastBcast"]


class MultiUnicastBcast(BroadcastAlgorithm):
    """N-1 independent unicast transmissions from the root."""

    name = "multi-unicast"

    def _setup(self) -> None:
        for ip in self.ranks[1:]:
            self.cluster.qp_pair(self.root, ip)

    def _launch(self, size: int, result: BroadcastResult) -> None:
        sim = self.cluster.sim
        stack = self.cluster.stack

        def deliver_to(ip: int):
            def handler(mid: int, sz: int, now: float, meta) -> None:
                self._record_delivery(result, ip, now)
            return handler

        def start_root() -> None:
            for ip in self.ranks[1:]:
                self.cluster.qp_to(ip, self.root).on_message = deliver_to(ip)
                self.cluster.qp_to(self.root, ip).post_send(size)

        # One stack traversal per posted copy: the client-side software
        # really does run the submission path N-1 times.
        sim.schedule(stack.send * (self.n - 1), start_root)
