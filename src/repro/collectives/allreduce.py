"""AllReduce compositions — the DNN-training use case from §I.

The paper motivates Cepheus with the Parameter-Server pattern: "the
aggregated gradients should be distributed from PS(s) to multiple
workers", i.e. the *distribution* half of every data-parallel step is a
multicast.  This module composes the §VIII-future-work reduction
primitives with a broadcast engine:

* ``ring``            — classic ring allreduce: reduce-scatter followed
  by a ring allgather.  Bandwidth-optimal, latency ~2(N-1) steps.
* ``ps-<bcast>``      — Parameter-Server style: binomial reduce to the
  PS, then distribute via the chosen broadcast engine
  (``ps-cepheus``, ``ps-binomial``, ``ps-multi-unicast``, ...).

With Cepheus the distribution phase collapses to one wire-time,
which is exactly the gain the paper projects for PS/INA architectures.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional

from repro.apps.cluster import Cluster
from repro.collectives.binomial import BinomialTreeBcast
from repro.collectives.cepheus_bcast import CepheusBcast
from repro.collectives.chain import ChainBcast, IncreasingRingBcast
from repro.collectives.long_algo import LongBcast
from repro.collectives.rdmc import RdmcBcast
from repro.collectives.reduce import (BinomialReduce, ReduceResult,
                                      RingReduceScatter)
from repro.collectives.unicast import MultiUnicastBcast
from repro.errors import ConfigurationError

#: Broadcast engines usable as the distribution half (local registry —
#: :data:`repro.apps.mpi.ALGORITHMS` builds on top of these classes).
_BCAST_ENGINES = {
    "cepheus": CepheusBcast,
    "binomial": BinomialTreeBcast,
    "chain": ChainBcast,
    "increasing-ring": IncreasingRingBcast,
    "long": LongBcast,
    "rdmc": RdmcBcast,
    "multi-unicast": MultiUnicastBcast,
}

__all__ = ["AllReduceResult", "AllReduce"]


@dataclass
class AllReduceResult:
    """Timing breakdown of one allreduce."""

    strategy: str
    size: int
    reduce_time: float
    distribute_time: float

    @property
    def total(self) -> float:
        return self.reduce_time + self.distribute_time

    def busbw_gbps(self) -> float:
        """The collective-benchmark 'algorithm bandwidth' figure."""
        return self.size * 8.0 / self.total / 1e9


class AllReduce:
    """AllReduce over a member set with a pluggable strategy."""

    def __init__(self, cluster: Cluster, members: List[int],
                 strategy: str = "ps-cepheus") -> None:
        if len(members) < 2:
            raise ConfigurationError("allreduce needs at least 2 members")
        self.cluster = cluster
        self.members = list(members)
        self.strategy = strategy
        self._reduce = None
        self._bcast = None
        self._allgather = None
        if strategy == "ring":
            self._reduce = RingReduceScatter(cluster, self.members)
            # The allgather half is the 'long' roll without the scatter;
            # the chain engine at slices=N models it within a few percent.
            self._allgather = _BCAST_ENGINES["long"](cluster, self.members)
        elif strategy.startswith("ps-"):
            engine = strategy[3:]
            if engine not in _BCAST_ENGINES:
                raise ConfigurationError(f"unknown bcast engine {engine!r}")
            self._reduce = BinomialReduce(cluster, self.members)
            self._bcast = _BCAST_ENGINES[engine](cluster, self.members)
        else:
            raise ConfigurationError(
                f"unknown strategy {strategy!r}; use 'ring' or 'ps-<bcast>'")

    def run(self, size: int) -> AllReduceResult:
        r: ReduceResult = self._reduce.run(size)
        if self._bcast is not None:
            d = self._bcast.run(size).jct
        else:
            # ring allgather distributes the N reduced shards
            d = self._allgather.run(size).jct
        return AllReduceResult(self.strategy, size,
                               reduce_time=r.duration, distribute_time=d)
