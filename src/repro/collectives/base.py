"""Broadcast algorithm framework.

Every multicast/broadcast scheme in the paper — the AMcast baselines
(Binomial Tree, Chain, increasing-ring, long, RDMC, multi-unicast) and
Cepheus itself — implements :class:`BroadcastAlgorithm`:

* :meth:`prepare` performs the *untimed* setup (QP pair creation, MFT
  registration) and may advance the simulator; the paper likewise
  excludes connection establishment and registration from JCT.
* :meth:`run` launches one broadcast of ``size`` bytes at the current
  virtual time, drains the simulator, and returns a
  :class:`BroadcastResult` with per-receiver delivery times.

JCT (the paper's MPI-Bcast metric) is the time from the root's post to
the moment the *last* receiver's application has the data, including
the end-host stack costs on both sides.
"""

from __future__ import annotations

import itertools
from dataclasses import dataclass, field
from typing import Dict, List, Optional

from repro.apps.cluster import Cluster
from repro.errors import ConfigurationError

__all__ = ["BroadcastResult", "BroadcastAlgorithm"]

_run_tokens = itertools.count(1)


@dataclass
class BroadcastResult:
    """Outcome of one broadcast run."""

    algorithm: str
    root: int
    size: int
    start: float
    recv_times: Dict[int, float] = field(default_factory=dict)
    sender_done: Optional[float] = None
    events: int = 0

    @property
    def jct(self) -> float:
        """Job completion time: last receiver's application-level done."""
        if not self.recv_times:
            raise ConfigurationError("broadcast produced no deliveries")
        return max(self.recv_times.values()) - self.start

    @property
    def min_recv_latency(self) -> float:
        return min(self.recv_times.values()) - self.start

    def goodput_gbps(self) -> float:
        """Application goodput seen by the slowest receiver."""
        return self.size * 8.0 / self.jct / 1e9

    def receiver_latency(self, ip: int) -> float:
        return self.recv_times[ip] - self.start


class BroadcastAlgorithm:
    """Base class: subclasses override ``_setup`` and ``_launch``."""

    name = "abstract"

    def __init__(self, cluster: Cluster, members: List[int],
                 root: Optional[int] = None) -> None:
        if len(members) < 2:
            raise ConfigurationError("broadcast needs at least 2 members")
        self.cluster = cluster
        self.root = members[0] if root is None else root
        if self.root not in members:
            raise ConfigurationError(f"root {self.root} not in member list")
        # rank 0 is always the root; other ranks keep caller order.
        self.ranks: List[int] = [self.root] + [m for m in members if m != self.root]
        self._prepared = False

    # -- public API -------------------------------------------------------------

    def prepare(self) -> None:
        """Untimed setup (idempotent)."""
        if not self._prepared:
            self._setup()
            self._prepared = True

    def run(self, size: int) -> BroadcastResult:
        """Broadcast ``size`` bytes from the root; returns timings."""
        self.prepare()
        sim = self.cluster.sim
        result = BroadcastResult(
            algorithm=self.name, root=self.root, size=size, start=sim.now,
        )
        ev0 = sim.events_run
        self._launch(size, result)
        sim.run()
        result.events = sim.events_run - ev0
        missing = [ip for ip in self.ranks[1:] if ip not in result.recv_times]
        if missing:
            raise ConfigurationError(
                f"{self.name}: receivers never completed: {missing}")
        return result

    # -- helpers for subclasses ------------------------------------------------------

    def _record_delivery(self, result: BroadcastResult, ip: int, now: float) -> None:
        """Receiver-side: add the app-level receive stack cost."""
        done = now + self.cluster.stack.recv
        prev = result.recv_times.get(ip)
        if prev is None or done > prev:
            result.recv_times[ip] = done

    @property
    def n(self) -> int:
        return len(self.ranks)

    # -- to override -----------------------------------------------------------------

    def _setup(self) -> None:
        raise NotImplementedError

    def _launch(self, size: int, result: BroadcastResult) -> None:
        raise NotImplementedError
