"""Cepheus reproduction: RoCE-capable in-network multicast (HPCA 2024).

Top-level convenience exports; see the subpackages for the full API:

* :mod:`repro.net`         -- discrete-event network substrate
* :mod:`repro.transport`   -- RoCE RC + DCQCN model
* :mod:`repro.core`        -- the Cepheus contribution
* :mod:`repro.collectives` -- Cepheus bcast + AMcast baselines
* :mod:`repro.apps`        -- cluster facade, MPI/storage/HPL applications
* :mod:`repro.analytic`    -- closed-form JCT models
* :mod:`repro.harness`     -- per-figure experiment harness
"""

from repro.apps import Cluster, Communicator
from repro.collectives import (BinomialTreeBcast, CepheusBcast, ChainBcast,
                               MultiUnicastBcast, RdmcBcast)
from repro.core import CepheusFabric, MulticastGroup
from repro.net import Simulator

__version__ = "1.0.0"

__all__ = [
    "Cluster", "Communicator",
    "CepheusBcast", "BinomialTreeBcast", "ChainBcast", "MultiUnicastBcast",
    "RdmcBcast",
    "CepheusFabric", "MulticastGroup",
    "Simulator",
    "__version__",
]
