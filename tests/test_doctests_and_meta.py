"""Doctests with real examples + package metadata checks."""

import doctest

import repro


class TestDoctests:
    def test_simulator_doctest(self):
        from repro.net import simulator
        assert doctest.testmod(simulator).failed == 0

    def test_binomial_doctest(self):
        from repro.collectives import binomial
        assert doctest.testmod(binomial).failed == 0


class TestPackageSurface:
    def test_version(self):
        assert repro.__version__ == "1.0.0"

    def test_top_level_exports_resolve(self):
        for name in repro.__all__:
            assert getattr(repro, name, None) is not None, name

    def test_subpackage_exports_resolve(self):
        import repro.analytic
        import repro.apps
        import repro.collectives
        import repro.core
        import repro.ext
        import repro.harness
        import repro.net
        import repro.transport

        for mod in (repro.analytic, repro.apps, repro.collectives,
                    repro.core, repro.ext, repro.harness, repro.net,
                    repro.transport):
            for name in mod.__all__:
                assert getattr(mod, name, None) is not None, \
                    f"{mod.__name__}.{name}"

    def test_every_public_module_has_docstring(self):
        import importlib
        import pkgutil

        missing = []
        for info in pkgutil.walk_packages(repro.__path__, prefix="repro."):
            mod = importlib.import_module(info.name)
            if not (mod.__doc__ or "").strip():
                missing.append(info.name)
        assert missing == []
