"""Experimental in-network reduction (§VIII extension)."""

import pytest

from repro import constants
from repro.apps import Cluster
from repro.collectives import BinomialReduce
from repro.errors import ConfigurationError, GroupError
from repro.ext import InNetworkReduce


class TestBasics:
    def test_root_receives_combined_vector(self, testbed8):
        r = InNetworkReduce(testbed8, testbed8.host_ips).run(1 << 20)
        assert r.root_received is not None
        assert r.members_completed == 7  # every contributor acked

    def test_requires_fabric(self):
        cl = Cluster.testbed(4, cepheus=False)
        with pytest.raises(ConfigurationError):
            InNetworkReduce(cl, cl.host_ips)

    def test_requires_two_members(self, testbed):
        with pytest.raises(ConfigurationError):
            InNetworkReduce(testbed, [1])

    def test_root_not_member_rejected(self, testbed):
        with pytest.raises(ConfigurationError):
            InNetworkReduce(testbed, [1, 2], root=9)

    def test_repeat_runs(self, testbed):
        red = InNetworkReduce(testbed, testbed.host_ips)
        a = red.run(1 << 20)
        b = red.run(1 << 20)
        assert b.duration == pytest.approx(a.duration, rel=0.05)

    def test_mode_set_on_all_mdt_switches(self, fat_tree_cluster):
        cl = fat_tree_cluster
        red = InNetworkReduce(cl, [1, 5, 9, 13])
        red.prepare()
        for accel in cl.fabric.mdt_switches(red.group.mcst_id):
            assert accel.mft_of(red.group.mcst_id).mode == "reduce"

    def test_unknown_mode_rejected(self, testbed):
        red = InNetworkReduce(testbed, testbed.host_ips)
        red.prepare()
        with pytest.raises(GroupError):
            testbed.fabric.set_group_mode(red.group.mcst_id, "shuffle")

    def test_unregistered_group_mode_rejected(self, testbed):
        with pytest.raises(GroupError):
            testbed.fabric.set_group_mode(constants.MCSTID_BASE + 77, "reduce")


class TestPerformance:
    def test_one_wire_time_at_root(self, testbed8):
        """The combined stream arrives at the root in ~one serialization
        — the in-network win over any host-side tree."""
        size = 8 << 20
        r = InNetworkReduce(testbed8, testbed8.host_ips).run(size)
        wire = size * 8 / 100e9
        assert r.duration < 1.3 * wire

    def test_beats_binomial_reduce(self, testbed8):
        size = 8 << 20
        inr = InNetworkReduce(testbed8, testbed8.host_ips).run(size)
        cl2 = Cluster.testbed(8)
        host = BinomialReduce(cl2, cl2.host_ips).run(size)
        assert inr.duration < 0.6 * host.duration

    def test_cross_rack(self, fat_tree_cluster):
        cl = fat_tree_cluster
        size = 4 << 20
        r = InNetworkReduce(cl, [1, 5, 9, 13]).run(size)
        wire = size * 8 / 100e9
        assert r.duration < 1.5 * wire
        assert r.members_completed == 3


class TestReliability:
    def test_loss_recovered_by_replicated_nack(self):
        """A lost contribution stalls the combining slot; the root's
        NACK replicates to every member, they rewind together, and the
        slot refills coherently."""
        cl = Cluster.fat_tree_cluster(4)
        cl.topo.set_loss_rate(2e-3)  # agg/core: the combining path
        members = [1, 5, 9, 13]
        red = InNetworkReduce(cl, members)
        size = 4 << 20
        r = red.run(size)
        assert r.duration > 0
        assert r.members_completed == 3
        # the root delivered the complete combined vector exactly once
        assert red.qps[1].recv.bytes_delivered == size

    def test_coexists_with_bcast_groups(self, testbed8):
        """A reduce-mode group and a bcast-mode group share the fabric."""
        from repro.collectives import CepheusBcast

        cl = testbed8
        bcast = CepheusBcast(cl, [1, 2, 3, 4])
        bcast.prepare()
        red = InNetworkReduce(cl, [5, 6, 7, 8], root=5)
        red.prepare()
        done = {}
        for ip in (2, 3, 4):
            bcast.qps[ip].on_message = (
                lambda mid, sz, now, meta, _ip=ip: done.setdefault(_ip, sz))
        bcast.qps[1].post_send(1 << 20)
        r = red.run(1 << 20)
        cl.run()
        assert all(done.get(ip) == 1 << 20 for ip in (2, 3, 4))
        assert r.members_completed == 3


class TestIrnComposition:
    def test_inreduce_with_irn_under_loss(self):
        """Selective repeat composes with the combining plane: a root
        NACK replicates down, each member retransmits only the missing
        PSN, and the slot refills without a full go-back-N stampede."""
        from repro.transport import RoceConfig

        cl = Cluster.fat_tree_cluster(
            4, roce_config=RoceConfig(retransmit_mode="irn", rto=400e-6))
        cl.topo.set_loss_rate(2e-3, layers=("agg", "core"))
        red = InNetworkReduce(cl, [1, 5, 9, 13])
        size = 4 << 20
        r = red.run(size)
        assert red.qps[1].recv.bytes_delivered == size
        assert r.members_completed == 3
        total_retx = sum(red.qps[ip].retransmitted_packets
                         for ip in (5, 9, 13))
        assert total_retx < 200  # selective, not go-back-N floods
