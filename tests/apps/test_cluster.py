"""Cluster facade: factories, QP-pair caching, stack model."""

import pytest

from repro import constants
from repro.apps.cluster import Cluster, HostStackModel


class TestFactories:
    def test_testbed_shape(self):
        cl = Cluster.testbed(4)
        assert cl.host_ips == [1, 2, 3, 4]
        assert len(cl.topo.switches) == 1
        assert cl.fabric is not None

    def test_fat_tree_factory(self):
        cl = Cluster.fat_tree_cluster(4)
        assert len(cl.host_ips) == 16
        assert len(cl.fabric.accelerators) == 20

    def test_cepheus_disabled(self):
        cl = Cluster.testbed(4, cepheus=False)
        assert cl.fabric is None
        assert all(sw.accelerator is None for sw in cl.topo.switches)

    def test_dumbbell_factory(self):
        cl = Cluster.dumbbell_cluster(2, 2, bottleneck=10e9)
        assert len(cl.host_ips) == 4

    def test_every_host_has_context(self):
        cl = Cluster.testbed(3)
        assert set(cl.ctxs) == {1, 2, 3}


class TestQpPairs:
    def test_pair_is_cached(self):
        cl = Cluster.testbed(4)
        a1 = cl.qp_pair(1, 2)
        a2 = cl.qp_pair(1, 2)
        assert a1 == a2

    def test_pair_symmetric_view(self):
        cl = Cluster.testbed(4)
        ab = cl.qp_pair(1, 2)
        ba = cl.qp_pair(2, 1)
        assert ab == (ba[1], ba[0])

    def test_qp_to_directionality(self):
        cl = Cluster.testbed(4)
        q12 = cl.qp_to(1, 2)
        q21 = cl.qp_to(2, 1)
        assert q12.nic.ip == 1 and q12.dst_ip == 2
        assert q21.nic.ip == 2 and q21.dst_ip == 1
        assert q12.dst_qp == q21.qpn

    def test_pairs_actually_communicate(self):
        cl = Cluster.testbed(4)
        got = []
        cl.qp_to(2, 1).on_message = lambda *a: got.append(a)
        cl.qp_to(1, 2).post_send(4096)
        cl.run()
        assert len(got) == 1


class TestStackModel:
    def test_defaults_from_constants(self):
        s = HostStackModel()
        assert s.send == constants.HOST_STACK_SEND_S
        assert s.recv == constants.HOST_STACK_RECV_S
        assert s.relay == pytest.approx(
            s.send + s.recv + constants.HOST_STACK_RELAY_EXTRA_S)

    def test_custom_stack_threads_through(self):
        from repro.collectives import ChainBcast
        fast = Cluster.testbed(4, stack=HostStackModel(0.0, 0.0, 0.0))
        slow = Cluster.testbed(4, stack=HostStackModel(5e-6, 5e-6, 5e-6))
        jf = ChainBcast(fast, fast.host_ips, slices=1).run(64).jct
        js = ChainBcast(slow, slow.host_ips, slices=1).run(64).jct
        assert js > jf + 30e-6  # 3 hops x (send+recv+relay penalties)
