"""Cross-constant consistency checks.

These guard the calibration ledger (docs/CALIBRATION.md): relationships
between constants that, if silently broken by a future edit, would
invalidate experiment results in non-obvious ways.
"""

from repro import constants


class TestFabricConsistency:
    def test_ecn_band_below_pfc(self):
        """DCQCN must see congestion before PFC pauses anything."""
        assert constants.ECN_KMIN_BYTES < constants.ECN_KMAX_BYTES
        assert constants.ECN_KMAX_BYTES < constants.PFC_XOFF_BYTES

    def test_pfc_below_taildrop(self):
        """PFC must engage long before the shared buffer overflows, even
        with every port's ingress at XOFF."""
        assert constants.PFC_XON_BYTES < constants.PFC_XOFF_BYTES
        assert constants.PFC_XOFF_BYTES * 2 < constants.SWITCH_QUEUE_BYTES

    def test_header_tax_under_two_percent(self):
        tax = constants.HEADER_BYTES / (constants.MTU_BYTES +
                                        constants.HEADER_BYTES)
        assert tax < 0.02

    def test_mcstid_range_clear_of_hosts(self):
        """Host IPs are small ints; the multicast range must never
        collide with any plausible fabric size."""
        assert constants.MCSTID_BASE > 1 << 24


class TestControlPlaneConsistency:
    def test_mrp_record_arithmetic(self):
        """Fig. 5: metadata + 183 records must fit the control MTU."""
        from repro.core.mrp import _MRP_METADATA_BYTES, _MRP_NODE_BYTES
        payload = (_MRP_METADATA_BYTES +
                   constants.MRP_NODES_PER_PACKET * _MRP_NODE_BYTES)
        assert payload <= constants.MRP_MTU_BYTES
        assert payload + _MRP_NODE_BYTES > constants.MRP_MTU_BYTES - 100

    def test_mft_memory_claim(self):
        """The paper's 1K-groups bound with our (looser) encoding."""
        assert constants.MFT_BYTES_PER_GROUP_64P * 1024 < 0.78e6


class TestTransportConsistency:
    def test_window_covers_bdp(self):
        """The RC window must exceed the fabric BDP or healthy flows
        would be window-limited."""
        rtt = 8 * constants.LINK_PROPAGATION_S + 20e-6  # queueing slack
        bdp_packets = constants.LINK_BANDWIDTH_BPS * rtt / 8 / \
            constants.MTU_BYTES
        assert constants.ROCE_MAX_OUTSTANDING_PKTS > bdp_packets

    def test_rto_dwarfs_rtt(self):
        assert constants.ROCE_RTO_S > 100 * 8 * constants.LINK_PROPAGATION_S

    def test_cnp_interval_beats_alpha_timer(self):
        """A persistently congested flow must receive CNPs faster than
        alpha decays, or DCQCN never holds a reduced rate."""
        assert constants.CNP_MIN_INTERVAL_S <= constants.DCQCN_ALPHA_TIMER_S

    def test_host_stack_hierarchy(self):
        """Relays must cost more than plain send+recv (the §II-C
        premise behind every AMcast penalty)."""
        assert constants.HOST_STACK_RELAY_EXTRA_S > 0
        assert constants.HOST_STACK_SEND_S > 0
        assert constants.HOST_STACK_RECV_S > 0


class TestStorageConsistency:
    def test_stack_is_the_bottleneck_at_8k(self):
        """The paper's stated bottleneck: per-IO stack cost must exceed
        the 8 KB wire time, or Table I's shape would invert."""
        wire_8k = 8192 * 8 / constants.LINK_BANDWIDTH_BPS
        cycle = constants.STORAGE_STACK_PER_IO_S
        assert cycle > wire_8k
