"""HPL on a 2x2 grid with both phases Cepheus-accelerated."""

import pytest

from repro.apps import Cluster, HplConfig, HplModel

CFG = HplConfig(n=2048, nb=256)


class TestBothPhasesAccelerated:
    def test_2x2_cepheus_everywhere(self):
        cl = Cluster.testbed(4)
        r = HplModel(cl, [[1, 2], [3, 4]], CFG,
                     pb_algorithm="cepheus", rs_algorithm="cepheus").run()
        assert r.pb_comm > 0 and r.rs_comm > 0
        # 2 row groups + 2 column groups, each one MFT for the whole run
        assert len(cl.fabric.groups) == 4

    def test_2x2_is_parity_with_default_stack(self):
        """On a 2x2 grid every row/column group has exactly ONE
        receiver: a multicast degenerates to a direct send, so Cepheus
        can only match the defaults, not beat them.  This is the
        paper's own 2x2 caveat ('There is no multicast communication
        between the 2x2 arrangement') — fan-out >= 2 is where the wins
        live (the 1x4/4x1 experiments)."""
        base_cl = Cluster.testbed(4)
        base = HplModel(base_cl, [[1, 2], [3, 4]], CFG).run()
        ceph_cl = Cluster.testbed(4)
        ceph = HplModel(ceph_cl, [[1, 2], [3, 4]], CFG,
                        pb_algorithm="cepheus",
                        rs_algorithm="cepheus").run()
        assert ceph.total == pytest.approx(base.total, rel=0.03)

    def test_breakdown_dict(self):
        cl = Cluster.testbed(4)
        r = HplModel(cl, [[1, 2], [3, 4]], CFG).run()
        b = r.breakdown()
        assert set(b) == {"pf", "pb_comm", "rs_comm", "update", "total"}
        assert b["total"] == pytest.approx(r.total)
