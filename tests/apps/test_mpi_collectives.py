"""Communicator reduce/allreduce extensions (§VIII)."""

import pytest

from repro.apps import Cluster, Communicator
from repro.errors import ConfigurationError


class TestCommunicatorReduce:
    def test_cepheus_comm_defaults_to_in_network(self, testbed8):
        comm = Communicator(testbed8, testbed8.host_ips, "cepheus")
        r = comm.reduce(1 << 20)
        wire = (1 << 20) * 8 / 100e9
        assert r.duration < 1.5 * wire  # in-network: ~one wire-time

    def test_amcast_comm_defaults_to_host_reduce(self, testbed8):
        comm = Communicator(testbed8, testbed8.host_ips, "binomial")
        r = comm.reduce(1 << 20)
        wire = (1 << 20) * 8 / 100e9
        assert r.duration > 2 * wire  # log2(8) combining rounds

    def test_explicit_override(self, testbed8):
        comm = Communicator(testbed8, testbed8.host_ips, "binomial")
        fast = comm.reduce(1 << 20, in_network=True)
        slow = comm.reduce(1 << 20, in_network=False)
        assert fast.duration < slow.duration

    def test_engines_cached(self, testbed8):
        comm = Communicator(testbed8, testbed8.host_ips, "cepheus")
        comm.reduce(4096)
        comm.reduce(4096)
        assert len(comm._reducers) == 1
        assert len(testbed8.fabric.groups) <= 2  # bcast group + reduce group

    def test_bad_root(self, testbed8):
        comm = Communicator(testbed8, testbed8.host_ips, "cepheus")
        with pytest.raises(ConfigurationError):
            comm.reduce(64, root=42)

    def test_rooted_at_other_rank(self, testbed8):
        comm = Communicator(testbed8, testbed8.host_ips, "cepheus")
        r = comm.reduce(1 << 16, root=3)
        assert r.root == testbed8.host_ips[3]


class TestCommunicatorAllreduce:
    def test_default_strategy_follows_engine(self, testbed8):
        comm = Communicator(testbed8, testbed8.host_ips, "cepheus")
        assert comm.allreduce(1 << 20).strategy == "ps-cepheus"

    def test_chain_engine_prefers_ring(self, testbed8):
        comm = Communicator(testbed8, testbed8.host_ips, "chain")
        assert comm.allreduce(1 << 20).strategy == "ring"

    def test_explicit_strategy(self, testbed8):
        comm = Communicator(testbed8, testbed8.host_ips, "cepheus")
        r = comm.allreduce(1 << 20, strategy="ps-multi-unicast")
        assert r.strategy == "ps-multi-unicast"

    def test_engines_cached(self, testbed8):
        comm = Communicator(testbed8, testbed8.host_ips, "cepheus")
        comm.allreduce(4096)
        comm.allreduce(8192)
        assert len(comm._allreducers) == 1
