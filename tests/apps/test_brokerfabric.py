"""Broker-fabric scenario: open-loop SLO trials, coalescing, reproducers."""

import json
import random
from dataclasses import replace

from repro.apps.brokerfabric import (
    BrokerFabricConfig, BrokerFabricSchedule, generate_brokerfabric_schedule,
    run_brokerfabric_campaign, run_brokerfabric_trial,
)

# Small-but-busy: one switch, enough load that deliveries actually queue.
QUICK = BrokerFabricConfig(
    topo="star", hosts=8, topics=3, min_subscribers=2, max_subscribers=4,
    msg_size=16384, publish_rate=20_000.0, churn_rate=1500.0,
    cross_rate=1500.0, cross_size=32768, horizon=0.005, drain=0.01,
)


def _schedule(cfg, seed=1):
    return generate_brokerfabric_schedule(cfg, random.Random(seed))


class TestTrial:
    def test_trial_is_deterministic(self):
        sched = _schedule(QUICK)
        a = run_brokerfabric_trial(QUICK, sched)
        b = run_brokerfabric_trial(QUICK, sched)
        assert json.dumps(a, sort_keys=True) == json.dumps(b, sort_keys=True)

    def test_healthy_trial_passes_slo_accounting(self):
        rec = run_brokerfabric_trial(QUICK, _schedule(QUICK))
        assert not rec["failing"]
        assert rec["violations"] == []
        assert rec["publish_done"] == rec["published"] > 0
        assert rec["deliveries"] > rec["published"]   # fan-out > 1
        lat = rec["latency_us"]
        assert lat["count"] == rec["deliveries"]
        assert 0 < lat["p50"] <= lat["p99"] <= lat["p999"] <= lat["max"]
        # Multicast: the broker pushes each payload byte roughly once
        # (control packets ride the same NIC, hence the slack).
        assert 1.0 <= rec["amplification"] < 1.5
        assert rec["mrp_deltas_sent"] >= rec["membership_ops"] > 0

    def test_schedule_json_round_trip(self):
        sched = _schedule(QUICK)
        blob = json.dumps(sched.to_dict(), sort_keys=True)
        back = BrokerFabricSchedule.from_dict(json.loads(blob))
        assert back == sched

    def test_coalescing_same_schedule_fewer_deltas(self):
        sched = _schedule(QUICK, seed=3)
        plain = run_brokerfabric_trial(QUICK, sched)
        coal = run_brokerfabric_trial(
            replace(QUICK, coalesce_window=500e-6), sched)
        assert not plain["failing"] and not coal["failing"]
        assert coal["membership_ops"] == plain["membership_ops"]
        assert coal["mrp_deltas_sent"] <= plain["mrp_deltas_sent"]
        assert coal["deltas_per_op"] <= plain["deltas_per_op"]
        # Delivery health is unchanged by batching the control plane.
        assert coal["publish_done"] == coal["published"]


class TestCampaign:
    def test_campaign_is_deterministic_and_clean(self):
        a = run_brokerfabric_campaign(QUICK, seed=11, trials=2, shrink=False)
        b = run_brokerfabric_campaign(QUICK, seed=11, trials=2, shrink=False)
        assert json.dumps(a, sort_keys=True) == json.dumps(b, sort_keys=True)
        assert a["failing_trials"] == []
        assert a["reproducers"] == []
        assert len(a["records"]) == 2

    def test_config_round_trip_ignores_unknown_keys(self):
        d = QUICK.to_dict()
        d["future_knob"] = 1
        assert BrokerFabricConfig.from_dict(d) == QUICK
