"""Storage replication: Table I IOPS and Fig. 10 latency claims."""

import pytest

from repro.apps import Cluster, ReplicatedStore
from repro.apps.storage import StorageConfig
from repro.errors import ConfigurationError


def _store(scheme, servers=None, **kw):
    cl = Cluster.testbed(4)
    servers = servers or ([2] if scheme == "unicast" else [2, 3, 4])
    return ReplicatedStore(cl, 1, servers, scheme, **kw)


class TestValidation:
    def test_unknown_scheme(self):
        cl = Cluster.testbed(4)
        with pytest.raises(ConfigurationError):
            ReplicatedStore(cl, 1, [2], "carrier-pigeon")

    def test_client_cannot_be_server(self):
        cl = Cluster.testbed(4)
        with pytest.raises(ConfigurationError):
            ReplicatedStore(cl, 1, [1, 2], "multi-unicast")

    def test_needs_servers(self):
        cl = Cluster.testbed(4)
        with pytest.raises(ConfigurationError):
            ReplicatedStore(cl, 1, [], "unicast")

    def test_copies_per_io(self):
        assert _store("unicast").copies_per_io == 1
        assert _store("multi-unicast").copies_per_io == 3
        assert _store("cepheus").copies_per_io == 1


class TestIops:
    def test_unicast_matches_paper_band(self):
        r = _store("unicast").run_iops(8192, n_ios=4000)
        assert 1.0e6 < r.iops < 1.35e6  # paper: 1.188M

    def test_three_unicasts_one_third(self):
        r = _store("multi-unicast").run_iops(8192, n_ios=4000)
        assert 0.33e6 < r.iops < 0.47e6  # paper: 0.413M

    def test_cepheus_near_unicast(self):
        uni = _store("unicast").run_iops(8192, n_ios=4000).iops
        cep = _store("cepheus").run_iops(8192, n_ios=4000).iops
        assert cep > 0.95 * uni  # paper: 1.167M vs 1.188M

    def test_goodput_matches_iops(self):
        r = _store("cepheus").run_iops(8192, n_ios=2000)
        assert r.goodput_gbps == pytest.approx(
            r.iops * 8192 * 8 / 1e9, rel=1e-6)

    def test_queue_depth_respected(self):
        cfg = StorageConfig(queue_depth=1)
        r = _store("unicast", config=cfg).run_iops(8192, n_ios=500)
        # QD1 is latency-bound, far below the QD32 pipeline rate.
        assert r.iops < 0.5e6

    def test_every_replica_lands(self):
        store = _store("cepheus")
        store.run_iops(8192, n_ios=1000)
        for ip in (2, 3, 4):
            assert store.cluster.ctx(ip).mr_table.write_hits == 1000
            assert store.cluster.ctx(ip).mr_table.write_misses == 0


class TestLatency:
    def test_monotone_in_io_size(self):
        store = _store("cepheus")
        lats = [store.run_latency(s, samples=2) for s in (8192, 65536, 524288)]
        assert lats == sorted(lats)

    def test_cepheus_tracks_unicast(self):
        for size in (8192, 524288):
            uni = _store("unicast").run_latency(size, samples=2)
            cep = _store("cepheus").run_latency(size, samples=2)
            assert cep < 1.25 * uni

    def test_reduction_vs_3unicasts_grows_with_size(self):
        """Fig. 10: the gap widens as IO size increases (-23% -> -60%)."""
        reds = []
        for size in (8192, 524288):
            three = _store("multi-unicast").run_latency(size, samples=2)
            cep = _store("cepheus").run_latency(size, samples=2)
            reds.append(1 - cep / three)
        assert reds[0] > 0.1
        assert reds[1] > reds[0]
        assert reds[1] > 0.5
