"""MPI communicator facade."""

import pytest

from repro.apps import ALGORITHMS, Cluster, Communicator
from repro.errors import ConfigurationError


class TestCommunicator:
    def test_registry_covers_all_engines(self):
        assert set(ALGORITHMS) == {
            "cepheus", "binomial", "chain", "increasing-ring", "long",
            "rdmc", "multi-unicast",
        }

    def test_unknown_algorithm_rejected(self, testbed):
        with pytest.raises(ConfigurationError):
            Communicator(testbed, testbed.host_ips, "carrier-pigeon")

    def test_bad_root_rejected(self, testbed):
        comm = Communicator(testbed, testbed.host_ips, "chain")
        with pytest.raises(ConfigurationError):
            comm.bcast(64, root=9)

    @pytest.mark.parametrize("alg", sorted(ALGORITHMS))
    def test_every_engine_broadcasts(self, alg):
        cl = Cluster.testbed(4)
        comm = Communicator(cl, cl.host_ips, alg)
        r = comm.bcast(1 << 16, root=0)
        assert set(r.recv_times) == {2, 3, 4}

    def test_cepheus_root_change_is_source_switch(self, testbed):
        comm = Communicator(testbed, testbed.host_ips, "cepheus")
        comm.bcast(4096, root=0)
        assert len(testbed.fabric.groups) == 1
        comm.bcast(4096, root=2)
        assert len(testbed.fabric.groups) == 1  # no re-registration
        assert comm._cepheus.coordinator.switch_count == 1

    def test_amcast_root_change_builds_new_tree(self, testbed):
        comm = Communicator(testbed, testbed.host_ips, "binomial")
        comm.bcast(4096, root=0)
        comm.bcast(4096, root=1)
        assert len(comm._amcast) == 2

    def test_bcast_counts(self, testbed):
        comm = Communicator(testbed, testbed.host_ips, "chain")
        for _ in range(3):
            comm.bcast(64)
        assert comm.bcast_count == 3

    def test_rank_addressing(self, testbed):
        comm = Communicator(testbed, [4, 3, 2, 1], "chain")
        assert comm.ip_of(0) == 4
        r = comm.bcast(64, root=0)
        assert set(r.recv_times) == {1, 2, 3}
