"""HPL phase model: grid validation, phase accounting, Fig. 11 bands."""

import pytest

pytestmark = pytest.mark.slow  # Tier-2: HPL phase replays broadcast many panels.

from repro.apps import Cluster, HplConfig, HplModel
from repro.errors import ConfigurationError

SMALL = HplConfig(n=2048, nb=256)


class TestValidation:
    def test_empty_grid_rejected(self, testbed):
        with pytest.raises(ConfigurationError):
            HplModel(testbed, [])

    def test_ragged_grid_rejected(self, testbed):
        with pytest.raises(ConfigurationError):
            HplModel(testbed, [[1, 2], [3]])

    def test_grid_dimensions(self, testbed):
        m = HplModel(testbed, [[1, 2], [3, 4]], SMALL)
        assert (m.p, m.q) == (2, 2)


class TestPhaseAccounting:
    def test_1x4_has_no_rs(self, testbed):
        r = HplModel(testbed, [[1, 2, 3, 4]], SMALL).run()
        assert r.rs_comm == 0.0
        assert r.pb_comm > 0.0
        assert r.iterations == SMALL.n // SMALL.nb - 1

    def test_4x1_has_no_pb(self, testbed):
        r = HplModel(testbed, [[1], [2], [3], [4]], SMALL).run()
        assert r.pb_comm == 0.0
        assert r.rs_comm > 0.0

    def test_2x2_has_both(self, testbed):
        r = HplModel(testbed, [[1, 2], [3, 4]], SMALL).run()
        assert r.pb_comm > 0.0 and r.rs_comm > 0.0

    def test_total_is_sum_of_phases(self, testbed):
        r = HplModel(testbed, [[1, 2, 3, 4]], SMALL).run()
        assert r.total == pytest.approx(
            r.pf_time + r.pb_comm + r.rs_comm + r.update_time)
        assert r.others == pytest.approx(r.pf_time + r.update_time)

    def test_compute_identical_across_schemes(self, testbed):
        a = HplModel(testbed, [[1, 2, 3, 4]], SMALL,
                     pb_algorithm="increasing-ring").run()
        cl = Cluster.testbed(4)
        b = HplModel(cl, [[1, 2, 3, 4]], SMALL, pb_algorithm="cepheus").run()
        assert a.pf_time == pytest.approx(b.pf_time)
        assert a.update_time == pytest.approx(b.update_time)


class TestFig11Bands:
    CFG = HplConfig(n=4096, nb=256)

    def _run(self, grid, **kw):
        cl = Cluster.testbed(4)
        return HplModel(cl, grid, self.CFG, **kw).run()

    def test_pb_acceleration(self):
        base = self._run([[1, 2, 3, 4]], pb_algorithm="increasing-ring")
        ceph = self._run([[1, 2, 3, 4]], pb_algorithm="cepheus")
        comm_cut = 1 - ceph.pb_comm / base.pb_comm
        jct_cut = 1 - ceph.total / base.total
        assert 0.5 < comm_cut < 0.85     # paper: 67%
        assert 0.06 < jct_cut < 0.20     # paper: 12%

    def test_rs_mechanism(self):
        """The paper-scale RS band (comm -18 %, JCT -4 % at N=8192) is
        asserted by the fig11 benchmark; here we pin the *mechanism*:
        at equal panel size the multicast half clearly beats long's
        spread-roll, while the gather half is multicast-immune overhead
        that long never pays."""
        cl = Cluster.testbed(4)
        m = HplModel(cl, [[1], [2], [3], [4]], self.CFG,
                     rs_algorithm="cepheus")
        nbytes = m._rs_bytes(self.CFG.n)
        swap = m._run_rs_swap([1, 2, 3, 4], 0, nbytes)
        ceph_bcast = m._col_comms[0].bcast(nbytes, root=0).jct
        cl2 = Cluster.testbed(4)
        m2 = HplModel(cl2, [[1], [2], [3], [4]], self.CFG,
                      rs_algorithm="long")
        long_bcast = m2._col_comms[0].bcast(nbytes, root=0).jct
        assert swap > 0.0
        assert ceph_bcast < 0.7 * long_bcast

    def test_rs_gain_smaller_than_pb_gain(self):
        """The asymmetry the paper explains (67 % vs 18 %): the RS
        gather half cannot be multicast-accelerated."""
        pb_base = self._run([[1, 2, 3, 4]], pb_algorithm="increasing-ring")
        pb_ceph = self._run([[1, 2, 3, 4]], pb_algorithm="cepheus")
        rs_base = self._run([[1], [2], [3], [4]], rs_algorithm="long")
        rs_ceph = self._run([[1], [2], [3], [4]], rs_algorithm="cepheus")
        pb_cut = 1 - pb_ceph.pb_comm / pb_base.pb_comm
        rs_cut = 1 - rs_ceph.rs_comm / rs_base.rs_comm
        assert pb_cut > rs_cut


class TestSourceRotationInHpl:
    def test_cepheus_pb_uses_one_group(self):
        cl = Cluster.testbed(4)
        HplModel(cl, [[1, 2, 3, 4]], SMALL, pb_algorithm="cepheus").run()
        assert len(cl.fabric.groups) == 1  # rotated, never re-registered
