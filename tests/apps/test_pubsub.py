"""Publish-subscribe fan-out application."""

import pytest

from repro.apps import Cluster
from repro.apps.pubsub import Broker
from repro.errors import ConfigurationError


@pytest.fixture
def broker8():
    cl = Cluster.testbed(8)
    return Broker(cl, host_ip=1)


class TestTopicManagement:
    def test_create_and_publish(self, broker8):
        broker8.create_topic("events", [2, 3, 4])
        r = broker8.publish("events", 64 << 10)
        assert r.latency > 0
        assert r.topic == "events"

    def test_duplicate_topic_rejected(self, broker8):
        broker8.create_topic("t", [2])
        with pytest.raises(ConfigurationError):
            broker8.create_topic("t", [3])

    def test_unknown_topic(self, broker8):
        with pytest.raises(ConfigurationError):
            broker8.publish("ghost", 64)

    def test_empty_subscribers_rejected(self, broker8):
        with pytest.raises(ConfigurationError):
            broker8.create_topic("t", [])

    def test_broker_cannot_self_subscribe(self, broker8):
        with pytest.raises(ConfigurationError):
            broker8.create_topic("t", [1, 2])

    def test_unknown_transport(self, broker8):
        with pytest.raises(ConfigurationError):
            broker8.create_topic("t", [2], transport="pigeon")

    def test_unknown_broker_host(self):
        cl = Cluster.testbed(2)
        with pytest.raises(ConfigurationError):
            Broker(cl, host_ip=99)


class TestFanoutEfficiency:
    def test_multicast_sends_each_byte_once(self, broker8):
        broker8.create_topic("mc", [2, 3, 4, 5, 6], transport="cepheus")
        r = broker8.publish("mc", 1 << 20)
        # headers inflate slightly above 1.0^-1; no per-subscriber copies
        assert r.fanout_efficiency() > 0.9

    def test_unicast_pays_per_subscriber(self, broker8):
        broker8.create_topic("uc", [2, 3, 4, 5, 6], transport="unicast")
        r = broker8.publish("uc", 1 << 20)
        assert r.broker_tx_bytes > 4.8 * (1 << 20)
        assert r.fanout_efficiency() < 0.25

    def test_latency_advantage_grows_with_fanout(self):
        lat = {}
        for transport in ("cepheus", "unicast"):
            cl = Cluster.testbed(8)
            b = Broker(cl, 1, transport=transport)
            b.create_topic("t", list(range(2, 9)))
            lat[transport] = b.publish("t", 4 << 20).latency
        assert lat["unicast"] > 4 * lat["cepheus"]


class TestSustainedRate:
    def test_multicast_rate_beats_unicast(self):
        rates = {}
        for transport in ("cepheus", "unicast"):
            cl = Cluster.testbed(8)
            b = Broker(cl, 1, transport=transport)
            b.create_topic("t", list(range(2, 9)))
            rates[transport] = b.sustained_publish_rate("t", 64 << 10,
                                                        n_messages=50)
        assert rates["cepheus"] > 2 * rates["unicast"]

    def test_publish_counter(self, broker8):
        t = broker8.create_topic("t", [2, 3])
        for _ in range(3):
            broker8.publish("t", 4096)
        assert t.published == 3

    def test_multiple_topics_isolated(self, broker8):
        broker8.create_topic("a", [2, 3], transport="cepheus")
        broker8.create_topic("b", [4, 5], transport="cepheus")
        ra = broker8.publish("a", 1 << 16)
        rb = broker8.publish("b", 1 << 16)
        assert ra.latency == pytest.approx(rb.latency, rel=0.1)
        assert len(broker8.cluster.fabric.groups) == 2
