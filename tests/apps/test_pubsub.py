"""Publish-subscribe fan-out application."""

import pytest

from repro.apps import Cluster
from repro.apps.pubsub import Broker
from repro.errors import ConfigurationError


@pytest.fixture
def broker8():
    cl = Cluster.testbed(8)
    return Broker(cl, host_ip=1)


class TestTopicManagement:
    def test_create_and_publish(self, broker8):
        broker8.create_topic("events", [2, 3, 4])
        r = broker8.publish("events", 64 << 10)
        assert r.latency > 0
        assert r.topic == "events"

    def test_duplicate_topic_rejected(self, broker8):
        broker8.create_topic("t", [2])
        with pytest.raises(ConfigurationError):
            broker8.create_topic("t", [3])

    def test_unknown_topic(self, broker8):
        with pytest.raises(ConfigurationError):
            broker8.publish("ghost", 64)

    def test_empty_subscribers_rejected(self, broker8):
        with pytest.raises(ConfigurationError):
            broker8.create_topic("t", [])

    def test_broker_cannot_self_subscribe(self, broker8):
        with pytest.raises(ConfigurationError):
            broker8.create_topic("t", [1, 2])

    def test_unknown_transport(self, broker8):
        with pytest.raises(ConfigurationError):
            broker8.create_topic("t", [2], transport="pigeon")

    def test_unknown_broker_host(self):
        cl = Cluster.testbed(2)
        with pytest.raises(ConfigurationError):
            Broker(cl, host_ip=99)


class TestSubscriptionIdempotence:
    """subscribe/unsubscribe are retry-safe: duplicates and removals of
    non-members are no-ops, never corrupted member state."""

    def test_duplicate_subscribe_is_a_noop(self, broker8):
        t = broker8.create_topic("t", [2, 3], transport="cepheus")
        t.subscribe(4)
        before = list(t.subscribers)
        group_before = sorted(t._engine.group.members)
        t.subscribe(4)          # retried request: no-op
        assert t.subscribers == before
        assert sorted(t._engine.group.members) == group_before
        assert t._engine.group.epoch == 1   # only the first JOIN counted

    def test_unsubscribe_of_non_member_is_a_noop(self, broker8):
        t = broker8.create_topic("t", [2, 3, 4], transport="cepheus")
        before = list(t.subscribers)
        t.unsubscribe(7)        # never subscribed
        assert t.subscribers == before
        t.unsubscribe(4)
        t.unsubscribe(4)        # retried LEAVE: no-op
        assert t.subscribers == [2, 3]

    def test_delivery_intact_after_duplicate_ops(self, broker8):
        t = broker8.create_topic("t", [2, 3], transport="cepheus")
        t.subscribe(4)
        t.subscribe(4)
        t.unsubscribe(9)
        r = broker8.publish("t", 64 << 10)
        assert r.latency > 0
        assert sorted(t._engine.group.members) == [1, 2, 3, 4]

    def test_unicast_duplicate_subscribe_is_a_noop(self, broker8):
        t = broker8.create_topic("t", [2, 3], transport="unicast")
        t.subscribe(4)
        t.subscribe(4)
        assert t.subscribers == [2, 3, 4]
        t.unsubscribe(8)
        assert t.subscribers == [2, 3, 4]

    def test_self_subscribe_still_rejected(self, broker8):
        t = broker8.create_topic("t", [2, 3])
        with pytest.raises(ConfigurationError):
            t.subscribe(1)


class TestFanoutEfficiency:
    def test_multicast_sends_each_byte_once(self, broker8):
        broker8.create_topic("mc", [2, 3, 4, 5, 6], transport="cepheus")
        r = broker8.publish("mc", 1 << 20)
        # headers inflate slightly above 1.0^-1; no per-subscriber copies
        assert r.fanout_efficiency() > 0.9

    def test_unicast_pays_per_subscriber(self, broker8):
        broker8.create_topic("uc", [2, 3, 4, 5, 6], transport="unicast")
        r = broker8.publish("uc", 1 << 20)
        assert r.broker_tx_bytes > 4.8 * (1 << 20)
        assert r.fanout_efficiency() < 0.25

    def test_latency_advantage_grows_with_fanout(self):
        lat = {}
        for transport in ("cepheus", "unicast"):
            cl = Cluster.testbed(8)
            b = Broker(cl, 1, transport=transport)
            b.create_topic("t", list(range(2, 9)))
            lat[transport] = b.publish("t", 4 << 20).latency
        assert lat["unicast"] > 4 * lat["cepheus"]


class TestSustainedRate:
    def test_multicast_rate_beats_unicast(self):
        rates = {}
        for transport in ("cepheus", "unicast"):
            cl = Cluster.testbed(8)
            b = Broker(cl, 1, transport=transport)
            b.create_topic("t", list(range(2, 9)))
            rates[transport] = b.sustained_publish_rate("t", 64 << 10,
                                                        n_messages=50)
        assert rates["cepheus"] > 2 * rates["unicast"]

    def test_publish_counter(self, broker8):
        t = broker8.create_topic("t", [2, 3])
        for _ in range(3):
            broker8.publish("t", 4096)
        assert t.published == 3

    def test_multiple_topics_isolated(self, broker8):
        broker8.create_topic("a", [2, 3], transport="cepheus")
        broker8.create_topic("b", [4, 5], transport="cepheus")
        ra = broker8.publish("a", 1 << 16)
        rb = broker8.publish("b", 1 << 16)
        assert ra.latency == pytest.approx(rb.latency, rel=0.1)
        assert len(broker8.cluster.fabric.groups) == 2
