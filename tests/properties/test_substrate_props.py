"""Property tests on the network substrate (conservation, ordering)."""

from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro.net import Simulator, star
from repro.net.packet import Packet, PacketType
from repro.net.port import Port

SLOW = dict(max_examples=25, deadline=None,
            suppress_health_check=[HealthCheck.too_slow])


class _Sink:
    def __init__(self, sim):
        self.sim = sim
        self.name = "sink"
        self.ports = []
        self.received = []

    def receive(self, pkt, in_port):
        self.received.append((pkt, self.sim.now))


@given(sizes=st.lists(st.integers(1, 4096), min_size=1, max_size=60))
@settings(**SLOW)
def test_port_preserves_fifo_and_bytes(sizes):
    """Any enqueue pattern drains in order with exact byte accounting."""
    sim = Simulator()
    src = _Sink(sim)
    dst = _Sink(sim)
    port = Port(src, 0, queue_capacity=1 << 30)
    src.ports = [port]
    port.connect(dst, 0)
    pkts = [Packet(PacketType.DATA, 1, 2, psn=i, payload=s)
            for i, s in enumerate(sizes)]
    for p in pkts:
        assert port.enqueue(p)
    sim.run()
    got = [p.psn for p, _ in dst.received]
    assert got == list(range(len(sizes)))
    assert port.stats.tx_bytes == sum(p.wire_size for p in pkts)
    assert port.queued_bytes == 0


@given(sizes=st.lists(st.integers(1, 4096), min_size=2, max_size=40))
@settings(**SLOW)
def test_port_timing_is_cumulative_serialization(sizes):
    """Arrival time of packet k = sum of serializations up to k + prop."""
    sim = Simulator()
    src, dst = _Sink(sim), _Sink(sim)
    port = Port(src, 0, queue_capacity=1 << 30,
                bandwidth=100e9, propagation=1e-6)
    src.ports = [port]
    port.connect(dst, 0)
    pkts = [Packet(PacketType.DATA, 1, 2, psn=i, payload=s)
            for i, s in enumerate(sizes)]
    for p in pkts:
        port.enqueue(p)
    sim.run()
    cum = 0.0
    for (pkt, at), original in zip(dst.received, pkts):
        cum += original.wire_size * 8 / 100e9
        assert abs(at - (cum + 1e-6)) < 1e-12


@given(
    flows=st.lists(st.tuples(st.integers(2, 4), st.integers(1, 30)),
                   min_size=1, max_size=6),
)
@settings(max_examples=15, deadline=None,
          suppress_health_check=[HealthCheck.too_slow])
def test_switch_conserves_packets_per_flow(flows):
    """Everything injected at host 1 toward live hosts arrives exactly
    once (lossless config), regardless of interleaving."""
    from repro import constants

    sim = Simulator()
    topo = star(sim, 4)
    got = {ip: [] for ip in (2, 3, 4)}

    class Counter:
        def __init__(self, ip):
            self.ip = ip

        def handle_packet(self, pkt):
            got[self.ip].append(pkt.psn)

    for ip in (2, 3, 4):
        topo.nic(ip).register_qp(0x50, Counter(ip))
    sw, in_port = topo.leaf_of(1)
    expected = {ip: 0 for ip in (2, 3, 4)}
    psn = 0
    for dst_idx, count in flows:
        for _ in range(count):
            pkt = Packet(PacketType.DATA, 1, dst_idx, dst_qp=0x50,
                         psn=psn, payload=256)
            sim.schedule(psn * 1e-7, sw.receive, pkt, in_port)
            expected[dst_idx] += 1
            psn += 1
    sim.run()
    for ip in (2, 3, 4):
        assert len(got[ip]) == expected[ip]
        assert got[ip] == sorted(got[ip])  # per-path FIFO
