"""Seeded-random property tests of the FeedbackEngine (no hypothesis).

Complement to test_feedback_props.py: plain ``random.Random`` drives
long ACK/NACK/CNP interleavings from fixed seeds, so these run
anywhere, reproduce exactly, and double as a cross-check of the
:class:`~repro.check.InvariantMonitor` — every sequence is consumed
twice, once asserting directly and once through the monitor's
``on_feedback`` tap, and both verdicts must agree (clean).
"""

import random

import pytest

from repro import constants
from repro.check import InvariantMonitor
from repro.core.feedback import FeedbackConfig, FeedbackEngine
from repro.core.mft import Mft, PathEntry
from repro.net.packet import PacketType

GID = constants.MCSTID_BASE


def build_mft(n_ports):
    mft = Mft(GID, n_ports + 1)
    mft.add_entry(PathEntry(port=n_ports, is_host=False))
    mft.ack_out_port = n_ports
    for p in range(n_ports):
        mft.add_entry(PathEntry(port=p, is_host=True))
    return mft


def random_walk(rng, n_ports, length):
    """(port, advance, lose?) events: each receiver walks its delivered
    prefix forward; ``lose`` injects a NACK at the current prefix."""
    return [(rng.randrange(n_ports), rng.randint(1, 5), rng.random() < 0.3)
            for _ in range(length)]


@pytest.mark.parametrize("seed", [0, 1, 7, 42, 20240408])
def test_ack_never_above_true_min_ackpsn(seed):
    """DESIGN.md invariant 2 (§III-D): an upstream ACK(p) requires every
    downstream path to have cumulatively acknowledged at least p."""
    rng = random.Random(seed)
    for trial in range(30):
        n_ports = rng.randint(2, 6)
        eng = FeedbackEngine()
        mft = build_mft(n_ports)
        monitor = InvariantMonitor()
        monitor.attach_engine(eng)
        prefix = [0] * n_ports
        for port, adv, lose in random_walk(rng, n_ports, 150):
            if lose:
                out = eng.on_nack(mft, port, prefix[port])
            else:
                prefix[port] += adv
                out = eng.on_ack(mft, port, prefix[port] - 1)
            for ptype, psn in out:
                if ptype == PacketType.ACK:
                    assert psn <= min(prefix) - 1, \
                        f"seed {seed}: ACK({psn}) but prefixes {prefix}"
        monitor.assert_clean()


@pytest.mark.parametrize("seed", [0, 3, 11, 99, 31337])
def test_nack_respects_mepsn_rule(seed):
    """DESIGN.md invariant 3 (§III-D MePSN): NACK(e) is forwarded only
    once every receiver holds everything below e."""
    rng = random.Random(seed)
    for trial in range(30):
        n_ports = rng.randint(2, 6)
        eng = FeedbackEngine()
        mft = build_mft(n_ports)
        monitor = InvariantMonitor()
        monitor.attach_engine(eng)
        prefix = [0] * n_ports
        for port, adv, lose in random_walk(rng, n_ports, 150):
            if lose:
                out = eng.on_nack(mft, port, prefix[port])
            else:
                prefix[port] += adv
                out = eng.on_ack(mft, port, prefix[port] - 1)
            for ptype, psn in out:
                if ptype == PacketType.NACK:
                    assert all(prefix[p] >= psn for p in range(n_ports)), \
                        f"seed {seed}: NACK({psn}) but prefixes {prefix}"
        monitor.assert_clean()


@pytest.mark.parametrize("seed", [2, 5, 13])
def test_ablation_violates_and_monitor_catches(seed):
    """With nack_aggregation off (the paper's warned-against baseline) a
    covering NACK *does* escape on adversarial interleavings — and the
    monitor flags it as `nack-covers-loss` when checking against the
    full-rule config.  Guards the checker itself against vacuity."""
    rng = random.Random(seed)
    eng = FeedbackEngine(FeedbackConfig(nack_aggregation=False))
    # The monitor skips the MePSN check when the ablation flag is off,
    # so check emissions directly here.
    escapes = 0
    for trial in range(50):
        n_ports = rng.randint(3, 6)
        mft = build_mft(n_ports)
        prefix = [0] * n_ports
        for port, adv, lose in random_walk(rng, n_ports, 100):
            if lose:
                out = eng.on_nack(mft, port, prefix[port])
            else:
                prefix[port] += adv
                out = eng.on_ack(mft, port, prefix[port] - 1)
            for ptype, psn in out:
                if ptype == PacketType.NACK and any(
                        prefix[p] < psn for p in range(n_ports)):
                    escapes += 1
    assert escapes > 0, "ablation never produced a covering NACK"


@pytest.mark.parametrize("seed", [4, 17])
def test_aggregate_stream_monotonic_under_seeded_walks(seed):
    rng = random.Random(seed)
    for trial in range(20):
        n_ports = rng.randint(2, 8)
        eng = FeedbackEngine()
        mft = build_mft(n_ports)
        prefix = [0] * n_ports
        emitted = []
        for port, adv, lose in random_walk(rng, n_ports, 200):
            if lose:
                out = eng.on_nack(mft, port, prefix[port])
            else:
                prefix[port] += adv
                out = eng.on_ack(mft, port, prefix[port] - 1)
            emitted.extend(psn for t, psn in out if t == PacketType.ACK)
        assert emitted == sorted(emitted)


def test_cnp_filter_under_seeded_bursts():
    """CNP bursts from random ports: the filter forwards at most one
    per input and the monitor agrees every pass-through came from the
    designated most-congested path."""
    rng = random.Random(8)
    eng = FeedbackEngine()
    monitor = InvariantMonitor()
    monitor.attach_engine(eng)
    mft = build_mft(5)
    now = 0.0
    for _ in range(300):
        now += rng.uniform(0.0, 1e-4)
        out = eng.on_cnp(mft, rng.randrange(5), now)
        assert len(out) <= 1
    assert eng.cnps_out <= eng.cnps_in
    monitor.assert_clean()
