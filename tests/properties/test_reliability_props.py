"""End-to-end reliability properties (DESIGN.md invariants 1, 4, 5, 7).

These drive the full stack — RoCE engine + accelerator + fabric — under
hypothesis-chosen loss rates, group compositions and source-switch
sequences, and assert exactly-once in-order delivery every time.

Every case additionally runs under the
:class:`~repro.check.InvariantMonitor`: beyond the explicit assertions,
no protocol invariant (PSN contiguity, min-AckPSN aggregation, MePSN,
CNP filtering, ...) may be violated along the way.
"""

import contextlib

import pytest
from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro import constants
from repro.apps import Cluster
from repro.check import InvariantMonitor
from repro.net import Simulator, star
from repro.net.switch import SwitchConfig
from repro.transport.roce import RoceConfig
from repro.transport.verbs import VerbsContext

SLOW = dict(max_examples=12, deadline=None,
            suppress_health_check=[HealthCheck.too_slow,
                                   HealthCheck.data_too_large])


@contextlib.contextmanager
def monitored(cluster):
    """Attach an InvariantMonitor for the duration; assert it stayed
    clean.  Detaches even on failure (the class-level QP observer must
    not leak across hypothesis examples)."""
    monitor = InvariantMonitor()
    monitor.attach_cluster(cluster)
    try:
        yield monitor
        monitor.assert_clean()
    finally:
        monitor.detach()


@given(
    loss=st.floats(0.0, 0.15),
    npkts=st.integers(1, 120),
    seed=st.integers(0, 2**16),
    mode=st.sampled_from(["gbn", "irn"]),
)
@settings(**SLOW)
def test_unicast_delivers_exactly_once_in_order(loss, npkts, seed, mode):
    sim = Simulator()
    topo = star(sim, 2, switch_config=SwitchConfig(loss_rate=loss, seed=seed))
    cfg = RoceConfig(rto=200e-6, retransmit_mode=mode)
    a = VerbsContext(sim, topo.nic(1), cfg)
    b = VerbsContext(sim, topo.nic(2), cfg)
    qa, qb = a.create_qp(), b.create_qp()
    qa.connect(2, qb.qpn)
    qb.connect(1, qa.qpn)
    monitor = InvariantMonitor()
    monitor.attach_qp(qa)
    monitor.attach_qp(qb)
    deliveries = []
    qb.on_message = lambda mid, size, now, meta: deliveries.append(size)
    size = npkts * constants.MTU_BYTES
    qa.post_send(size)
    sim.run(max_events=3_000_000)
    assert deliveries == [size]
    assert qa.send_idle
    monitor.assert_clean()


@given(
    loss=st.floats(0.0, 0.03),
    nreceivers=st.integers(2, 6),
    npkts=st.integers(1, 80),
    seed=st.integers(0, 2**16),
    mode=st.sampled_from(["gbn", "irn"]),
)
@settings(**SLOW)
def test_multicast_delivers_exactly_once_to_every_member(
        loss, nreceivers, npkts, seed, mode):
    """Invariant 1: any loss pattern, every member, exactly once —
    under both retransmission disciplines."""
    from repro.collectives import CepheusBcast

    cl = Cluster.testbed(nreceivers + 1,
                         switch_config=SwitchConfig(loss_rate=loss, seed=seed),
                         roce_config=RoceConfig(rto=200e-6,
                                                retransmit_mode=mode))
    with monitored(cl):
        algo = CepheusBcast(cl, cl.host_ips)
        algo.prepare()
        counts = {ip: [] for ip in cl.host_ips[1:]}
        for ip in counts:
            algo.qps[ip].on_message = (
                lambda mid, sz, now, meta, _ip=ip: counts[_ip].append(sz))
        size = npkts * constants.MTU_BYTES
        done = {}
        algo.qps[1].post_send(size,
                              on_complete=lambda m, t: done.setdefault("t", t))
        cl.sim.run(max_events=5_000_000)
        for ip, sizes in counts.items():
            assert sizes == [size], f"host {ip} got {sizes}"
        assert "t" in done  # sender saw the aggregated final ACK


@given(
    members=st.lists(st.integers(1, 16), min_size=2, max_size=8, unique=True),
    seed=st.integers(0, 2**10),
)
@settings(max_examples=10, deadline=None,
          suppress_health_check=[HealthCheck.too_slow])
def test_mdt_reaches_arbitrary_member_sets(members, seed):
    """Invariant 4: for any member subset of a fat-tree, registration
    builds a working tree: every receiver delivered, no duplicates, and
    the per-switch path tables stay within the radix."""
    from repro.collectives import CepheusBcast

    cl = Cluster.fat_tree_cluster(4)
    with monitored(cl) as monitor:
        algo = CepheusBcast(cl, sorted(members))
        r = algo.run(3 * constants.MTU_BYTES)
        expected = set(members) - {algo.root}
        assert set(r.recv_times) == expected
        for accel in cl.fabric.mdt_switches(algo.group.mcst_id):
            mft = accel.mft_of(algo.group.mcst_id)
            assert len(mft.path_table) <= accel.switch.n_ports
        monitor.check_mft_consistency(cl.fabric, expect_connected=True)


@given(
    sources=st.lists(st.integers(0, 3), min_size=1, max_size=6),
)
@settings(max_examples=10, deadline=None,
          suppress_health_check=[HealthCheck.too_slow])
def test_arbitrary_source_switch_sequences(sources):
    """Invariant 7: any rotation sequence keeps PSNs consistent and
    delivery exact."""
    from repro.collectives import CepheusBcast
    from repro.core.source_switch import psn_consistent

    cl = Cluster.testbed(4)
    with monitored(cl):
        algo = CepheusBcast(cl, cl.host_ips)
        algo.prepare()
        for src_idx in sources:
            src = cl.host_ips[src_idx]
            algo.set_source(src)
            assert psn_consistent(algo.group)
            r = algo.run(2 * constants.MTU_BYTES)
            assert set(r.recv_times) == set(cl.host_ips) - {src}
