"""Property tests over the collective algorithms.

Every broadcast engine must deliver exactly the posted byte count to
every member, for arbitrary sizes and member subsets; the Cepheus
engine must additionally beat multi-unicast whenever fan-out > 1
(in-network replication can never lose to sender-serialized copies).
"""

import pytest
from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro.apps import ALGORITHMS, Cluster

SLOW = dict(max_examples=10, deadline=None,
            suppress_health_check=[HealthCheck.too_slow])


@given(
    alg=st.sampled_from(sorted(ALGORITHMS)),
    size=st.integers(1, 1 << 21),
    n=st.integers(2, 8),
)
@settings(**SLOW)
def test_every_engine_delivers_exact_bytes(alg, size, n):
    cl = Cluster.testbed(n)
    engine = ALGORITHMS[alg](cl, cl.host_ips)
    result = engine.run(size)
    assert set(result.recv_times) == set(cl.host_ips[1:])
    assert result.jct > 0
    for ip in cl.host_ips[1:]:
        total = sum(qp.recv.bytes_delivered
                    for qp in cl.ctx(ip).qps)
        assert total == size, (alg, ip)


@given(
    size=st.integers(1, 1 << 22),
    n=st.integers(3, 8),
    root_idx=st.integers(0, 7),
)
@settings(**SLOW)
def test_cepheus_never_loses_to_multi_unicast(size, n, root_idx):
    root_idx %= n
    cl = Cluster.testbed(n)
    root = cl.host_ips[root_idx]
    ceph = ALGORITHMS["cepheus"](cl, cl.host_ips, root).run(size).jct
    uni = ALGORITHMS["multi-unicast"](cl, cl.host_ips, root).run(size).jct
    assert ceph <= uni * 1.01


@given(
    size=st.integers(1, 1 << 20),
    slices=st.integers(1, 16),
)
@settings(**SLOW)
def test_chain_slicing_always_partitions(size, slices):
    from repro.collectives import ChainBcast

    cl = Cluster.testbed(4)
    algo = ChainBcast(cl, cl.host_ips, slices=slices)
    pieces = algo._slice_sizes(size)
    assert sum(pieces) == size
    assert all(p > 0 for p in pieces)
    assert len(pieces) <= slices
    # respect the min-slice floor except when a single slice is forced
    if len(pieces) > 1:
        assert min(pieces) >= algo.min_slice // 2


@given(data=st.data())
@settings(max_examples=10, deadline=None,
          suppress_health_check=[HealthCheck.too_slow])
def test_binomial_jct_monotone_in_size(data):
    from repro.collectives import BinomialTreeBcast

    sizes = sorted(data.draw(st.lists(
        st.integers(64, 1 << 22), min_size=2, max_size=4, unique=True)))
    cl = Cluster.testbed(4)
    algo = BinomialTreeBcast(cl, cl.host_ips)
    jcts = [algo.run(s).jct for s in sizes]
    assert jcts == sorted(jcts)
