"""Property-based tests of the feedback engine (DESIGN.md invariants 2-3).

The engine is a pure state machine, so hypothesis can drive it with
arbitrary interleavings of per-port ACK/NACK progress and check the
paper's two safety guarantees on every emission.
"""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro import constants
from repro.core.feedback import FeedbackConfig, FeedbackEngine
from repro.core.mft import Mft, PathEntry
from repro.net.packet import PacketType

GID = constants.MCSTID_BASE


def build_mft(n_ports):
    mft = Mft(GID, n_ports + 1)
    mft.add_entry(PathEntry(port=n_ports, is_host=False))
    mft.ack_out_port = n_ports
    for p in range(n_ports):
        mft.add_entry(PathEntry(port=p, is_host=True))
    return mft


# Each receiver independently walks its delivered-prefix forward; an
# event is (port, advance, lose?) — lose injects a NACK at the current
# prefix instead of an ACK.
events = st.lists(
    st.tuples(st.integers(0, 3), st.integers(1, 5), st.booleans()),
    min_size=1, max_size=200,
)


@given(events)
@settings(max_examples=200, deadline=None)
def test_aggregated_ack_never_overclaims(evs):
    """Every emitted ACK(p) must satisfy: all downstream paths have
    cumulatively acknowledged at least p."""
    eng = FeedbackEngine()
    mft = build_mft(4)
    prefix = [0, 0, 0, 0]  # delivered-prefix per port (exclusive)
    for port, adv, lose in evs:
        if lose:
            out = eng.on_nack(mft, port, prefix[port])
        else:
            prefix[port] += adv
            out = eng.on_ack(mft, port, prefix[port] - 1)
        for ptype, psn in out:
            if ptype == PacketType.ACK:
                assert all(prefix[p] - 1 >= psn for p in range(4)), \
                    f"ACK({psn}) but prefixes {prefix}"


@given(events)
@settings(max_examples=200, deadline=None)
def test_emitted_nack_never_covers_a_loss(evs):
    """Every emitted NACK(e) must satisfy: every receiver has all
    packets below e (otherwise the sender would skip an earlier loss)."""
    eng = FeedbackEngine()
    mft = build_mft(4)
    prefix = [0, 0, 0, 0]
    for port, adv, lose in evs:
        if lose:
            out = eng.on_nack(mft, port, prefix[port])
        else:
            prefix[port] += adv
            out = eng.on_ack(mft, port, prefix[port] - 1)
        for ptype, psn in out:
            if ptype == PacketType.NACK:
                # prefix[p] >= psn  <=>  p holds every PSN below psn
                assert all(prefix[p] >= psn for p in range(4)), \
                    f"NACK({psn}) but prefixes {prefix}"


@given(events)
@settings(max_examples=150, deadline=None)
def test_aggregate_monotonic(evs):
    """The aggregated ACK stream the sender sees is non-decreasing."""
    eng = FeedbackEngine()
    mft = build_mft(4)
    prefix = [0, 0, 0, 0]
    emitted = []
    for port, adv, lose in evs:
        if lose:
            out = eng.on_nack(mft, port, prefix[port])
        else:
            prefix[port] += adv
            out = eng.on_ack(mft, port, prefix[port] - 1)
        emitted.extend(psn for t, psn in out if t == PacketType.ACK)
    assert emitted == sorted(emitted)


@given(events, st.booleans(), st.booleans())
@settings(max_examples=100, deadline=None)
def test_no_emission_regardless_of_config_crashes(evs, trig, nagg):
    """Robustness: every config variant digests every interleaving."""
    eng = FeedbackEngine(FeedbackConfig(trigger_condition=trig,
                                        nack_aggregation=nagg))
    mft = build_mft(4)
    prefix = [0, 0, 0, 0]
    for port, adv, lose in evs:
        if lose:
            eng.on_nack(mft, port, prefix[port])
        else:
            prefix[port] += adv
            eng.on_ack(mft, port, prefix[port] - 1)
    assert eng.acks_in + eng.nacks_in == len(evs)


@given(st.lists(st.tuples(st.integers(0, 3),
                          st.floats(0, 1e-3, allow_nan=False)),
                min_size=1, max_size=100))
@settings(max_examples=100, deadline=None)
def test_cnp_filter_passes_subset(cnps):
    """The filter forwards a (most-congested) subset, never amplifies."""
    eng = FeedbackEngine()
    mft = build_mft(4)
    now = 0.0
    for port, dt in cnps:
        now += dt
        out = eng.on_cnp(mft, port, now)
        assert len(out) <= 1
    assert eng.cnps_out <= eng.cnps_in
