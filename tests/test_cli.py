"""The cepheus-repro CLI."""

import pytest

from repro.cli import build_parser, main


class TestParser:
    def test_requires_subcommand(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args([])

    def test_all_subcommands_registered(self):
        parser = build_parser()
        for cmd in ("experiments", "demo", "sweep", "info"):
            args = parser.parse_args([cmd] if cmd != "sweep"
                                     else [cmd, "--sizes", "64"])
            assert callable(args.fn)

    def test_bench_subcommands_registered(self):
        parser = build_parser()
        emit = parser.parse_args(["bench", "emit", "--jobs", "4"])
        assert callable(emit.fn) and emit.jobs == 4
        cmp_args = parser.parse_args(["bench", "compare", "a.json",
                                      "b.json"])
        assert callable(cmp_args.fn)
        assert cmp_args.current == "a.json" and cmp_args.baseline == "b.json"

    def test_experiments_jobs_flag(self, capsys):
        assert main(["experiments", "--only", "fig7b", "--jobs", "2"]) == 0
        assert "MFT memory" in capsys.readouterr().out


class TestCommands:
    def test_info_prints_constants(self, capsys):
        assert main(["info"]) == 0
        out = capsys.readouterr().out
        assert "100 Gbps" in out
        assert "CALIBRATION" in out

    def test_demo_runs(self, capsys):
        assert main(["demo", "--size", "65536"]) == 0
        out = capsys.readouterr().out
        assert "cepheus" in out and "chain" in out
        assert "1.00x" in out

    def test_sweep_runs(self, capsys):
        assert main(["sweep", "--sizes", "4096", "--groups", "4",
                     "--algorithms", "cepheus"]) == 0
        out = capsys.readouterr().out
        assert "cepheus_jct" in out

    def test_experiments_selection(self, capsys):
        assert main(["experiments", "--only", "fig7b"]) == 0
        out = capsys.readouterr().out
        assert "MFT memory" in out

    def test_experiments_unknown_id(self, capsys):
        assert main(["experiments", "--only", "fig99"]) == 2
        assert "unknown experiments" in capsys.readouterr().err
