"""The cepheus-repro CLI."""

import pytest

from repro.cli import build_parser, main


class TestParser:
    def test_requires_subcommand(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args([])

    def test_all_subcommands_registered(self):
        parser = build_parser()
        for cmd in ("experiments", "demo", "sweep", "info"):
            args = parser.parse_args([cmd] if cmd != "sweep"
                                     else [cmd, "--sizes", "64"])
            assert callable(args.fn)

    def test_bench_subcommands_registered(self):
        parser = build_parser()
        emit = parser.parse_args(["bench", "emit", "--jobs", "4"])
        assert callable(emit.fn) and emit.jobs == 4
        cmp_args = parser.parse_args(["bench", "compare", "a.json",
                                      "b.json"])
        assert callable(cmp_args.fn)
        assert cmp_args.current == "a.json" and cmp_args.baseline == "b.json"

    def test_experiments_jobs_flag(self, capsys):
        assert main(["experiments", "--only", "fig7b", "--jobs", "2"]) == 0
        assert "MFT memory" in capsys.readouterr().out

    def test_bench_compare_gate_flags(self):
        parser = build_parser()
        args = parser.parse_args(["bench", "compare", "a.json", "b.json",
                                  "--check-events",
                                  "--max-wall-drift", "0.10"])
        assert args.check_events is True
        assert args.max_wall_drift == pytest.approx(0.10)
        defaults = parser.parse_args(["bench", "compare", "a.json", "b.json"])
        assert defaults.check_events is False
        assert defaults.max_wall_drift == -1.0  # sentinel: gate off

    def test_pipeline_subcommand_registered(self):
        args = build_parser().parse_args(
            ["pipeline", "dump", "--deployment", "lookaside"])
        assert callable(args.fn) and args.deployment == "lookaside"


class TestCommands:
    def test_info_prints_constants(self, capsys):
        assert main(["info"]) == 0
        out = capsys.readouterr().out
        assert "100 Gbps" in out
        assert "CALIBRATION" in out

    def test_demo_runs(self, capsys):
        assert main(["demo", "--size", "65536"]) == 0
        out = capsys.readouterr().out
        assert "cepheus" in out and "chain" in out
        assert "1.00x" in out

    def test_sweep_runs(self, capsys):
        assert main(["sweep", "--sizes", "4096", "--groups", "4",
                     "--algorithms", "cepheus"]) == 0
        out = capsys.readouterr().out
        assert "cepheus_jct" in out

    def test_experiments_selection(self, capsys):
        assert main(["experiments", "--only", "fig7b"]) == 0
        out = capsys.readouterr().out
        assert "MFT memory" in out

    def test_experiments_unknown_id(self, capsys):
        assert main(["experiments", "--only", "fig99"]) == 2
        assert "unknown experiments" in capsys.readouterr().err

    def test_pipeline_dump_inline(self, capsys):
        assert main(["pipeline", "dump"]) == 0
        out = capsys.readouterr().out
        assert "rx: pfc -> loss -> acl_classify -> unicast_forward" in out
        assert ("accel[inline]: admit -> mrp -> mft_lookup -> reduce -> "
                "track_source -> replicate -> bridge -> feedback") in out
        assert "lookaside_detour" not in out

    def test_pipeline_dump_lookaside_has_detour_stage(self, capsys):
        assert main(["pipeline", "dump", "--deployment", "lookaside"]) == 0
        out = capsys.readouterr().out
        assert "admit -> lookaside_detour -> mrp" in out

    def test_pipeline_dump_source_routed_has_sp_forward(self, capsys):
        assert main(["pipeline", "dump", "--deployment",
                     "source_routed"]) == 0
        out = capsys.readouterr().out
        assert ("accel[source_routed]: admit -> mrp -> sp_forward -> "
                "mft_lookup") in out

    def test_pipeline_dump_unknown_deployment_clean_error(self, capsys):
        assert main(["pipeline", "dump", "--deployment", "quantum"]) == 2
        err = capsys.readouterr().err
        assert "unknown deployment 'quantum'" in err
        assert "inline, lookaside, source_routed" in err

    def test_pipeline_dump_switch_filter(self, capsys):
        assert main(["pipeline", "dump", "--topo", "fat_tree",
                     "--switch", "core0"]) == 0
        out = capsys.readouterr().out
        assert "core0" in out and "edge0_0" not in out
        assert main(["pipeline", "dump", "--switch", "nope"]) == 2
        assert "no switch 'nope'" in capsys.readouterr().err
