"""Closed-form model sanity + validation against the packet engine."""

import pytest

from repro.analytic import (NetModel, binomial_jct, cepheus_jct, chain_jct,
                            long_jct, rdmc_jct, unicast_jct)
from repro.apps import Cluster
from repro.collectives import (BinomialTreeBcast, CepheusBcast, ChainBcast,
                               LongBcast, MultiUnicastBcast, RdmcBcast)

NET = NetModel(hops=1)  # star topology
MB = 1 << 20


class TestModelShape:
    def test_goodput_below_line_rate(self):
        assert NET.goodput < NET.bandwidth

    def test_cepheus_independent_of_group_size(self):
        assert cepheus_jct(MB, 4, NET) == cepheus_jct(MB, 512, NET)

    def test_bt_logarithmic(self):
        j4 = binomial_jct(MB, 4, NET)
        j16 = binomial_jct(MB, 16, NET)
        j256 = binomial_jct(MB, 256, NET)
        assert j16 / j4 == pytest.approx(2.0, rel=0.1)
        assert j256 / j16 == pytest.approx(2.0, rel=0.1)

    def test_chain_linear_in_members(self):
        j4 = chain_jct(64, 4, NET, slices=1)
        j64 = chain_jct(64, 64, NET, slices=1)
        assert j64 / j4 > 10

    def test_chain_slicing_approaches_wire_time(self):
        size = 64 * MB
        coarse = chain_jct(size, 4, NET, slices=1)
        fine = chain_jct(size, 4, NET, slices=64)
        assert fine < coarse
        assert fine < 1.3 * NET.wire(size) + 1e-3

    def test_unicast_linear_in_receivers(self):
        assert unicast_jct(MB, 8, NET) > 2 * unicast_jct(MB, 4, NET)

    def test_rdmc_steps_reflected(self):
        one_block = rdmc_jct(MB, 8, NET, block_size=MB)
        many_blocks = rdmc_jct(16 * MB, 8, NET, block_size=MB)
        assert many_blocks > one_block

    def test_ordering_matches_paper_large(self):
        """Large-flow ranking: cepheus < chain < bt < unicast (n >= 8)."""
        size, n = 256 * MB, 8
        assert (cepheus_jct(size, n, NET)
                < chain_jct(size, n, NET)
                < binomial_jct(size, n, NET)
                < unicast_jct(size, n, NET))

    def test_ordering_matches_paper_small(self):
        """Small-flow ranking: cepheus < bt < chain (n >= 8)."""
        size, n = 64, 16
        assert (cepheus_jct(size, n, NET)
                < binomial_jct(size, n, NET)
                < chain_jct(size, n, NET, slices=4))


@pytest.mark.slow  # Tier-2: replays packet-engine runs per size/n cell
class TestValidationAgainstPacketEngine:
    """The models must track the packet engine where Fig. 12 stitches
    them in.  Tolerances reflect each model's documented accuracy."""

    @pytest.mark.parametrize("n", [4, 8])
    @pytest.mark.parametrize("size", [MB, 16 * MB])
    def test_core_trio_tight(self, n, size):
        cl = Cluster.testbed(n)
        checks = [
            (CepheusBcast, cepheus_jct, {}),
            (BinomialTreeBcast, binomial_jct, {}),
            (ChainBcast, chain_jct, {}),
        ]
        for cls, model, kw in checks:
            sim_jct = cls(cl, cl.host_ips).run(size).jct
            mod_jct = model(size, n, NET, **kw)
            assert mod_jct == pytest.approx(sim_jct, rel=0.10), cls.name

    def test_unicast_tight_at_large(self):
        cl = Cluster.testbed(8)
        sim_jct = MultiUnicastBcast(cl, cl.host_ips).run(16 * MB).jct
        assert unicast_jct(16 * MB, 8, NET) == pytest.approx(sim_jct, rel=0.10)

    def test_rdmc_coarse(self):
        cl = Cluster.testbed(8)
        sim_jct = RdmcBcast(cl, cl.host_ips).run(16 * MB).jct
        assert rdmc_jct(16 * MB, 8, NET) == pytest.approx(sim_jct, rel=0.35)

    def test_long_coarse(self):
        cl = Cluster.testbed(8)
        sim_jct = LongBcast(cl, cl.host_ips).run(16 * MB).jct
        assert long_jct(16 * MB, 8, NET) == pytest.approx(sim_jct, rel=0.45)

    def test_small_message_trio(self):
        cl = Cluster.testbed(4)
        for cls, model in ((CepheusBcast, cepheus_jct),
                           (BinomialTreeBcast, binomial_jct),
                           (ChainBcast, chain_jct)):
            sim_jct = cls(cl, cl.host_ips).run(4096).jct
            assert model(4096, 4, NET) == pytest.approx(sim_jct, rel=0.15)
