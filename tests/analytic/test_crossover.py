"""Crossover analysis between the broadcast models."""

import pytest

from repro.analytic import NetModel, binomial_jct, chain_jct
from repro.analytic.crossover import (bt_chain_crossover, find_crossover,
                                      speedup_at)

NET = NetModel(hops=1)


class TestFindCrossover:
    def test_linear_functions(self):
        # f = 10 + size, g = 100 + size/2 -> equal around 180
        f = lambda s: 10 + s
        g = lambda s: 100 + s / 2
        # f starts below g -> crossover at lo
        assert find_crossover(f, g, lo=64, hi=1 << 20) == 64
        # reversed: g catches f... g is below f beyond 180
        x = find_crossover(g, f, lo=64, hi=1 << 20)
        assert 170 <= x <= 190

    def test_never_crosses(self):
        assert find_crossover(lambda s: s + 1, lambda s: s,
                              lo=64, hi=1 << 20) is None


class TestBtChainCrossover:
    @pytest.mark.parametrize("n", [4, 8, 64, 512])
    def test_boundary_is_consistent(self, n):
        x = bt_chain_crossover(n, NET)  # slices = n (paper convention)
        assert x is not None
        assert chain_jct(x, n, NET, slices=n) <= binomial_jct(x, n, NET)
        assert chain_jct(x // 2, n, NET, slices=n) > \
            binomial_jct(x // 2, n, NET)

    def test_fixed_small_slice_count_may_never_win(self):
        """With the testbed's fixed 4 slices, Chain cannot beat BT at
        large N — the §II-C trade-off the paper navigates."""
        assert bt_chain_crossover(512, NET, slices=4) is None

    def test_crossover_grows_with_group_size(self):
        """Longer chains need larger messages to amortize their fill:
        the BT-beats-Chain region widens with N (why Fig. 12's Chain
        short-flow gap explodes at 512 members)."""
        xs = [bt_chain_crossover(n, NET) for n in (4, 16, 64, 256)]
        assert xs == sorted(xs)
        assert xs[-1] > 8 * xs[0]


class TestSpeedupAt:
    def test_small_message_regime(self):
        vs_bt, vs_chain = speedup_at(64, 512, NetModel(hops=5))
        assert vs_chain > vs_bt > 1  # chain is the worse small-msg loser

    def test_large_message_regime(self):
        vs_bt, vs_chain = speedup_at(1 << 30, 512, NetModel(hops=5))
        assert vs_bt > vs_chain > 1  # bt is the worse large-msg loser

    def test_matches_paper_512_bands(self):
        """The Fig. 12 headline factors from the closed forms.

        Large-flow factors land on the paper's numbers (8.9x / 2.1x).
        Short-flow factors exceed the paper's (164x / 4.5x) because our
        relays carry the host-stack costs calibrated on the Fig. 8
        testbed, which the paper's ns-3 relays did not pay — the
        ordering and scale laws are identical.
        """
        net = NetModel(hops=5)
        vs_bt_small, vs_chain_small = speedup_at(64, 512, net)
        vs_bt_large, vs_chain_large = speedup_at(1 << 30, 512, net)
        assert 150 <= vs_chain_small <= 900      # paper: up to 164x
        assert 4 <= vs_bt_small <= 20            # paper: 4.5x
        assert 6 <= vs_bt_large <= 12            # paper: 8.9x
        assert 1.5 <= vs_chain_large <= 2.5      # paper: 2.1x
