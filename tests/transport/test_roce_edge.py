"""RoCE engine edge cases beyond the core behaviour suite."""

import pytest

from repro import constants
from repro.net import Simulator, SwitchConfig, star
from repro.net.packet import Packet, PacketType
from repro.transport import RoceConfig, VerbsContext


def make_pair(loss=0.0, seed=0, config=None, n=2):
    sim = Simulator()
    topo = star(sim, n, switch_config=SwitchConfig(loss_rate=loss, seed=seed))
    ctxs = [VerbsContext(sim, topo.nic(i + 1), config) for i in range(n)]
    qa, qb = ctxs[0].create_qp(), ctxs[1].create_qp()
    qa.connect(2, qb.qpn)
    qb.connect(1, qa.qpn)
    return sim, qa, qb, ctxs


class TestInterleavedMessages:
    def test_many_queued_messages_under_loss(self):
        sim, qa, qb, _ = make_pair(loss=0.01, seed=6,
                                   config=RoceConfig(rto=300e-6))
        sizes = [3 * constants.MTU_BYTES, 100, 17 * constants.MTU_BYTES,
                 constants.MTU_BYTES, 5000]
        got = []
        qb.on_message = lambda mid, size, now, meta: got.append(size)
        for s in sizes:
            qa.post_send(s)
        sim.run(max_events=5_000_000)
        assert got == sizes  # in order, exactly once each

    def test_completions_fire_in_post_order_under_loss(self):
        sim, qa, qb, _ = make_pair(loss=0.02, seed=8,
                                   config=RoceConfig(rto=300e-6))
        order = []
        for tag in range(6):
            qa.post_send(2 * constants.MTU_BYTES,
                         on_complete=lambda mid, now, t=tag: order.append(t))
        sim.run(max_events=5_000_000)
        assert order == list(range(6))

    def test_meta_preserved_across_retransmission(self):
        sim, qa, qb, _ = make_pair(loss=0.05, seed=2,
                                   config=RoceConfig(rto=300e-6))
        metas = []
        qb.on_message = lambda mid, size, now, meta: metas.append(meta)
        for i in range(4):
            qa.post_send(3 * constants.MTU_BYTES, meta={"idx": i})
        sim.run(max_events=5_000_000)
        assert [m["idx"] for m in metas] == [0, 1, 2, 3]


class TestWriteEdges:
    def test_multi_packet_write_offsets(self):
        """Every packet's RETH address advances by MTU from the base."""
        sim, qa, qb, ctxs = make_pair()
        mr = ctxs[1].reg_mr(1 << 20)
        seen = []
        orig = qb.handle_packet

        def spy(pkt):
            if pkt.ptype == PacketType.DATA:
                seen.append(pkt.vaddr)
            orig(pkt)

        qb.handle_packet = spy
        qa.post_write(3 * constants.MTU_BYTES, vaddr=mr.addr, rkey=mr.rkey)
        sim.run()
        assert seen == [mr.addr, mr.addr + constants.MTU_BYTES,
                        mr.addr + 2 * constants.MTU_BYTES]
        assert ctxs[1].mr_table.write_hits == 1  # validated on first only

    def test_write_then_send_same_qp(self):
        sim, qa, qb, ctxs = make_pair()
        mr = ctxs[1].reg_mr(1 << 20)
        got = []
        qb.on_message = lambda mid, size, now, meta: got.append(size)
        qa.post_write(8192, vaddr=mr.addr, rkey=mr.rkey)
        qa.post_send(4096)
        sim.run()
        assert got == [8192, 4096]


class TestCnpPacing:
    def test_min_interval_enforced(self):
        """Persistent marking yields at most one CNP per interval."""
        sim, qa, qb, _ = make_pair()
        # Deliver pre-marked packets directly to the receiver QP.
        for psn in range(100):
            pkt = Packet(PacketType.DATA, 1, 2, src_qp=qa.qpn,
                         dst_qp=qb.qpn, psn=psn, payload=64,
                         first=(psn == 0), last=(psn == 99))
            pkt.ecn = True
            sim.schedule(psn * 1e-6, qb.handle_packet, pkt)
        sim.run()
        window = 99e-6
        max_cnps = int(window / constants.CNP_MIN_INTERVAL_S) + 1
        assert 1 <= qb.cnps_sent <= max_cnps


class TestAckCoalesceBoundaries:
    @pytest.mark.parametrize("npkts", [1, 3, 4, 5, 8, 9])
    def test_ack_counts(self, npkts):
        cfg = RoceConfig(ack_coalesce=4)
        sim, qa, qb, _ = make_pair(config=cfg)
        qa.post_send(npkts * constants.MTU_BYTES)
        sim.run()
        expected = npkts // 4 + (1 if npkts % 4 else 0)
        assert qb.acks_sent == expected
        assert qa.send_idle
