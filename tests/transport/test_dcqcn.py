"""DCQCN reaction-point state machine."""

import pytest

from repro.net.simulator import Simulator
from repro.transport.dcqcn import DcqcnConfig, DcqcnRateController

LINE = 100e9


def _cc(sim, **kw):
    return DcqcnRateController(sim, LINE, DcqcnConfig(**kw))


class TestCnpReaction:
    def test_starts_at_line_rate(self, sim):
        assert _cc(sim).rate == LINE

    def test_cnp_cuts_rate(self, sim):
        cc = _cc(sim)
        cc.on_cnp()
        # alpha was 1.0 -> updated to (1-g)+g = 1.0 before the cut? no:
        # alpha updates first with g weight, then rate is cut by alpha/2.
        assert cc.rate < LINE
        assert cc.target == LINE  # target remembers pre-cut rate

    def test_successive_cnps_compound(self, sim):
        cc = _cc(sim)
        cc.on_cnp()
        r1 = cc.rate
        cc.on_cnp()
        assert cc.rate < r1

    def test_rate_floor(self, sim):
        cc = _cc(sim, min_rate=1e9)
        for _ in range(200):
            cc.on_cnp()
        assert cc.rate == pytest.approx(1e9)

    def test_disabled_ignores_cnp(self, sim):
        cc = _cc(sim, enabled=False)
        cc.on_cnp()
        assert cc.rate == LINE


class TestAlpha:
    def test_alpha_rises_on_cnp(self, sim):
        cc = _cc(sim)
        cc.start()
        sim.run(until=500e-6)   # let alpha decay first
        a0 = cc.alpha
        cc.on_cnp()
        assert cc.alpha > a0
        cc.stop()

    def test_alpha_decays_without_cnp(self, sim):
        cc = _cc(sim)
        cc.start()
        cc.on_cnp()
        a0 = cc.alpha
        sim.run(until=sim.now + 1e-3)
        assert cc.alpha < a0
        cc.stop()


class TestIncrease:
    def test_fast_recovery_approaches_target(self, sim):
        cc = _cc(sim)
        cc.start()
        cc.on_cnp()
        cut = cc.rate
        sim.run(until=sim.now + 200e-6)  # a few rate-timer ticks
        assert cut < cc.rate <= cc.target
        cc.stop()

    def test_additive_increase_raises_target(self, sim):
        cc = _cc(sim, rate_timer=10e-6, f=2)
        cc.start()
        cc.on_cnp()   # first cut: target snaps to the (line) rate
        cc.on_cnp()   # second cut: target now below line rate
        t0 = cc.target
        assert t0 < LINE
        sim.run(until=sim.now + 500e-6)  # > f ticks: additive phase
        assert cc.target > t0
        cc.stop()

    def test_rate_never_exceeds_line(self, sim):
        cc = _cc(sim, rate_timer=5e-6, rai=10e9, rhai=50e9, f=1)
        cc.start()
        cc.on_cnp()
        sim.run(until=sim.now + 5e-3)
        assert cc.rate <= LINE and cc.target <= LINE
        cc.stop()

    def test_byte_counter_triggers_increase(self, sim):
        cc = _cc(sim, byte_counter=10_000)
        cc.start()
        cc.on_cnp()
        r0 = cc.rate
        cc.on_bytes_sent(50_000)  # 5 byte-counter events
        assert cc.rate > r0
        cc.stop()


class TestLifecycle:
    def test_timers_stop_cleanly(self, sim):
        cc = _cc(sim)
        cc.start()
        cc.stop()
        sim.run()
        assert sim.peek_next_time() is None

    def test_start_idempotent(self, sim):
        cc = _cc(sim)
        cc.start()
        cc.start()
        cc.stop()
        sim.run()
        assert not cc.active

    def test_inactive_ignores_bytes(self, sim):
        cc = _cc(sim, byte_counter=1000)
        cc.on_bytes_sent(100_000)
        assert cc.rate == LINE
