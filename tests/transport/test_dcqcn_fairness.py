"""DCQCN end-to-end behaviour on shared bottlenecks."""

import pytest

pytestmark = pytest.mark.slow  # Tier-2: 20ms virtual congestion runs are packet-heavy.

from repro.apps import Cluster
from repro.net.trace import ThroughputSampler


def _two_flows_share_bottleneck(duration=20e-3):
    """Two unicast senders into one 100G receiver downlink."""
    cl = Cluster.testbed(4)
    samplers = {}
    for src in (2, 3):
        s = ThroughputSampler(1e-3)
        cl.qp_to(1, src).rx_sampler = s
        samplers[src] = s
        cl.qp_to(src, 1).post_send(256 << 20)
    cl.run(until=duration)
    return cl, samplers


class TestPairwiseFairness:
    def test_shares_converge(self):
        cl, samplers = _two_flows_share_bottleneck()
        late = {src: s.average_gbps(12e-3, 20e-3)
                for src, s in samplers.items()}
        total = sum(late.values())
        assert total > 85            # bottleneck stays utilized
        ratio = max(late.values()) / max(min(late.values()), 1e-9)
        assert ratio < 2.0           # converging toward 50/50

    def test_rates_bounded_by_line(self):
        cl, _ = _two_flows_share_bottleneck(duration=5e-3)
        for src in (2, 3):
            assert cl.qp_to(src, 1).cc.rate <= 100e9


class TestLateJoiner:
    def test_new_flow_carves_out_share(self):
        cl = Cluster.testbed(4)
        s2, s3 = ThroughputSampler(1e-3), ThroughputSampler(1e-3)
        cl.qp_to(1, 2).rx_sampler = s2
        cl.qp_to(1, 3).rx_sampler = s3
        cl.qp_to(2, 1).post_send(256 << 20)
        cl.sim.schedule(5e-3, lambda: cl.qp_to(3, 1).post_send(64 << 20))
        cl.run(until=20e-3)
        before = s2.average_gbps(2e-3, 5e-3)
        after_join = s3.average_gbps(12e-3, 18e-3)
        assert before > 90           # alone: near line rate
        assert after_join > 20       # the late joiner got a real share

    def test_flow_reclaims_after_competitor_ends(self):
        cl = Cluster.testbed(4)
        s2 = ThroughputSampler(1e-3)
        cl.qp_to(1, 2).rx_sampler = s2
        cl.qp_to(2, 1).post_send(512 << 20)
        cl.sim.schedule(3e-3, lambda: cl.qp_to(3, 1).post_send(32 << 20))
        cl.run(until=35e-3)
        shared = s2.average_gbps(5e-3, 8e-3)
        reclaimed = s2.average_gbps(28e-3, 34e-3)
        assert reclaimed > shared + 10
