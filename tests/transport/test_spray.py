"""Unit tests for the k-path lane spraying primitives."""

import pytest

from repro import constants
from repro.errors import TransportError
from repro.transport.spray import covers, lane_shares, merge_ranges

MTU = constants.MTU_BYTES


class TestLaneShares:
    def test_partition_is_exact(self):
        for total in (MTU, 3 * MTU, 8 * MTU, 8 * MTU + 17, 1):
            for k in (1, 2, 3, 4):
                shares = lane_shares(total, k, MTU)
                assert len(shares) == k
                # contiguous, in order, summing to the whole message
                cursor = 0
                for off, length in shares:
                    assert off == cursor
                    cursor += length
                assert cursor == total

    def test_mtu_aligned_except_tail(self):
        shares = lane_shares(10 * MTU + 5, 3, MTU)
        for off, _length in shares:
            assert off % MTU == 0
        # only the last non-empty share may be a partial packet
        lengths = [l for _, l in shares if l > 0]
        for l in lengths[:-1]:
            assert l % MTU == 0

    def test_packet_balanced(self):
        shares = lane_shares(9 * MTU, 4, MTU)
        pkts = [(l + MTU - 1) // MTU for _, l in shares]
        assert max(pkts) - min(pkts) <= 1

    def test_single_lane_is_whole_message(self):
        assert lane_shares(5 * MTU, 1, MTU) == [(0, 5 * MTU)]

    def test_more_lanes_than_packets_leaves_empty_tails(self):
        shares = lane_shares(2 * MTU, 4, MTU)
        assert sum(l for _, l in shares) == 2 * MTU
        assert sum(1 for _, l in shares if l == 0) == 2

    def test_invalid_args(self):
        with pytest.raises(TransportError):
            lane_shares(0, 2, MTU)
        with pytest.raises(TransportError):
            lane_shares(MTU, 0, MTU)


class TestRangeAlgebra:
    def test_merge_coalesces_adjacent_and_overlapping(self):
        assert merge_ranges([(0, 4), (4, 4), (10, 2)]) == [(0, 8), (10, 2)]
        assert merge_ranges([(0, 6), (2, 2)]) == [(0, 6)]
        assert merge_ranges([]) == []

    def test_merge_is_order_independent(self):
        a = [(8, 4), (0, 4), (4, 4)]
        assert merge_ranges(a) == merge_ranges(sorted(a)) == [(0, 12)]

    def test_covers(self):
        assert covers([(0, 4), (4, 4)], 8)
        assert not covers([(0, 4), (5, 3)], 8)      # gap at byte 4
        assert not covers([(0, 4)], 8)              # short
        assert covers([(0, 8), (2, 2)], 8)          # duplicates harmless
