"""Memory regions and the responder-side RETH check."""

import pytest

from repro.errors import MemoryRegionError
from repro.transport.memory import MemoryRegion, MrTable


class TestRegistration:
    def test_register_assigns_unique_rkeys(self):
        t = MrTable()
        a, b = t.register(4096), t.register(4096)
        assert a.rkey != b.rkey

    def test_regions_do_not_overlap(self):
        t = MrTable()
        a, b = t.register(1 << 20), t.register(1 << 20)
        assert a.addr + a.length <= b.addr or b.addr + b.length <= a.addr

    def test_explicit_address(self):
        t = MrTable()
        mr = t.register(100, addr=0x5000)
        assert mr.addr == 0x5000

    def test_zero_length_rejected(self):
        with pytest.raises(MemoryRegionError):
            MrTable().register(0)

    def test_lookup_and_deregister(self):
        t = MrTable()
        mr = t.register(64)
        assert t.lookup(mr.rkey) is mr
        t.deregister(mr.rkey)
        assert t.lookup(mr.rkey) is None


class TestWriteValidation:
    def test_valid_write_within_region(self):
        t = MrTable()
        mr = t.register(8192)
        assert t.validate_write(mr.rkey, mr.addr + 100, 4000)
        assert t.write_hits == 1

    def test_write_past_end_rejected(self):
        t = MrTable()
        mr = t.register(8192)
        assert not t.validate_write(mr.rkey, mr.addr + 8000, 4096)
        assert t.write_misses == 1

    def test_unknown_rkey_rejected(self):
        t = MrTable()
        t.register(8192)
        assert not t.validate_write(0xBAD, 0, 1)

    def test_exact_fit(self):
        t = MrTable()
        mr = t.register(4096)
        assert t.validate_write(mr.rkey, mr.addr, 4096)

    def test_contains(self):
        mr = MemoryRegion(addr=0x1000, length=0x100, rkey=1)
        assert mr.contains(0x1000, 0x100)
        assert not mr.contains(0xFFF, 1)
        assert not mr.contains(0x10FF, 2)
