"""RoCE RC engine: packetization, reliability, feedback, go-back-N."""

import pytest

from repro import constants
from repro.errors import QPStateError, TransportError
from repro.net import Simulator, SwitchConfig, star
from repro.net.packet import RdmaOp
from repro.transport.roce import RoceConfig, RoceQP
from repro.transport.verbs import VerbsContext


def make_pair(loss_rate=0.0, config=None, n_hosts=2, seed=0):
    """Two connected hosts through one (optionally lossy) switch."""
    sim = Simulator()
    topo = star(sim, n_hosts,
                switch_config=SwitchConfig(loss_rate=loss_rate, seed=seed))
    ctx_a = VerbsContext(sim, topo.nic(1), config)
    ctx_b = VerbsContext(sim, topo.nic(2), config)
    qa, qb = ctx_a.create_qp(), ctx_b.create_qp()
    qa.connect(2, qb.qpn)
    qb.connect(1, qa.qpn)
    return sim, qa, qb, ctx_b


class TestPacketization:
    def test_single_packet_message(self):
        sim, qa, qb, _ = make_pair()
        qa.post_send(100)
        sim.run()
        assert qa.tx_data_packets == 1
        assert qb.recv.bytes_delivered == 100

    def test_multi_packet_message(self):
        sim, qa, qb, _ = make_pair()
        size = constants.MTU_BYTES * 3 + 17
        qa.post_send(size)
        sim.run()
        assert qa.tx_data_packets == 4
        assert qb.recv.bytes_delivered == size

    def test_exact_mtu_boundary(self):
        sim, qa, qb, _ = make_pair()
        qa.post_send(constants.MTU_BYTES * 2)
        sim.run()
        assert qa.tx_data_packets == 2

    def test_zero_size_rejected(self):
        _, qa, _, _ = make_pair()
        with pytest.raises(TransportError):
            qa.post_send(0)

    def test_post_before_connect_rejected(self):
        sim = Simulator()
        topo = star(sim, 2)
        qp = RoceQP(sim, topo.nic(1))
        with pytest.raises(QPStateError):
            qp.post_send(100)

    def test_psns_are_consecutive_across_messages(self):
        sim, qa, qb, _ = make_pair()
        qa.post_send(constants.MTU_BYTES * 2)
        qa.post_send(constants.MTU_BYTES)
        sim.run()
        assert qa.sq_psn == 3
        assert qb.rq_psn == 3


class TestDeliveryAndCompletion:
    def test_on_message_fires_once_with_size(self):
        sim, qa, qb, _ = make_pair()
        got = []
        qb.on_message = lambda mid, size, now, meta: got.append((mid, size))
        qa.post_send(10_000)
        sim.run()
        assert len(got) == 1 and got[0][1] == 10_000

    def test_on_complete_after_ack(self):
        sim, qa, qb, _ = make_pair()
        done = []
        qa.post_send(10_000, on_complete=lambda mid, now: done.append(now))
        sim.run()
        assert len(done) == 1
        assert qa.send_idle

    def test_on_sent_fires_before_completion(self):
        sim, qa, qb, _ = make_pair()
        marks = []
        qa.post_send(1 << 20,
                     on_sent=lambda mid, now: marks.append(("sent", now)),
                     on_complete=lambda mid, now: marks.append(("done", now)))
        sim.run()
        assert [m[0] for m in marks] == ["sent", "done"]
        assert marks[0][1] < marks[1][1]

    def test_multiple_messages_complete_in_order(self):
        sim, qa, qb, _ = make_pair()
        order = []
        for tag in ("a", "b", "c"):
            qa.post_send(5000, on_complete=lambda mid, now, t=tag: order.append(t))
        sim.run()
        assert order == ["a", "b", "c"]

    def test_meta_travels_with_message(self):
        sim, qa, qb, _ = make_pair()
        seen = []
        qb.on_message = lambda mid, size, now, meta: seen.append(meta)
        qa.post_send(128, meta={"slice": 3})
        sim.run()
        assert seen == [{"slice": 3}]


class TestAckBehaviour:
    def test_ack_coalescing_reduces_acks(self):
        cfg = RoceConfig(ack_coalesce=8)
        sim, qa, qb, _ = make_pair(config=cfg)
        qa.post_send(constants.MTU_BYTES * 32)
        sim.run()
        assert qb.acks_sent <= 32 // 8 + 1

    def test_last_packet_always_acked(self):
        cfg = RoceConfig(ack_coalesce=100)
        sim, qa, qb, _ = make_pair(config=cfg)
        qa.post_send(constants.MTU_BYTES * 3)  # < coalesce threshold
        sim.run()
        assert qb.acks_sent == 1
        assert qa.send_idle


class TestLossRecovery:
    def test_recovers_from_random_loss(self):
        sim, qa, qb, _ = make_pair(loss_rate=0.01, seed=3)
        size = constants.MTU_BYTES * 500
        qa.post_send(size)
        sim.run()
        assert qb.recv.bytes_delivered == size
        assert qa.retransmitted_packets > 0

    def test_nack_triggers_go_back_n(self):
        sim, qa, qb, _ = make_pair(loss_rate=0.02, seed=1)
        qa.post_send(constants.MTU_BYTES * 300)
        sim.run()
        assert qa.nacks_received > 0
        assert qb.recv.messages_delivered == 1

    def test_heavy_loss_still_delivers(self):
        sim, qa, qb, _ = make_pair(loss_rate=0.2, seed=5)
        size = constants.MTU_BYTES * 50
        qa.post_send(size)
        sim.run()
        assert qb.recv.bytes_delivered == size

    def test_no_duplicate_delivery_to_app(self):
        sim, qa, qb, _ = make_pair(loss_rate=0.05, seed=2)
        got = []
        qb.on_message = lambda mid, size, now, meta: got.append(size)
        size = constants.MTU_BYTES * 200
        qa.post_send(size)
        sim.run()
        assert got == [size]

    def test_rto_recovers_tail_loss(self):
        """Losing the final packets leaves no OOO arrival to NACK on;
        only the safeguard timeout can recover (paper §III-D)."""
        cfg = RoceConfig(rto=200e-6)
        sim, qa, qb, _ = make_pair(config=cfg)
        sw = qa.nic.ports[0].peer_device
        # Drop everything for a window around the message tail.
        orig = sw.receive
        dropped = []

        def lossy(pkt, in_port):
            if pkt.ptype.name == "DATA" and pkt.psn >= 8 and not pkt.retransmit:
                dropped.append(pkt.psn)
                return
            orig(pkt, in_port)

        sw.receive = lossy
        qa.post_send(constants.MTU_BYTES * 10)
        sim.run()
        assert dropped == [8, 9]
        assert qa.timeouts >= 1
        assert qb.recv.bytes_delivered == constants.MTU_BYTES * 10

    def test_receiver_renacks_only_once_per_round(self):
        sim, qa, qb, _ = make_pair(loss_rate=0.01, seed=11)
        qa.post_send(constants.MTU_BYTES * 400)
        sim.run()
        # One NACK per go-back-N round: far fewer NACKs than packets.
        assert qb.nacks_sent <= qa.retransmitted_packets + 2


class TestWindow:
    def test_outstanding_bounded(self):
        cfg = RoceConfig(max_outstanding=16)
        sim, qa, qb, _ = make_pair(config=cfg)
        peak = {"v": 0}
        orig = qa._tx_one

        def spy():
            orig()
            peak["v"] = max(peak["v"], qa.outstanding)

        qa._tx_one = spy
        qa.post_send(constants.MTU_BYTES * 200)
        sim.run()
        assert peak["v"] <= 16
        assert qb.recv.messages_delivered == 1


class TestWrite:
    def test_write_validates_mr(self):
        sim, qa, qb, ctx_b = make_pair()
        mr = ctx_b.reg_mr(1 << 20)
        qa.post_write(8192, vaddr=mr.addr, rkey=mr.rkey)
        sim.run()
        assert ctx_b.mr_table.write_hits == 1
        assert ctx_b.mr_table.write_misses == 0

    def test_write_bad_rkey_counts_miss(self):
        sim, qa, qb, ctx_b = make_pair()
        ctx_b.reg_mr(1 << 20)
        qa.post_write(8192, vaddr=0, rkey=0xBAD)
        sim.run()
        assert ctx_b.mr_table.write_misses == 1


class TestPsnSync:
    def test_new_source_alignment(self):
        sim, qa, qb, _ = make_pair()
        qa.post_send(constants.MTU_BYTES * 10)
        sim.run()
        assert qb.rq_psn == 10
        qb.sync_as_new_source()
        assert qb.sq_psn == qb.snd_una == qb.snd_nxt == 10
        qa.sync_as_old_source()
        assert qa.rq_psn == qa.sq_psn == 10

    def test_reverse_traffic_after_sync_accepted(self):
        sim, qa, qb, _ = make_pair()
        qa.post_send(constants.MTU_BYTES * 10)
        sim.run()
        qa.sync_as_old_source()
        qb.sync_as_new_source()
        qb.post_send(constants.MTU_BYTES * 5)
        sim.run()
        assert qa.recv.bytes_delivered == constants.MTU_BYTES * 5

    def test_half_sync_stalls_reverse_traffic(self):
        """The Fig. 6 failure mode: the new source synchronizes its
        sqPSN but a receiver's rqPSN is behind — packets look like the
        future and only stale NACKs come back, so nothing is ever
        delivered in-order within the test horizon."""
        cfg = RoceConfig(rto=50e-3)
        sim, qa, qb, _ = make_pair(config=cfg)
        qa.post_send(constants.MTU_BYTES * 10)
        sim.run()
        qb.sync_as_new_source()       # sqPSN <- 10
        # qa deliberately does NOT run sync_as_old_source(): rqPSN stays 0.
        qb.post_send(constants.MTU_BYTES, on_complete=lambda m, t: None)
        sim.run(until=sim.now + 10e-3)
        assert qa.recv.bytes_delivered == 0  # PSN 10 never matches rq 0

    def test_sync_with_unacked_data_rejected(self):
        sim, qa, qb, _ = make_pair()
        qa.post_send(constants.MTU_BYTES * 100)
        sim.run(until=1e-6)  # mid-flight
        with pytest.raises(QPStateError):
            qa.sync_as_new_source()


class TestClose:
    def test_close_cancels_everything(self):
        sim, qa, qb, _ = make_pair()
        qa.post_send(constants.MTU_BYTES * 10)
        sim.run(until=1e-6)
        qa.close()
        sim.run()
        assert sim.peek_next_time() is None
