"""Verbs facade and completion queue."""

import pytest

from repro.net import Simulator, star
from repro.transport.verbs import CompletionQueue, VerbsContext


@pytest.fixture
def two_ctx():
    sim = Simulator()
    topo = star(sim, 2)
    return sim, VerbsContext(sim, topo.nic(1)), VerbsContext(sim, topo.nic(2))


class TestVerbsContext:
    def test_create_qp_registers_with_nic(self, two_ctx):
        _, a, _ = two_ctx
        qp = a.create_qp()
        assert a.nic.get_qp(qp.qpn) is qp

    def test_modify_qp_accepts_virtual_remote(self, two_ctx):
        from repro import constants
        _, a, _ = two_ctx
        qp = a.create_qp()
        a.modify_qp(qp, dst_ip=constants.MCSTID_BASE,
                    dst_qp=constants.VIRTUAL_DST_QP)
        assert qp.dst_ip == constants.MCSTID_BASE
        assert qp.dst_qp == constants.VIRTUAL_DST_QP

    def test_reg_mr_uses_host_table(self, two_ctx):
        _, a, _ = two_ctx
        mr = a.reg_mr(4096)
        assert a.mr_table.lookup(mr.rkey) is mr

    def test_destroy_closes_qps(self, two_ctx):
        _, a, _ = two_ctx
        qp = a.create_qp()
        a.destroy()
        assert a.nic.get_qp(qp.qpn) is None
        assert a.qps == []

    def test_end_to_end_with_cq(self, two_ctx):
        sim, a, b = two_ctx
        qa, qb = a.create_qp(), b.create_qp()
        a.modify_qp(qa, 2, qb.qpn)
        b.modify_qp(qb, 1, qa.qpn)
        cq = CompletionQueue()
        qa.post_send(4096, on_complete=cq.push)
        sim.run()
        entries = cq.poll()
        assert len(entries) == 1
        assert entries[0].timestamp > 0


class TestCompletionQueue:
    def test_poll_limits_and_drains(self):
        cq = CompletionQueue()
        for i in range(20):
            cq.push(i, float(i))
        first = cq.poll(max_entries=16)
        assert len(first) == 16 and len(cq) == 4
        assert [c.msg_id for c in first] == list(range(16))
        assert len(cq.poll()) == 4

    def test_poll_empty(self):
        assert CompletionQueue().poll() == []
