"""The Gleam AIMD baseline controller and the RoceConfig cc selector."""

import pytest

from repro.apps import Cluster
from repro.collectives import CepheusBcast
from repro.errors import TransportError
from repro.transport import (DcqcnRateController, GleamConfig,
                             GleamRateController, RoceConfig)

LINE = 100e9


class TestGleamController:
    def test_md_on_cnp(self, sim):
        cc = GleamRateController(sim, LINE)
        cc.on_cnp()
        assert cc.rate == pytest.approx(LINE / 2)
        cc.on_cnp()
        assert cc.rate == pytest.approx(LINE / 4)
        assert cc.cnp_count == 2

    def test_md_clamps_at_min_rate(self, sim):
        cfg = GleamConfig(min_rate=1e9)
        cc = GleamRateController(sim, LINE, cfg)
        for _ in range(40):
            cc.on_cnp()
        assert cc.rate == pytest.approx(1e9)

    def test_timer_clocked_additive_increase(self, sim):
        cfg = GleamConfig(rate_timer=10e-6, rai=1e9)
        cc = GleamRateController(sim, LINE, cfg)
        cc.on_cnp()  # rate = LINE/2
        cc.start()
        sim.run(until=35e-6)  # 3 ticks land (10, 20, 30 us)
        cc.stop()
        assert cc.rate == pytest.approx(LINE / 2 + 3e9)

    def test_increase_caps_at_line_rate(self, sim):
        cfg = GleamConfig(rate_timer=1e-6, rai=LINE)
        cc = GleamRateController(sim, LINE, cfg)
        cc.start()
        sim.run(until=5e-6)
        cc.stop()
        assert cc.rate == LINE

    def test_bytes_are_ignored(self, sim):
        cc = GleamRateController(sim, LINE)
        cc.on_bytes_sent(1 << 30)
        assert cc.rate == LINE

    def test_stop_drains_the_event_queue(self, sim):
        cc = GleamRateController(sim, LINE)
        cc.start()
        assert cc.active
        cc.stop()
        assert not cc.active
        sim.run()  # would never return if the tick kept re-arming

    def test_disabled_is_inert(self, sim):
        cc = GleamRateController(sim, LINE, GleamConfig(enabled=False))
        cc.start()
        cc.on_cnp()
        assert not cc.active and cc.rate == LINE and cc.cnp_count == 0


class TestCcSelector:
    def test_default_is_dcqcn(self):
        cl = Cluster.testbed(2)
        qp = cl.ctx(cl.host_ips[0]).create_qp()
        assert isinstance(qp.cc, DcqcnRateController)

    def test_gleam_selectable(self):
        cl = Cluster.testbed(2, roce_config=RoceConfig(cc="gleam"))
        qp = cl.ctx(cl.host_ips[0]).create_qp()
        assert isinstance(qp.cc, GleamRateController)

    def test_unknown_cc_rejected(self):
        cl = Cluster.testbed(2, roce_config=RoceConfig(cc="bbr"))
        with pytest.raises(TransportError):
            cl.ctx(cl.host_ips[0]).create_qp()

    def test_broadcast_completes_under_gleam(self):
        cl = Cluster.testbed(4, roce_config=RoceConfig(cc="gleam"))
        r = CepheusBcast(cl, cl.host_ips).run(1 << 18)
        assert set(r.recv_times) == set(cl.host_ips[1:])
        assert r.sender_done is not None
