"""IRN selective-repeat mode (§V-C's suggested remedy)."""

import pytest

from repro import constants
from repro.apps import Cluster
from repro.collectives import CepheusBcast
from repro.net import Simulator, SwitchConfig, star
from repro.transport import RoceConfig, VerbsContext


def make_pair(mode, loss=0.0, seed=0):
    sim = Simulator()
    topo = star(sim, 2, switch_config=SwitchConfig(loss_rate=loss, seed=seed))
    cfg = RoceConfig(retransmit_mode=mode, rto=300e-6)
    a = VerbsContext(sim, topo.nic(1), cfg)
    b = VerbsContext(sim, topo.nic(2), cfg)
    qa, qb = a.create_qp(), b.create_qp()
    qa.connect(2, qb.qpn)
    qb.connect(1, qa.qpn)
    return sim, qa, qb


class TestUnicastIrn:
    def test_lossless_identical_to_gbn(self):
        fcts = {}
        for mode in ("gbn", "irn"):
            sim, qa, qb = make_pair(mode)
            done = {}
            qa.post_send(4 << 20, on_complete=lambda m, t: done.setdefault("t", t))
            sim.run()
            fcts[mode] = done["t"]
        assert fcts["irn"] == pytest.approx(fcts["gbn"], rel=1e-6)

    def test_exactly_once_in_order_delivery(self):
        sim, qa, qb = make_pair("irn", loss=0.02, seed=7)
        got = []
        qb.on_message = lambda mid, size, now, meta: got.append(size)
        size = 300 * constants.MTU_BYTES
        qa.post_send(size)
        sim.run(max_events=10_000_000)
        assert got == [size]
        assert qb.recv.bytes_delivered == size

    def test_selective_not_gbn_retransmits(self):
        """IRN retransmits ~only the lost packets; GBN replays tails."""
        retx = {}
        for mode in ("gbn", "irn"):
            sim, qa, qb = make_pair(mode, loss=5e-3, seed=3)
            qa.post_send(1000 * constants.MTU_BYTES)
            sim.run(max_events=20_000_000)
            retx[mode] = qa.retransmitted_packets
        assert retx["irn"] < 0.25 * retx["gbn"]

    def test_goodput_resilient_at_one_percent(self):
        sim, qa, qb = make_pair("irn", loss=1e-2, seed=4)
        done = {}
        size = 16 << 20
        qa.post_send(size, on_complete=lambda m, t: done.setdefault("t", t))
        sim.run(max_events=20_000_000)
        goodput = size * 8 / done["t"] / 1e9
        assert goodput > 85  # GBN lands near ~65-70 here

    def test_ooo_buffer_drains(self):
        sim, qa, qb = make_pair("irn", loss=0.05, seed=9)
        size = 200 * constants.MTU_BYTES
        qa.post_send(size)
        sim.run(max_events=20_000_000)
        assert qb._ooo_buffer == {}
        assert qb.rq_psn == 200

    def test_tail_loss_recovered_by_selective_rto(self):
        sim, qa, qb = make_pair("irn")
        sw = qa.nic.ports[0].peer_device
        orig = sw.receive
        dropped = []

        def lossy(pkt, in_port):
            if (pkt.ptype.name == "DATA" and pkt.psn == 9
                    and not pkt.retransmit):
                dropped.append(pkt.psn)
                return
            orig(pkt, in_port)

        sw.receive = lossy
        qa.post_send(10 * constants.MTU_BYTES)  # PSN 9 = the very tail
        sim.run()
        assert dropped == [9]
        assert qa.timeouts >= 1
        assert qb.recv.bytes_delivered == 10 * constants.MTU_BYTES
        # selective backstop: the other 9 packets were not replayed
        assert qa.retransmitted_packets <= 2


class TestMulticastIrn:
    """The §V-C claim: IRN substantially enhances Cepheus' loss tolerance."""

    def _run(self, mode, loss):
        cl = Cluster.fat_tree_cluster(
            4, roce_config=RoceConfig(retransmit_mode=mode, rto=400e-6))
        cl.topo.set_loss_rate(loss, layers=("agg", "core"))
        algo = CepheusBcast(cl, cl.host_ips)
        return algo.run(4 << 20), algo

    def test_exactly_once_to_every_member(self):
        r, algo = self._run("irn", 2e-3)
        for ip in algo.ranks[1:]:
            assert algo.qps[ip].recv.bytes_delivered == 4 << 20

    def test_irn_multicast_sustains_high_loss(self):
        fct_irn, _ = self._run("irn", 5e-3)
        fct_gbn, _ = self._run("gbn", 5e-3)
        assert fct_irn.jct < 0.5 * fct_gbn.jct

    def test_retransmit_filter_composes_with_irn(self):
        """A selective retransmit crosses the MDT once and is pruned on
        branches that already acknowledged it."""
        cl = Cluster.fat_tree_cluster(
            4, roce_config=RoceConfig(retransmit_mode="irn", rto=400e-6))
        cl.topo.set_loss_rate(3e-3, layers=("agg", "core"))
        algo = CepheusBcast(cl, [1, 2, 3])  # host 2 same-rack (lossless path)
        r = algo.run(8 << 20)
        filtered = sum(a.retransmits_filtered
                       for a in cl.fabric.accelerators.values())
        assert filtered > 0
        assert set(r.recv_times) == {2, 3}
