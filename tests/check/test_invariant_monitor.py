"""InvariantMonitor unit tests + the mutation smoke tests.

A checker that never fires is worse than no checker: the mutation tests
deliberately corrupt one protocol invariant at a time (via the
``psn_tx_hook`` fault hook and hand-built broken MFTs) and assert the
monitor flags exactly that violation.
"""

import pytest

from repro import constants
from repro.apps import Cluster
from repro.check import InvariantMonitor, InvariantViolationError
from repro.collectives import CepheusBcast
from repro.core.feedback import FeedbackEngine
from repro.core.mft import Mft, PathEntry
from repro.net.packet import PacketType
from repro.transport import qp as qp_state
from repro.transport.roce import RoceConfig


# ---------------------------------------------------------------------------
# clean runs stay clean
# ---------------------------------------------------------------------------

def test_clean_broadcast_produces_no_violations(testbed):
    monitor = InvariantMonitor()
    monitor.attach_cluster(testbed)
    try:
        algo = CepheusBcast(testbed, testbed.host_ips)
        r = algo.run(16 * constants.MTU_BYTES)
        assert len(r.recv_times) == 3
        assert monitor.ok
        assert monitor.events_checked > 0
        monitor.check_mft_consistency(testbed.fabric, expect_connected=True)
        monitor.assert_clean()
    finally:
        monitor.detach()


def test_detach_removes_every_bus_subscription(testbed):
    bus = testbed.sim.bus
    before = bus.subscriber_count()
    monitor = InvariantMonitor()
    monitor.attach_cluster(testbed)
    assert bus.is_subscribed("qp_send", monitor.on_qp_send)
    assert bus.is_subscribed("deliver", monitor.on_qp_deliver)
    assert bus.is_subscribed("feedback", monitor.on_feedback)
    assert bus.is_subscribed("replicate", monitor.on_replicate)
    assert bus.is_subscribed("membership_epoch", monitor.on_membership_epoch)
    assert bus.is_subscribed("event", monitor.on_event)
    # attach is idempotent: a second walk over overlapping components
    # (fabric + per-QP + cluster-wide) must not duplicate subscriptions
    n = bus.subscriber_count()
    monitor.attach_cluster(testbed)
    assert bus.subscriber_count() == n
    monitor.detach()
    assert bus.subscriber_count() == before


def test_summary_shape(testbed):
    monitor = InvariantMonitor()
    monitor.attach_cluster(testbed)
    try:
        CepheusBcast(testbed, testbed.host_ips).run(constants.MTU_BYTES)
    finally:
        monitor.detach()
    s = monitor.summary()
    assert s["violations"] == []
    assert s["events_checked"] == monitor.events_checked


# ---------------------------------------------------------------------------
# mutation smoke: a seeded PSN skip must be detected
# ---------------------------------------------------------------------------

def test_mutation_psn_skip_is_flagged(testbed):
    """THE checker-vs-checker guard: corrupt the wire PSN stream (skip
    one PSN mid-message) and require the monitor to notice."""
    monitor = InvariantMonitor()
    monitor.attach_cluster(testbed)
    skip_at = 5
    qp_state.psn_tx_hook = (
        lambda qp, psn: psn + 1 if psn >= skip_at else psn)
    try:
        algo = CepheusBcast(testbed, testbed.host_ips)
        algo.prepare()
        algo.qps[1].post_send(10 * constants.MTU_BYTES)
        # The transfer can never complete (the skipped PSN is a
        # permanent hole) — run a bounded window instead of draining.
        testbed.sim.run(until=testbed.sim.now + 2e-3)
    finally:
        qp_state.psn_tx_hook = None
        monitor.detach()
    kinds = {v.invariant for v in monitor.violations}
    assert "psn-contiguity" in kinds, monitor.summary()
    with pytest.raises(InvariantViolationError):
        monitor.assert_clean()


def test_strict_mode_raises_at_first_violation(testbed):
    monitor = InvariantMonitor(strict=True)
    monitor.attach_cluster(testbed)
    qp_state.psn_tx_hook = lambda qp, psn: psn + 1 if psn >= 3 else psn
    try:
        algo = CepheusBcast(testbed, testbed.host_ips)
        algo.prepare()
        algo.qps[1].post_send(8 * constants.MTU_BYTES)
        with pytest.raises(InvariantViolationError):
            testbed.sim.run(until=testbed.sim.now + 2e-3)
    finally:
        qp_state.psn_tx_hook = None
        monitor.detach()


def test_without_monitor_the_corruption_is_silent(testbed):
    """Why the monitor exists: the same mutation without it produces no
    exception at all — just a transfer that quietly never finishes."""
    qp_state.psn_tx_hook = lambda qp, psn: psn + 1 if psn >= 5 else psn
    try:
        algo = CepheusBcast(testbed, testbed.host_ips)
        algo.prepare()
        done = {}
        algo.qps[1].post_send(10 * constants.MTU_BYTES,
                              on_complete=lambda m, t: done.setdefault("t", t))
        testbed.sim.run(until=testbed.sim.now + 2e-3)
        assert not done  # stalled forever, no error raised anywhere
    finally:
        qp_state.psn_tx_hook = None


# ---------------------------------------------------------------------------
# feedback-rule mutations (hand-driven engine)
# ---------------------------------------------------------------------------

GID = constants.MCSTID_BASE


def _mft(n_ports):
    mft = Mft(GID, n_ports + 1)
    mft.add_entry(PathEntry(port=n_ports, is_host=False))
    mft.ack_out_port = n_ports
    for p in range(n_ports):
        mft.add_entry(PathEntry(port=p, is_host=True))
    return mft


def test_ack_overclaim_mutation_is_flagged():
    """Force an over-claimed aggregated ACK through the observer path
    (as a buggy engine would emit it) and require `ack-overclaim`."""
    eng = FeedbackEngine()
    monitor = InvariantMonitor()
    monitor.attach_engine(eng)
    mft = _mft(3)
    # only port 0 has acked psn 9; ports 1-2 are at NO_ACK
    eng.on_ack(mft, 0, 9)
    assert monitor.ok
    # a buggy aggregation emitting ACK(9) anyway:
    monitor.on_feedback(eng, mft, PacketType.ACK, 0, 9,
                        [(PacketType.ACK, 9)])
    assert {v.invariant for v in monitor.violations} == {"ack-overclaim"}


def test_ack_regression_mutation_is_flagged():
    eng = FeedbackEngine()
    monitor = InvariantMonitor()
    monitor.attach_engine(eng)
    mft = _mft(2)
    for p in (0, 1):
        eng.on_ack(mft, p, 7)
    assert monitor.ok  # legitimate aggregate ACK(7) observed
    monitor.on_feedback(eng, mft, PacketType.ACK, 0, 3,
                        [(PacketType.ACK, 3)])
    assert "ack-regression" in {v.invariant for v in monitor.violations}


def test_nack_covering_mutation_is_flagged():
    eng = FeedbackEngine()
    monitor = InvariantMonitor()
    monitor.attach_engine(eng)
    mft = _mft(3)
    eng.on_ack(mft, 0, 5)   # ports 1-2 still at NO_ACK
    assert monitor.ok
    monitor.on_feedback(eng, mft, PacketType.NACK, 0, 6,
                        [(PacketType.NACK, 6)])
    assert "nack-covers-loss" in {v.invariant for v in monitor.violations}


# ---------------------------------------------------------------------------
# structural sweeps
# ---------------------------------------------------------------------------

def test_mft_consistency_flags_dangling_index(testbed):
    algo = CepheusBcast(testbed, testbed.host_ips)
    algo.prepare()
    monitor = InvariantMonitor()
    accel = next(iter(testbed.fabric.accelerators.values()))
    mft = accel.mft_of(algo.group.mcst_id)
    mft.path_index[0] = 99  # corrupt: index points past the path table
    monitor.check_mft_consistency(testbed.fabric)
    kinds = {v.invariant for v in monitor.violations}
    assert "mft-dangling-index" in kinds


def test_mft_consistency_flags_severed_path(testbed):
    from repro.net.failures import FailureInjector

    algo = CepheusBcast(testbed, testbed.host_ips)
    algo.prepare()
    inj = FailureInjector(testbed.topo)
    inj.fail_host_link(2)
    monitor = InvariantMonitor()
    # online sweeps tolerate severed links ...
    monitor.check_mft_consistency(testbed.fabric, expect_connected=False)
    assert monitor.ok
    # ... the post-repair sweep does not
    monitor.check_mft_consistency(testbed.fabric, expect_connected=True)
    assert "mft-severed-path" in {v.invariant for v in monitor.violations}
