"""The two lane invariants: path-lane-psn-overlap, lane-reassembly-gap."""

from repro.check import InvariantMonitor
from repro.check.invariants import _merge_ranges


class _Sim:
    now = 1.5e-6


class _Sprayer:
    sim = _Sim()


def _names(monitor):
    return [v.invariant for v in monitor.violations]


class TestSprayOverlap:
    def test_clean_partition_passes(self):
        m = InvariantMonitor()
        s = _Sprayer()
        m.on_lane_spray(s, 1, 0, 0, 4096, 8192, False)
        m.on_lane_spray(s, 1, 1, 4096, 4096, 8192, False)
        assert m.violations == []

    def test_overlapping_primaries_flagged(self):
        m = InvariantMonitor()
        s = _Sprayer()
        m.on_lane_spray(s, 1, 0, 0, 4096, 8192, False)
        m.on_lane_spray(s, 1, 1, 2048, 4096, 8192, False)
        assert "path-lane-psn-overlap" in _names(m)

    def test_out_of_bounds_flagged(self):
        m = InvariantMonitor()
        s = _Sprayer()
        m.on_lane_spray(s, 1, 0, 4096, 8192, 8192, False)
        assert "path-lane-psn-overlap" in _names(m)

    def test_respray_may_recover_covered_bytes(self):
        m = InvariantMonitor()
        s = _Sprayer()
        m.on_lane_spray(s, 1, 0, 0, 4096, 8192, False)
        m.on_lane_spray(s, 1, 1, 4096, 4096, 8192, False)
        # lane 1 died: its share is re-sprayed on lane 0 — no violation
        m.on_lane_spray(s, 1, 0, 4096, 4096, 8192, True)
        assert m.violations == []

    def test_sprays_tracked_independently(self):
        m = InvariantMonitor()
        a, b = _Sprayer(), _Sprayer()
        m.on_lane_spray(a, 1, 0, 0, 4096, 8192, False)
        m.on_lane_spray(b, 2, 0, 0, 4096, 8192, False)  # other spray id
        assert m.violations == []


class TestReassemblyGap:
    def test_full_coverage_passes(self):
        m = InvariantMonitor()
        m.on_lane_complete(object(), 1, 3, 8192,
                           [(0, 4096, 0), (4096, 4096, 1)])
        assert m.violations == []

    def test_gap_flagged(self):
        m = InvariantMonitor()
        m.on_lane_complete(object(), 1, 3, 8192,
                           [(0, 4096, 0), (5000, 3192, 1)])
        assert "lane-reassembly-gap" in _names(m)

    def test_short_coverage_flagged(self):
        m = InvariantMonitor()
        m.on_lane_complete(object(), 1, 3, 8192, [(0, 4096, 0)])
        assert "lane-reassembly-gap" in _names(m)

    def test_respray_duplicates_pass(self):
        m = InvariantMonitor()
        m.on_lane_complete(object(), 1, 3, 8192,
                           [(0, 4096, 0), (4096, 4096, 1),
                            (4096, 4096, 0)])
        assert m.violations == []


class TestIndependentMerge:
    def test_merge_matches_spec(self):
        assert _merge_ranges([(4, 4), (0, 4), (10, 2)]) == [(0, 8), (10, 2)]
        assert _merge_ranges([]) == []
        assert _merge_ranges([(0, 8), (2, 2)]) == [(0, 8)]
