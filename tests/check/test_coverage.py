"""CoverageMap / CoverageCollector unit tests.

The fuzzer's feedback signal must be *stable*: the same behavior must
always produce the same key, and a key set must digest identically no
matter what order (or in which process) the keys were observed.  These
tests pin the key grammar on a synthetic bus and the digest's
order-independence directly.
"""

import pytest

from repro.check import CoverageCollector, CoverageMap
from repro.check.coverage import TRANSITION_CHANNELS
from repro.net.packet import PacketType
from repro.net.pipeline import STOP, ObserverBus, Pipeline, PipelineContext


# ---------------------------------------------------------------------------
# the map: set semantics + stable digest
# ---------------------------------------------------------------------------

class TestCoverageMap:
    def test_add_reports_novelty_once(self):
        cov = CoverageMap()
        assert cov.add("stage/inline/rx/classify/PASS")
        assert not cov.add("stage/inline/rx/classify/PASS")
        assert len(cov) == 1
        assert "stage/inline/rx/classify/PASS" in cov

    def test_add_all_returns_only_fresh_keys_sorted(self):
        cov = CoverageMap(["b"])
        assert cov.add_all(["c", "a", "b", "c"]) == ["a", "c"]
        assert cov.to_list() == ["a", "b", "c"]

    def test_signature_is_order_independent(self):
        a = CoverageMap()
        b = CoverageMap()
        keys = [f"trans/inline/ch{i}->ch{i+1}" for i in range(20)]
        for k in keys:
            a.add(k)
        for k in reversed(keys):
            b.add(k)
        assert a.signature() == b.signature()

    def test_signature_is_injective_over_key_boundaries(self):
        # the newline separator keeps {"ab","c"} and {"a","bc"} apart
        assert (CoverageMap(["ab", "c"]).signature()
                != CoverageMap(["a", "bc"]).signature())

    def test_merge_unions_and_reports_fresh(self):
        a = CoverageMap(["x", "y"])
        b = CoverageMap(["y", "z"])
        assert a.merge(b) == ["z"]
        assert a.to_list() == ["x", "y", "z"]
        assert a.signature() == CoverageMap(["x", "y", "z"]).signature()

    def test_list_roundtrip_preserves_signature(self):
        cov = CoverageMap(["drop/inline/tail-drop", "viol/lookaside/psn-gap"])
        again = CoverageMap.from_list(cov.to_list())
        assert again.signature() == cov.signature()
        assert len(again) == 2


# ---------------------------------------------------------------------------
# the collector: key grammar from bus traffic
# ---------------------------------------------------------------------------

class TestCoverageCollector:
    def test_stage_key_normalizes_switch_identity(self):
        bus = ObserverBus()
        cov = CoverageMap()
        CoverageCollector(bus, "inline", cov)
        for name in ("sw0.rx", "sw7.rx"):
            p = Pipeline([lambda ctx: STOP], name=name, bus=bus)
            p.run(PipelineContext("pkt", 0))
        # two switches, one behavior: a single normalized key
        assert cov.to_list() == ["stage/inline/rx/<lambda>/STOP"]

    def test_stage_key_distinguishes_deployment_and_verdict(self):
        bus = ObserverBus()
        cov = CoverageMap()
        CoverageCollector(bus, "source_routed", cov)

        def stage_sp_forward(ctx):
            return None

        p = Pipeline([stage_sp_forward], name="sw0.accel[source_routed]",
                     bus=bus)
        p.run(PipelineContext("pkt", 0))
        assert "stage/source_routed/accel/sp_forward/PASS" in cov

    def test_transition_pairs_exclude_stage_and_event(self):
        bus = ObserverBus()
        cov = CoverageMap()
        CoverageCollector(bus, "inline", cov)
        assert "stage" not in TRANSITION_CHANNELS
        assert "event" not in TRANSITION_CHANNELS
        bus.publish("classify", "sw", "pkt")
        bus.publish("event", object())  # must not perturb the pair stream
        bus.publish("replicate", "sw", "pkt", ())
        keys = cov.to_list()
        assert "trans/inline/classify->replicate" in keys
        assert not any("event" in k for k in keys)

    def test_feedback_key_names_kind_and_sorted_emits(self):
        bus = ObserverBus()
        cov = CoverageMap()
        CoverageCollector(bus, "lookaside", cov)
        emits = [(PacketType.NACK, 3), (PacketType.ACK, 7)]
        bus.publish("feedback", "engine", "mft", PacketType.ACK, 1, 7, emits)
        bus.publish("feedback", "engine", "mft", PacketType.CNP, 2, 0, [])
        assert "fb/lookaside/ACK/ACK,NACK" in cov
        assert "fb/lookaside/CNP/none" in cov

    def test_drop_key_carries_reason(self):
        bus = ObserverBus()
        cov = CoverageMap()
        CoverageCollector(bus, "inline", cov)
        bus.publish("drop", "sw", "pkt", 2, "sr-no-rule")
        assert "drop/inline/sr-no-rule" in cov

    def test_violations_fold_in_from_dicts_and_objects(self):
        class Violation:
            invariant = "psn-contiguity"

        cov = CoverageMap()
        collector = CoverageCollector(ObserverBus(), "inline", cov)
        collector.add_violations([{"invariant": "mft-consistency"},
                                  Violation()])
        assert "viol/inline/mft-consistency" in cov
        assert "viol/inline/psn-contiguity" in cov

    def test_detach_removes_every_subscription(self):
        bus = ObserverBus()
        before = bus.subscriber_count()
        collector = CoverageCollector(bus, "inline", CoverageMap())
        assert bus.subscriber_count() == before + 1 + len(TRANSITION_CHANNELS)
        collector.detach()
        assert bus.subscriber_count() == before
        # publications after detach no longer accumulate coverage
        bus.publish("classify", "sw", "pkt")
        assert len(collector.coverage) == 0

    def test_shared_map_across_collectors_merges_deployments(self):
        cov = CoverageMap()
        for dep in ("inline", "lookaside"):
            bus = ObserverBus()
            CoverageCollector(bus, dep, cov)
            bus.publish("drop", "sw", "pkt", 0, "tail-drop")
        assert cov.to_list() == ["drop/inline/tail-drop",
                                 "drop/lookaside/tail-drop"]
