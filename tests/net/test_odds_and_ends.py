"""Small behaviours not covered elsewhere."""

import pytest

from repro.net import Simulator, SwitchConfig, star
from repro.net.packet import Packet, PacketType
from repro.transport import RoceConfig, VerbsContext


class TestFeedbackLossKnob:
    def test_feedback_loss_disabled_by_default(self):
        sim = Simulator()
        topo = star(sim, 2, switch_config=SwitchConfig(loss_rate=1.0))
        sw = topo.switches[0]
        got = []
        topo.nic(2).register_qp(0x50, type("Q", (), {
            "handle_packet": staticmethod(lambda pkt: got.append(pkt))})())
        sw.receive(Packet(PacketType.ACK, 1, 2, dst_qp=0x50), 0)
        sim.run()
        assert len(got) == 1  # ACKs spared even at loss_rate=1

    def test_feedback_loss_opt_in(self):
        sim = Simulator()
        cfg = SwitchConfig(loss_rate=1.0, loss_applies_to_feedback=True)
        topo = star(sim, 2, switch_config=cfg)
        sw = topo.switches[0]
        got = []
        topo.nic(2).register_qp(0x50, type("Q", (), {
            "handle_packet": staticmethod(lambda pkt: got.append(pkt))})())
        sw.receive(Packet(PacketType.ACK, 1, 2, dst_qp=0x50), 0)
        sim.run()
        assert got == []

    def test_lost_acks_recovered_by_rto(self):
        """With feedback loss enabled, the sender's safeguard timeout
        still completes the transfer (duplicate data re-acked)."""
        sim = Simulator()
        cfg = SwitchConfig(loss_rate=0.3, loss_applies_to_feedback=True,
                           seed=5)
        topo = star(sim, 2, switch_config=cfg)
        a = VerbsContext(sim, topo.nic(1), RoceConfig(rto=200e-6))
        b = VerbsContext(sim, topo.nic(2), RoceConfig(rto=200e-6))
        qa, qb = a.create_qp(), b.create_qp()
        qa.connect(2, qb.qpn)
        qb.connect(1, qa.qpn)
        qa.post_send(40960)
        sim.run(max_events=3_000_000)
        assert qb.recv.bytes_delivered == 40960
        assert qa.send_idle


class TestPerQpConfigOverride:
    def test_create_qp_config_param(self):
        sim = Simulator()
        topo = star(sim, 2)
        ctx = VerbsContext(sim, topo.nic(1), RoceConfig(mtu=4096))
        custom = ctx.create_qp(RoceConfig(mtu=1024))
        default = ctx.create_qp()
        assert custom.cfg.mtu == 1024
        assert default.cfg.mtu == 4096

    def test_small_mtu_packetization(self):
        sim = Simulator()
        topo = star(sim, 2)
        cfg = RoceConfig(mtu=1024)
        a = VerbsContext(sim, topo.nic(1), cfg)
        b = VerbsContext(sim, topo.nic(2), cfg)
        qa, qb = a.create_qp(), b.create_qp()
        qa.connect(2, qb.qpn)
        qb.connect(1, qa.qpn)
        qa.post_send(10_000)
        sim.run()
        assert qa.tx_data_packets == 10
        assert qb.recv.bytes_delivered == 10_000


class TestQpTeardownMidFlight:
    def test_close_during_congestion_control(self):
        sim = Simulator()
        topo = star(sim, 3)
        ctxs = [VerbsContext(sim, topo.nic(i + 1)) for i in range(3)]
        q12 = ctxs[0].create_qp()
        q21 = ctxs[1].create_qp()
        q12.connect(2, q21.qpn)
        q21.connect(1, q12.qpn)
        q12.post_send(8 << 20)
        sim.run(until=10e-6)   # mid-flight, CC timers armed
        q12.close()
        sim.run()
        assert sim.peek_next_time() is None  # nothing leaked
