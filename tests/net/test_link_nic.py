"""Link wiring + host NIC demux."""

import pytest

from repro.errors import TopologyError, TransportError
from repro.net.link import connect
from repro.net.nic import Nic
from repro.net.packet import Packet, PacketType
from repro.net.switch import Switch


class _QpStub:
    def __init__(self):
        self.got = []

    def handle_packet(self, pkt):
        self.got.append(pkt)


class TestConnect:
    def test_symmetric_wiring(self, sim):
        a = Switch(sim, "a", 2)
        b = Switch(sim, "b", 2)
        info = connect(a, 0, b, 1, bandwidth=40e9, propagation=2e-6)
        assert a.ports[0].peer_device is b and a.ports[0].peer_port == 1
        assert b.ports[1].peer_device is a and b.ports[1].peer_port == 0
        assert a.ports[0].bandwidth == b.ports[1].bandwidth == 40e9
        assert "a[0]<->b[1]" in info.endpoint_names()

    def test_port_reuse_rejected(self, sim):
        a, b, c = (Switch(sim, n, 2) for n in "abc")
        connect(a, 0, b, 0)
        with pytest.raises(TopologyError):
            connect(a, 0, c, 0)


class TestNicDemux:
    def test_routes_to_registered_qp(self, sim):
        nic = Nic(sim, ip=1)
        qp = _QpStub()
        nic.register_qp(0x100, qp)
        nic.receive(Packet(PacketType.DATA, 2, 1, dst_qp=0x100), 0)
        assert len(qp.got) == 1

    def test_unmatched_qp_silently_dropped(self, sim):
        """Commodity RNIC behaviour: the reason native multicast breaks
        (paper §II-D C1)."""
        nic = Nic(sim, ip=1)
        nic.receive(Packet(PacketType.DATA, 2, 1, dst_qp=0xDEAD), 0)
        assert nic.rx_unmatched == 1

    def test_duplicate_qpn_rejected(self, sim):
        nic = Nic(sim, ip=1)
        nic.register_qp(0x100, _QpStub())
        with pytest.raises(TransportError):
            nic.register_qp(0x100, _QpStub())

    def test_qpn_allocation_unique(self, sim):
        nic = Nic(sim, ip=1)
        qpns = {nic.allocate_qpn() for _ in range(50)}
        assert len(qpns) == 50

    def test_control_packets_to_handler(self, sim):
        nic = Nic(sim, ip=1)
        got = []
        nic.control_handler = got.append
        for t in (PacketType.MRP, PacketType.MRP_CONFIRM, PacketType.CTRL):
            nic.receive(Packet(t, 2, 1), 0)
        assert len(got) == 3

    def test_pause_freezes_egress(self, sim):
        nic = Nic(sim, ip=1)
        nic.receive(Packet(PacketType.PAUSE, 0, 0), 0)
        assert nic.egress_paused
        nic.receive(Packet(PacketType.RESUME, 0, 0), 0)
        assert not nic.egress_paused

    def test_deregister(self, sim):
        nic = Nic(sim, ip=1)
        qp = _QpStub()
        nic.register_qp(0x100, qp)
        nic.deregister_qp(0x100)
        nic.receive(Packet(PacketType.DATA, 2, 1, dst_qp=0x100), 0)
        assert qp.got == [] and nic.rx_unmatched == 1
