"""Failure injection + safeguard rescue."""

import pytest

from repro.apps import Cluster
from repro.collectives import CepheusBcast
from repro.errors import TopologyError
from repro.net.failures import FailureInjector


class TestLinkFailures:
    def test_severed_link_blackholes(self):
        cl = Cluster.testbed(4)
        inj = FailureInjector(cl.topo)
        got = []
        cl.qp_to(2, 1).on_message = lambda *a: got.append(a)
        inj.fail_host_link(2)
        cl.qp_to(1, 2).post_send(4096)
        cl.run(until=5e-3)
        assert got == []
        assert inj.active_failures == 1

    def test_repair_restores_delivery(self):
        cl = Cluster.testbed(4)
        inj = FailureInjector(cl.topo)
        sw, port = cl.topo.leaf_of(2)
        inj.fail_link(sw, port)
        inj.repair_link(sw, port)
        got = []
        cl.qp_to(2, 1).on_message = lambda *a: got.append(a)
        cl.qp_to(1, 2).post_send(4096)
        cl.run()
        assert len(got) == 1
        assert inj.active_failures == 0

    def test_scheduled_failure_mid_transfer(self):
        """Cut the receiver's link mid-flight: delivery stops, the
        sender spins on RTOs (bounded run), no crash."""
        cl = Cluster.testbed(4)
        inj = FailureInjector(cl.topo)
        q = cl.qp_to(1, 2)
        inj.fail_host_link(2, at=50e-6)
        q.post_send(32 << 20)
        cl.run(until=5e-3)
        peer = cl.qp_to(2, 1)
        assert 0 < peer.rq_psn < 8192   # partial delivery then silence
        assert q.timeouts > 0

    def test_unconnected_port_rejected(self):
        from repro.net import Simulator, Switch
        from repro.net.topology import Topology

        sim = Simulator()
        topo = Topology(sim)
        sw = topo.add_switch("lonely", 4)
        inj = FailureInjector(topo)
        with pytest.raises(TopologyError):
            inj.fail_link(sw, 0)

    def test_repair_unknown_rejected(self):
        cl = Cluster.testbed(2)
        inj = FailureInjector(cl.topo)
        with pytest.raises(TopologyError):
            inj.repair_link(cl.topo.switches[0], 0)


class TestSwitchFailures:
    def test_dead_switch_blackholes(self):
        cl = Cluster.fat_tree_cluster(4)
        inj = FailureInjector(cl.topo)
        for sw in cl.topo.switches_in_layer("agg"):
            inj.fail_switch(sw)
        for sw in cl.topo.switches_in_layer("core"):
            inj.fail_switch(sw)
        got = []
        cl.qp_to(3, 1).on_message = lambda *a: got.append(a)  # cross-rack
        cl.qp_to(1, 3).post_send(4096)
        cl.run(until=3e-3)
        assert got == []

    def test_repair_switch(self):
        cl = Cluster.testbed(4)
        inj = FailureInjector(cl.topo)
        sw = cl.topo.switches[0]
        inj.fail_switch(sw)
        inj.repair_switch(sw)
        got = []
        cl.qp_to(2, 1).on_message = lambda *a: got.append(a)
        cl.qp_to(1, 2).post_send(4096)
        cl.run()
        assert len(got) == 1

    def test_double_fail_idempotent(self):
        cl = Cluster.testbed(4)
        inj = FailureInjector(cl.topo)
        sw = cl.topo.switches[0]
        inj.fail_switch(sw)
        inj.fail_switch(sw)
        inj.repair_switch(sw)
        with pytest.raises(TopologyError):
            inj.repair_switch(sw)


class TestSafeguardRescue:
    def test_mdt_branch_failure_triggers_fallback(self):
        """Severing one MDT branch *after registration* kills the
        aggregated ACK stream; the watchdog trips and the payload is
        re-sent over AMcast.  (The fallback chain also crosses the dead
        link, so only the surviving receivers finish — the paper calls
        the finer-grained co-working approach future work.)"""
        from repro.collectives.base import BroadcastResult

        cl = Cluster.fat_tree_cluster(4)
        inj = FailureInjector(cl.topo)
        members = [1, 2, 3, 5]
        algo = CepheusBcast(cl, members, safeguard=True, expected_bps=90e9)
        algo.prepare()
        inj.fail_host_link(5, at=100e-6)  # cut one rack mid-flight
        res = BroadcastResult(algorithm=algo.name, root=1, size=32 << 20,
                              start=cl.sim.now)
        algo._pending_merge = None
        algo._launch(32 << 20, res)
        # Bounded drive: the fallback chain also crosses the dead link,
        # so the run never fully drains — that is expected.
        cl.run(until=40e-3)
        assert algo.fell_back
        assert "goodput" in algo.fallback_reason
        # The surviving receivers still got the payload via the fallback.
        sub = algo._pending_merge
        assert sub is not None
        assert {2, 3} <= set(sub.recv_times)
