"""PFC: per-ingress accounting, XOFF/XON, backpressure propagation."""

import pytest

from repro import constants
from repro.apps import Cluster
from repro.net import SwitchConfig
from repro.net.packet import Packet, PacketType
from repro.net.pfc import PfcManager
from repro.net.port import Port


class _Dev:
    def __init__(self, sim, n_ports=4):
        self.sim = sim
        self.name = "dev"
        self.ports = [Port(self, i) for i in range(n_ports)]

    def receive(self, pkt, in_port):
        pass


def _data(payload=4096):
    return Packet(PacketType.DATA, 1, 2, payload=payload)


class TestAccounting:
    def test_occupancy_tracks_enqueue_dequeue(self, sim):
        dev = _Dev(sim)
        pfc = PfcManager(dev, 4, xoff_bytes=10**9, xon_bytes=10**8)
        p = _data()
        pfc.on_enqueue(p, 1)
        assert pfc.occupancy(1) == p.wire_size
        pfc.on_dequeue(p, 1)
        assert pfc.occupancy(1) == 0

    def test_local_traffic_not_counted(self, sim):
        dev = _Dev(sim)
        pfc = PfcManager(dev, 4)
        pfc.on_enqueue(_data(), -1)
        assert all(pfc.occupancy(i) == 0 for i in range(4))

    def test_occupancy_never_negative(self, sim):
        dev = _Dev(sim)
        pfc = PfcManager(dev, 4)
        pfc.on_dequeue(_data(), 2)
        assert pfc.occupancy(2) == 0

    def test_disabled_manager_noop(self, sim):
        dev = _Dev(sim)
        pfc = PfcManager(dev, 4, enabled=False)
        for _ in range(1000):
            pfc.on_enqueue(_data(), 0)
        assert pfc.pause_frames_sent == 0


class TestThresholds:
    def test_pause_sent_once_at_xoff(self, sim):
        dev = _Dev(sim)
        peer = _Dev(sim)
        dev.ports[1].connect(peer, 0)
        pfc = PfcManager(dev, 4, xoff_bytes=8000, xon_bytes=4000)
        for _ in range(5):  # ~20KB
            pfc.on_enqueue(_data(), 1)
        assert pfc.pause_frames_sent == 1

    def test_resume_at_xon(self, sim):
        dev = _Dev(sim)
        peer = _Dev(sim)
        dev.ports[1].connect(peer, 0)
        pfc = PfcManager(dev, 4, xoff_bytes=8000, xon_bytes=4000)
        pkts = [_data() for _ in range(5)]
        for p in pkts:
            pfc.on_enqueue(p, 1)
        for p in pkts:
            pfc.on_dequeue(p, 1)
        assert pfc.resume_frames_sent == 1

    def test_handle_frame_gates_port(self, sim):
        dev = _Dev(sim)
        pfc = PfcManager(dev, 4)
        pfc.handle_frame(Packet(PacketType.PAUSE, 0, 0), 2)
        assert dev.ports[2].paused
        pfc.handle_frame(Packet(PacketType.RESUME, 0, 0), 2)
        assert not dev.ports[2].paused


class TestEndToEndBackpressure:
    def test_incast_stays_lossless_via_dcqcn(self):
        """Three senders blast one receiver: with ECN/DCQCN active the
        fabric stays lossless and each flow converges to a fair share —
        PFC is never even needed (it is the backstop, not the governor)."""
        cl = Cluster.testbed(4)
        done = []
        for src in (2, 3, 4):
            qp = cl.qp_to(src, 1)
            cl.qp_to(1, src).on_message = \
                lambda mid, sz, now, meta: done.append(now)
            qp.post_send(8 << 20)
        cl.run()
        sw = cl.topo.switches[0]
        assert len(done) == 3
        assert sw.taildrops == 0
        rate = cl.qp_to(2, 1).cc.rate
        assert rate < 0.6 * constants.LINK_BANDWIDTH_BPS  # DCQCN backed off

    def test_incast_pfc_backstop_without_ecn(self):
        """With ECN disabled (thresholds above the buffer), only PFC can
        keep the incast lossless — and it must."""
        big = constants.SWITCH_QUEUE_BYTES
        cfg = SwitchConfig(ecn_kmin=big + 1, ecn_kmax=big + 2)
        cl = Cluster.testbed(4, switch_config=cfg)
        done = []
        for src in (2, 3, 4):
            qp = cl.qp_to(src, 1)
            cl.qp_to(1, src).on_message = \
                lambda mid, sz, now, meta: done.append(now)
            qp.post_send(8 << 20)
        cl.run()
        sw = cl.topo.switches[0]
        assert len(done) == 3
        assert sw.taildrops == 0
        assert sw.pfc.pause_frames_sent > 0  # PFC actually engaged

    def test_pfc_disabled_can_drop(self):
        cfg = SwitchConfig(pfc_enabled=False, queue_capacity=200_000)
        cl = Cluster.testbed(4, switch_config=cfg)
        for src in (2, 3, 4):
            cl.qp_to(src, 1).post_send(4 << 20)
        cl.run(until=20e-3)
        assert cl.topo.switches[0].taildrops > 0
