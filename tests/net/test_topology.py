"""Topology builders: shapes, routing reachability, loss targeting."""

import pytest

from repro.errors import TopologyError
from repro.net.packet import Packet, PacketType
from repro.net.simulator import Simulator
from repro.net.topology import Topology, dumbbell, fat_tree, star


class TestStar:
    def test_host_count(self, sim):
        topo = star(sim, 6)
        assert topo.host_ips == [1, 2, 3, 4, 5, 6]
        assert len(topo.switches) == 1

    def test_all_ports_host_kind(self, sim):
        topo = star(sim, 4)
        assert topo.switches[0].host_ports() == [0, 1, 2, 3]

    def test_leaf_of(self, sim):
        topo = star(sim, 4)
        sw, port = topo.leaf_of(3)
        assert sw is topo.switches[0] and port == 2

    def test_unknown_host(self, sim):
        topo = star(sim, 2)
        with pytest.raises(TopologyError):
            topo.leaf_of(99)


class TestFatTree:
    def test_k4_shape(self, sim):
        topo = fat_tree(sim, 4)
        assert len(topo.host_ips) == 16
        assert len(topo.switches_in_layer("edge")) == 8
        assert len(topo.switches_in_layer("agg")) == 8
        assert len(topo.switches_in_layer("core")) == 4

    def test_k8_host_count(self, sim):
        topo = fat_tree(sim, 8)
        assert len(topo.host_ips) == 128

    def test_odd_k_rejected(self, sim):
        with pytest.raises(TopologyError):
            fat_tree(sim, 5)

    def test_hosts_limit(self, sim):
        topo = fat_tree(sim, 4, hosts_limit=5)
        assert len(topo.host_ips) == 5

    def test_every_switch_routes_every_host(self, sim):
        topo = fat_tree(sim, 4)
        for sw in topo.switches:
            for ip in topo.host_ips:
                assert topo and sw.route_ports(ip)

    def test_edge_uplinks_are_ecmp(self, sim):
        topo = fat_tree(sim, 4)
        edge = topo.switches_in_layer("edge")[0]
        # a host in another pod must be reachable over both uplinks
        remote = topo.host_ips[-1]
        assert len(edge.route_ports(remote)) == 2

    def test_same_rack_single_hop(self, sim):
        topo = fat_tree(sim, 4)
        edge, port = topo.leaf_of(1)
        assert edge.route_ports(2) != edge.route_ports(1)
        assert edge.is_host_port(edge.route_ports(2)[0])

    def test_end_to_end_delivery_cross_pod(self, sim):
        topo = fat_tree(sim, 4)
        got = []
        dst = topo.host_ips[-1]
        topo.nic(dst).control_handler = got.append
        pkt = Packet(PacketType.CTRL, 1, dst, payload=64)
        edge, _ = topo.leaf_of(1)
        edge.receive(pkt, topo.leaf_of(1)[1])
        sim.run()
        assert len(got) == 1
        assert got[0].hops >= 5  # edge->agg->core->agg->edge->host

    def test_loss_targets_middle_layers(self, sim):
        topo = fat_tree(sim, 4)
        topo.set_loss_rate(0.1)
        for sw in topo.switches:
            expected = 0.1 if sw.layer in ("agg", "core") else 0.0
            assert sw.config.loss_rate == expected

    def test_loss_fallback_for_single_layer_topo(self, sim):
        topo = star(sim, 4)
        topo.set_loss_rate(0.2)
        assert topo.switches[0].config.loss_rate == 0.2


class TestDumbbell:
    def test_shape(self, sim):
        topo = dumbbell(sim, 3, 2)
        assert len(topo.host_ips) == 5
        assert len(topo.switches) == 2

    def test_bottleneck_bandwidth(self, sim):
        topo = dumbbell(sim, 1, 1, bottleneck=10e9)
        left = topo.switches[0]
        trunk = [p for p in left.ports if p.connected
                 and left.port_kind[p.index] == "switch"]
        assert trunk[0].bandwidth == 10e9

    def test_cross_side_route(self, sim):
        topo = dumbbell(sim, 2, 2)
        left = topo.switches[0]
        right_host = topo.host_ips[-1]
        port = left.route_ports(right_host)[0]
        assert left.port_kind[port] == "switch"


class TestWiring:
    def test_double_connect_rejected(self, sim):
        topo = Topology(sim)
        a = topo.add_switch("a", 2)
        b = topo.add_switch("b", 2)
        c = topo.add_switch("c", 2)
        topo.wire_switches(a, 0, b, 0)
        with pytest.raises(TopologyError):
            topo.wire_switches(a, 0, c, 0)

    def test_duplicate_host_ip_rejected(self, sim):
        topo = Topology(sim)
        topo.add_host(1)
        with pytest.raises(TopologyError):
            topo.add_host(1)

    def test_unattached_host_fails_routing(self, sim):
        topo = Topology(sim)
        topo.add_switch("a", 2)
        topo.add_host(1)
        with pytest.raises(TopologyError):
            topo.build_routes()
