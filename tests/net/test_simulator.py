"""Unit tests for the discrete-event kernel."""

import pytest

from repro.net.simulator import Simulator


class TestScheduling:
    def test_starts_at_zero(self):
        assert Simulator().now == 0.0

    def test_runs_single_event(self, sim):
        fired = []
        sim.schedule(1e-6, fired.append, 1)
        sim.run()
        assert fired == [1]
        assert sim.now == pytest.approx(1e-6)

    def test_events_run_in_time_order(self, sim):
        order = []
        sim.schedule(3e-6, order.append, "c")
        sim.schedule(1e-6, order.append, "a")
        sim.schedule(2e-6, order.append, "b")
        sim.run()
        assert order == ["a", "b", "c"]

    def test_ties_run_in_scheduling_order(self, sim):
        order = []
        for tag in ("first", "second", "third"):
            sim.schedule(5e-6, order.append, tag)
        sim.run()
        assert order == ["first", "second", "third"]

    def test_schedule_at_absolute_time(self, sim):
        fired = []
        sim.schedule_at(2e-6, fired.append, "x")
        sim.run()
        assert fired == ["x"] and sim.now == pytest.approx(2e-6)

    def test_negative_delay_rejected(self, sim):
        with pytest.raises(ValueError):
            sim.schedule(-1e-9, lambda: None)

    def test_schedule_into_past_rejected(self, sim):
        sim.schedule(1e-6, lambda: None)
        sim.run()
        with pytest.raises(ValueError):
            sim.schedule_at(0.5e-6, lambda: None)

    def test_events_can_schedule_events(self, sim):
        fired = []

        def chain(n):
            fired.append(n)
            if n < 3:
                sim.schedule(1e-6, chain, n + 1)

        sim.schedule(0.0, chain, 0)
        sim.run()
        assert fired == [0, 1, 2, 3]
        assert sim.now == pytest.approx(3e-6)


class TestCancellation:
    def test_cancelled_event_does_not_fire(self, sim):
        fired = []
        ev = sim.schedule(1e-6, fired.append, "no")
        ev.cancel()
        sim.run()
        assert fired == []

    def test_cancel_is_idempotent(self, sim):
        ev = sim.schedule(1e-6, lambda: None)
        ev.cancel()
        ev.cancel()
        sim.run()

    def test_peek_skips_cancelled(self, sim):
        ev = sim.schedule(1e-6, lambda: None)
        sim.schedule(2e-6, lambda: None)
        ev.cancel()
        assert sim.peek_next_time() == pytest.approx(2e-6)

    def test_peek_empty(self, sim):
        assert sim.peek_next_time() is None


class TestRunControl:
    def test_until_stops_before_later_events(self, sim):
        fired = []
        sim.schedule(1e-6, fired.append, "in")
        sim.schedule(5e-6, fired.append, "out")
        sim.run(until=2e-6)
        assert fired == ["in"]
        assert sim.now == pytest.approx(2e-6)

    def test_until_inclusive_at_boundary(self, sim):
        fired = []
        sim.schedule(2e-6, fired.append, "edge")
        sim.run(until=2e-6)
        assert fired == ["edge"]

    def test_run_returns_executed_count(self, sim):
        for _ in range(5):
            sim.schedule(1e-6, lambda: None)
        assert sim.run() == 5
        assert sim.events_run == 5

    def test_max_events_guard(self, sim):
        def loop():
            sim.schedule(1e-9, loop)

        sim.schedule(0, loop)
        with pytest.raises(RuntimeError):
            sim.run(max_events=100)

    def test_max_events_exact_count(self, sim):
        """Regression: exactly max_events events execute — the guard
        used to let one extra event through before raising."""
        fired = []
        for i in range(150):
            sim.schedule(i * 1e-6, fired.append, i)
        with pytest.raises(RuntimeError):
            sim.run(max_events=100)
        assert len(fired) == 100
        assert sim.events_run == 100
        assert sim.pending == 50  # the rest stay queued, not lost

    def test_max_events_not_raised_when_queue_drains(self, sim):
        for i in range(100):
            sim.schedule(i * 1e-6, lambda: None)
        assert sim.run(max_events=100) == 100

    def test_max_events_ignores_cancelled(self, sim):
        fired = []
        for i in range(5):
            sim.schedule(1e-6, fired.append, i).cancel()
        sim.schedule(2e-6, fired.append, "real")
        assert sim.run(max_events=1) == 1
        assert fired == ["real"]

    def test_resume_after_until(self, sim):
        fired = []
        sim.schedule(1e-6, fired.append, 1)
        sim.schedule(3e-6, fired.append, 2)
        sim.run(until=2e-6)
        sim.run()
        assert fired == [1, 2]

    def test_determinism(self):
        """Two identical schedules produce identical traces."""
        def trace():
            s = Simulator()
            out = []
            for i in range(20):
                s.schedule((i * 7 % 5) * 1e-6, out.append, i)
            s.run()
            return out

        assert trace() == trace()
