"""Additional failure-injection scenarios across the stack."""

import pytest

from repro.apps import Cluster
from repro.collectives import CepheusBcast
from repro.ext import InNetworkReduce
from repro.net import FailureInjector


class TestEcmpResilience:
    def test_unicast_survives_one_core_failure(self):
        """ECMP fabrics route around a dead core only with re-routing —
        which we do not model — so flows *pinned* to the dead core stall
        while others pass.  This documents the model's behaviour."""
        cl = Cluster.fat_tree_cluster(4)
        inj = FailureInjector(cl.topo)
        cores = cl.topo.switches_in_layer("core")
        inj.fail_switch(cores[0])
        outcomes = []
        # Cross-pod flows hash across 4 cores; with one dead, ~3/4 pass.
        for src, dst in ((1, 5), (2, 6), (3, 7), (4, 8), (1, 9), (2, 10)):
            got = []
            cl.qp_to(dst, src).on_message = lambda *a: got.append(1)
            cl.qp_to(src, dst).post_send(4096)
            cl.run(until=cl.sim.now + 3e-3)
            outcomes.append(bool(got))
        delivered = sum(outcomes)
        assert delivered >= len(outcomes) // 2  # fabric not globally dead
        # quiesce any flow pinned to the dead core
        for src, dst in ((1, 5), (2, 6), (3, 7), (4, 8), (1, 9), (2, 10)):
            cl.qp_to(src, dst).abort_sends()


class TestMulticastUnderFailures:
    def test_registration_fails_when_leaf_dead(self):
        from repro.errors import RegistrationError

        cl = Cluster.fat_tree_cluster(4)
        inj = FailureInjector(cl.topo)
        # Kill host 3's edge switch before registration.
        edge, _ = cl.topo.leaf_of(3)
        inj.fail_switch(edge)
        qps = {ip: cl.ctx(ip).create_qp() for ip in (1, 3, 5)}
        g = cl.fabric.create_group(qps, leader_ip=1)
        with pytest.raises(RegistrationError, match="timeout"):
            cl.fabric.register_sync(g, timeout=2e-3)

    def test_partial_registration_routes_around_dead_rack(self):
        cl = Cluster.fat_tree_cluster(4)
        inj = FailureInjector(cl.topo)
        inj.fail_host_link(3)
        qps = {ip: cl.ctx(ip).create_qp() for ip in (1, 3, 5)}
        g = cl.fabric.create_group(qps, leader_ip=1)
        missing = cl.fabric.register_partial_sync(g, timeout=2e-3)
        assert missing == {3}

    def test_inreduce_stalls_visibly_on_contributor_death(self):
        """A dead contributor starves the combining slots: the root
        never completes (bounded observation, no silent wrong answer)."""
        from repro.errors import ConfigurationError

        cl = Cluster.fat_tree_cluster(4)
        inj = FailureInjector(cl.topo)
        red = InNetworkReduce(cl, [1, 5, 9, 13])
        red.prepare()
        inj.fail_host_link(13)
        red.qps[5].post_send(1 << 20)
        red.qps[9].post_send(1 << 20)
        cl.run(until=10e-3)
        assert red.qps[1].recv.bytes_delivered == 0
        for qp in (red.qps[5], red.qps[9]):
            qp.abort_sends()

    def test_repair_restores_multicast(self):
        cl = Cluster.fat_tree_cluster(4)
        inj = FailureInjector(cl.topo)
        algo = CepheusBcast(cl, [1, 2, 3, 5])
        algo.prepare()
        sw, port = cl.topo.leaf_of(5)
        inj.fail_link(sw, port)
        inj.repair_link(sw, port)
        r = algo.run(1 << 20)
        assert set(r.recv_times) == {2, 3, 5}
