"""Packet model: wire sizes, cloning, classification."""

import pytest

from repro import constants
from repro.net.packet import Packet, PacketType, RdmaOp, is_multicast_ip


class TestWireSize:
    def test_data_includes_headers(self):
        p = Packet(PacketType.DATA, 1, 2, payload=4096)
        assert p.wire_size == 4096 + constants.HEADER_BYTES

    def test_write_first_packet_pays_reth(self):
        first = Packet(PacketType.DATA, 1, 2, payload=1024,
                       op=RdmaOp.WRITE, first=True)
        middle = Packet(PacketType.DATA, 1, 2, payload=1024,
                        op=RdmaOp.WRITE, first=False)
        assert first.wire_size == middle.wire_size + 16

    def test_send_never_pays_reth(self):
        first = Packet(PacketType.DATA, 1, 2, payload=1024,
                       op=RdmaOp.SEND, first=True)
        assert first.wire_size == 1024 + constants.HEADER_BYTES

    def test_ack_and_nack_fixed_size(self):
        ack = Packet(PacketType.ACK, 1, 2)
        nack = Packet(PacketType.NACK, 1, 2)
        assert ack.wire_size == nack.wire_size == constants.ACK_BYTES

    def test_cnp_size(self):
        assert Packet(PacketType.CNP, 1, 2).wire_size == constants.CNP_BYTES

    def test_pause_is_minimum_frame(self):
        assert Packet(PacketType.PAUSE, 0, 0).wire_size == 64

    def test_mrp_capped_at_control_mtu(self):
        p = Packet(PacketType.MRP, 1, 2, payload=10_000)
        assert p.wire_size == constants.MRP_MTU_BYTES


class TestClassification:
    def test_mcstid_range(self):
        assert is_multicast_ip(constants.MCSTID_BASE)
        assert is_multicast_ip(constants.MCSTID_BASE + 12345)
        assert not is_multicast_ip(1)
        assert not is_multicast_ip(constants.MCSTID_BASE - 1)

    def test_is_mcast_data(self):
        mc = Packet(PacketType.DATA, 1, constants.MCSTID_BASE)
        uc = Packet(PacketType.DATA, 1, 2)
        assert mc.is_mcast_data and not uc.is_mcast_data

    def test_feedback_types(self):
        for t in (PacketType.ACK, PacketType.NACK, PacketType.CNP):
            assert Packet(t, 1, 2).is_feedback
        assert not Packet(PacketType.DATA, 1, 2).is_feedback

    def test_mcast_feedback(self):
        fb = Packet(PacketType.ACK, 5, constants.MCSTID_BASE)
        assert fb.is_mcast_feedback

    def test_flow_hash_stable_and_flow_consistent(self):
        a = Packet(PacketType.DATA, 1, 2, src_qp=7, dst_qp=9, psn=0)
        b = Packet(PacketType.DATA, 1, 2, src_qp=7, dst_qp=9, psn=55)
        assert a.flow_hash() == b.flow_hash()


class TestClone:
    def test_clone_copies_fields(self):
        p = Packet(PacketType.DATA, 1, 2, src_qp=3, dst_qp=4, psn=10,
                   payload=512, op=RdmaOp.WRITE, msg_id=77, first=True,
                   last=True, vaddr=0x1000, rkey=0x2000, retransmit=True)
        p.ecn = True
        p.hops = 3
        c = p.clone()
        for attr in ("ptype", "src_ip", "dst_ip", "src_qp", "dst_qp", "psn",
                     "payload", "op", "msg_id", "first", "last", "vaddr",
                     "rkey", "retransmit", "ecn", "hops"):
            assert getattr(c, attr) == getattr(p, attr), attr

    def test_clone_gets_fresh_pid(self):
        p = Packet(PacketType.DATA, 1, 2)
        assert p.clone().pid != p.pid

    def test_clone_is_independent(self):
        p = Packet(PacketType.DATA, 1, 2, payload=100)
        c = p.clone()
        c.dst_ip = 99
        c.psn = 42
        assert p.dst_ip == 2 and p.psn == 0

    def test_pids_unique(self):
        pids = {Packet(PacketType.DATA, 1, 2).pid for _ in range(100)}
        assert len(pids) == 100
