"""Throughput sampler and fabric stats collection."""

import pytest

from repro.net import Simulator, star
from repro.net.trace import RunStats, ThroughputSampler, collect_run_stats


class TestSampler:
    def test_empty_series(self):
        assert ThroughputSampler().series_gbps() == []

    def test_single_bucket(self):
        s = ThroughputSampler(1e-3)
        s.record(0.5e-3, 12_500_000)  # 12.5 MB in 1 ms = 100 Gbps
        assert s.series_gbps() == [pytest.approx(100.0)]

    def test_buckets_accumulate(self):
        s = ThroughputSampler(1e-3)
        s.record(0.1e-3, 1000)
        s.record(0.2e-3, 1000)
        s.record(1.5e-3, 500)
        series = s.series_gbps()
        assert len(series) == 2
        assert series[0] == pytest.approx(2000 * 8 / 1e-3 / 1e9)

    def test_gaps_are_zero(self):
        s = ThroughputSampler(1e-3)
        s.record(0.0, 100)
        s.record(3.2e-3, 100)
        series = s.series_gbps()
        assert series[1] == 0.0 and series[2] == 0.0

    def test_average_window(self):
        s = ThroughputSampler(1e-3)
        for ms in range(10):
            s.record(ms * 1e-3, 1_250_000)  # 10 Gbps every ms
        assert s.average_gbps(2e-3, 8e-3) == pytest.approx(10.0)


class TestRunStats:
    def test_collects_per_switch(self, sim):
        topo = star(sim, 4)
        stats = collect_run_stats(topo)
        assert isinstance(stats, RunStats)
        assert "sw0" in stats.per_switch

    def test_counts_random_drops(self, sim):
        topo = star(sim, 4)
        topo.switches[0].random_drops = 7
        assert collect_run_stats(topo).random_drops == 7
