"""Port behaviour: serialization, queueing, ECN, tail-drop, pause."""

import pytest

from repro.net.packet import Packet, PacketType
from repro.net.port import Port
from repro.net.simulator import Simulator


class _Sink:
    """Minimal device: records arrivals."""

    def __init__(self, sim):
        self.sim = sim
        self.name = "sink"
        self.ports = []
        self.received = []

    def receive(self, pkt, in_port):
        self.received.append((pkt, in_port, self.sim.now))


def _wire(sim, **port_kw):
    src = _Sink(sim)
    dst = _Sink(sim)
    port = Port(src, 0, **port_kw)
    src.ports = [port]
    port.connect(dst, 7)
    return src, dst, port


def _data(payload=4096, psn=0):
    return Packet(PacketType.DATA, 1, 2, payload=payload, psn=psn)


class TestTransmission:
    def test_delivery_after_serialization_and_propagation(self, sim):
        _, dst, port = _wire(sim, bandwidth=100e9, propagation=1e-6)
        pkt = _data(payload=4096)
        port.enqueue(pkt)
        sim.run()
        ser = pkt.wire_size * 8 / 100e9
        assert dst.received[0][2] == pytest.approx(ser + 1e-6)
        assert dst.received[0][1] == 7  # peer port index

    def test_fifo_order(self, sim):
        _, dst, port = _wire(sim)
        pkts = [_data(psn=i) for i in range(5)]
        for p in pkts:
            port.enqueue(p)
        sim.run()
        assert [p.psn for p, _, _ in dst.received] == [0, 1, 2, 3, 4]

    def test_back_to_back_serialization(self, sim):
        _, dst, port = _wire(sim, bandwidth=100e9, propagation=0.0)
        a, b = _data(), _data()
        port.enqueue(a)
        port.enqueue(b)
        sim.run()
        gap = dst.received[1][2] - dst.received[0][2]
        assert gap == pytest.approx(a.wire_size * 8 / 100e9)

    def test_hops_incremented(self, sim):
        _, dst, port = _wire(sim)
        port.enqueue(_data())
        sim.run()
        assert dst.received[0][0].hops == 1

    def test_stats_counted(self, sim):
        _, _, port = _wire(sim)
        port.enqueue(_data())
        sim.run()
        assert port.stats.tx_packets == 1
        assert port.stats.tx_bytes > 4096


class TestTailDrop:
    def test_drop_when_full(self, sim):
        _, dst, port = _wire(sim, queue_capacity=10_000)
        accepted = sum(port.enqueue(_data(payload=4096)) for _ in range(5))
        sim.run()
        assert accepted < 5
        assert port.stats.drops == 5 - accepted
        assert len(dst.received) == accepted

    def test_no_drop_below_capacity(self, sim):
        _, _, port = _wire(sim, queue_capacity=1_000_000)
        assert all(port.enqueue(_data()) for _ in range(10))


class TestEcn:
    def test_no_marking_below_kmin(self, sim):
        _, dst, port = _wire(sim, ecn_kmin=100_000, ecn_kmax=200_000)
        for _ in range(3):
            port.enqueue(_data())
        sim.run()
        assert all(not p.ecn for p, _, _ in dst.received)

    def test_always_marks_above_kmax(self, sim):
        _, dst, port = _wire(sim, queue_capacity=10_000_000,
                             ecn_kmin=10_000, ecn_kmax=20_000)
        for _ in range(20):
            port.enqueue(_data())
        sim.run()
        # Packets enqueued when depth >= kmax must be marked.
        marked = [p.ecn for p, _, _ in dst.received]
        assert any(marked)
        assert all(marked[6:])  # deep-queue arrivals all marked

    def test_feedback_never_marked(self, sim):
        _, dst, port = _wire(sim, queue_capacity=10_000_000,
                             ecn_kmin=100, ecn_kmax=200)
        for _ in range(10):
            port.enqueue(Packet(PacketType.ACK, 1, 2))
        sim.run()
        assert all(not p.ecn for p, _, _ in dst.received)


class TestPause:
    def test_pause_freezes_queue(self, sim):
        _, dst, port = _wire(sim)
        port.set_paused(True)
        port.enqueue(_data())
        sim.run()
        assert dst.received == []

    def test_resume_drains(self, sim):
        _, dst, port = _wire(sim)
        port.set_paused(True)
        port.enqueue(_data())
        sim.run()
        port.set_paused(False)
        sim.run()
        assert len(dst.received) == 1

    def test_inflight_packet_not_recalled(self, sim):
        """Pausing mid-serialization lets the current packet finish."""
        _, dst, port = _wire(sim, bandwidth=1e9)  # slow: long serialization
        port.enqueue(_data())
        port.enqueue(_data())
        sim.run(until=1e-6)  # first packet is mid-flight
        port.set_paused(True)
        sim.run()
        assert len(dst.received) == 1

    def test_control_bypasses_pause(self, sim):
        _, dst, port = _wire(sim)
        port.set_paused(True)
        port.send_control(Packet(PacketType.PAUSE, 0, 0))
        sim.run()
        assert len(dst.received) == 1
        assert dst.received[0][0].ptype == PacketType.PAUSE

    def test_pause_stats(self, sim):
        _, _, port = _wire(sim)
        port.set_paused(True)
        port.set_paused(True)   # idempotent
        port.set_paused(False)
        assert port.stats.pause_events == 1
        assert port.stats.resume_events == 1
