"""Telemetry helpers: latency stats, taps, probes, packet log."""

import pytest

from repro.apps import Cluster
from repro.net.telemetry import (DeliveryTap, LatencyStats, PacketLog,
                                 QueueDepthProbe)


class TestLatencyStats:
    def test_empty(self):
        s = LatencyStats()
        assert s.mean == 0.0 and s.percentile(50) == 0.0

    def test_mean_and_max(self):
        s = LatencyStats()
        for v in (1.0, 2.0, 3.0):
            s.record(v)
        assert s.mean == pytest.approx(2.0)
        assert s.max_value == 3.0 and s.count == 3

    def test_percentiles_exact(self):
        s = LatencyStats()
        for v in range(1, 101):
            s.record(float(v))
        assert s.percentile(0) == 1.0
        assert s.percentile(100) == 100.0
        assert s.percentile(50) == pytest.approx(50.5)

    def test_percentile_range_checked(self):
        s = LatencyStats()
        s.record(1.0)
        with pytest.raises(ValueError):
            s.percentile(101)

    def test_retention_bound(self):
        s = LatencyStats(max_samples=10)
        for v in range(100):
            s.record(float(v))
        assert s.count == 100
        assert len(s._samples) == 10

    def test_reservoir_is_unbiased_across_the_stream(self):
        """The retained window must sample the whole stream, not its
        head: feed 10k values where the second half is 100x larger and
        require the median to reflect both halves.  Pure head retention
        (the old behaviour) would report a p50 from the small first
        half only."""
        s = LatencyStats(max_samples=100, seed=7)
        for v in range(5_000):
            s.record(1.0)
        for v in range(5_000):
            s.record(100.0)
        tail_fraction = sum(1 for v in s._samples if v == 100.0) / 100
        assert 0.3 < tail_fraction < 0.7  # ~0.5 for an unbiased reservoir
        assert s.percentile(99) == 100.0

    def test_reservoir_is_deterministic_for_a_seed(self):
        def fill(seed):
            s = LatencyStats(max_samples=50, seed=seed)
            for v in range(2_000):
                s.record(float(v))
            return list(s._samples)

        assert fill(3) == fill(3)
        assert fill(3) != fill(4)

    def test_reservoir_exact_below_capacity(self):
        """Under capacity the reservoir is the full sample set: exact
        percentiles, no sampling error."""
        s = LatencyStats(max_samples=1_000, seed=9)
        for v in range(1, 101):
            s.record(float(v))
        assert sorted(s._samples) == [float(v) for v in range(1, 101)]
        assert s.percentile(50) == pytest.approx(50.5)

    def test_summary_keys(self):
        s = LatencyStats()
        s.record(5.0)
        assert set(s.summary()) == {"count", "mean", "p50", "p99", "p999",
                                    "max"}

    def test_summary_matches_percentile_calls(self):
        """summary() sorts the window once; its percentiles must agree
        with the per-call percentile() path exactly."""
        s = LatencyStats()
        for v in (9.0, 1.0, 7.0, 3.0, 5.0, 2.0, 8.0, 4.0, 6.0):
            s.record(v)
        out = s.summary()
        assert out["p50"] == s.percentile(50)
        assert out["p99"] == s.percentile(99)
        assert out["p999"] == s.percentile(99.9)
        assert out["mean"] == pytest.approx(s.mean)
        assert out["max"] == s.max_value

    def test_p999_separates_from_p99_on_heavy_tails(self):
        """One outlier in 10k samples: p99 stays at the body, p999 climbs
        toward the tail — the SLO metric the broker-fabric scenario
        reports."""
        s = LatencyStats(max_samples=2_000)
        for _ in range(995):
            s.record(1.0)
        for _ in range(5):
            s.record(1_000.0)
        out = s.summary()
        assert out["p99"] == 1.0
        assert out["p999"] > out["p99"]

    def test_summary_of_empty_window(self):
        out = LatencyStats().summary()
        assert out["p50"] == 0.0 and out["p99"] == 0.0
        assert out["p999"] == 0.0


class TestDeliveryTap:
    def test_records_one_way_delay(self):
        cl = Cluster.testbed(2)
        tap = DeliveryTap(cl.qp_to(2, 1))
        cl.qp_to(1, 2).post_send(40960)
        cl.run()
        assert tap.stats.count == 10
        assert 0 < tap.stats.mean < 100e-6

    def test_detach_restores(self):
        cl = Cluster.testbed(2)
        qp = cl.qp_to(2, 1)
        tap = DeliveryTap(qp)
        tap.detach()
        cl.qp_to(1, 2).post_send(4096)
        cl.run()
        assert tap.stats.count == 0
        assert qp.recv.bytes_delivered == 4096

    def test_feedback_not_counted(self):
        cl = Cluster.testbed(2)
        tap = DeliveryTap(cl.qp_to(1, 2))  # sender side sees only ACKs
        cl.qp_to(1, 2).post_send(40960)
        cl.run()
        assert tap.stats.count == 0


class TestQueueDepthProbe:
    def test_samples_and_terminates(self):
        cl = Cluster.testbed(4)
        port = cl.topo.switches[0].ports[0]
        probe = QueueDepthProbe(cl.sim, port, interval=5e-6, duration=200e-6)
        for src in (2, 3, 4):
            cl.qp_to(src, 1).post_send(1 << 20)
        cl.run()
        assert probe.peak_bytes > 0
        assert probe.series[-1][0] <= probe.deadline
        assert cl.sim.peek_next_time() is None  # probe did not leak events

    def test_stop_early(self):
        cl = Cluster.testbed(2)
        probe = QueueDepthProbe(cl.sim, cl.topo.switches[0].ports[0],
                                interval=1e-6, duration=1.0)
        probe.stop()
        cl.run()
        assert len(probe.series) == 1

    def test_mean(self):
        cl = Cluster.testbed(2)
        probe = QueueDepthProbe(cl.sim, cl.topo.switches[0].ports[0],
                                interval=10e-6, duration=50e-6)
        cl.run()
        assert probe.mean_bytes() == 0.0


class TestPacketLog:
    def test_logs_forwarded_packets(self):
        cl = Cluster.testbed(2)
        log = PacketLog(cl.topo.switches[0])
        cl.qp_to(1, 2).post_send(40960)
        cl.run()
        assert len(log.of_type("DATA")) == 10
        assert len(log.of_type("ACK")) >= 1

    def test_ring_bound(self):
        cl = Cluster.testbed(2)
        log = PacketLog(cl.topo.switches[0], max_entries=5)
        cl.qp_to(1, 2).post_send(40960)
        cl.run()
        assert len(log) == 5

    def test_detach(self):
        cl = Cluster.testbed(2)
        log = PacketLog(cl.topo.switches[0])
        log.detach()
        cl.qp_to(1, 2).post_send(4096)
        cl.run()
        assert len(log) == 0

    def test_multicast_tree_visible(self):
        """The log exposes the replication fan-out of one packet."""
        from repro.collectives import CepheusBcast

        cl = Cluster.testbed(4)
        algo = CepheusBcast(cl, cl.host_ips)
        algo.prepare()
        log = PacketLog(cl.topo.switches[0])
        algo.qps[1].post_send(100)
        cl.run()
        data = log.of_type("DATA")
        assert len(data) == 3  # one ingress packet -> three replicas
        assert {e[4] for e in data} == {1, 2, 3}  # distinct egress ports
