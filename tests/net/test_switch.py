"""Switch: FIB/ECMP, forwarding, loss injection, PFC framing."""

import pytest

from repro.errors import RoutingError, TopologyError
from repro.net.link import connect
from repro.net.packet import Packet, PacketType
from repro.net.simulator import Simulator
from repro.net.switch import Switch, SwitchConfig
from repro.net.topology import star


class _Host:
    def __init__(self, sim, ip):
        self.sim = sim
        self.ip = ip
        self.name = f"h{ip}"
        from repro.net.port import Port
        self.ports = [Port(self, 0)]
        self.received = []

    def receive(self, pkt, in_port):
        self.received.append(pkt)


def _two_hosts_one_switch(sim):
    sw = Switch(sim, "sw", 4)
    h1, h2 = _Host(sim, 1), _Host(sim, 2)
    connect(sw, 0, h1, 0)
    connect(sw, 1, h2, 0)
    sw.port_kind[0] = sw.port_kind[1] = "host"
    sw.add_route(1, [0])
    sw.add_route(2, [1])
    return sw, h1, h2


class TestRouting:
    def test_forwards_by_fib(self, sim):
        sw, h1, h2 = _two_hosts_one_switch(sim)
        sw.receive(Packet(PacketType.DATA, 1, 2, payload=64), 0)
        sim.run()
        assert len(h2.received) == 1 and h1.received == []

    def test_unknown_destination_raises(self, sim):
        sw, _, _ = _two_hosts_one_switch(sim)
        with pytest.raises(RoutingError):
            sw.receive(Packet(PacketType.DATA, 1, 99), 0)

    def test_ecmp_group_flow_consistent(self, sim):
        sw = Switch(sim, "sw", 4)
        sw.add_route(9, [2, 3])
        pkts = [Packet(PacketType.DATA, 1, 9, src_qp=5, dst_qp=6, psn=i)
                for i in range(20)]
        chosen = {sw.route_lookup(p) for p in pkts}
        assert len(chosen) == 1  # same flow -> same uplink

    def test_ecmp_spreads_different_flows(self, sim):
        sw = Switch(sim, "sw", 4)
        sw.add_route(9, [2, 3])
        chosen = {
            sw.route_lookup(Packet(PacketType.DATA, 1, 9, src_qp=q))
            for q in range(32)
        }
        assert chosen == {2, 3}

    def test_add_route_deduplicates(self, sim):
        sw = Switch(sim, "sw", 4)
        sw.add_route(9, [2])
        sw.add_route(9, [2, 3])
        assert sw.route_ports(9) == [2, 3]

    def test_route_ports_unknown(self, sim):
        sw = Switch(sim, "sw", 4)
        with pytest.raises(RoutingError):
            sw.route_ports(1234)


class TestLossInjection:
    def _lossy(self, sim, rate, seed=0):
        cfg = SwitchConfig(loss_rate=rate, seed=seed)
        sw = Switch(sim, "sw", 4, cfg)
        h1, h2 = _Host(sim, 1), _Host(sim, 2)
        connect(sw, 0, h1, 0)
        connect(sw, 1, h2, 0)
        sw.add_route(2, [1])
        return sw, h2

    def test_no_loss_at_zero_rate(self, sim):
        sw, h2 = self._lossy(sim, 0.0)
        for i in range(100):
            sw.receive(Packet(PacketType.DATA, 1, 2, psn=i, payload=64), 0)
        sim.run()
        assert len(h2.received) == 100 and sw.random_drops == 0

    def test_full_loss(self, sim):
        sw, h2 = self._lossy(sim, 1.0)
        for i in range(50):
            sw.receive(Packet(PacketType.DATA, 1, 2, psn=i, payload=64), 0)
        sim.run()
        assert h2.received == [] and sw.random_drops == 50

    def test_partial_loss_statistics(self, sim):
        sw, h2 = self._lossy(sim, 0.3)
        for i in range(2000):
            sw.receive(Packet(PacketType.DATA, 1, 2, psn=i, payload=64), 0)
        sim.run()
        assert 0.2 < sw.random_drops / 2000 < 0.4

    def test_feedback_spared_by_default(self, sim):
        sw, h2 = self._lossy(sim, 1.0)
        sw.receive(Packet(PacketType.ACK, 1, 2), 0)
        sim.run()
        assert len(h2.received) == 1

    def test_deterministic_given_seed(self):
        def run(seed):
            s = Simulator()
            sw, h2 = TestLossInjection()._lossy(s, 0.5, seed=seed)
            for i in range(100):
                sw.receive(Packet(PacketType.DATA, 1, 2, psn=i, payload=64), 0)
            s.run()
            return [p.psn for p in h2.received]

        assert run(7) == run(7)


class TestPfcFrames:
    def test_pause_frame_pauses_egress(self, sim):
        sw, h1, h2 = _two_hosts_one_switch(sim)
        sw.receive(Packet(PacketType.PAUSE, 0, 0), 1)
        sw.receive(Packet(PacketType.DATA, 1, 2, payload=64), 0)
        sim.run()
        assert h2.received == []  # egress toward h2 is paused
        sw.receive(Packet(PacketType.RESUME, 0, 0), 1)
        sim.run()
        assert len(h2.received) == 1


class TestAclClassification:
    def test_accelerator_consulted_for_multicast(self, sim):
        from repro import constants

        class FakeAccel:
            def __init__(self):
                self.seen = []

            def classify(self, pkt):
                return pkt.is_mcast_data

            def process(self, pkt, in_port):
                self.seen.append((pkt, in_port))

        sw, h1, h2 = _two_hosts_one_switch(sim)
        accel = FakeAccel()
        sw.accelerator = accel
        sw.receive(Packet(PacketType.DATA, 1, constants.MCSTID_BASE,
                          payload=64), 0)
        sw.receive(Packet(PacketType.DATA, 1, 2, payload=64), 0)
        sim.run()
        assert len(accel.seen) == 1      # multicast redirected
        assert len(h2.received) == 1     # unicast forwarded normally
