"""Property tests for the lazy-delete heap scheduler.

The simulator's event core (repro.net.simulator) was rewritten around
plain-list heap entries with lazy deletion; these tests pin its
semantics against an *independent reference model* — a sorted list with
eager deletion — across randomized workloads of schedule / post /
cancel / reschedule, plus targeted regressions for the hazards lazy
deletion introduces (resurrection via reschedule, cancel-during-
dispatch of an already-popped entry).
"""

from __future__ import annotations

import random

import pytest

from repro.net.simulator import Simulator

SEEDS = [0, 1, 7, 42, 1337, 90210]


class ReferenceScheduler:
    """Eager-delete sorted-list model of the Simulator contract.

    Entries are (time, seq, fn, args); cancellation removes the record
    outright, rescheduling removes + reinserts with a fresh seq.  The
    executed trace of (time, token) pairs is the comparison surface.
    """

    def __init__(self) -> None:
        self.now = 0.0
        self._seq = 0
        self._entries = []  # list of [when, seq, token, alive]

    def schedule(self, delay, token):
        self._seq += 1
        rec = [self.now + delay, self._seq, token, True]
        self._entries.append(rec)
        return rec

    def cancel(self, rec):
        rec[3] = False

    def reschedule(self, rec, delay):
        rec[3] = False
        self._seq += 1
        new = [self.now + delay, self._seq, rec[2], True]
        self._entries.append(new)
        return new

    def run(self):
        trace = []
        while True:
            live = [r for r in self._entries if r[3]]
            if not live:
                break
            rec = min(live, key=lambda r: (r[0], r[1]))
            rec[3] = False
            self.now = rec[0]
            trace.append((rec[0], rec[2]))
        return trace


@pytest.mark.parametrize("seed", SEEDS)
def test_random_schedule_cancel_reschedule_matches_reference(seed):
    """Random mixed workloads: the heap scheduler's executed trace is
    identical (order, times, tokens) to the eager-delete model's."""
    rng = random.Random(seed)
    sim = Simulator()
    ref = ReferenceScheduler()
    trace = []

    handles = []  # (sim Event, ref record)
    for token in range(200):
        delay = rng.uniform(0.0, 1e-3)
        roll = rng.random()
        if roll < 0.5:
            ev = sim.schedule(delay, lambda t=token: trace.append((sim.now, t)))
            rec = ref.schedule(delay, token)
            handles.append((ev, rec))
        else:
            # post(): fire-and-forget — same ordering, no handle.
            sim.post(delay, lambda t=token: trace.append((sim.now, t)))
            ref.schedule(delay, token)
        # Randomly cancel or re-arm one of the live handles.
        if handles and rng.random() < 0.3:
            i = rng.randrange(len(handles))
            ev, rec = handles[i]
            if rng.random() < 0.5:
                ev.cancel()
                ref.cancel(rec)
                handles.pop(i)
            else:
                d2 = rng.uniform(0.0, 1e-3)
                sim.reschedule(ev, d2)
                handles[i] = (ev, ref.reschedule(rec, d2))

    sim.run()
    assert trace == ref.run()


@pytest.mark.parametrize("seed", SEEDS)
def test_fifo_among_equal_times(seed):
    """Events at the same instant run in scheduling order (seq ties)."""
    rng = random.Random(seed)
    sim = Simulator()
    fired = []
    times = [rng.choice([0.0, 1e-6, 2e-6]) for _ in range(64)]
    for i, t in enumerate(times):
        sim.post(t, fired.append, i)
    sim.run()
    expected = [i for _, i in sorted(
        ((t, i) for i, t in enumerate(times)), key=lambda p: (p[0], p[1]))]
    assert fired == expected


def test_cancel_then_reschedule_same_handle_fires_once():
    """A cancelled handle can be re-armed; only the new entry fires."""
    sim = Simulator()
    fired = []
    ev = sim.schedule(1e-6, fired.append, "x")
    ev.cancel()
    sim.reschedule(ev, 5e-6)
    sim.run()
    assert fired == ["x"]
    assert sim.now == pytest.approx(5e-6)


def test_reschedule_does_not_resurrect_old_entry():
    """The old heap entry stays tombstoned after reschedule — the event
    fires exactly once, at the *new* time, never also at the old one."""
    sim = Simulator()
    fired = []
    ev = sim.schedule(1e-6, lambda: fired.append(sim.now))
    sim.reschedule(ev, 9e-6)
    sim.run()
    assert fired == [pytest.approx(9e-6)]


def test_reschedule_after_fire_pushes_fresh_entry():
    """Re-arming a handle whose event already executed schedules a new
    firing (the RTO re-arm pattern after a timeout fired)."""
    sim = Simulator()
    fired = []
    ev = sim.schedule(1e-6, lambda: fired.append(sim.now))
    sim.run()
    sim.reschedule(ev, 1e-6)
    sim.run()
    assert fired == [pytest.approx(1e-6), pytest.approx(2e-6)]


class TestCancelDuringDispatch:
    """Regression: cancelling an event from inside a handler running at
    the same timestamp.  With lazy deletion the victim entry may already
    be heap-popped (or about to be) when the cancel lands; it must still
    never execute, and the run loop must not corrupt the heap."""

    def test_cancel_same_time_sibling_from_handler(self):
        sim = Simulator()
        fired = []
        ev_b = [None]

        def a():
            fired.append("a")
            ev_b[0].cancel()  # b sits at the same timestamp, later seq

        sim.schedule(1e-6, a)
        ev_b[0] = sim.schedule(1e-6, lambda: fired.append("b"))
        sim.schedule(1e-6, lambda: fired.append("c"))
        n = sim.run()
        assert fired == ["a", "c"]
        assert n == 2

    def test_cancel_already_fired_event_is_noop(self):
        """Cancelling from a later handler an event that already ran at
        the same timestamp: no error, no double-count, no resurrection."""
        sim = Simulator()
        fired = []
        ev_a = sim.schedule(1e-6, lambda: fired.append("a"))
        sim.schedule(1e-6, lambda: (fired.append("b"), ev_a.cancel()))
        sim.run()
        assert fired == ["a", "b"]
        assert ev_a.cancelled  # consumed entries read as dead

    def test_reschedule_during_dispatch_of_same_timestamp(self):
        """Re-arming a same-timestamp pending event from a handler moves
        it; the tombstoned original never fires."""
        sim = Simulator()
        fired = []
        ev_b = [None]

        def a():
            fired.append(("a", sim.now))
            sim.reschedule(ev_b[0], 4e-6)

        sim.schedule(1e-6, a)
        ev_b[0] = sim.schedule(1e-6, lambda: fired.append(("b", sim.now)))
        sim.run()
        assert fired == [("a", pytest.approx(1e-6)),
                         ("b", pytest.approx(5e-6))]

    def test_cancel_inside_max_events_window(self):
        """Tombstones never count toward max_events accounting."""
        sim = Simulator()
        fired = []
        evs = [sim.schedule((i + 1) * 1e-6, fired.append, i)
               for i in range(10)]

        def killer():
            for ev in evs[5:]:
                ev.cancel()

        sim.schedule(1.5e-6, killer)
        n = sim.run(max_events=6)  # 0..4 plus the killer
        assert n == 6
        assert fired == [0, 1, 2, 3, 4]
        assert sim.run() == 0  # the rest are tombstones; nothing left


def test_post_and_schedule_interleave_deterministically():
    """post() consumes the same seq stream as schedule(): interleaved
    calls at one timestamp preserve global scheduling order."""
    sim = Simulator()
    fired = []
    sim.post(1e-6, fired.append, 0)
    sim.schedule(1e-6, fired.append, 1)
    sim.post_at(1e-6, fired.append, 2)
    sim.schedule_at(1e-6, fired.append, 3)
    sim.run()
    assert fired == [0, 1, 2, 3]


def test_validation_applies_to_all_scheduling_tiers():
    sim = Simulator()
    sim.post(0.0, lambda: None)
    sim.run()
    assert sim.now == 0.0
    with pytest.raises(ValueError):
        sim.post(-1e-9, lambda: None)
    with pytest.raises(ValueError):
        sim.post_at(-1e-9, lambda: None)
    with pytest.raises(ValueError):
        sim.reschedule(sim.schedule(0.0, lambda: None), -1e-9)
